//! Temperature-aware reliability analysis over the IoT operating range.
//!
//! The paper positions the MSS for battery-powered IoT platforms, which
//! must hold data and meet error-rate targets across the industrial
//! temperature range (−40 °C … +85 °C). The thermal stability factor
//! Δ = E_b/(k_B·T) shrinks linearly as the die heats up, dragging
//! retention, read-disturb immunity and write margins with it. This module
//! sweeps the full flow (characterisation → margins → disturb) over
//! temperature.

use mss_mtj::reliability;

use mss_units::consts::celsius_to_kelvin;

use crate::context::VaetContext;
use crate::margins::WriteMarginSolver;
use crate::VaetError;

/// The flow's reliability picture at one operating temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperaturePoint {
    /// Die temperature, kelvin.
    pub temperature: f64,
    /// Thermal stability factor Δ at this temperature.
    pub delta: f64,
    /// Néel–Brown retention, seconds.
    pub retention_seconds: f64,
    /// Critical current, amperes.
    pub critical_current: f64,
    /// Write latency meeting the word-level WER target under variation,
    /// seconds.
    pub margined_write_latency: f64,
    /// Read-disturb probability for a 5 ns read at the standard read bias.
    pub read_disturb_5ns: f64,
}

/// The industrial IoT temperature corners in kelvin: −40, 25, 85, 125 °C.
pub fn iot_corners() -> Vec<f64> {
    [-40.0, 25.0, 85.0, 125.0]
        .into_iter()
        .map(celsius_to_kelvin)
        .collect()
}

/// Sweeps the reliability picture across `temperatures` (kelvin) for a
/// context's stack and organisation.
///
/// Each point re-characterises the cell at that temperature (the switching
/// current and latency shift with Δ), rebuilds the nominal estimate and
/// re-solves the write margin.
///
/// # Errors
///
/// Propagates characterisation and margin-solver failures.
pub fn temperature_sweep(
    base: &VaetContext,
    temperatures: &[f64],
    wer_target: f64,
) -> Result<Vec<TemperaturePoint>, VaetError> {
    let mut points = Vec::with_capacity(temperatures.len());
    for &t in temperatures {
        let stack = base.stack.with_temperature(t).map_err(VaetError::Device)?;
        let ctx = VaetContext::build(base.tech.node, stack.clone(), base.config)?;
        let margin = WriteMarginSolver::new(&ctx)?.latency_for_wer(wer_target)?;
        points.push(TemperaturePoint {
            temperature: t,
            delta: stack.thermal_stability(),
            retention_seconds: reliability::retention_seconds(&stack),
            critical_current: stack.critical_current(),
            margined_write_latency: margin.latency,
            read_disturb_5ns: reliability::read_disturb_probability(
                &stack,
                5e-9,
                ctx.read_disturb_current(),
            ),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_pdk::tech::TechNode;

    #[test]
    fn hotter_means_less_stable() {
        let base = VaetContext::standard(TechNode::N45).unwrap();
        let temps = [
            celsius_to_kelvin(-40.0),
            celsius_to_kelvin(25.0),
            celsius_to_kelvin(85.0),
        ];
        let pts = temperature_sweep(&base, &temps, 1e-9).unwrap();
        assert_eq!(pts.len(), 3);
        for w in pts.windows(2) {
            // Δ and retention fall with temperature; disturb rises.
            assert!(w[1].delta < w[0].delta);
            assert!(w[1].retention_seconds < w[0].retention_seconds);
            assert!(w[1].read_disturb_5ns >= w[0].read_disturb_5ns);
            // The zero-temperature critical current depends only on the
            // (temperature-independent) energy barrier in this model.
            assert!((w[1].critical_current - w[0].critical_current).abs() < 1e-12);
        }
        // Room-temperature retention is still in the decades.
        let room = &pts[1];
        assert!(room.retention_seconds > 10.0 * 365.25 * 86400.0);
        // Every corner still closes its margin.
        for p in &pts {
            assert!(p.margined_write_latency.is_finite() && p.margined_write_latency > 0.0);
        }
    }

    #[test]
    fn iot_corners_are_sane() {
        let c = iot_corners();
        assert_eq!(c.len(), 4);
        assert!((c[0] - 233.15).abs() < 1e-9);
        assert!((c[2] - 358.15).abs() < 1e-9);
    }
}
