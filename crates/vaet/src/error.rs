//! Error type for the variation-aware estimator.

use std::fmt;

use mss_mtj::MtjError;
use mss_nvsim::NvsimError;
use mss_pdk::PdkError;

/// Errors produced by VAET-STT analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum VaetError {
    /// Characterisation / PDK failure.
    Pdk(PdkError),
    /// Array-estimation failure.
    Nvsim(NvsimError),
    /// Device-model failure.
    Device(MtjError),
    /// A target error rate is unreachable with the given design (e.g. the
    /// sense signal cannot clear the offset at any latency).
    UnreachableTarget {
        /// Which quantity was being solved for.
        quantity: &'static str,
        /// The requested target.
        target: f64,
        /// Why it cannot be met.
        reason: String,
    },
    /// Invalid analysis options (zero samples, empty word, ...).
    InvalidOptions {
        /// Description of the inconsistency.
        reason: String,
    },
    /// The analysis observed its cancellation token (deadline or external
    /// cancel) and bailed out at a batch boundary before completing.
    Cancelled,
}

impl fmt::Display for VaetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VaetError::Pdk(e) => write!(f, "pdk error: {e}"),
            VaetError::Nvsim(e) => write!(f, "nvsim error: {e}"),
            VaetError::Device(e) => write!(f, "device error: {e}"),
            VaetError::UnreachableTarget {
                quantity,
                target,
                reason,
            } => write!(f, "target {quantity} = {target:.3e} unreachable: {reason}"),
            VaetError::InvalidOptions { reason } => write!(f, "invalid options: {reason}"),
            VaetError::Cancelled => write!(f, "analysis cancelled"),
        }
    }
}

impl std::error::Error for VaetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VaetError::Pdk(e) => Some(e),
            VaetError::Nvsim(e) => Some(e),
            VaetError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PdkError> for VaetError {
    fn from(e: PdkError) -> Self {
        VaetError::Pdk(e)
    }
}

impl From<NvsimError> for VaetError {
    fn from(e: NvsimError) -> Self {
        VaetError::Nvsim(e)
    }
}

impl From<MtjError> for VaetError {
    fn from(e: MtjError) -> Self {
        VaetError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e: VaetError = NvsimError::NoFeasibleDesign.into();
        assert!(e.to_string().contains("nvsim"));
        assert!(std::error::Error::source(&e).is_some());
        let u = VaetError::UnreachableTarget {
            quantity: "RER",
            target: 1e-20,
            reason: "offset exceeds signal".into(),
        };
        assert!(u.to_string().contains("RER"));
    }
}
