//! Write-verify-retry: the architectural alternative to pure timing margin.
//!
//! Fig. 7/8 close the WER target by widening the pulse (margin) or adding
//! ECC. The third standard technique writes with a *short* pulse, reads the
//! bit back, and retries on failure: the common case is fast, and only the
//! exponential tail pays. This module evaluates the scheme against the same
//! variation-averaged per-bit WER the margin solver uses, so the three
//! approaches are directly comparable.
//!
//! Word-level accounting: a word completes when its slowest bit does; bit
//! attempts are geometric with failure probability `p = E[WER(pulse)]`, so
//! `P(max attempts > k) = 1 − (1−pᵏ)^word` and the expected completion
//! count follows by summing the survival function.

use crate::context::VaetContext;
use crate::margins::WriteMarginSolver;
use crate::VaetError;

/// A write-verify-retry configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteVerifyScheme {
    /// Write pulse per attempt, seconds.
    pub pulse: f64,
    /// Maximum attempts before the bit is declared failed (1 = plain write).
    pub max_attempts: u32,
}

/// Evaluation outcome of one scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WvrOutcome {
    /// The evaluated scheme.
    pub scheme: WriteVerifyScheme,
    /// Variation-averaged per-bit WER of a single attempt.
    pub attempt_wer: f64,
    /// Residual per-bit WER after exhausting every attempt.
    pub residual_bit_wer: f64,
    /// Residual word-level WER.
    pub residual_word_wer: f64,
    /// Expected number of attempt rounds until the whole word is written.
    pub expected_rounds: f64,
    /// Expected overall write latency (periphery + rounds × (pulse+verify)),
    /// seconds.
    pub expected_latency: f64,
    /// Worst-case latency if every allowed attempt is consumed, seconds.
    pub worst_case_latency: f64,
}

/// Evaluates a write-verify-retry scheme on a context.
///
/// # Errors
///
/// [`VaetError::InvalidOptions`] on a degenerate scheme; corner-sampling
/// failures propagate.
pub fn evaluate(ctx: &VaetContext, scheme: WriteVerifyScheme) -> Result<WvrOutcome, VaetError> {
    if scheme.pulse <= 0.0 || scheme.max_attempts == 0 {
        return Err(VaetError::InvalidOptions {
            reason: format!("scheme needs a positive pulse and at least one attempt: {scheme:?}"),
        });
    }
    let solver = WriteMarginSolver::new(ctx)?;
    let p = solver.mean_bit_wer(scheme.pulse).clamp(0.0, 1.0);
    let word = ctx.config.word_bits as f64;
    let n = scheme.max_attempts;

    // Residuals.
    let residual_bit = p.powi(n as i32);
    let residual_word = (-(word * (-residual_bit).ln_1p()).exp_m1()).clamp(0.0, 1.0);

    // Expected rounds for the word: E[max] = sum_k P(max > k), k = 0..n-1.
    let mut expected_rounds = 0.0;
    let mut p_k: f64 = 1.0; // p^k
    for _ in 0..n {
        // P(some bit needs more than k attempts) = 1 - (1 - p^k)^word.
        let survival = (-(word * (-p_k).ln_1p()).exp_m1()).clamp(0.0, 1.0);
        expected_rounds += survival;
        p_k *= p;
    }

    // Each round is a pulse plus a verify read of the word.
    let verify = ctx.nominal.read_latency;
    let round = scheme.pulse + verify;
    let periphery = ctx.write_periphery_latency();
    Ok(WvrOutcome {
        scheme,
        attempt_wer: p,
        residual_bit_wer: residual_bit,
        residual_word_wer: residual_word,
        expected_rounds,
        expected_latency: periphery + expected_rounds * round,
        worst_case_latency: periphery + n as f64 * round,
    })
}

/// Finds the cheapest (expected-latency) scheme meeting a residual
/// word-level WER target, sweeping pulses around the nominal cell write
/// time and attempt budgets up to `max_attempts`.
///
/// # Errors
///
/// [`VaetError::UnreachableTarget`] when no swept scheme meets the target.
pub fn optimize(
    ctx: &VaetContext,
    target_word_wer: f64,
    max_attempts: u32,
) -> Result<WvrOutcome, VaetError> {
    if !(target_word_wer > 0.0 && target_word_wer < 1.0) {
        return Err(VaetError::InvalidOptions {
            reason: format!("target {target_word_wer} must be in (0, 1)"),
        });
    }
    let _span = mss_obs::span("vaet.wvr.optimize");
    let base = ctx.nominal.write_breakdown.cell.max(1e-9);
    let mut best: Option<WvrOutcome> = None;
    for pulse_factor in [0.8, 1.0, 1.3, 1.7, 2.2, 3.0] {
        for attempts in 1..=max_attempts {
            mss_obs::counter_add("vaet.wvr.evaluations", 1);
            let out = evaluate(
                ctx,
                WriteVerifyScheme {
                    pulse: pulse_factor * base,
                    max_attempts: attempts,
                },
            )?;
            if out.residual_word_wer <= target_word_wer
                && best
                    .as_ref()
                    .map(|b| out.expected_latency < b.expected_latency)
                    .unwrap_or(true)
            {
                best = Some(out);
            }
        }
    }
    best.ok_or(VaetError::UnreachableTarget {
        quantity: "WVR word WER",
        target: target_word_wer,
        reason: format!("not reachable within {max_attempts} attempts"),
    })
}

/// Compares the optimal write-verify-retry scheme against the pure timing
/// margin for the same word-level WER target. Returns
/// `(margin_latency, wvr_outcome)`.
///
/// # Errors
///
/// Propagates both solvers' failures.
pub fn compare_with_margin(
    ctx: &VaetContext,
    target_word_wer: f64,
    max_attempts: u32,
) -> Result<(f64, WvrOutcome), VaetError> {
    let margin = WriteMarginSolver::new(ctx)?.latency_for_wer(target_word_wer)?;
    let wvr = optimize(ctx, target_word_wer, max_attempts)?;
    Ok((margin.latency, wvr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_pdk::tech::TechNode;
    use std::sync::OnceLock;

    fn ctx() -> &'static VaetContext {
        static CTX: OnceLock<VaetContext> = OnceLock::new();
        CTX.get_or_init(|| VaetContext::standard(TechNode::N45).expect("ctx"))
    }

    fn short_pulse() -> f64 {
        1.5 * ctx().nominal.write_breakdown.cell
    }

    #[test]
    fn more_attempts_reduce_residual_wer() {
        // A single attempt at a short pulse almost surely corrupts some bit
        // of a 1024-bit word (residual saturates at 1.0 in f64); from the
        // second attempt on the residual falls steeply and strictly.
        let residuals: Vec<f64> = [1, 2, 3, 4]
            .into_iter()
            .map(|attempts| {
                evaluate(
                    ctx(),
                    WriteVerifyScheme {
                        pulse: short_pulse(),
                        max_attempts: attempts,
                    },
                )
                .unwrap()
                .residual_word_wer
            })
            .collect();
        for r in &residuals {
            assert!((0.0..=1.0).contains(r));
        }
        assert!(residuals.windows(2).all(|w| w[1] <= w[0]));
        assert!(residuals[2] < 0.5 * residuals[1]);
        assert!(residuals[3] < 0.5 * residuals[2]);
    }

    #[test]
    fn expected_rounds_are_modest_and_bounded() {
        let out = evaluate(
            ctx(),
            WriteVerifyScheme {
                pulse: short_pulse(),
                max_attempts: 8,
            },
        )
        .unwrap();
        assert!(out.expected_rounds >= 1.0);
        assert!(out.expected_rounds <= 8.0);
        assert!(out.expected_latency <= out.worst_case_latency);
        // The common case stays near one round: the per-attempt WER at a
        // 1.5x pulse is far below 1 per word... but the word max can need a
        // retry; it must still be well below the attempt cap.
        assert!(
            out.expected_rounds < 4.0,
            "rounds = {}",
            out.expected_rounds
        );
    }

    #[test]
    fn wvr_beats_pure_margin_on_expected_latency() {
        // The whole point of the scheme: for deep targets the margin pays
        // the tail on every access, WVR only on the rare retry.
        let (margin, wvr) = compare_with_margin(ctx(), 1e-12, 8).unwrap();
        assert!(
            wvr.expected_latency < margin,
            "wvr {} vs margin {}",
            wvr.expected_latency,
            margin
        );
        assert!(wvr.residual_word_wer <= 1e-12);
    }

    #[test]
    fn optimizer_respects_the_target() {
        let out = optimize(ctx(), 1e-9, 6).unwrap();
        assert!(out.residual_word_wer <= 1e-9);
        // A one-attempt plan with a short pulse cannot reach 1e-9.
        let single = evaluate(
            ctx(),
            WriteVerifyScheme {
                pulse: out.scheme.pulse,
                max_attempts: 1,
            },
        )
        .unwrap();
        assert!(single.residual_word_wer > out.residual_word_wer);
    }

    #[test]
    fn degenerate_schemes_rejected() {
        assert!(evaluate(
            ctx(),
            WriteVerifyScheme {
                pulse: 0.0,
                max_attempts: 2
            }
        )
        .is_err());
        assert!(evaluate(
            ctx(),
            WriteVerifyScheme {
                pulse: 1e-9,
                max_attempts: 0
            }
        )
        .is_err());
        assert!(optimize(ctx(), 0.0, 4).is_err());
    }
}
