//! Relaxed-retention design: trading retention for write energy with
//! DRAM-style refresh.
//!
//! The paper's memory-mode knob: *"MTJs can have adjustable retention by
//! playing with the diameter of the stack thus allowing to minimize the
//! switching current according to the specified retention."* A
//! lower-retention (smaller-Δ) pillar writes with less current and energy,
//! but data that must outlive the retention window needs periodic scrubbing.
//! Total power therefore has an optimum retention spec that depends on the
//! write intensity — computed here.

use mss_mtj::{reliability, MssStack};

use crate::VaetError;

/// One point of the retention/energy trade-off sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshPoint {
    /// Retention specification, seconds.
    pub retention: f64,
    /// Pillar diameter meeting the spec, metres.
    pub diameter: f64,
    /// Thermal stability Δ of the resized pillar.
    pub delta: f64,
    /// Energy per demand write, joules (scaled from the reference cell).
    pub write_energy: f64,
    /// Refresh power for the whole array, watts.
    pub refresh_power: f64,
    /// Demand-write power at the given write rate, watts.
    pub demand_power: f64,
}

impl RefreshPoint {
    /// Total write-related power, watts.
    pub fn total_power(&self) -> f64 {
        self.refresh_power + self.demand_power
    }
}

/// Sweep inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshAnalysis {
    /// Array capacity in bits.
    pub capacity_bits: u64,
    /// Demand write rate for the whole array, writes/second.
    pub write_rate: f64,
    /// Reference energy per write at the reference stack, joules.
    pub reference_write_energy: f64,
    /// Scrub interval as a fraction of the retention time (margin against
    /// the exponential failure tail; 0.01 = refresh at 1 % of retention).
    pub scrub_fraction: f64,
}

impl RefreshAnalysis {
    /// Evaluates one retention specification.
    ///
    /// Write energy scales with the switching current squared and the
    /// junction resistance: `E ∝ I_c0²·R_P ∝ Δ²/A ∝ A` (with `Δ ∝ A` and
    /// `R ∝ 1/A`), so a half-retention (smaller) pillar writes with
    /// proportionally less energy.
    ///
    /// # Errors
    ///
    /// Propagates sizing failures for unreachable retention targets.
    pub fn evaluate(
        &self,
        reference: &MssStack,
        retention: f64,
    ) -> Result<RefreshPoint, VaetError> {
        if self.scrub_fraction <= 0.0 || self.scrub_fraction > 1.0 {
            return Err(VaetError::InvalidOptions {
                reason: format!("scrub fraction {} outside (0, 1]", self.scrub_fraction),
            });
        }
        let sized =
            reliability::diameter_for_retention(reference, retention).map_err(VaetError::Device)?;
        // E_write ∝ Ic0² · R: both derive from the stack.
        let scale = (sized.critical_current() / reference.critical_current()).powi(2)
            * (sized.resistance_parallel() / reference.resistance_parallel());
        let write_energy = self.reference_write_energy * scale;
        let t_scrub = retention * self.scrub_fraction;
        let refresh_power = self.capacity_bits as f64 * write_energy / t_scrub;
        let demand_power = self.write_rate * write_energy;
        Ok(RefreshPoint {
            retention,
            diameter: sized.diameter(),
            delta: sized.thermal_stability(),
            write_energy,
            refresh_power,
            demand_power,
        })
    }

    /// Sweeps retention specifications and returns the points together with
    /// the index of the total-power optimum.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures; errors on an empty sweep.
    pub fn sweep(
        &self,
        reference: &MssStack,
        retentions: &[f64],
    ) -> Result<(Vec<RefreshPoint>, usize), VaetError> {
        if retentions.is_empty() {
            return Err(VaetError::InvalidOptions {
                reason: "empty retention sweep".into(),
            });
        }
        let points: Vec<RefreshPoint> = retentions
            .iter()
            .map(|&r| self.evaluate(reference, r))
            .collect::<Result<_, _>>()?;
        // Rank with total_cmp so one NaN power (degenerate sizing) cannot
        // abort the sweep; non-finite totals are skipped as unrankable.
        let best = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.total_power().is_finite())
            .min_by(|a, b| a.1.total_power().total_cmp(&b.1.total_power()))
            .map(|(i, _)| i)
            .ok_or_else(|| VaetError::InvalidOptions {
                reason: "no retention point with finite total power".into(),
            })?;
        Ok((points, best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> MssStack {
        MssStack::builder().build().unwrap()
    }

    fn analysis(write_rate: f64) -> RefreshAnalysis {
        RefreshAnalysis {
            capacity_bits: 1 << 20,
            write_rate,
            reference_write_energy: 200e-15,
            scrub_fraction: 0.01,
        }
    }

    fn retentions() -> Vec<f64> {
        // 1 hour .. 10 years, log-spaced.
        let lo: f64 = 3600.0;
        let hi: f64 = 10.0 * 365.25 * 86400.0;
        (0..12)
            .map(|k| lo * (hi / lo).powf(k as f64 / 11.0))
            .collect()
    }

    #[test]
    fn shorter_retention_writes_cheaper_but_refreshes_harder() {
        let a = analysis(1e6);
        let pts: Vec<RefreshPoint> = retentions()
            .iter()
            .map(|&r| a.evaluate(&reference(), r).unwrap())
            .collect();
        for w in pts.windows(2) {
            assert!(w[1].write_energy > w[0].write_energy); // longer retention = bigger pillar
            assert!(w[1].refresh_power < w[0].refresh_power);
            assert!(w[1].delta > w[0].delta);
        }
    }

    #[test]
    fn optimum_moves_with_write_intensity() {
        let reference = reference();
        let rets = retentions();
        // Write-heavy arrays prefer short retention (cheap writes);
        // archival arrays prefer long retention (no refresh).
        let (_, busy_idx) = analysis(1e8).sweep(&reference, &rets).unwrap();
        let (_, idle_idx) = analysis(1e2).sweep(&reference, &rets).unwrap();
        assert!(
            busy_idx <= idle_idx,
            "busy optimum {busy_idx} vs idle optimum {idle_idx}"
        );
        assert!(
            idle_idx > 0,
            "idle arrays should not pick the shortest retention"
        );
    }

    #[test]
    fn ten_year_spec_needs_no_meaningful_refresh() {
        let a = analysis(1e6);
        let ten_years = 10.0 * 365.25 * 86400.0;
        let p = a.evaluate(&reference(), ten_years).unwrap();
        assert!(p.refresh_power < 0.05 * p.demand_power);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut a = analysis(1e6);
        a.scrub_fraction = 0.0;
        assert!(a.evaluate(&reference(), 3600.0).is_err());
        let a = analysis(1e6);
        assert!(a.sweep(&reference(), &[]).is_err());
        assert!(a.evaluate(&reference(), 1e300).is_err());
    }
}
