//! Access-level Monte Carlo: latency/energy distributions under process
//! variation and stochastic switching.
//!
//! One Monte Carlo sample is one *word access*:
//!
//! 1. a global (per-die) CMOS sample perturbs the peripheral speed,
//! 2. each bit of the word gets a local MTJ sample (diameter, RA, TMR, K_i)
//!    and — for writes — a thermal initial angle drawn from the Rayleigh
//!    distribution `p(θ₀) = 2Δθ₀·exp(−Δθ₀²)`,
//! 3. the access completes when its **slowest bit** completes; the write
//!    current keeps flowing for the whole (per-access) pulse, so energy
//!    scales with the completion time, not each bit's own switch time.
//!
//! This is what makes the variation-aware mean (μ) far exceed the nominal
//! value in the paper's Table 1: the max over a 1024-bit word sits deep in
//! the exponential tail of the per-bit switching-time distribution.

use mss_exec::supervise::CancelToken;
use mss_exec::{par_chunks_stats, ParallelConfig, RunStats};
use mss_mtj::switching::SwitchingModel;
use mss_spice::batch::DcBatch;
use mss_spice::netlist::Netlist;
use mss_spice::waveform::Waveform;

use mss_units::rng::{normal, Rng, Xoshiro256PlusPlus};
use mss_units::stats::{DistributionSummary, OnlineStats};

use crate::context::{VaetContext, SENSE_OFFSET_SIGMA};
use crate::report::VaetReport;
use crate::VaetError;

/// Options for a Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloOptions {
    /// Number of word accesses to simulate.
    pub samples: usize,
    /// RNG seed (runs are fully deterministic per seed).
    pub seed: u64,
    /// Override the word width (defaults to the context's configuration).
    pub word_bits: Option<u32>,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        Self {
            samples: 2000,
            seed: 0x5713_AE77,
            word_bits: None,
        }
    }
}

/// Draws a thermal initial angle from the Rayleigh-like distribution.
fn thermal_angle<R: Rng + ?Sized>(rng: &mut R, delta: f64) -> f64 {
    // θ₀² ~ Exp(Δ): invert the CDF with a guarded uniform.
    let mut u: f64 = rng.next_f64();
    while u <= f64::MIN_POSITIVE {
        u = rng.next_f64();
    }
    (-u.ln() / delta).sqrt().min(std::f64::consts::FRAC_PI_2)
}

/// Per-bit precessional switching time with an explicit initial angle.
fn switching_time(sw: &SwitchingModel, i_write: f64, theta0: f64) -> f64 {
    let i = i_write / sw.critical_current();
    if i <= 1.0 {
        // Subcritical sample (deep process corner): report a pessimistic
        // 10x the nominal-style time so the tail is visible, bounded to
        // keep statistics finite.
        return 10.0 * sw.tau_d() * (std::f64::consts::FRAC_PI_2 / theta0.max(1e-6)).ln();
    }
    sw.tau_d() / (i - 1.0) * (std::f64::consts::FRAC_PI_2 / theta0.max(1e-9)).ln()
}

/// Word-independent quantities shared by every sample.
#[derive(Debug, Clone, Copy)]
struct SampleConsts {
    periph_wl: f64,
    periph_rl: f64,
    periph_we: f64,
    periph_re: f64,
    i_write_nom: f64,
    sense_nom: f64,
    signal_nom: f64,
}

/// Per-batch accumulators, merged in batch order after the fan-out.
#[derive(Debug, Clone, Default)]
struct BatchAcc {
    wl: OnlineStats,
    we: OnlineStats,
    rl: OnlineStats,
    re: OnlineStats,
}

impl BatchAcc {
    fn merge(&mut self, other: &BatchAcc) {
        self.wl.merge(&other.wl);
        self.we.merge(&other.we);
        self.rl.merge(&other.rl);
        self.re.merge(&other.re);
    }
}

/// Simulates one word access (one write + one read) and records it.
fn sample_access<R: Rng + ?Sized>(
    ctx: &VaetContext,
    word: usize,
    consts: &SampleConsts,
    rng: &mut R,
    acc: &mut BatchAcc,
) -> Result<(), VaetError> {
    // Global CMOS sample: peripheral speed/energy factor.
    let t_sample = ctx.variation.sample_tech(rng, &ctx.tech);
    let drive = |t: &mss_pdk::tech::TechParams| t.nmos.kp * (t.vdd - t.nmos.vth).powi(2);
    let speed_factor = (drive(&ctx.tech) / drive(&t_sample)).clamp(0.5, 2.0);

    // --- Write access ---
    // Power drawn by one nominal cell during its write (the measured
    // cell energy spread over the measured cell latency); the pulse is
    // held for the slowest bit, so every bit burns this power for the
    // whole completion time — the paper's mu >> nominal energy effect.
    let cell_power_nom = ctx.cell.write.energy / ctx.cell.write.latency.max(1e-12);
    let mut t_cell_max: f64 = 0.0;
    let mut power_sum = 0.0;
    for _ in 0..word {
        let stack = ctx
            .variation
            .sample_stack(rng, &ctx.stack)
            .map_err(VaetError::Device)?;
        let sw = ctx.corner_switching_model(&stack)?;
        // Local access-device mismatch perturbs the write current.
        let i_rel = normal(rng, 1.0, 0.04).clamp(0.7, 1.3) / speed_factor;
        let i_bit = consts.i_write_nom * i_rel;
        let theta0 = thermal_angle(rng, sw.delta());
        let t_bit = switching_time(&sw, i_bit, theta0);
        t_cell_max = t_cell_max.max(t_bit);
        // Dissipation scales as I^2 R relative to the nominal write path.
        let r_rel = ctx.write_resistance_ratio(&stack);
        power_sum += cell_power_nom * i_rel * i_rel * r_rel;
    }
    let t_write = consts.periph_wl * speed_factor + t_cell_max;
    let e_write = consts.periph_we + power_sum * t_cell_max;
    acc.wl.push(t_write);
    acc.we.push(e_write);

    // --- Read access ---
    let mut t_sense_max: f64 = 0.0;
    let mut e_read_cells = 0.0;
    for _ in 0..word {
        let stack = ctx
            .variation
            .sample_stack(rng, &ctx.stack)
            .map_err(VaetError::Device)?;
        // Signal scales with this bit's resistance window.
        let window = stack.resistance_antiparallel() - stack.resistance_parallel();
        let window_nom = ctx.cell.r_antiparallel - ctx.cell.r_parallel;
        let offset = normal(rng, 0.0, SENSE_OFFSET_SIGMA);
        let signal =
            (consts.signal_nom * window / window_nom - offset.abs()).max(0.05 * consts.signal_nom);
        // Regeneration time grows as the effective signal shrinks.
        let t_bit = consts.sense_nom * (consts.signal_nom / signal).min(8.0);
        t_sense_max = t_sense_max.max(t_bit);
        e_read_cells += ctx.cell.read.energy * (window_nom / window).clamp(0.5, 2.0);
    }
    let t_read = consts.periph_rl * speed_factor + t_sense_max;
    let e_read = consts.periph_re + e_read_cells;
    acc.rl.push(t_read);
    acc.re.push(e_read);
    Ok(())
}

/// Runs the Monte Carlo and returns the Table-1-shaped report.
///
/// Parallelism policy comes from the environment
/// ([`ParallelConfig::from_env`], i.e. `MSS_THREADS` or all cores); use
/// [`run_with`] for explicit control. The result is a pure function of
/// `(ctx, opts)` — thread count never changes the report.
///
/// # Errors
///
/// [`VaetError::InvalidOptions`] on zero samples; device sampling errors
/// propagate.
pub fn run(ctx: &VaetContext, opts: &MonteCarloOptions) -> Result<VaetReport, VaetError> {
    run_with(ctx, opts, &ParallelConfig::from_env())
}

/// [`run`] with an explicit thread/chunk policy.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with(
    ctx: &VaetContext,
    opts: &MonteCarloOptions,
    cfg: &ParallelConfig,
) -> Result<VaetReport, VaetError> {
    run_with_stats(ctx, opts, cfg).map(|(report, _)| report)
}

/// [`run_with`] plus the runtime's [`RunStats`] (throughput, utilization).
///
/// Samples are fanned out in fixed-size batches; batch `i` draws from RNG
/// stream `(opts.seed, i)` and the per-batch accumulators are merged in
/// batch order, so the report is bit-identical at any thread count.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with_stats(
    ctx: &VaetContext,
    opts: &MonteCarloOptions,
    cfg: &ParallelConfig,
) -> Result<(VaetReport, RunStats), VaetError> {
    run_with_stats_inner(ctx, opts, cfg, None)
}

/// [`run_with_stats`] with a cooperative cancellation token checked at
/// every sample-batch boundary — the hook the sweep supervisor's per-task
/// deadline uses to bound a Monte Carlo run.
///
/// # Errors
///
/// [`VaetError::Cancelled`] when the token trips mid-run, plus every
/// [`run`] error.
pub fn run_with_stats_cancellable(
    ctx: &VaetContext,
    opts: &MonteCarloOptions,
    cfg: &ParallelConfig,
    token: &CancelToken,
) -> Result<(VaetReport, RunStats), VaetError> {
    run_with_stats_inner(ctx, opts, cfg, Some(token))
}

fn run_with_stats_inner(
    ctx: &VaetContext,
    opts: &MonteCarloOptions,
    cfg: &ParallelConfig,
    token: Option<&CancelToken>,
) -> Result<(VaetReport, RunStats), VaetError> {
    if opts.samples == 0 {
        return Err(VaetError::InvalidOptions {
            reason: "samples must be non-zero".into(),
        });
    }
    let word = opts.word_bits.unwrap_or(ctx.config.word_bits) as usize;
    if word == 0 {
        return Err(VaetError::InvalidOptions {
            reason: "word width must be non-zero".into(),
        });
    }

    // Peripheral energy share = array energy minus the word's cell energy,
    // rescaled when the word width is overridden (narrower accesses fire
    // proportionally less periphery).
    let word_fraction = word as f64 / ctx.config.word_bits as f64;
    let periph_we =
        (ctx.nominal.write_energy - ctx.config.word_bits as f64 * ctx.cell.write.energy).max(0.0)
            * word_fraction;
    let periph_re = (ctx.nominal.read_energy - ctx.config.word_bits as f64 * ctx.cell.read.energy)
        .max(0.0)
        * word_fraction;
    // Nominal energies consistent with the effective word width.
    let nominal_we = periph_we + word as f64 * ctx.cell.write.energy;
    let nominal_re = periph_re + word as f64 * ctx.cell.read.energy;

    let consts = SampleConsts {
        periph_wl: ctx.write_periphery_latency(),
        periph_rl: ctx.read_periphery_latency(),
        periph_we,
        periph_re,
        i_write_nom: ctx.cell.write.current,
        sense_nom: ctx.cell.read.latency,
        signal_nom: ctx.sense_signal(),
    };

    let _span = mss_obs::span("vaet.mc.run");
    // Batch-boundary progress for the live telemetry plane: one event per
    // finished batch, keyed to the deterministic batch grid (independent of
    // thread count). With the bus off this is a single atomic load.
    let events_on = mss_obs::events::bus_enabled();
    let total_batches = opts.samples.div_ceil(cfg.chunk.max(1)) as u64;
    let batches_done = std::sync::atomic::AtomicU64::new(0);
    let (batches, stats) = par_chunks_stats(
        cfg,
        opts.samples,
        |batch, range| -> Result<BatchAcc, VaetError> {
            // Opened inside the worker closure so the profiler attributes the
            // sampling time to the executing thread (`by_thread` in the span
            // report), not to the coordinating caller. Batch count depends
            // only on `samples` and the chunk size, so the span count stays
            // deterministic across thread counts.
            let _span = mss_obs::span("vaet.mc.batch");
            // Cancellation checkpoint: one poll per batch bounds the
            // reaction latency to a chunk of samples without touching the
            // per-sample hot path.
            if token.is_some_and(|t| t.is_cancelled()) {
                return Err(VaetError::Cancelled);
            }
            let mut rng = Xoshiro256PlusPlus::stream(opts.seed, batch as u64);
            let mut acc = BatchAcc::default();
            for _ in range {
                sample_access(ctx, word, &consts, &mut rng, &mut acc)?;
            }
            if events_on {
                let done = batches_done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                mss_obs::events::publish(mss_obs::events::EventPayload::Progress {
                    sweep: "vaet.mc".to_string(),
                    done,
                    total: total_batches,
                    retried: 0,
                    budget_seconds: token
                        .and_then(|t| t.budget_remaining())
                        .map(|d| d.as_secs_f64()),
                });
            }
            Ok(acc)
        },
    );
    stats.record("vaet.mc");
    let mut total = BatchAcc::default();
    for batch in batches {
        total.merge(&batch?);
    }

    let report = VaetReport {
        node: ctx.tech.node,
        samples: opts.samples as u64,
        word_bits: word as u32,
        nominal_write_latency: ctx.nominal.write_latency,
        nominal_write_energy: nominal_we,
        nominal_read_latency: ctx.nominal.read_latency,
        nominal_read_energy: nominal_re,
        write_latency: DistributionSummary::from(&total.wl),
        write_energy: DistributionSummary::from(&total.we),
        read_latency: DistributionSummary::from(&total.rl),
        read_energy: DistributionSummary::from(&total.re),
    };
    Ok((report, stats))
}

/// Options for the circuit-level sense-margin Monte Carlo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseBatchOptions {
    /// Number of cell samples to solve.
    pub samples: usize,
    /// RNG seed (runs are fully deterministic per seed).
    pub seed: u64,
}

impl Default for SenseBatchOptions {
    fn default() -> Self {
        Self {
            samples: 2048,
            seed: 0x5E4E_B47C,
        }
    }
}

/// Result of a batched SPICE sense-margin run.
#[derive(Debug, Clone, PartialEq)]
pub struct SenseBatchReport {
    /// Samples solved.
    pub samples: u64,
    /// Read bias applied to the bitline, volts.
    pub v_read: f64,
    /// Sense margin (`v_AP − v_P` at the divider taps) distribution, volts.
    pub margin: DistributionSummary,
    /// Worst sampled margin, volts.
    pub min_margin: f64,
    /// Samples whose margin fell below the 1σ sense-amp offset
    /// ([`SENSE_OFFSET_SIGMA`]) — the circuit-level read-failure proxy.
    pub below_offset: u64,
    /// Samples whose MNA solve failed (counted, never fatal).
    pub failed_solves: u64,
}

/// Builds the read-path divider the batch solves: the bitline bias feeds
/// two matched series resistors (access device + bitline, scaled with the
/// subarray height) into a parallel-state cell leg and an
/// antiparallel-state cell leg. The sense margin is the tap difference.
fn sense_netlist(ctx: &VaetContext, v_read: f64) -> Result<Netlist, VaetError> {
    let r_ref = 0.5 * (ctx.cell.r_parallel + ctx.cell.r_antiparallel);
    // Series (access + bitline) resistance: matched to the cell midpoint at
    // the paper's 1024-row subarray and scaled with the bitline length.
    let rows = ctx.config.subarray_rows as f64;
    let r_series = r_ref * (0.75 + 0.25 * rows / 1024.0);
    let mut nl = Netlist::new();
    let build = |nl: &mut Netlist| -> Result<(), mss_spice::SpiceError> {
        nl.add_vsource("vr", "bl", "0", Waveform::dc(v_read))?;
        nl.add_resistor("rsp", "bl", "sp", r_series)?;
        nl.add_resistor("rsap", "bl", "sap", r_series)?;
        nl.add_resistor("rp", "sp", "0", ctx.cell.r_parallel)?;
        nl.add_resistor("rap", "sap", "0", ctx.cell.r_antiparallel)?;
        Ok(())
    };
    build(&mut nl).map_err(|e| VaetError::InvalidOptions {
        reason: format!("sense netlist construction failed: {e}"),
    })?;
    Ok(nl)
}

/// Circuit-level read-margin Monte Carlo through the batched SPICE solver:
/// the netlist topology is analysed once ([`DcBatch`]), then each sample
/// re-solves it with a freshly sampled MTJ stack (RNG stream split by
/// *sample index*, so the report is bit-identical at any thread count).
///
/// This is the paper's sense-margin distribution computed by actual MNA
/// solves rather than the analytical divider of [`run`] — and the workload
/// the `spice_batch_smoke` perf gate times.
///
/// # Errors
///
/// [`VaetError::InvalidOptions`] on zero samples or when every solve
/// fails; device-sampling errors propagate.
pub fn sense_margin_batch(
    ctx: &VaetContext,
    opts: &SenseBatchOptions,
) -> Result<SenseBatchReport, VaetError> {
    sense_margin_batch_with(ctx, opts, &ParallelConfig::from_env())
}

/// [`sense_margin_batch`] with an explicit thread/chunk policy.
///
/// # Errors
///
/// Same as [`sense_margin_batch`].
pub fn sense_margin_batch_with(
    ctx: &VaetContext,
    opts: &SenseBatchOptions,
    cfg: &ParallelConfig,
) -> Result<SenseBatchReport, VaetError> {
    if opts.samples == 0 {
        return Err(VaetError::InvalidOptions {
            reason: "samples must be non-zero".into(),
        });
    }
    let _span = mss_obs::span("vaet.mc.sense_batch");
    let v_read = 0.1; // standard non-disturbing read bias
    let nl = sense_netlist(ctx, v_read)?;
    let rp = nl.element_index("rp").expect("rp exists");
    let rap = nl.element_index("rap").expect("rap exists");

    // Per-sample stack resistances, drawn from per-sample RNG streams so
    // neither thread count nor chunking can reorder the randomness.
    let mut cells = Vec::with_capacity(opts.samples);
    for i in 0..opts.samples {
        let mut rng = Xoshiro256PlusPlus::stream(opts.seed, i as u64);
        let stack = ctx
            .variation
            .sample_stack(&mut rng, &ctx.stack)
            .map_err(VaetError::Device)?;
        cells.push((stack.resistance_parallel(), stack.resistance_antiparallel()));
    }

    let batch = DcBatch::new(&nl);
    let result = batch.run_with(opts.samples, cfg, |i, nl| {
        let (r_p, r_ap) = cells[i];
        nl.set_resistance(rp, r_p)?;
        nl.set_resistance(rap, r_ap)
    });

    let mut stats = OnlineStats::default();
    let mut min_margin = f64::INFINITY;
    let mut below_offset = 0u64;
    for i in 0..opts.samples {
        if result.outcome(i).is_ok() {
            let margin = result.node_voltage(i, "sap").expect("solved")
                - result.node_voltage(i, "sp").expect("solved");
            stats.push(margin);
            min_margin = min_margin.min(margin);
            if margin < SENSE_OFFSET_SIGMA {
                below_offset += 1;
            }
        }
    }
    let failed_solves = result.failure_count() as u64;
    if failed_solves == opts.samples as u64 {
        return Err(VaetError::InvalidOptions {
            reason: "every sense solve failed".into(),
        });
    }
    Ok(SenseBatchReport {
        samples: opts.samples as u64,
        v_read,
        margin: DistributionSummary::from(&stats),
        min_margin,
        below_offset,
        failed_solves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_pdk::tech::TechNode;
    use std::sync::OnceLock;

    fn ctx45() -> &'static VaetContext {
        static CTX: OnceLock<VaetContext> = OnceLock::new();
        CTX.get_or_init(|| VaetContext::standard(TechNode::N45).unwrap())
    }

    fn small_opts(seed: u64) -> MonteCarloOptions {
        MonteCarloOptions {
            samples: 150,
            seed,
            word_bits: Some(64),
        }
    }

    #[test]
    fn variation_aware_mean_exceeds_nominal() {
        let report = run(ctx45(), &small_opts(1)).unwrap();
        // The paper's headline: mu >> nominal for write latency & energy.
        assert!(
            report.write_latency.mean > 1.3 * report.nominal_write_latency,
            "mu {} vs nominal {}",
            report.write_latency.mean,
            report.nominal_write_latency
        );
        assert!(report.read_latency.mean > report.nominal_read_latency);
    }

    #[test]
    fn distributions_have_positive_spread() {
        let report = run(ctx45(), &small_opts(2)).unwrap();
        assert!(report.write_latency.std_dev > 0.0);
        assert!(report.read_latency.std_dev > 0.0);
        assert!(report.write_energy.std_dev > 0.0);
        // Read is much tighter than write (Table 1 shape).
        assert!(report.read_latency.std_dev < report.write_latency.std_dev);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        // The determinism contract: a fixed seed gives the exact same
        // report at 1, 2 and 8 threads (batch streams + ordered merge).
        let opts = MonteCarloOptions {
            samples: 700, // several chunks at the default granularity
            seed: 0xD15EA5E,
            word_bits: Some(32),
        };
        let serial = run_with(ctx45(), &opts, &ParallelConfig::serial()).unwrap();
        for threads in [2, 8] {
            let parallel = run_with(
                ctx45(),
                &opts,
                &ParallelConfig::serial().with_threads(threads),
            )
            .unwrap();
            assert_eq!(serial, parallel, "report diverged at {threads} threads");
        }
    }

    #[test]
    fn run_with_stats_reports_throughput() {
        let opts = small_opts(4);
        let (report, stats) =
            run_with_stats(ctx45(), &opts, &ParallelConfig::serial().with_threads(2)).unwrap();
        assert_eq!(report.samples, opts.samples as u64);
        assert_eq!(stats.samples, opts.samples as u64);
        assert!(stats.tasks >= 1);
        assert!(stats.wall_seconds >= 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(ctx45(), &small_opts(7)).unwrap();
        let b = run(ctx45(), &small_opts(7)).unwrap();
        assert_eq!(a.write_latency.mean, b.write_latency.mean);
        let c = run(ctx45(), &small_opts(8)).unwrap();
        assert_ne!(a.write_latency.mean, c.write_latency.mean);
    }

    #[test]
    fn wider_words_have_larger_completion_latency() {
        let narrow = run(
            ctx45(),
            &MonteCarloOptions {
                samples: 120,
                seed: 3,
                word_bits: Some(16),
            },
        )
        .unwrap();
        let wide = run(
            ctx45(),
            &MonteCarloOptions {
                samples: 120,
                seed: 3,
                word_bits: Some(256),
            },
        )
        .unwrap();
        assert!(wide.write_latency.mean > narrow.write_latency.mean);
    }

    #[test]
    fn zero_samples_rejected() {
        let err = run(
            ctx45(),
            &MonteCarloOptions {
                samples: 0,
                seed: 0,
                word_bits: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, VaetError::InvalidOptions { .. }));
    }

    #[test]
    fn sense_batch_margins_are_physical() {
        let opts = SenseBatchOptions {
            samples: 300,
            seed: 11,
        };
        let report = sense_margin_batch_with(ctx45(), &opts, &ParallelConfig::serial()).unwrap();
        assert_eq!(report.samples, 300);
        assert_eq!(report.failed_solves, 0);
        // The AP leg always divides higher than the P leg.
        assert!(report.min_margin > 0.0);
        assert!(report.margin.mean > report.min_margin);
        // A healthy cell has margin above the sense offset for the vast
        // majority of samples.
        assert!(report.below_offset < report.samples / 10);
        assert!(report.margin.mean < report.v_read, "margin bounded by bias");
    }

    #[test]
    fn sense_batch_bit_identical_across_thread_counts() {
        let opts = SenseBatchOptions {
            samples: 400,
            seed: 0xBEEF,
        };
        let base =
            sense_margin_batch_with(ctx45(), &opts, &ParallelConfig::serial().with_chunk(64))
                .unwrap();
        for threads in [2, 8] {
            let cfg = ParallelConfig::serial()
                .with_threads(threads)
                .with_chunk(64);
            let other = sense_margin_batch_with(ctx45(), &opts, &cfg).unwrap();
            assert_eq!(base, other, "sense report diverged at {threads} threads");
        }
    }

    #[test]
    fn sense_batch_deterministic_per_seed() {
        let run = |seed| {
            sense_margin_batch_with(
                ctx45(),
                &SenseBatchOptions { samples: 120, seed },
                &ParallelConfig::serial(),
            )
            .unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).margin.mean, run(6).margin.mean);
    }

    #[test]
    fn sense_batch_matches_per_sample_dense_solves() {
        // Cross-layer parity: the vaet wrapper must agree bit-for-bit with
        // hand-built per-sample netlists through the single-solve path.
        let ctx = ctx45();
        let opts = SenseBatchOptions {
            samples: 16,
            seed: 77,
        };
        let report = sense_margin_batch_with(ctx, &opts, &ParallelConfig::serial()).unwrap();
        let mut stats = OnlineStats::default();
        for i in 0..opts.samples {
            let mut rng = Xoshiro256PlusPlus::stream(opts.seed, i as u64);
            let stack = ctx.variation.sample_stack(&mut rng, &ctx.stack).unwrap();
            let mut nl = sense_netlist(ctx, 0.1).unwrap();
            let rp = nl.element_index("rp").unwrap();
            let rap = nl.element_index("rap").unwrap();
            nl.set_resistance(rp, stack.resistance_parallel()).unwrap();
            nl.set_resistance(rap, stack.resistance_antiparallel())
                .unwrap();
            let dc = mss_spice::analysis::dc_operating_point(&nl).unwrap();
            stats.push(dc.node_voltage("sap").unwrap() - dc.node_voltage("sp").unwrap());
        }
        assert_eq!(report.margin, DistributionSummary::from(&stats));
    }

    #[test]
    fn sense_batch_zero_samples_rejected() {
        let err = sense_margin_batch_with(
            ctx45(),
            &SenseBatchOptions {
                samples: 0,
                seed: 1,
            },
            &ParallelConfig::serial(),
        )
        .unwrap_err();
        assert!(matches!(err, VaetError::InvalidOptions { .. }));
    }

    #[test]
    fn cancelled_token_aborts_and_live_token_is_transparent() {
        let token = CancelToken::new();
        token.cancel();
        let err =
            run_with_stats_cancellable(ctx45(), &small_opts(1), &ParallelConfig::serial(), &token)
                .unwrap_err();
        assert!(matches!(err, VaetError::Cancelled));
        let live = CancelToken::new();
        let (report, _) =
            run_with_stats_cancellable(ctx45(), &small_opts(1), &ParallelConfig::serial(), &live)
                .unwrap();
        assert_eq!(report, run(ctx45(), &small_opts(1)).unwrap());
    }

    #[test]
    fn thermal_angle_statistics() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        let delta = 45.0;
        let mean_sq: f64 = (0..20_000)
            .map(|_| thermal_angle(&mut rng, delta).powi(2))
            .sum::<f64>()
            / 20_000.0;
        // E[theta^2] = 1/Delta.
        assert!(
            (mean_sq * delta - 1.0).abs() < 0.05,
            "mean_sq*delta = {}",
            mean_sq * delta
        );
    }
}
