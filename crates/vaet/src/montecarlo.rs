//! Access-level Monte Carlo: latency/energy distributions under process
//! variation and stochastic switching.
//!
//! One Monte Carlo sample is one *word access*:
//!
//! 1. a global (per-die) CMOS sample perturbs the peripheral speed,
//! 2. each bit of the word gets a local MTJ sample (diameter, RA, TMR, K_i)
//!    and — for writes — a thermal initial angle drawn from the Rayleigh
//!    distribution `p(θ₀) = 2Δθ₀·exp(−Δθ₀²)`,
//! 3. the access completes when its **slowest bit** completes; the write
//!    current keeps flowing for the whole (per-access) pulse, so energy
//!    scales with the completion time, not each bit's own switch time.
//!
//! This is what makes the variation-aware mean (μ) far exceed the nominal
//! value in the paper's Table 1: the max over a 1024-bit word sits deep in
//! the exponential tail of the per-bit switching-time distribution.

use mss_exec::{par_chunks_stats, ParallelConfig, RunStats};
use mss_mtj::switching::SwitchingModel;

use mss_units::rng::{normal, Rng, Xoshiro256PlusPlus};
use mss_units::stats::{DistributionSummary, OnlineStats};

use crate::context::{VaetContext, SENSE_OFFSET_SIGMA};
use crate::report::VaetReport;
use crate::VaetError;

/// Options for a Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloOptions {
    /// Number of word accesses to simulate.
    pub samples: usize,
    /// RNG seed (runs are fully deterministic per seed).
    pub seed: u64,
    /// Override the word width (defaults to the context's configuration).
    pub word_bits: Option<u32>,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        Self {
            samples: 2000,
            seed: 0x5713_AE77,
            word_bits: None,
        }
    }
}

/// Draws a thermal initial angle from the Rayleigh-like distribution.
fn thermal_angle<R: Rng + ?Sized>(rng: &mut R, delta: f64) -> f64 {
    // θ₀² ~ Exp(Δ): invert the CDF with a guarded uniform.
    let mut u: f64 = rng.next_f64();
    while u <= f64::MIN_POSITIVE {
        u = rng.next_f64();
    }
    (-u.ln() / delta).sqrt().min(std::f64::consts::FRAC_PI_2)
}

/// Per-bit precessional switching time with an explicit initial angle.
fn switching_time(sw: &SwitchingModel, i_write: f64, theta0: f64) -> f64 {
    let i = i_write / sw.critical_current();
    if i <= 1.0 {
        // Subcritical sample (deep process corner): report a pessimistic
        // 10x the nominal-style time so the tail is visible, bounded to
        // keep statistics finite.
        return 10.0 * sw.tau_d() * (std::f64::consts::FRAC_PI_2 / theta0.max(1e-6)).ln();
    }
    sw.tau_d() / (i - 1.0) * (std::f64::consts::FRAC_PI_2 / theta0.max(1e-9)).ln()
}

/// Word-independent quantities shared by every sample.
#[derive(Debug, Clone, Copy)]
struct SampleConsts {
    periph_wl: f64,
    periph_rl: f64,
    periph_we: f64,
    periph_re: f64,
    i_write_nom: f64,
    sense_nom: f64,
    signal_nom: f64,
}

/// Per-batch accumulators, merged in batch order after the fan-out.
#[derive(Debug, Clone, Default)]
struct BatchAcc {
    wl: OnlineStats,
    we: OnlineStats,
    rl: OnlineStats,
    re: OnlineStats,
}

impl BatchAcc {
    fn merge(&mut self, other: &BatchAcc) {
        self.wl.merge(&other.wl);
        self.we.merge(&other.we);
        self.rl.merge(&other.rl);
        self.re.merge(&other.re);
    }
}

/// Simulates one word access (one write + one read) and records it.
fn sample_access<R: Rng + ?Sized>(
    ctx: &VaetContext,
    word: usize,
    consts: &SampleConsts,
    rng: &mut R,
    acc: &mut BatchAcc,
) -> Result<(), VaetError> {
    // Global CMOS sample: peripheral speed/energy factor.
    let t_sample = ctx.variation.sample_tech(rng, &ctx.tech);
    let drive = |t: &mss_pdk::tech::TechParams| t.nmos.kp * (t.vdd - t.nmos.vth).powi(2);
    let speed_factor = (drive(&ctx.tech) / drive(&t_sample)).clamp(0.5, 2.0);

    // --- Write access ---
    // Power drawn by one nominal cell during its write (the measured
    // cell energy spread over the measured cell latency); the pulse is
    // held for the slowest bit, so every bit burns this power for the
    // whole completion time — the paper's mu >> nominal energy effect.
    let cell_power_nom = ctx.cell.write.energy / ctx.cell.write.latency.max(1e-12);
    let mut t_cell_max: f64 = 0.0;
    let mut power_sum = 0.0;
    for _ in 0..word {
        let stack = ctx
            .variation
            .sample_stack(rng, &ctx.stack)
            .map_err(VaetError::Device)?;
        let sw = SwitchingModel::new(&stack);
        // Local access-device mismatch perturbs the write current.
        let i_rel = normal(rng, 1.0, 0.04).clamp(0.7, 1.3) / speed_factor;
        let i_bit = consts.i_write_nom * i_rel;
        let theta0 = thermal_angle(rng, sw.delta());
        let t_bit = switching_time(&sw, i_bit, theta0);
        t_cell_max = t_cell_max.max(t_bit);
        // Dissipation scales as I^2 R relative to the nominal cell.
        let r_rel = stack.resistance_parallel() / ctx.cell.r_parallel;
        power_sum += cell_power_nom * i_rel * i_rel * r_rel;
    }
    let t_write = consts.periph_wl * speed_factor + t_cell_max;
    let e_write = consts.periph_we + power_sum * t_cell_max;
    acc.wl.push(t_write);
    acc.we.push(e_write);

    // --- Read access ---
    let mut t_sense_max: f64 = 0.0;
    let mut e_read_cells = 0.0;
    for _ in 0..word {
        let stack = ctx
            .variation
            .sample_stack(rng, &ctx.stack)
            .map_err(VaetError::Device)?;
        // Signal scales with this bit's resistance window.
        let window = stack.resistance_antiparallel() - stack.resistance_parallel();
        let window_nom = ctx.cell.r_antiparallel - ctx.cell.r_parallel;
        let offset = normal(rng, 0.0, SENSE_OFFSET_SIGMA);
        let signal =
            (consts.signal_nom * window / window_nom - offset.abs()).max(0.05 * consts.signal_nom);
        // Regeneration time grows as the effective signal shrinks.
        let t_bit = consts.sense_nom * (consts.signal_nom / signal).min(8.0);
        t_sense_max = t_sense_max.max(t_bit);
        e_read_cells += ctx.cell.read.energy * (window_nom / window).clamp(0.5, 2.0);
    }
    let t_read = consts.periph_rl * speed_factor + t_sense_max;
    let e_read = consts.periph_re + e_read_cells;
    acc.rl.push(t_read);
    acc.re.push(e_read);
    Ok(())
}

/// Runs the Monte Carlo and returns the Table-1-shaped report.
///
/// Parallelism policy comes from the environment
/// ([`ParallelConfig::from_env`], i.e. `MSS_THREADS` or all cores); use
/// [`run_with`] for explicit control. The result is a pure function of
/// `(ctx, opts)` — thread count never changes the report.
///
/// # Errors
///
/// [`VaetError::InvalidOptions`] on zero samples; device sampling errors
/// propagate.
pub fn run(ctx: &VaetContext, opts: &MonteCarloOptions) -> Result<VaetReport, VaetError> {
    run_with(ctx, opts, &ParallelConfig::from_env())
}

/// [`run`] with an explicit thread/chunk policy.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with(
    ctx: &VaetContext,
    opts: &MonteCarloOptions,
    cfg: &ParallelConfig,
) -> Result<VaetReport, VaetError> {
    run_with_stats(ctx, opts, cfg).map(|(report, _)| report)
}

/// [`run_with`] plus the runtime's [`RunStats`] (throughput, utilization).
///
/// Samples are fanned out in fixed-size batches; batch `i` draws from RNG
/// stream `(opts.seed, i)` and the per-batch accumulators are merged in
/// batch order, so the report is bit-identical at any thread count.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with_stats(
    ctx: &VaetContext,
    opts: &MonteCarloOptions,
    cfg: &ParallelConfig,
) -> Result<(VaetReport, RunStats), VaetError> {
    if opts.samples == 0 {
        return Err(VaetError::InvalidOptions {
            reason: "samples must be non-zero".into(),
        });
    }
    let word = opts.word_bits.unwrap_or(ctx.config.word_bits) as usize;
    if word == 0 {
        return Err(VaetError::InvalidOptions {
            reason: "word width must be non-zero".into(),
        });
    }

    // Peripheral energy share = array energy minus the word's cell energy,
    // rescaled when the word width is overridden (narrower accesses fire
    // proportionally less periphery).
    let word_fraction = word as f64 / ctx.config.word_bits as f64;
    let periph_we =
        (ctx.nominal.write_energy - ctx.config.word_bits as f64 * ctx.cell.write.energy).max(0.0)
            * word_fraction;
    let periph_re = (ctx.nominal.read_energy - ctx.config.word_bits as f64 * ctx.cell.read.energy)
        .max(0.0)
        * word_fraction;
    // Nominal energies consistent with the effective word width.
    let nominal_we = periph_we + word as f64 * ctx.cell.write.energy;
    let nominal_re = periph_re + word as f64 * ctx.cell.read.energy;

    let consts = SampleConsts {
        periph_wl: ctx.write_periphery_latency(),
        periph_rl: ctx.read_periphery_latency(),
        periph_we,
        periph_re,
        i_write_nom: ctx.cell.write.current,
        sense_nom: ctx.cell.read.latency,
        signal_nom: ctx.sense_signal(),
    };

    let _span = mss_obs::span("vaet.mc.run");
    let (batches, stats) = par_chunks_stats(
        cfg,
        opts.samples,
        |batch, range| -> Result<BatchAcc, VaetError> {
            // Opened inside the worker closure so the profiler attributes the
            // sampling time to the executing thread (`by_thread` in the span
            // report), not to the coordinating caller. Batch count depends
            // only on `samples` and the chunk size, so the span count stays
            // deterministic across thread counts.
            let _span = mss_obs::span("vaet.mc.batch");
            let mut rng = Xoshiro256PlusPlus::stream(opts.seed, batch as u64);
            let mut acc = BatchAcc::default();
            for _ in range {
                sample_access(ctx, word, &consts, &mut rng, &mut acc)?;
            }
            Ok(acc)
        },
    );
    stats.record("vaet.mc");
    let mut total = BatchAcc::default();
    for batch in batches {
        total.merge(&batch?);
    }

    let report = VaetReport {
        node: ctx.tech.node,
        samples: opts.samples as u64,
        word_bits: word as u32,
        nominal_write_latency: ctx.nominal.write_latency,
        nominal_write_energy: nominal_we,
        nominal_read_latency: ctx.nominal.read_latency,
        nominal_read_energy: nominal_re,
        write_latency: DistributionSummary::from(&total.wl),
        write_energy: DistributionSummary::from(&total.we),
        read_latency: DistributionSummary::from(&total.rl),
        read_energy: DistributionSummary::from(&total.re),
    };
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_pdk::tech::TechNode;
    use std::sync::OnceLock;

    fn ctx45() -> &'static VaetContext {
        static CTX: OnceLock<VaetContext> = OnceLock::new();
        CTX.get_or_init(|| VaetContext::standard(TechNode::N45).unwrap())
    }

    fn small_opts(seed: u64) -> MonteCarloOptions {
        MonteCarloOptions {
            samples: 150,
            seed,
            word_bits: Some(64),
        }
    }

    #[test]
    fn variation_aware_mean_exceeds_nominal() {
        let report = run(ctx45(), &small_opts(1)).unwrap();
        // The paper's headline: mu >> nominal for write latency & energy.
        assert!(
            report.write_latency.mean > 1.3 * report.nominal_write_latency,
            "mu {} vs nominal {}",
            report.write_latency.mean,
            report.nominal_write_latency
        );
        assert!(report.read_latency.mean > report.nominal_read_latency);
    }

    #[test]
    fn distributions_have_positive_spread() {
        let report = run(ctx45(), &small_opts(2)).unwrap();
        assert!(report.write_latency.std_dev > 0.0);
        assert!(report.read_latency.std_dev > 0.0);
        assert!(report.write_energy.std_dev > 0.0);
        // Read is much tighter than write (Table 1 shape).
        assert!(report.read_latency.std_dev < report.write_latency.std_dev);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        // The determinism contract: a fixed seed gives the exact same
        // report at 1, 2 and 8 threads (batch streams + ordered merge).
        let opts = MonteCarloOptions {
            samples: 700, // several chunks at the default granularity
            seed: 0xD15EA5E,
            word_bits: Some(32),
        };
        let serial = run_with(ctx45(), &opts, &ParallelConfig::serial()).unwrap();
        for threads in [2, 8] {
            let parallel = run_with(
                ctx45(),
                &opts,
                &ParallelConfig::serial().with_threads(threads),
            )
            .unwrap();
            assert_eq!(serial, parallel, "report diverged at {threads} threads");
        }
    }

    #[test]
    fn run_with_stats_reports_throughput() {
        let opts = small_opts(4);
        let (report, stats) =
            run_with_stats(ctx45(), &opts, &ParallelConfig::serial().with_threads(2)).unwrap();
        assert_eq!(report.samples, opts.samples as u64);
        assert_eq!(stats.samples, opts.samples as u64);
        assert!(stats.tasks >= 1);
        assert!(stats.wall_seconds >= 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(ctx45(), &small_opts(7)).unwrap();
        let b = run(ctx45(), &small_opts(7)).unwrap();
        assert_eq!(a.write_latency.mean, b.write_latency.mean);
        let c = run(ctx45(), &small_opts(8)).unwrap();
        assert_ne!(a.write_latency.mean, c.write_latency.mean);
    }

    #[test]
    fn wider_words_have_larger_completion_latency() {
        let narrow = run(
            ctx45(),
            &MonteCarloOptions {
                samples: 120,
                seed: 3,
                word_bits: Some(16),
            },
        )
        .unwrap();
        let wide = run(
            ctx45(),
            &MonteCarloOptions {
                samples: 120,
                seed: 3,
                word_bits: Some(256),
            },
        )
        .unwrap();
        assert!(wide.write_latency.mean > narrow.write_latency.mean);
    }

    #[test]
    fn zero_samples_rejected() {
        let err = run(
            ctx45(),
            &MonteCarloOptions {
                samples: 0,
                seed: 0,
                word_bits: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, VaetError::InvalidOptions { .. }));
    }

    #[test]
    fn thermal_angle_statistics() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        let delta = 45.0;
        let mean_sq: f64 = (0..20_000)
            .map(|_| thermal_angle(&mut rng, delta).powi(2))
            .sum::<f64>()
            / 20_000.0;
        // E[theta^2] = 1/Delta.
        assert!(
            (mean_sq * delta - 1.0).abs() < 0.05,
            "mean_sq*delta = {}",
            mean_sq * delta
        );
    }
}
