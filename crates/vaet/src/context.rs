//! The analysis context: everything the variation-aware passes need,
//! assembled once from the nominal flow.

use mss_mtj::switching::SwitchingModel;
use mss_mtj::{MechanismConfig, MssStack, SotMechanism, SotParams};
use mss_nvsim::config::MemoryConfig;
use mss_nvsim::model::{estimate_cached, ArrayMetrics, MemoryTechnology};
use mss_pdk::charlib::{characterize_cached, characterize_sot_cached, CellLibrary, SotCellLibrary};
use mss_pdk::tech::{TechNode, TechParams};
use mss_pdk::variation::VariationCard;

use crate::VaetError;

/// Sense-amplifier input-referred offset (1σ), volts. A standard PCSA
/// figure; read-margin analyses divide the sense signal by this.
pub const SENSE_OFFSET_SIGMA: f64 = 0.02;

/// Bundled nominal flow + variation card.
#[derive(Debug, Clone, PartialEq)]
pub struct VaetContext {
    /// CMOS technology card.
    pub tech: TechParams,
    /// Nominal MTJ stack.
    pub stack: MssStack,
    /// Characterised cell library (the cell configuration file).
    pub cell: CellLibrary,
    /// Array organisation under analysis.
    pub config: MemoryConfig,
    /// Nominal (variation-unaware) NVSim estimate.
    pub nominal: ArrayMetrics,
    /// Process-variation card for the node.
    pub variation: VariationCard,
    /// The switching mechanism the cell library was characterised for.
    pub mechanism: MechanismConfig,
}

impl mss_pipe::StableHash for VaetContext {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.tech.stable_hash(h);
        self.stack.stable_hash(h);
        self.cell.stable_hash(h);
        self.config.stable_hash(h);
        self.nominal.stable_hash(h);
        self.variation.stable_hash(h);
        // Only fold the mechanism in when it deviates from the default so
        // every pre-existing STT digest (and pipe-cache key) is preserved.
        if !self.mechanism.is_default() {
            self.mechanism.stable_hash(h);
        }
    }
}

impl VaetContext {
    /// The paper's standard configuration: a 1024×1024 array accessed as
    /// full 1024-bit words ("memory array of 1024x1024"), default stack.
    ///
    /// # Errors
    ///
    /// Propagates characterisation and estimation failures.
    pub fn standard(node: TechNode) -> Result<Self, VaetError> {
        let stack = MssStack::builder().build().map_err(VaetError::Device)?;
        let config = MemoryConfig::new(
            1024 * 1024 / 8,
            1024,
            1,
            1024,
            1024,
            mss_nvsim::config::MemoryKind::Ram,
        )?;
        Self::build(node, stack, config)
    }

    /// Builds a context for an arbitrary stack and array organisation.
    ///
    /// # Errors
    ///
    /// Propagates characterisation and estimation failures.
    pub fn build(node: TechNode, stack: MssStack, config: MemoryConfig) -> Result<Self, VaetError> {
        // Both upstream artifacts come through the stage pipeline, so
        // building many contexts over the same node/stack (exploration,
        // scenario sweeps) characterises and estimates each input once.
        let cache = mss_pipe::global();
        let tech = TechParams::node(node);
        let cell = (*characterize_cached(node, &stack, &cache)?).clone();
        let nominal = (*estimate_cached(
            &tech,
            &config,
            &MemoryTechnology::SttMram(cell.clone()),
            &cache,
        )?)
        .clone();
        let variation = VariationCard::node(node);
        Ok(Self {
            tech,
            stack,
            cell,
            config,
            nominal,
            variation,
            mechanism: MechanismConfig::Stt,
        })
    }

    /// Builds a context around the three-terminal SOT cell: the library
    /// comes from the SOT characterisation flow and the nominal estimate
    /// from the SOT-MRAM array model, so every downstream margin/MC pass
    /// sees the channel-write numbers.
    ///
    /// # Errors
    ///
    /// Propagates characterisation and estimation failures.
    pub fn build_sot(
        node: TechNode,
        stack: MssStack,
        config: MemoryConfig,
        params: SotParams,
    ) -> Result<Self, VaetError> {
        let cache = mss_pipe::global();
        let tech = TechParams::node(node);
        let sot = characterize_sot_cached(node, &stack, &params, &cache)?;
        let nominal = (*estimate_cached(
            &tech,
            &config,
            &MemoryTechnology::SotMram((*sot).clone()),
            &cache,
        )?)
        .clone();
        let variation = VariationCard::node(node);
        Ok(Self {
            tech,
            stack,
            cell: sot.base.clone(),
            config,
            nominal,
            variation,
            mechanism: MechanismConfig::Sot(params),
        })
    }

    /// The array cell technology matching this context's mechanism.
    fn technology(&self) -> MemoryTechnology {
        match &self.mechanism {
            MechanismConfig::Stt => MemoryTechnology::SttMram(self.cell.clone()),
            MechanismConfig::Sot(p) => MemoryTechnology::SotMram(SotCellLibrary {
                base: self.cell.clone(),
                params: p.clone(),
                channel_resistance: p.channel_resistance(self.stack.diameter()),
            }),
        }
    }

    /// Re-targets the context at a different array organisation, reusing
    /// the (expensive) characterised cell library.
    ///
    /// # Errors
    ///
    /// Propagates array-estimation failures.
    pub fn with_config(&self, config: MemoryConfig) -> Result<Self, VaetError> {
        let nominal =
            (*estimate_cached(&self.tech, &config, &self.technology(), &mss_pipe::global())?)
                .clone();
        Ok(Self {
            config,
            nominal,
            ..self.clone()
        })
    }

    /// The per-corner switching model for a (possibly variation-sampled)
    /// stack under this context's mechanism: the plain STT closed forms, or
    /// the SHE-current model with the damping-free critical current.
    ///
    /// # Errors
    ///
    /// Propagates invalid sampled-device parameters.
    pub fn corner_switching_model(&self, stack: &MssStack) -> Result<SwitchingModel, VaetError> {
        match &self.mechanism {
            MechanismConfig::Stt => Ok(SwitchingModel::new(stack)),
            MechanismConfig::Sot(p) => Ok(SotMechanism::new(stack, p.clone())
                .map_err(VaetError::Device)?
                .switching_model()
                .clone()),
        }
    }

    /// Relative write-path resistance of a sampled device against the
    /// nominal cell: junction R_P for STT, the heavy-metal channel for SOT
    /// (the SOT write current never crosses the barrier).
    pub fn write_resistance_ratio(&self, stack: &MssStack) -> f64 {
        match &self.mechanism {
            MechanismConfig::Stt => stack.resistance_parallel() / self.cell.r_parallel,
            MechanismConfig::Sot(p) => {
                p.channel_resistance(stack.diameter()) / p.channel_resistance(self.stack.diameter())
            }
        }
    }

    /// The peripheral (non-cell) share of the nominal write latency.
    pub fn write_periphery_latency(&self) -> f64 {
        self.nominal.write_latency - self.nominal.write_breakdown.cell
    }

    /// The peripheral (non-cell) share of the nominal read latency.
    pub fn read_periphery_latency(&self) -> f64 {
        self.nominal.read_latency - self.nominal.read_breakdown.cell
    }

    /// Nominal sense signal at the amplifier input, volts.
    ///
    /// For a PCSA the discriminating quantity is the discharge-rate
    /// imbalance between the cell and reference branches, input-referred as
    /// `V_dd·ΔR/(R_P+R_AP)` and clamped to half the supply.
    pub fn sense_signal(&self) -> f64 {
        let window = self.cell.r_antiparallel - self.cell.r_parallel;
        let mut denom = self.cell.r_antiparallel + self.cell.r_parallel;
        // The SOT read returns through the heavy-metal channel, which sits
        // in series on both branches and dilutes the window slightly.
        if let MechanismConfig::Sot(p) = &self.mechanism {
            denom += 2.0 * p.channel_resistance(self.stack.diameter());
        }
        (self.tech.vdd * window / denom).min(self.tech.vdd / 2.0)
    }

    /// Sustained read-bias current used for read-disturb analysis, amperes.
    ///
    /// The PCSA's charge-averaged current underestimates disturb exposure
    /// (current stops after the latch resolves); disturb analyses follow the
    /// usual design point of a sustained bias at 30 % of I_c0.
    pub fn read_disturb_current(&self) -> f64 {
        match &self.mechanism {
            MechanismConfig::Stt => 0.3 * self.cell.critical_current,
            // The SOT library's `critical_current` is the channel (SHE)
            // threshold, but read disturb comes from the *barrier* current
            // exerting ordinary STT torque — measure against that.
            MechanismConfig::Sot(_) => 0.3 * self.stack.critical_current(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_context_is_consistent() {
        let ctx = VaetContext::standard(TechNode::N45).unwrap();
        assert_eq!(ctx.config.word_bits, 1024);
        assert_eq!(ctx.config.total_bits(), 1024 * 1024);
        assert!(ctx.write_periphery_latency() > 0.0);
        assert!(ctx.read_periphery_latency() > 0.0);
        assert!(ctx.write_periphery_latency() < ctx.nominal.write_latency);
        let sig = ctx.sense_signal();
        assert!(sig > 0.0 && sig <= ctx.tech.vdd / 2.0);
        // The sense signal must beat the offset by a usable factor.
        assert!(sig > 3.0 * SENSE_OFFSET_SIGMA, "signal = {sig}");
    }

    #[test]
    fn sot_context_builds_with_channel_write_numbers() {
        let stack = MssStack::builder().build().unwrap();
        let config = MemoryConfig::new(
            1024 * 1024 / 8,
            1024,
            1,
            1024,
            1024,
            mss_nvsim::config::MemoryKind::Ram,
        )
        .unwrap();
        let stt = VaetContext::standard(TechNode::N45).unwrap();
        let sot =
            VaetContext::build_sot(TechNode::N45, stack, config, SotParams::default()).unwrap();
        assert!(!sot.mechanism.is_default());
        // Channel write: faster nominal array write than the STT context.
        assert!(sot.nominal.write_latency < stt.nominal.write_latency);
        // The series channel dilutes (but must not destroy) the window.
        assert!(sot.sense_signal() < stt.sense_signal());
        assert!(sot.sense_signal() > 3.0 * SENSE_OFFSET_SIGMA);
        // Disturb threshold is the junction's STT one, not the channel's.
        assert!(sot.read_disturb_current() < 0.3 * sot.cell.critical_current);
        // The mechanism is folded into the digest only when non-default.
        assert_ne!(mss_pipe::digest_of(&stt), mss_pipe::digest_of(&sot));
    }

    #[test]
    fn sot_corner_model_removes_the_damping_limit() {
        let stack = MssStack::builder().build().unwrap();
        let config = MemoryConfig::new(
            1024 * 1024 / 8,
            1024,
            1,
            1024,
            1024,
            mss_nvsim::config::MemoryKind::Ram,
        )
        .unwrap();
        let stt = VaetContext::standard(TechNode::N45).unwrap();
        let sot =
            VaetContext::build_sot(TechNode::N45, stack.clone(), config, SotParams::default())
                .unwrap();
        let stt_model = stt.corner_switching_model(&stack).unwrap();
        let sot_model = sot.corner_switching_model(&stack).unwrap();
        // Same thermal stability, but the SOT time constant drops by ~alpha.
        assert!((stt_model.delta() - sot_model.delta()).abs() < 1e-9);
        let t_stt = stt_model
            .mean_switching_time(2.0 * stt_model.critical_current())
            .unwrap();
        let t_sot = sot_model
            .mean_switching_time(2.0 * sot_model.critical_current())
            .unwrap();
        assert!(t_sot < 0.1 * t_stt, "sot {t_sot:.3e} vs stt {t_stt:.3e}");
        // STT write-path resistance ratio is the junction ratio, unchanged.
        assert!((stt.write_resistance_ratio(&stack) - 1.0).abs() < 1e-12);
        assert!((sot.write_resistance_ratio(&stack) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn both_nodes_build() {
        for node in TechNode::ALL {
            let ctx = VaetContext::standard(node).unwrap();
            assert!(ctx.nominal.write_latency > ctx.nominal.read_latency);
        }
    }
}
