//! The analysis context: everything the variation-aware passes need,
//! assembled once from the nominal flow.

use mss_mtj::MssStack;
use mss_nvsim::config::MemoryConfig;
use mss_nvsim::model::{estimate_cached, ArrayMetrics, MemoryTechnology};
use mss_pdk::charlib::{characterize_cached, CellLibrary};
use mss_pdk::tech::{TechNode, TechParams};
use mss_pdk::variation::VariationCard;

use crate::VaetError;

/// Sense-amplifier input-referred offset (1σ), volts. A standard PCSA
/// figure; read-margin analyses divide the sense signal by this.
pub const SENSE_OFFSET_SIGMA: f64 = 0.02;

/// Bundled nominal flow + variation card.
#[derive(Debug, Clone, PartialEq)]
pub struct VaetContext {
    /// CMOS technology card.
    pub tech: TechParams,
    /// Nominal MTJ stack.
    pub stack: MssStack,
    /// Characterised cell library (the cell configuration file).
    pub cell: CellLibrary,
    /// Array organisation under analysis.
    pub config: MemoryConfig,
    /// Nominal (variation-unaware) NVSim estimate.
    pub nominal: ArrayMetrics,
    /// Process-variation card for the node.
    pub variation: VariationCard,
}

impl mss_pipe::StableHash for VaetContext {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.tech.stable_hash(h);
        self.stack.stable_hash(h);
        self.cell.stable_hash(h);
        self.config.stable_hash(h);
        self.nominal.stable_hash(h);
        self.variation.stable_hash(h);
    }
}

impl VaetContext {
    /// The paper's standard configuration: a 1024×1024 array accessed as
    /// full 1024-bit words ("memory array of 1024x1024"), default stack.
    ///
    /// # Errors
    ///
    /// Propagates characterisation and estimation failures.
    pub fn standard(node: TechNode) -> Result<Self, VaetError> {
        let stack = MssStack::builder().build().map_err(VaetError::Device)?;
        let config = MemoryConfig::new(
            1024 * 1024 / 8,
            1024,
            1,
            1024,
            1024,
            mss_nvsim::config::MemoryKind::Ram,
        )?;
        Self::build(node, stack, config)
    }

    /// Builds a context for an arbitrary stack and array organisation.
    ///
    /// # Errors
    ///
    /// Propagates characterisation and estimation failures.
    pub fn build(node: TechNode, stack: MssStack, config: MemoryConfig) -> Result<Self, VaetError> {
        // Both upstream artifacts come through the stage pipeline, so
        // building many contexts over the same node/stack (exploration,
        // scenario sweeps) characterises and estimates each input once.
        let cache = mss_pipe::global();
        let tech = TechParams::node(node);
        let cell = (*characterize_cached(node, &stack, &cache)?).clone();
        let nominal = (*estimate_cached(
            &tech,
            &config,
            &MemoryTechnology::SttMram(cell.clone()),
            &cache,
        )?)
        .clone();
        let variation = VariationCard::node(node);
        Ok(Self {
            tech,
            stack,
            cell,
            config,
            nominal,
            variation,
        })
    }

    /// Re-targets the context at a different array organisation, reusing
    /// the (expensive) characterised cell library.
    ///
    /// # Errors
    ///
    /// Propagates array-estimation failures.
    pub fn with_config(&self, config: MemoryConfig) -> Result<Self, VaetError> {
        let nominal = (*estimate_cached(
            &self.tech,
            &config,
            &MemoryTechnology::SttMram(self.cell.clone()),
            &mss_pipe::global(),
        )?)
        .clone();
        Ok(Self {
            config,
            nominal,
            ..self.clone()
        })
    }

    /// The peripheral (non-cell) share of the nominal write latency.
    pub fn write_periphery_latency(&self) -> f64 {
        self.nominal.write_latency - self.nominal.write_breakdown.cell
    }

    /// The peripheral (non-cell) share of the nominal read latency.
    pub fn read_periphery_latency(&self) -> f64 {
        self.nominal.read_latency - self.nominal.read_breakdown.cell
    }

    /// Nominal sense signal at the amplifier input, volts.
    ///
    /// For a PCSA the discriminating quantity is the discharge-rate
    /// imbalance between the cell and reference branches, input-referred as
    /// `V_dd·ΔR/(R_P+R_AP)` and clamped to half the supply.
    pub fn sense_signal(&self) -> f64 {
        let window = self.cell.r_antiparallel - self.cell.r_parallel;
        (self.tech.vdd * window / (self.cell.r_antiparallel + self.cell.r_parallel))
            .min(self.tech.vdd / 2.0)
    }

    /// Sustained read-bias current used for read-disturb analysis, amperes.
    ///
    /// The PCSA's charge-averaged current underestimates disturb exposure
    /// (current stops after the latch resolves); disturb analyses follow the
    /// usual design point of a sustained bias at 30 % of I_c0.
    pub fn read_disturb_current(&self) -> f64 {
        0.3 * self.cell.critical_current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_context_is_consistent() {
        let ctx = VaetContext::standard(TechNode::N45).unwrap();
        assert_eq!(ctx.config.word_bits, 1024);
        assert_eq!(ctx.config.total_bits(), 1024 * 1024);
        assert!(ctx.write_periphery_latency() > 0.0);
        assert!(ctx.read_periphery_latency() > 0.0);
        assert!(ctx.write_periphery_latency() < ctx.nominal.write_latency);
        let sig = ctx.sense_signal();
        assert!(sig > 0.0 && sig <= ctx.tech.vdd / 2.0);
        // The sense signal must beat the offset by a usable factor.
        assert!(sig > 3.0 * SENSE_OFFSET_SIGMA, "signal = {sig}");
    }

    #[test]
    fn both_nodes_build() {
        for node in TechNode::ALL {
            let ctx = VaetContext::standard(node).unwrap();
            assert!(ctx.nominal.write_latency > ctx.nominal.read_latency);
        }
    }
}
