//! Error-correcting-code trade-offs (the paper's Fig. 8).
//!
//! *"Another approach is to reduce the timing margin and employ appropriate
//! Error Correcting Codes (ECCs) to correct errors in the tail of the
//! distribution."* A `t`-error-correcting code over an `n = k + r` bit block
//! tolerates per-bit WER `p` with uncorrectable probability
//! `P_uncorr = Σ_{j>t} C(n,j)·pʲ·(1−p)^{n−j}`. Allowing `t` corrections
//! relaxes the per-bit WER dramatically, which shortens the pulse — with
//! diminishing returns, exactly the paper's observation: *"there is a
//! drastic improvement in latency by using an ECC with one-bit error
//! correction. However, the improvement for higher bit error correction is
//! comparatively less."*

use mss_units::math::brent;

use crate::context::VaetContext;
use crate::margins::WriteMarginSolver;
use crate::VaetError;

/// A `t`-error-correcting block code over a data word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EccScheme {
    /// Number of correctable bits per block (0 = no ECC).
    pub correctable: u32,
    /// Data bits per block.
    pub data_bits: u32,
}

impl mss_pipe::StableHash for EccScheme {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_u32(self.correctable);
        h.write_u32(self.data_bits);
    }
}

impl EccScheme {
    /// A BCH-style scheme: `t` corrections over `data_bits` of payload.
    pub fn bch(correctable: u32, data_bits: u32) -> Self {
        Self {
            correctable,
            data_bits,
        }
    }

    /// Check bits, `r ≈ t·⌈log₂(n)⌉` (Hamming/BCH bound, +1 for t=0 parity
    /// omitted).
    pub fn check_bits(&self) -> u32 {
        if self.correctable == 0 {
            0
        } else {
            let m = (self.data_bits as f64).log2().ceil() as u32 + 1;
            self.correctable * m
        }
    }

    /// Total block length `n = k + r`.
    pub fn block_bits(&self) -> u32 {
        self.data_bits + self.check_bits()
    }

    /// Storage overhead ratio `r/k`.
    pub fn overhead(&self) -> f64 {
        self.check_bits() as f64 / self.data_bits as f64
    }

    /// Decoder latency: syndrome computation plus `t` sequential
    /// Chien/Berlekamp-style stages, in FO4 units converted by the caller.
    pub fn decode_fo4(&self) -> f64 {
        if self.correctable == 0 {
            0.0
        } else {
            6.0 + 8.0 * self.correctable as f64
        }
    }

    /// Probability the block has more than `t` errors at per-bit WER `p`
    /// (numerically careful for tiny `p`).
    pub fn uncorrectable_probability(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return 0.0;
        }
        if p == 1.0 {
            return 1.0;
        }
        let n = self.block_bits() as f64;
        let t = self.correctable;
        // Sum the complement: P(X <= t) via log-domain terms, then 1 - it,
        // except when p is tiny — there the dominant failing term j = t+1
        // computed in logs is far more accurate.
        let ln_p = p.ln();
        let ln_q = (-p).ln_1p();
        // Dominant term j = t+1.
        let j = (t + 1) as f64;
        let ln_choose = ln_binomial(n, j);
        let ln_dominant = ln_choose + j * ln_p + (n - j) * ln_q;
        let ratio = ((n - j) / (j + 1.0)) * (p / (1.0 - p));
        if ln_dominant < -3.0 && ratio < 0.5 {
            // Sparse-error regime: the j = t+1 term dominates and the rest
            // of the tail is bounded by a geometric series.
            let sum = ln_dominant.exp() / (1.0 - ratio);
            return sum.min(1.0);
        }
        // Moderate p: direct complement sum.
        let mut cdf = 0.0;
        for k in 0..=t {
            let kf = k as f64;
            cdf += (ln_binomial(n, kf) + kf * ln_p + (n - kf) * ln_q).exp();
        }
        (1.0 - cdf).clamp(0.0, 1.0)
    }

    /// Per-bit WER allowed so the block uncorrectable probability stays at
    /// `target`.
    ///
    /// # Errors
    ///
    /// [`VaetError::UnreachableTarget`] if the bracketed inversion fails
    /// (does not happen for targets in `(0, 0.1)`).
    pub fn allowed_bit_wer(&self, target: f64) -> Result<f64, VaetError> {
        if !(target > 0.0 && target < 0.1) {
            return Err(VaetError::InvalidOptions {
                reason: format!("ECC target {target} must be in (0, 0.1)"),
            });
        }
        // Solve on ln p for conditioning.
        let f = |ln_p: f64| {
            let up = self.uncorrectable_probability(ln_p.exp());
            if up <= 0.0 {
                -800.0 - target.ln()
            } else {
                up.ln() - target.ln()
            }
        };
        let root = brent(f, (1e-30f64).ln(), (0.05f64).ln(), 1e-10, 200).map_err(|e| {
            VaetError::UnreachableTarget {
                quantity: "ECC bit WER",
                target,
                reason: e.to_string(),
            }
        })?;
        Ok(root.exp())
    }
}

/// Outcome of decoding one ECC block that carries a known number of raw bit
/// errors.
///
/// The classification follows the extended (distance `2t+2`) construction
/// implied by [`EccScheme::check_bits`]'s `+1` parity column: up to `t`
/// errors are corrected, exactly `t+1` errors are *detected* but not
/// correctable, and beyond that the decoder can mis-correct silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccOutcome {
    /// The block is error-free.
    Clean,
    /// `1..=t` raw errors: transparently corrected.
    Corrected,
    /// Exactly `t+1` raw errors: flagged, data lost but *known* lost.
    Detected,
    /// More than `t+1` raw errors: potentially silent corruption.
    Uncorrectable,
}

impl EccOutcome {
    /// True when the decoder returns correct data (clean or corrected).
    pub fn is_ok(&self) -> bool {
        matches!(self, EccOutcome::Clean | EccOutcome::Corrected)
    }
}

impl EccScheme {
    /// Classifies a block by its raw (pre-decode) bit-error count.
    ///
    /// A `t = 0` scheme has no check bits at all, so *any* error is silent
    /// corruption rather than a detected failure.
    pub fn classify(&self, raw_errors: u32) -> EccOutcome {
        if raw_errors == 0 {
            EccOutcome::Clean
        } else if self.correctable == 0 {
            EccOutcome::Uncorrectable
        } else if raw_errors <= self.correctable {
            EccOutcome::Corrected
        } else if raw_errors == self.correctable + 1 {
            EccOutcome::Detected
        } else {
            EccOutcome::Uncorrectable
        }
    }
}

fn ln_binomial(n: f64, k: f64) -> f64 {
    ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0)
}

/// Lanczos log-gamma (sufficient accuracy for binomial coefficients here).
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// One point of the Fig. 8 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccPoint {
    /// The scheme evaluated.
    pub scheme: EccScheme,
    /// Per-bit WER the code tolerates at the uncorrectable-error target.
    pub allowed_bit_wer: f64,
    /// Overall write latency (periphery + margined pulse + decode), seconds.
    pub write_latency: f64,
    /// Storage overhead r/k.
    pub overhead: f64,
}

/// Sweeps ECC strength 0..=`max_t` at a fixed uncorrectable-error target —
/// the Fig. 8 data series (the paper uses WER = 1 × 10⁻¹⁸).
///
/// # Errors
///
/// Propagates margin-solver and inversion failures.
pub fn figure8(
    ctx: &VaetContext,
    target_uncorrectable: f64,
    max_t: u32,
) -> Result<Vec<EccPoint>, VaetError> {
    let solver = WriteMarginSolver::new(ctx)?;
    let mut points = Vec::with_capacity(max_t as usize + 1);
    for t in 0..=max_t {
        let scheme = EccScheme::bch(t, ctx.config.word_bits);
        // With no ECC the whole word must be error-free below the target;
        // with ECC the per-bit requirement relaxes to the inverted binomial.
        let allowed = if t == 0 {
            target_uncorrectable / scheme.block_bits() as f64
        } else {
            scheme.allowed_bit_wer(target_uncorrectable)?
        };
        // The margin solver targets *word-level* WER = word * bit_wer.
        let word_target = (allowed * ctx.config.word_bits as f64).min(0.5);
        let margin = solver.latency_for_wer(word_target)?;
        let decode = scheme.decode_fo4() * ctx.tech.fo4_delay;
        points.push(EccPoint {
            scheme,
            allowed_bit_wer: allowed,
            write_latency: margin.latency + decode,
            overhead: scheme.overhead(),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::VaetContext;
    use mss_pdk::tech::TechNode;
    use std::sync::OnceLock;

    fn ctx() -> &'static VaetContext {
        static CTX: OnceLock<VaetContext> = OnceLock::new();
        CTX.get_or_init(|| VaetContext::standard(TechNode::N45).unwrap())
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for (n, f) in [(1.0_f64, 1.0_f64), (5.0, 24.0), (10.0, 362880.0)] {
            assert!((ln_gamma(n) - f.ln()).abs() < 1e-9, "gamma({n})");
        }
    }

    #[test]
    fn uncorrectable_monotone_in_p_and_t() {
        let s1 = EccScheme::bch(1, 64);
        let s2 = EccScheme::bch(2, 64);
        let mut last = 0.0;
        for &p in &[1e-12, 1e-9, 1e-6, 1e-3] {
            let u = s1.uncorrectable_probability(p);
            assert!(u >= last);
            assert!(u <= 1.0);
            last = u;
            // Stronger code always helps.
            assert!(s2.uncorrectable_probability(p) <= u);
        }
    }

    #[test]
    fn allowed_wer_round_trips() {
        for t in 1..=3 {
            let s = EccScheme::bch(t, 512);
            let p = s.allowed_bit_wer(1e-18).unwrap();
            let back = s.uncorrectable_probability(p);
            assert!(
                (back.ln() - (1e-18f64).ln()).abs() < 0.2,
                "t={t}: p={p:.3e}, back={back:.3e}"
            );
        }
    }

    #[test]
    fn stronger_ecc_allows_weaker_bits() {
        let p1 = EccScheme::bch(1, 512).allowed_bit_wer(1e-18).unwrap();
        let p2 = EccScheme::bch(2, 512).allowed_bit_wer(1e-18).unwrap();
        let p3 = EccScheme::bch(3, 512).allowed_bit_wer(1e-18).unwrap();
        assert!(p1 < p2 && p2 < p3);
    }

    #[test]
    fn figure8_shows_drastic_then_diminishing_gains() {
        let points = figure8(ctx(), 1e-18, 3).unwrap();
        assert_eq!(points.len(), 4);
        let l: Vec<f64> = points.iter().map(|p| p.write_latency).collect();
        // Latency decreases with the first corrected bit...
        assert!(l[1] < l[0], "t=1 must beat t=0: {l:?}");
        // ...and the first step is the largest (diminishing returns).
        let gain1 = l[0] - l[1];
        let gain2 = (l[1] - l[2]).max(0.0);
        let gain3 = (l[2] - l[3]).max(0.0);
        assert!(
            gain1 > gain2 && gain2 >= gain3 * 0.5,
            "gains: {gain1} {gain2} {gain3}"
        );
    }

    #[test]
    fn check_bits_grow_with_strength() {
        let s0 = EccScheme::bch(0, 1024);
        let s1 = EccScheme::bch(1, 1024);
        let s4 = EccScheme::bch(4, 1024);
        assert_eq!(s0.check_bits(), 0);
        assert!(s1.check_bits() > 0);
        assert_eq!(s4.check_bits(), 4 * s1.check_bits());
        assert!(s4.overhead() < 0.1); // BCH over 1 KiB words is cheap
    }

    #[test]
    fn invalid_targets_rejected() {
        let s = EccScheme::bch(1, 64);
        assert!(s.allowed_bit_wer(0.0).is_err());
        assert!(s.allowed_bit_wer(0.5).is_err());
    }
}
