//! Variation-aware memory-configuration optimisation.
//!
//! The paper: VAET-STT *"considers process variation, stochastic switching
//! and reliability requirements in its analysis and memory configuration
//! optimization"*. The nominal design-space exploration lives in
//! `mss-nvsim`; this module re-ranks the same organisation space by the
//! **margined** access latencies — the pulse widths and sense times that
//! actually meet the target error rates under variation — which can pick a
//! different design than the nominal optimum.

use mss_exec::{par_map, ParallelConfig};
use mss_nvsim::config::MemoryConfig;
use mss_nvsim::model::ArrayMetrics;

use crate::context::VaetContext;
use crate::margins::{ReadMarginSolver, WriteMarginSolver};
use crate::montecarlo::{sense_margin_batch_with, SenseBatchOptions, SenseBatchReport};
use crate::VaetError;

/// Word-level reliability requirements a candidate must meet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityRequirements {
    /// Target word-level write-error rate.
    pub wer: f64,
    /// Target word-level read-error rate.
    pub rer: f64,
}

impl Default for ReliabilityRequirements {
    fn default() -> Self {
        Self {
            wer: 1e-15,
            rer: 1e-15,
        }
    }
}

impl mss_pipe::StableHash for ReliabilityRequirements {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_f64(self.wer);
        h.write_f64(self.rer);
    }
}

/// What the variation-aware exploration minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariationAwareTarget {
    /// Margined write latency.
    WriteLatency,
    /// Margined read latency.
    ReadLatency,
    /// Margined write latency × nominal write energy (write EDP proxy).
    WriteEdp,
}

impl mss_pipe::StableHash for VariationAwareTarget {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_u8(match self {
            VariationAwareTarget::WriteLatency => 0,
            VariationAwareTarget::ReadLatency => 1,
            VariationAwareTarget::WriteEdp => 2,
        });
    }
}

/// One evaluated organisation.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationAwareCandidate {
    /// The organisation.
    pub config: MemoryConfig,
    /// Nominal (variation-unaware) metrics.
    pub nominal: ArrayMetrics,
    /// Write latency meeting the WER requirement under variation, seconds.
    pub margined_write_latency: f64,
    /// Read latency meeting the RER requirement under variation, seconds.
    pub margined_read_latency: f64,
    /// Target score (lower is better).
    pub score: f64,
}

/// Exploration outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationAwareExploration {
    /// Winning candidate.
    pub best: VariationAwareCandidate,
    /// All feasible candidates, ascending score.
    pub candidates: Vec<VariationAwareCandidate>,
}

/// Evaluates one organisation against the requirements.
///
/// # Errors
///
/// Propagates margin-solver failures ([`VaetError::UnreachableTarget`] when
/// the requirement cannot be met at any latency).
pub fn evaluate_candidate(
    ctx: &VaetContext,
    requirements: &ReliabilityRequirements,
    target: VariationAwareTarget,
) -> Result<VariationAwareCandidate, VaetError> {
    let write = WriteMarginSolver::new(ctx)?.latency_for_wer(requirements.wer)?;
    let read = ReadMarginSolver::new(ctx).latency_for_rer(requirements.rer)?;
    let score = match target {
        VariationAwareTarget::WriteLatency => write.latency,
        VariationAwareTarget::ReadLatency => read.latency,
        VariationAwareTarget::WriteEdp => write.latency * ctx.nominal.write_energy,
    };
    Ok(VariationAwareCandidate {
        config: ctx.config,
        nominal: ctx.nominal.clone(),
        margined_write_latency: write.latency,
        margined_read_latency: read.latency,
        score,
    })
}

/// [`evaluate_candidate`] through the stage pipeline: the margin solve is
/// memoized in `cache` under
/// [`Stage::VaetDistributions`](mss_pipe::Stage) keyed by the structural
/// hash of the full context, requirements and target, so re-ranking the
/// same organisation (across targets or repeated explorations) solves the
/// distributions once.
///
/// # Errors
///
/// See [`evaluate_candidate`]; cache problems are never errors.
pub fn evaluate_candidate_cached(
    ctx: &VaetContext,
    requirements: &ReliabilityRequirements,
    target: VariationAwareTarget,
    cache: &mss_pipe::PipeCache,
) -> Result<VariationAwareCandidate, VaetError> {
    let key = mss_pipe::digest_of(&(ctx, requirements, target));
    cache
        .get_or_compute(mss_pipe::Stage::VaetDistributions, &key, || {
            evaluate_candidate(ctx, requirements, target)
        })
        .map(|arc| (*arc).clone())
}

/// Sweeps subarray tilings and ranks them by the margined metric.
///
/// Organisations whose requirements are unreachable are skipped (not
/// errors); if *no* organisation is feasible the last solver error is
/// returned.
///
/// # Errors
///
/// [`VaetError::UnreachableTarget`] when no organisation meets the
/// requirements; estimation failures propagate.
pub fn explore_variation_aware(
    base: &VaetContext,
    target: VariationAwareTarget,
    requirements: &ReliabilityRequirements,
) -> Result<VariationAwareExploration, VaetError> {
    explore_variation_aware_with(base, target, requirements, &ParallelConfig::from_env())
}

/// [`explore_variation_aware`] with an explicit thread policy: the margin
/// solvers for each organisation run in parallel and results are reduced in
/// grid order, so the ranking is identical at any thread count.
///
/// # Errors
///
/// Same as [`explore_variation_aware`].
pub fn explore_variation_aware_with(
    base: &VaetContext,
    target: VariationAwareTarget,
    requirements: &ReliabilityRequirements,
    exec: &ParallelConfig,
) -> Result<VariationAwareExploration, VaetError> {
    let sizes = [128u32, 256, 512, 1024];
    let grid: Vec<MemoryConfig> = sizes
        .iter()
        .flat_map(|&rows| sizes.iter().map(move |&cols| (rows, cols)))
        .filter_map(|(rows, cols)| base.config.with_subarray(rows, cols).ok())
        .collect();
    let cache = mss_pipe::global();
    let evaluated = par_map(exec, &grid, |_, &cfg| {
        let ctx = base.with_config(cfg)?;
        evaluate_candidate_cached(&ctx, requirements, target, &cache)
    });
    let mut candidates = Vec::new();
    let mut last_err = None;
    for result in evaluated {
        match result {
            Ok(c) => candidates.push(c),
            Err(e @ VaetError::UnreachableTarget { .. }) => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    candidates.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("finite scores"));
    match candidates.first().cloned() {
        Some(best) => Ok(VariationAwareExploration { best, candidates }),
        None => Err(last_err.unwrap_or(VaetError::InvalidOptions {
            reason: "no organisation could be evaluated".into(),
        })),
    }
}

/// Cross-checks the exploration winner with batched SPICE solves: the
/// context is re-targeted at the winning organisation and its read path is
/// Monte-Carlo-solved through [`crate::montecarlo::sense_margin_batch`]
/// (the symbolic-once/numeric-many `DcBatch` route). The analytical margin
/// model picked the design; the circuit level verifies it still senses.
///
/// # Errors
///
/// Array-estimation failures from re-targeting and sense-batch failures
/// propagate.
pub fn verify_best_with_spice(
    base: &VaetContext,
    exploration: &VariationAwareExploration,
    opts: &SenseBatchOptions,
) -> Result<SenseBatchReport, VaetError> {
    verify_best_with_spice_with(base, exploration, opts, &ParallelConfig::from_env())
}

/// [`verify_best_with_spice`] with an explicit thread/chunk policy.
///
/// # Errors
///
/// Same as [`verify_best_with_spice`].
pub fn verify_best_with_spice_with(
    base: &VaetContext,
    exploration: &VariationAwareExploration,
    opts: &SenseBatchOptions,
    exec: &ParallelConfig,
) -> Result<SenseBatchReport, VaetError> {
    let ctx = base.with_config(exploration.best.config)?;
    sense_margin_batch_with(&ctx, opts, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_pdk::tech::TechNode;
    use std::sync::OnceLock;

    fn ctx() -> &'static VaetContext {
        static CTX: OnceLock<VaetContext> = OnceLock::new();
        CTX.get_or_init(|| VaetContext::standard(TechNode::N45).expect("ctx"))
    }

    #[test]
    fn margined_latency_exceeds_nominal() {
        let c = evaluate_candidate(
            ctx(),
            &ReliabilityRequirements::default(),
            VariationAwareTarget::WriteLatency,
        )
        .unwrap();
        assert!(c.margined_write_latency > c.nominal.write_latency);
        assert!(c.margined_read_latency >= c.nominal.read_latency * 0.5);
    }

    #[test]
    fn exploration_finds_feasible_best() {
        let exp = explore_variation_aware(
            ctx(),
            VariationAwareTarget::WriteLatency,
            &ReliabilityRequirements::default(),
        )
        .unwrap();
        assert!(!exp.candidates.is_empty());
        for c in &exp.candidates {
            assert!(c.margined_write_latency + 1e-18 >= exp.best.margined_write_latency);
        }
    }

    #[test]
    fn exploration_is_thread_count_invariant() {
        let reqs = ReliabilityRequirements::default();
        let run = |threads| {
            explore_variation_aware_with(
                ctx(),
                VariationAwareTarget::WriteEdp,
                &reqs,
                &ParallelConfig::serial().with_threads(threads),
            )
            .unwrap()
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
    }

    #[test]
    fn tighter_requirements_cost_latency() {
        let loose = evaluate_candidate(
            ctx(),
            &ReliabilityRequirements {
                wer: 1e-6,
                rer: 1e-6,
            },
            VariationAwareTarget::WriteLatency,
        )
        .unwrap();
        let tight = evaluate_candidate(
            ctx(),
            &ReliabilityRequirements {
                wer: 1e-15,
                rer: 1e-15,
            },
            VariationAwareTarget::WriteLatency,
        )
        .unwrap();
        assert!(tight.margined_write_latency > loose.margined_write_latency);
        assert!(tight.margined_read_latency >= loose.margined_read_latency);
    }

    #[test]
    fn winner_passes_spice_verification() {
        let exp = explore_variation_aware(
            ctx(),
            VariationAwareTarget::WriteLatency,
            &ReliabilityRequirements::default(),
        )
        .unwrap();
        let opts = SenseBatchOptions {
            samples: 200,
            seed: 9,
        };
        let report =
            verify_best_with_spice_with(ctx(), &exp, &opts, &ParallelConfig::serial()).unwrap();
        assert_eq!(report.failed_solves, 0);
        assert!(report.min_margin > 0.0);
        // Equivalent to running the sense batch on the re-targeted context.
        let direct = crate::montecarlo::sense_margin_batch_with(
            &ctx().with_config(exp.best.config).unwrap(),
            &opts,
            &ParallelConfig::serial(),
        )
        .unwrap();
        assert_eq!(report, direct);
    }

    #[test]
    fn different_targets_rank_differently_or_equal() {
        let reqs = ReliabilityRequirements::default();
        let wl = explore_variation_aware(ctx(), VariationAwareTarget::WriteLatency, &reqs).unwrap();
        let rl = explore_variation_aware(ctx(), VariationAwareTarget::ReadLatency, &reqs).unwrap();
        // The read-latency optimum cannot beat the write-latency optimum at
        // its own game.
        assert!(rl.best.margined_write_latency + 1e-18 >= wl.best.margined_write_latency);
        assert!(wl.best.margined_read_latency + 1e-18 >= rl.best.margined_read_latency);
    }
}
