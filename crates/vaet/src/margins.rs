//! Timing margins for target error rates (the paper's Fig. 7).
//!
//! *"Due to the high value of σ for the latencies, a large timing margin is
//! required to keep the error rates within acceptable limits ... for lower
//! values of target error rates, high timing margins are required."*
//!
//! - **Write**: the pulse must be wide enough that the *word-level* failure
//!   probability — one minus the probability every bit switched — stays
//!   below the target WER. Process variation is folded in by averaging the
//!   per-bit analytic WER over a fixed set of Monte Carlo device corners
//!   (common random numbers keep the margin solve monotone).
//! - **Read**: the sense signal develops as `ΔV(t) = ΔV_max·(1−e^(−t/τ))`
//!   against a Gaussian offset+mismatch noise; the latency for a target RER
//!   inverts the Gaussian tail.

use mss_mtj::switching::SwitchingModel;
use mss_units::rng::Xoshiro256PlusPlus;

use mss_units::math::{brent, inv_q};

use crate::context::{VaetContext, SENSE_OFFSET_SIGMA};
use crate::VaetError;

/// Number of device corners used for the variation-averaged WER.
const CORNERS: usize = 200;

/// A solved margin point: the overall access latency delivering a target
/// error rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginPoint {
    /// The target error rate (word-level).
    pub target: f64,
    /// Overall access latency, seconds (periphery + margined cell time).
    pub latency: f64,
    /// The cell-level share of the latency.
    pub cell_time: f64,
}

/// Variation corners reused across the margin solve (common random
/// numbers).
pub struct WriteMarginSolver {
    corners: Vec<(SwitchingModel, f64)>, // (model, write current)
    periphery: f64,
    word: f64,
}

impl WriteMarginSolver {
    /// Prepares the corner set for a context.
    ///
    /// # Errors
    ///
    /// Device sampling failures propagate.
    pub fn new(ctx: &VaetContext) -> Result<Self, VaetError> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xC0FFEE);
        let mut corners = Vec::with_capacity(CORNERS);
        for _ in 0..CORNERS {
            let stack = ctx
                .variation
                .sample_stack(&mut rng, &ctx.stack)
                .map_err(VaetError::Device)?;
            let i = ctx.cell.write.current
                * mss_units::rng::normal(&mut rng, 1.0, 0.04).clamp(0.7, 1.3);
            corners.push((ctx.corner_switching_model(&stack)?, i));
        }
        Ok(Self {
            corners,
            periphery: ctx.write_periphery_latency(),
            word: ctx.config.word_bits as f64,
        })
    }

    /// Variation-averaged per-bit WER at pulse width `t`.
    pub fn mean_bit_wer(&self, t: f64) -> f64 {
        self.corners
            .iter()
            .map(|(sw, i)| sw.write_error_rate(t, *i))
            .sum::<f64>()
            / self.corners.len() as f64
    }

    /// The `p`-quantile of the per-corner bit WER at pulse width `t` — the
    /// corner spread behind [`mean_bit_wer`](Self::mean_bit_wer) (e.g.
    /// `p = 0.95` for a pessimistic-corner margin). Corners whose WER
    /// evaluates to NaN (degenerate sampled devices) are skipped and
    /// counted on the `vaet.margin.nan_corners` observability counter
    /// instead of aborting the solve.
    ///
    /// # Errors
    ///
    /// [`VaetError::InvalidOptions`] when `p` is outside `[0, 1]` or every
    /// corner evaluated to NaN.
    pub fn bit_wer_quantile(&self, t: f64, p: f64) -> Result<f64, VaetError> {
        let mut wers: Vec<f64> = self
            .corners
            .iter()
            .map(|(sw, i)| sw.write_error_rate(t, *i))
            .collect();
        let q = mss_units::stats::try_quantile(&mut wers, p).map_err(|e| {
            VaetError::InvalidOptions {
                reason: format!("bit WER quantile: {e}"),
            }
        })?;
        if q.dropped_nan > 0 {
            mss_obs::counter_add("vaet.margin.nan_corners", q.dropped_nan as u64);
        }
        Ok(q.value)
    }

    /// Word-level failure probability at pulse width `t`
    /// (`1 − (1−p)^word ≈ word·p` for small `p`).
    pub fn word_wer(&self, t: f64) -> f64 {
        let p = self.mean_bit_wer(t).clamp(0.0, 1.0);
        if p >= 1.0 {
            return 1.0;
        }
        let ln_1mp = (-p).ln_1p(); // ln(1-p), accurate for small p
        (-(self.word * ln_1mp).exp_m1()).clamp(0.0, 1.0)
    }

    /// Solves the overall write latency for a target word-level WER.
    ///
    /// # Errors
    ///
    /// [`VaetError::UnreachableTarget`] when the target cannot be reached
    /// within a 10 µs pulse.
    pub fn latency_for_wer(&self, target: f64) -> Result<MarginPoint, VaetError> {
        mss_obs::counter_add("vaet.margin.wer_solves", 1);
        if !(target > 0.0 && target < 1.0) {
            return Err(VaetError::InvalidOptions {
                reason: format!("WER target {target} must be in (0, 1)"),
            });
        }
        let f = |t: f64| {
            let w = self.word_wer(t);
            if w <= 0.0 {
                -700.0 - target.ln()
            } else {
                w.ln() - target.ln()
            }
        };
        let (lo, hi) = (0.05e-9, 10e-6);
        if f(hi) > 0.0 {
            return Err(VaetError::UnreachableTarget {
                quantity: "WER",
                target,
                reason: "not reachable within a 10 us pulse".into(),
            });
        }
        let cell_time = if f(lo) <= 0.0 {
            lo
        } else {
            brent(f, lo, hi, 1e-13, 200).map_err(|e| VaetError::UnreachableTarget {
                quantity: "WER",
                target,
                reason: e.to_string(),
            })?
        };
        Ok(MarginPoint {
            target,
            latency: self.periphery + cell_time,
            cell_time,
        })
    }
}

/// Read-margin model: signal development vs Gaussian offset + mismatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadMarginSolver {
    /// Full developed sense signal, volts.
    pub signal_max: f64,
    /// Signal development time constant, seconds.
    pub tau: f64,
    /// Total input-referred Gaussian sigma (offset + R-mismatch), volts.
    pub sigma: f64,
    /// Peripheral read latency added on top, seconds.
    pub periphery: f64,
    /// Word width (word-level RER = word · bit RER).
    pub word: f64,
}

impl ReadMarginSolver {
    /// Builds the solver from a context.
    pub fn new(ctx: &VaetContext) -> Self {
        let signal_max = ctx.sense_signal();
        // TMR mismatch contributes signal-proportional noise; the ratio
        // dS/S = dTMR/TMR · 2/(2+TMR) < 1 damps it below the raw TMR sigma.
        let sigma_r = signal_max * ctx.variation.mtj.tmr.sigma;
        let sigma = (SENSE_OFFSET_SIGMA.powi(2) + sigma_r * sigma_r).sqrt();
        // The sense signal develops through the bit-line RC before the
        // amplifier can regenerate: both contribute to the time constant.
        let tau = (ctx.nominal.read_breakdown.bitline + ctx.cell.read.latency).max(1e-12);
        Self {
            signal_max,
            tau,
            sigma,
            periphery: ctx.read_periphery_latency(),
            word: ctx.config.word_bits as f64,
        }
    }

    /// Per-bit read error rate at sense time `t`.
    pub fn bit_rer(&self, t: f64) -> f64 {
        let signal = self.signal_max * (1.0 - (-t / self.tau).exp());
        mss_units::math::q_function(signal / self.sigma)
    }

    /// Solves the overall read latency for a target word-level RER.
    ///
    /// # Errors
    ///
    /// [`VaetError::UnreachableTarget`] when even the fully developed signal
    /// cannot reach the target (offset too large).
    pub fn latency_for_rer(&self, target: f64) -> Result<MarginPoint, VaetError> {
        if !(target > 0.0 && target < 1.0) {
            return Err(VaetError::InvalidOptions {
                reason: format!("RER target {target} must be in (0, 1)"),
            });
        }
        let bit_target = (target / self.word).min(0.5);
        let needed_ratio = inv_q(bit_target); // required signal / sigma
        let needed_signal = needed_ratio * self.sigma;
        if needed_signal >= self.signal_max {
            return Err(VaetError::UnreachableTarget {
                quantity: "RER",
                target,
                reason: format!(
                    "needs {needed_signal:.3} V of sense signal but only {:.3} V develops",
                    self.signal_max
                ),
            });
        }
        let x = needed_signal / self.signal_max;
        let cell_time = -self.tau * (1.0 - x).ln();
        Ok(MarginPoint {
            target,
            latency: self.periphery + cell_time,
            cell_time,
        })
    }
}

/// Sweeps both margins over a list of target error rates — the data series
/// of Fig. 7.
///
/// # Errors
///
/// Propagates solver failures (unreachable targets).
pub fn figure7(
    ctx: &VaetContext,
    targets: &[f64],
) -> Result<(Vec<MarginPoint>, Vec<MarginPoint>), VaetError> {
    let write = WriteMarginSolver::new(ctx)?;
    let read = ReadMarginSolver::new(ctx);
    let mut w = Vec::with_capacity(targets.len());
    let mut r = Vec::with_capacity(targets.len());
    for &t in targets {
        w.push(write.latency_for_wer(t)?);
        r.push(read.latency_for_rer(t)?);
    }
    Ok((w, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_pdk::tech::TechNode;
    use std::sync::OnceLock;

    fn ctx() -> &'static VaetContext {
        static CTX: OnceLock<VaetContext> = OnceLock::new();
        CTX.get_or_init(|| VaetContext::standard(TechNode::N45).unwrap())
    }

    #[test]
    fn tighter_wer_needs_longer_latency() {
        let solver = WriteMarginSolver::new(ctx()).unwrap();
        let p5 = solver.latency_for_wer(1e-5).unwrap();
        let p10 = solver.latency_for_wer(1e-10).unwrap();
        let p15 = solver.latency_for_wer(1e-15).unwrap();
        assert!(p5.latency < p10.latency && p10.latency < p15.latency);
        // The margined latency exceeds the nominal write latency.
        assert!(p5.latency > ctx().nominal.write_latency);
    }

    #[test]
    fn margin_round_trips_word_wer() {
        let solver = WriteMarginSolver::new(ctx()).unwrap();
        let p = solver.latency_for_wer(1e-10).unwrap();
        let achieved = solver.word_wer(p.cell_time);
        assert!(
            (achieved.ln() - (1e-10f64).ln()).abs() < 0.1,
            "achieved {achieved}"
        );
    }

    #[test]
    fn tighter_rer_needs_longer_latency() {
        let solver = ReadMarginSolver::new(ctx());
        let p5 = solver.latency_for_rer(1e-5).unwrap();
        let p15 = solver.latency_for_rer(1e-15).unwrap();
        assert!(p5.latency < p15.latency);
        assert!(p5.latency > solver.periphery);
    }

    #[test]
    fn bit_wer_quantile_brackets_the_mean() {
        let solver = WriteMarginSolver::new(ctx()).unwrap();
        let t = 10e-9;
        let q05 = solver.bit_wer_quantile(t, 0.05).unwrap();
        let q50 = solver.bit_wer_quantile(t, 0.5).unwrap();
        let q95 = solver.bit_wer_quantile(t, 0.95).unwrap();
        assert!(q05 <= q50 && q50 <= q95, "{q05} {q50} {q95}");
        // The corner spread must straddle (or at least contain near) the
        // variation-averaged WER.
        let mean = solver.mean_bit_wer(t);
        assert!(q05 <= mean && mean <= q95 * solver.corners.len() as f64);
        // Degenerate probability is rejected, not panicked on.
        assert!(solver.bit_wer_quantile(t, 1.5).is_err());
    }

    #[test]
    fn sot_write_margin_collapses_vs_stt() {
        let stack = mss_mtj::MssStack::builder().build().unwrap();
        let config = ctx().config;
        let sot = VaetContext::build_sot(
            mss_pdk::tech::TechNode::N45,
            stack,
            config,
            mss_mtj::SotParams::default(),
        )
        .unwrap();
        let stt_solver = WriteMarginSolver::new(ctx()).unwrap();
        let sot_solver = WriteMarginSolver::new(&sot).unwrap();
        let stt_point = stt_solver.latency_for_wer(1e-10).unwrap();
        let sot_point = sot_solver.latency_for_wer(1e-10).unwrap();
        // The margined pulse shrinks by the damping factor's order.
        assert!(
            sot_point.cell_time < 0.1 * stt_point.cell_time,
            "sot {:.3e} vs stt {:.3e}",
            sot_point.cell_time,
            stt_point.cell_time
        );
        assert!(sot_point.latency < stt_point.latency);
    }

    #[test]
    fn read_margin_is_smaller_than_write_margin() {
        // Fig. 7 shape: write latencies dominate read latencies at every
        // target error rate.
        let (w, r) = figure7(ctx(), &[1e-5, 1e-10, 1e-15]).unwrap();
        for (wp, rp) in w.iter().zip(&r) {
            assert!(wp.latency > rp.latency);
        }
    }

    #[test]
    fn impossible_rer_is_reported() {
        let mut solver = ReadMarginSolver::new(ctx());
        solver.sigma = solver.signal_max; // hopeless noise
        let err = solver.latency_for_rer(1e-15).unwrap_err();
        assert!(matches!(err, VaetError::UnreachableTarget { .. }));
    }

    #[test]
    fn invalid_targets_rejected() {
        let solver = WriteMarginSolver::new(ctx()).unwrap();
        assert!(solver.latency_for_wer(0.0).is_err());
        assert!(solver.latency_for_wer(2.0).is_err());
        let rs = ReadMarginSolver::new(ctx());
        assert!(rs.latency_for_rer(-1.0).is_err());
    }

    #[test]
    fn bit_rer_decreases_with_time() {
        let solver = ReadMarginSolver::new(ctx());
        let mut last = 1.0;
        for k in 1..20 {
            let r = solver.bit_rer(k as f64 * 0.2e-9);
            assert!(r <= last);
            last = r;
        }
    }
}
