//! Read disturb vs read period (the paper's Fig. 9) and the RER/disturb
//! conflict.
//!
//! *"Even though a higher read latency leads to a lower RER ..., it will
//! lead to increased read disturb probability ... Hence the read period
//! should be fixed considering the conflicting requirements for RER and
//! read disturb."*

use mss_mtj::reliability;

use crate::context::VaetContext;
use crate::margins::ReadMarginSolver;
use crate::VaetError;

/// One point of the read-period trade-off sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadPoint {
    /// Read period (current pulse width through the cell), seconds.
    pub period: f64,
    /// Per-bit read-disturb probability at this period.
    pub disturb_probability: f64,
    /// Per-bit read error rate at this period (sensing failure).
    pub read_error_rate: f64,
}

/// Sweeps read periods — the Fig. 9 series plus the conflicting RER curve.
pub fn figure9(ctx: &VaetContext, periods: &[f64]) -> Vec<ReadPoint> {
    let margin = ReadMarginSolver::new(ctx);
    periods
        .iter()
        .map(|&period| ReadPoint {
            period,
            disturb_probability: reliability::read_disturb_probability(
                &ctx.stack,
                period,
                ctx.read_disturb_current(),
            ),
            read_error_rate: margin.bit_rer(period),
        })
        .collect()
}

/// Finds the read period minimising the combined per-read failure
/// probability `RER(t) + RDP(t)` over a bracket — the "fix the read period
/// considering the conflicting requirements" step.
///
/// # Errors
///
/// [`VaetError::InvalidOptions`] on an empty or inverted bracket.
pub fn optimal_read_period(ctx: &VaetContext, lo: f64, hi: f64) -> Result<ReadPoint, VaetError> {
    if !(lo > 0.0 && hi > lo) {
        return Err(VaetError::InvalidOptions {
            reason: format!("bad read-period bracket [{lo}, {hi}]"),
        });
    }
    let margin = ReadMarginSolver::new(ctx);
    let i_read = ctx.read_disturb_current();
    let combined =
        |t: f64| margin.bit_rer(t) + reliability::read_disturb_probability(&ctx.stack, t, i_read);
    // Golden-section search (the combined curve is unimodal: RER falls
    // exponentially, disturb grows linearly).
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    for _ in 0..200 {
        if combined(c) < combined(d) {
            b = d;
        } else {
            a = c;
        }
        c = b - phi * (b - a);
        d = a + phi * (b - a);
        if (b - a) < 1e-13 {
            break;
        }
    }
    let t = 0.5 * (a + b);
    Ok(ReadPoint {
        period: t,
        disturb_probability: reliability::read_disturb_probability(&ctx.stack, t, i_read),
        read_error_rate: margin.bit_rer(t),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_pdk::tech::TechNode;
    use std::sync::OnceLock;

    fn ctx() -> &'static VaetContext {
        static CTX: OnceLock<VaetContext> = OnceLock::new();
        CTX.get_or_init(|| VaetContext::standard(TechNode::N45).unwrap())
    }

    #[test]
    fn disturb_grows_and_rer_falls_with_period() {
        let periods: Vec<f64> = (1..=10).map(|k| k as f64 * 1e-9).collect();
        let points = figure9(ctx(), &periods);
        for w in points.windows(2) {
            assert!(w[1].disturb_probability >= w[0].disturb_probability);
            assert!(w[1].read_error_rate <= w[0].read_error_rate);
        }
        assert!(points.last().unwrap().disturb_probability > 0.0);
    }

    #[test]
    fn optimal_period_is_interior() {
        let best = optimal_read_period(ctx(), 0.2e-9, 50e-9).unwrap();
        assert!(best.period > 0.2e-9 && best.period < 50e-9);
        // At the optimum, both failure modes are small.
        assert!(best.read_error_rate < 1e-3);
        assert!(best.disturb_probability < 1e-3);
    }

    #[test]
    fn bad_bracket_rejected() {
        assert!(optimal_read_period(ctx(), 1e-9, 1e-10).is_err());
        assert!(optimal_read_period(ctx(), 0.0, 1e-9).is_err());
    }
}
