//! VAET-STT: a Variation-Aware Estimator Tool for STT-MRAM memories.
//!
//! Reimplementation of the paper's Sec. III tool: *"built on the top of
//! NVSim and extends it to account for variability in both the bit-cell and
//! peripheral components. The impact of variability causes the latency and
//! energy of the bit-cell and peripherals to follow distributions instead of
//! being a single (nominal) value."*
//!
//! - [`context`] — bundles the nominal flow (tech card, stack, characterised
//!   cell library, array organisation, NVSim estimate) with the node's
//!   variation card,
//! - [`montecarlo`] — access-level Monte Carlo producing the μ/σ
//!   distributions of Table 1 (word-completion latency: an access finishes
//!   when its *slowest* bit does),
//! - [`margins`] — timing margins for target write/read error rates
//!   (Fig. 7),
//! - [`ecc`] — error-correcting-code trade-offs: write latency vs corrected
//!   bits at a fixed uncorrectable-error target (Fig. 8),
//! - [`read`] — read-disturb probability vs read period and the RER/disturb
//!   conflict (Fig. 9),
//! - [`optimize`] — variation-aware memory-configuration optimisation under
//!   reliability requirements (the tool's stated purpose in Sec. III),
//! - [`temperature`] — the reliability picture across the industrial IoT
//!   temperature range,
//! - [`refresh`] — the adjustable-retention trade-off (smaller pillars
//!   write cheaper but need scrubbing),
//! - [`wvr`] — write-verify-retry, the architectural alternative to pure
//!   timing margins,
//! - [`report`] — the Table-1-shaped output record.
//!
//! # Example
//!
//! ```no_run
//! use mss_vaet::context::VaetContext;
//! use mss_vaet::montecarlo::{run, MonteCarloOptions};
//! use mss_pdk::tech::TechNode;
//!
//! # fn main() -> Result<(), mss_vaet::VaetError> {
//! let ctx = VaetContext::standard(TechNode::N45)?;
//! let report = run(&ctx, &MonteCarloOptions { samples: 500, seed: 1, ..Default::default() })?;
//! // Variation-aware mean far exceeds the nominal value (paper Table 1).
//! assert!(report.write_latency.mean > ctx.nominal.write_latency);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod context;
pub mod ecc;
mod error;
pub mod margins;
pub mod montecarlo;
pub mod optimize;
pub mod read;
pub mod refresh;
pub mod report;
pub mod temperature;
pub mod wvr;

pub use error::VaetError;
