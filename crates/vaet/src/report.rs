//! The Table-1-shaped output record.

use mss_pdk::tech::TechNode;
use mss_units::fmt::Eng;
use mss_units::stats::DistributionSummary;

/// Variation-aware latency/energy report for one node (one column pair of
/// the paper's Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct VaetReport {
    /// Technology node.
    pub node: TechNode,
    /// Monte Carlo sample count.
    pub samples: u64,
    /// Word width used for the access statistics.
    pub word_bits: u32,
    /// Nominal (NVSim) write latency, seconds.
    pub nominal_write_latency: f64,
    /// Nominal write energy, joules.
    pub nominal_write_energy: f64,
    /// Nominal read latency, seconds.
    pub nominal_read_latency: f64,
    /// Nominal read energy, joules.
    pub nominal_read_energy: f64,
    /// Variation-aware write-latency distribution.
    pub write_latency: DistributionSummary,
    /// Variation-aware write-energy distribution.
    pub write_energy: DistributionSummary,
    /// Variation-aware read-latency distribution.
    pub read_latency: DistributionSummary,
    /// Variation-aware read-energy distribution.
    pub read_energy: DistributionSummary,
}

impl VaetReport {
    /// Renders the paper's Table-1 rows for this node.
    pub fn to_table(&self) -> String {
        let row = |name: &str, unit: &'static str, nominal: f64, d: &DistributionSummary| {
            // A 0-sample distribution (e.g. every Monte Carlo sample failed
            // or was filtered) has no meaningful moments: render "n/a"
            // rather than the accumulator's ±inf/0 placeholders.
            let (mu, sigma) = if d.is_empty() {
                ("n/a".to_string(), "n/a".to_string())
            } else {
                (
                    Eng(d.mean, unit).to_string(),
                    Eng(d.std_dev, unit).to_string(),
                )
            };
            format!(
                "{name:<18} | {:>12} | {mu:>12} | {sigma:>12}\n",
                Eng(nominal, unit).to_string()
            )
        };
        let mut out = format!(
            "== {} (word = {} bits, N = {}) ==\n{:<18} | {:>12} | {:>12} | {:>12}\n",
            self.node, self.word_bits, self.samples, "metric", "nominal", "mu", "sigma"
        );
        out.push_str(&row(
            "write latency",
            "s",
            self.nominal_write_latency,
            &self.write_latency,
        ));
        out.push_str(&row(
            "write energy",
            "J",
            self.nominal_write_energy,
            &self.write_energy,
        ));
        out.push_str(&row(
            "read latency",
            "s",
            self.nominal_read_latency,
            &self.read_latency,
        ));
        out.push_str(&row(
            "read energy",
            "J",
            self.nominal_read_energy,
            &self.read_energy,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(mean: f64) -> DistributionSummary {
        DistributionSummary {
            mean,
            std_dev: mean / 10.0,
            min: mean / 2.0,
            max: mean * 2.0,
            samples: 100,
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let r = VaetReport {
            node: TechNode::N45,
            samples: 100,
            word_bits: 1024,
            nominal_write_latency: 4.9e-9,
            nominal_write_energy: 159e-12,
            nominal_read_latency: 1.2e-9,
            nominal_read_energy: 3.4e-12,
            write_latency: dummy(14.7e-9),
            write_energy: dummy(425e-12),
            read_latency: dummy(1.7e-9),
            read_energy: dummy(4.8e-12),
        };
        let t = r.to_table();
        assert!(t.contains("write latency"));
        assert!(t.contains("read energy"));
        assert!(t.contains("45 nm"));
        assert!(t.contains("14.70 ns") || t.contains("14.7"), "{t}");
    }

    #[test]
    fn empty_distributions_render_as_n_a_not_inf() {
        use mss_units::stats::OnlineStats;
        // An all-samples-failed run produces empty accumulators; the table
        // must stay finite and explicit instead of printing inf/-inf.
        let empty = DistributionSummary::from(&OnlineStats::new());
        let r = VaetReport {
            node: TechNode::N45,
            samples: 0,
            word_bits: 1024,
            nominal_write_latency: 4.9e-9,
            nominal_write_energy: 159e-12,
            nominal_read_latency: 1.2e-9,
            nominal_read_energy: 3.4e-12,
            write_latency: empty,
            write_energy: empty,
            read_latency: empty,
            read_energy: empty,
        };
        let t = r.to_table();
        assert!(t.contains("n/a"), "{t}");
        assert!(!t.to_lowercase().contains("inf"), "{t}");
        assert!(!t.to_lowercase().contains("nan"), "{t}");
    }
}
