//! Pinned cache-key digests for the mechanism refactor.
//!
//! The stage cache persists across releases (`~/.cache`-style disk caches,
//! CI artifact reuse), so cache keys are an ABI: the STT keys must be
//! byte-for-byte what they were before the `SwitchingMechanism` refactor
//! (old caches keep hitting), and every SOT key must live in a disjoint
//! namespace (an SOT run can never replay an STT artifact, or vice versa).
//!
//! The literals below were captured from the pre-refactor key shapes. If
//! one of these tests fails, a hash input changed — that silently orphans
//! every cache on disk and replays stale artifacts under new semantics.
//! Bump the literals only for a *deliberate*, release-noted key break.

use mss_mtj::{MechanismConfig, MechanismKind, MssStack, SotParams};
use mss_pdk::charlib::sot_cache_key;
use mss_pdk::tech::{TechNode, TechParams};
use mss_pipe::digest_of;

fn reference_stack() -> MssStack {
    MssStack::builder().build().expect("reference stack")
}

/// The STT characterization key — `digest_of(&(tech, stack))`, exactly the
/// pre-refactor shape with no mechanism discriminant folded in.
#[test]
fn stt_characterization_keys_are_unchanged() {
    let stack = reference_stack();
    assert_eq!(
        digest_of(&(TechParams::node(TechNode::N45), &stack)),
        "bd6921eb1fecef98",
    );
    assert_eq!(
        digest_of(&(TechParams::node(TechNode::N65), &stack)),
        "030f78423fb3194f",
    );
}

/// The SOT key folds `(params, MechanismKind::Sot)` on top of the STT
/// fields — a different tuple arity, so the namespaces can never overlap.
#[test]
fn sot_characterization_keys_are_pinned_and_disjoint() {
    let stack = reference_stack();
    let tech = TechParams::node(TechNode::N45);
    let key = sot_cache_key(&tech, &stack, &SotParams::default());
    assert_eq!(key, "66f242ff3605689a");
    assert_ne!(key, digest_of(&(&tech, &stack)));

    // Any channel-parameter change forks the key.
    let mut p = SotParams::default();
    p.spin_hall_angle += 0.01;
    assert_ne!(sot_cache_key(&tech, &stack, &p), key);
}

/// The mechanism enums hash to pinned digests: the config is folded into
/// flow-level sweep digests, so its encoding is part of the key ABI too.
#[test]
fn mechanism_enum_digests_are_pinned() {
    assert_eq!(digest_of(&MechanismKind::Stt), "71b8262bb6e2e086");
    assert_eq!(digest_of(&MechanismKind::Sot), "a5a236d15db61159");
    assert_eq!(digest_of(&MechanismConfig::Stt), "71b8262bb6e2e086");
    assert_eq!(
        digest_of(&MechanismConfig::Sot(SotParams::default())),
        "8597da894806e24f",
    );
    // The kind discriminant separates the variants before any payload
    // bytes, so the two config encodings can never collide.
    assert_ne!(
        digest_of(&MechanismConfig::Stt),
        digest_of(&MechanismConfig::Sot(SotParams::default()))
    );
}

/// Prints the actual digests (run with `--nocapture`) — used once to
/// capture the pinned literals above.
#[test]
fn print_digests_for_pinning() {
    let stack = reference_stack();
    println!(
        "STT_N45={}",
        digest_of(&(TechParams::node(TechNode::N45), &stack))
    );
    println!(
        "STT_N65={}",
        digest_of(&(TechParams::node(TechNode::N65), &stack))
    );
    println!(
        "SOT_N45={}",
        sot_cache_key(
            &TechParams::node(TechNode::N45),
            &stack,
            &SotParams::default()
        )
    );
    println!("KIND_STT={}", digest_of(&MechanismKind::Stt));
    println!("KIND_SOT={}", digest_of(&MechanismKind::Sot));
    println!("CFG_STT={}", digest_of(&MechanismConfig::Stt));
    println!(
        "CFG_SOT={}",
        digest_of(&MechanismConfig::Sot(SotParams::default()))
    );
}
