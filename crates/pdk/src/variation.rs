//! Process-variation cards for the CMOS and magnetic processes.
//!
//! Section III: *"STT-MRAM is also affected by manufacturing variations as
//! the technology scales down in the magnetic fabrication process as well as
//! the CMOS process"*, and Table 1 shows larger σ at the 45 nm node. The
//! cards here model exactly that: Gaussian parameter dispersion whose
//! magnitude grows as the node shrinks (Pelgrom mismatch scaling, σ ∝
//! 1/√(W·L) ∝ 1/F for fixed relative geometry).

use mss_mtj::{MssStack, MssStackBuilder, MtjError};
use mss_units::rng::{Rng, Variation, VariationKind};

use crate::tech::{TechNode, TechParams};

/// Absorbs a [`Variation`] into a stable hasher (a free helper because
/// `Variation` lives in `mss-units`, which sits below `mss-pipe`).
pub fn hash_variation(v: &Variation, h: &mut mss_pipe::StableHasher) {
    h.write_f64(v.sigma);
    h.write_u8(match v.kind {
        VariationKind::Relative => 0,
        VariationKind::Absolute => 1,
    });
}

impl mss_pipe::StableHash for CmosVariation {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        hash_variation(&self.vth, h);
        hash_variation(&self.kp, h);
        hash_variation(&self.length, h);
        hash_variation(&self.width, h);
    }
}

impl mss_pipe::StableHash for MtjVariation {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        hash_variation(&self.diameter, h);
        hash_variation(&self.thickness, h);
        hash_variation(&self.ra, h);
        hash_variation(&self.tmr, h);
        hash_variation(&self.anisotropy, h);
    }
}

impl mss_pipe::StableHash for VariationCard {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.cmos.stable_hash(h);
        self.mtj.stable_hash(h);
    }
}

/// Dispersion of the CMOS process parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmosVariation {
    /// Threshold-voltage mismatch (absolute, volts).
    pub vth: Variation,
    /// Transconductance-factor dispersion (relative).
    pub kp: Variation,
    /// Effective-length dispersion (relative).
    pub length: Variation,
    /// Effective-width dispersion (relative).
    pub width: Variation,
}

/// Dispersion of the magnetic (MTJ) process parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtjVariation {
    /// Pillar-diameter dispersion (relative).
    pub diameter: Variation,
    /// Free-layer thickness dispersion (relative).
    pub thickness: Variation,
    /// RA-product dispersion (relative).
    pub ra: Variation,
    /// TMR dispersion (relative).
    pub tmr: Variation,
    /// Interfacial-anisotropy dispersion (relative).
    pub anisotropy: Variation,
}

/// Classic five process corners for corner-based (non-statistical) signoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessCorner {
    /// Typical-typical.
    Tt,
    /// Slow NMOS, slow PMOS.
    Ss,
    /// Fast NMOS, fast PMOS.
    Ff,
    /// Slow NMOS, fast PMOS.
    Sf,
    /// Fast NMOS, slow PMOS.
    Fs,
}

impl ProcessCorner {
    /// All five corners, TT first.
    pub const ALL: [ProcessCorner; 5] = [
        ProcessCorner::Tt,
        ProcessCorner::Ss,
        ProcessCorner::Ff,
        ProcessCorner::Sf,
        ProcessCorner::Fs,
    ];

    /// (nmos, pmos) speed signs: +1 fast, 0 typical, −1 slow.
    fn signs(self) -> (f64, f64) {
        match self {
            ProcessCorner::Tt => (0.0, 0.0),
            ProcessCorner::Ss => (-1.0, -1.0),
            ProcessCorner::Ff => (1.0, 1.0),
            ProcessCorner::Sf => (-1.0, 1.0),
            ProcessCorner::Fs => (1.0, -1.0),
        }
    }
}

impl std::fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessCorner::Tt => write!(f, "TT"),
            ProcessCorner::Ss => write!(f, "SS"),
            ProcessCorner::Ff => write!(f, "FF"),
            ProcessCorner::Sf => write!(f, "SF"),
            ProcessCorner::Fs => write!(f, "FS"),
        }
    }
}

/// The complete variation card for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationCard {
    /// CMOS-side dispersion.
    pub cmos: CmosVariation,
    /// Magnetic-side dispersion.
    pub mtj: MtjVariation,
}

impl VariationCard {
    /// The calibrated card for a node. The 45 nm card has visibly larger
    /// dispersion than the 65 nm card, reproducing the paper's observation
    /// that "the effect of variations ... is more pronounced in the smaller
    /// technology node".
    pub fn node(node: TechNode) -> Self {
        match node {
            TechNode::N45 => Self {
                cmos: CmosVariation {
                    vth: Variation::absolute(0.035),
                    kp: Variation::relative(0.05),
                    length: Variation::relative(0.04),
                    width: Variation::relative(0.04),
                },
                mtj: MtjVariation {
                    diameter: Variation::relative(0.035),
                    thickness: Variation::relative(0.010),
                    ra: Variation::relative(0.05),
                    tmr: Variation::relative(0.05),
                    // Hk_eff is a difference of two large terms, so even a
                    // small Ki dispersion is strongly levered; calibrated to
                    // keep the Table-1 sigma in the paper's range.
                    anisotropy: Variation::relative(0.006),
                },
            },
            TechNode::N65 => Self {
                cmos: CmosVariation {
                    vth: Variation::absolute(0.025),
                    kp: Variation::relative(0.035),
                    length: Variation::relative(0.03),
                    width: Variation::relative(0.03),
                },
                mtj: MtjVariation {
                    diameter: Variation::relative(0.025),
                    thickness: Variation::relative(0.008),
                    ra: Variation::relative(0.04),
                    tmr: Variation::relative(0.04),
                    anisotropy: Variation::relative(0.004),
                },
            },
        }
    }

    /// Shifts a CMOS card to a ±3σ process corner (fast = lower V_th,
    /// higher k').
    pub fn corner_tech(&self, nominal: &TechParams, corner: ProcessCorner) -> TechParams {
        let (sn, sp) = corner.signs();
        let mut t = nominal.clone();
        t.nmos.vth = nominal.nmos.vth - sn * 3.0 * self.cmos.vth.std_dev_at(nominal.nmos.vth);
        t.pmos.vth = nominal.pmos.vth - sp * 3.0 * self.cmos.vth.std_dev_at(nominal.pmos.vth);
        t.nmos.kp = nominal.nmos.kp * (1.0 + sn * 3.0 * self.cmos.kp.sigma);
        t.pmos.kp = nominal.pmos.kp * (1.0 + sp * 3.0 * self.cmos.kp.sigma);
        t
    }

    /// Samples a perturbed CMOS card.
    pub fn sample_tech<R: Rng + ?Sized>(&self, rng: &mut R, nominal: &TechParams) -> TechParams {
        let mut t = nominal.clone();
        t.nmos.vth = self.cmos.vth.sample(rng, nominal.nmos.vth);
        t.pmos.vth = self.cmos.vth.sample(rng, nominal.pmos.vth);
        t.nmos.kp = self.cmos.kp.sample(rng, nominal.nmos.kp);
        t.pmos.kp = self.cmos.kp.sample(rng, nominal.pmos.kp);
        t
    }

    /// Samples a perturbed MTJ stack.
    ///
    /// # Errors
    ///
    /// Propagates geometry-validation failures from `mss-mtj` (only possible
    /// for pathological σ values, since sampling truncates at ±4σ).
    pub fn sample_stack<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        nominal: &MssStack,
    ) -> Result<MssStack, MtjError> {
        MssStackBuilder::from(nominal.clone())
            .diameter(self.mtj.diameter.sample(rng, nominal.diameter()))
            .free_layer_thickness(
                self.mtj
                    .thickness
                    .sample(rng, nominal.free_layer_thickness()),
            )
            .resistance_area_product(self.mtj.ra.sample(rng, nominal.resistance_area_product()))
            .tmr_zero_bias(self.mtj.tmr.sample(rng, nominal.tmr_zero_bias()))
            .interfacial_anisotropy(
                self.mtj
                    .anisotropy
                    .sample(rng, nominal.interfacial_anisotropy()),
            )
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_units::rng::Xoshiro256PlusPlus;
    use mss_units::stats::OnlineStats;

    #[test]
    fn smaller_node_has_more_dispersion() {
        let v45 = VariationCard::node(TechNode::N45);
        let v65 = VariationCard::node(TechNode::N65);
        assert!(v45.cmos.vth.sigma > v65.cmos.vth.sigma);
        assert!(v45.mtj.diameter.sigma > v65.mtj.diameter.sigma);
        assert!(v45.mtj.anisotropy.sigma > v65.mtj.anisotropy.sigma);
    }

    #[test]
    fn sampled_stack_statistics_match_card() {
        let card = VariationCard::node(TechNode::N45);
        let nominal = MssStack::builder().build().unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let stats: OnlineStats = (0..3000)
            .map(|_| card.sample_stack(&mut rng, &nominal).unwrap().diameter())
            .collect();
        let rel_sigma = stats.sample_std_dev() / stats.mean();
        assert!(
            (rel_sigma - card.mtj.diameter.sigma).abs() < 0.005,
            "rel sigma = {rel_sigma}"
        );
        assert!((stats.mean() / nominal.diameter() - 1.0).abs() < 0.01);
    }

    #[test]
    fn sampled_stack_varies_derived_quantities() {
        let card = VariationCard::node(TechNode::N45);
        let nominal = MssStack::builder().build().unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let deltas: OnlineStats = (0..500)
            .map(|_| {
                card.sample_stack(&mut rng, &nominal)
                    .unwrap()
                    .thermal_stability()
            })
            .collect();
        // Δ inherits diameter and anisotropy dispersion.
        assert!(deltas.sample_std_dev() > 0.02 * deltas.mean());
    }

    #[test]
    fn sampled_tech_keeps_structure() {
        let card = VariationCard::node(TechNode::N65);
        let nominal = TechParams::node(TechNode::N65);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let t = card.sample_tech(&mut rng, &nominal);
        assert_eq!(t.node, nominal.node);
        assert_eq!(t.feature, nominal.feature);
        assert!(t.nmos.vth != nominal.nmos.vth);
    }

    #[test]
    fn corners_order_drive_strength() {
        let card = VariationCard::node(TechNode::N45);
        let nominal = TechParams::node(TechNode::N45);
        let drive = |t: &TechParams| t.nmos_sat_current(1e-6);
        let ss = drive(&card.corner_tech(&nominal, ProcessCorner::Ss));
        let tt = drive(&card.corner_tech(&nominal, ProcessCorner::Tt));
        let ff = drive(&card.corner_tech(&nominal, ProcessCorner::Ff));
        assert!(ss < tt && tt < ff, "ss {ss} tt {tt} ff {ff}");
        // TT is the nominal card.
        assert_eq!(card.corner_tech(&nominal, ProcessCorner::Tt), nominal);
        // Skew corners move the devices in opposite directions.
        let sf = card.corner_tech(&nominal, ProcessCorner::Sf);
        assert!(sf.nmos.vth > nominal.nmos.vth);
        assert!(sf.pmos.vth < nominal.pmos.vth);
    }

    #[test]
    fn corner_display_names() {
        assert_eq!(ProcessCorner::Tt.to_string(), "TT");
        assert_eq!(ProcessCorner::ALL.len(), 5);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let card = VariationCard::node(TechNode::N45);
        let nominal = MssStack::builder().build().unwrap();
        let a = card
            .sample_stack(&mut Xoshiro256PlusPlus::seed_from_u64(9), &nominal)
            .unwrap();
        let b = card
            .sample_stack(&mut Xoshiro256PlusPlus::seed_from_u64(9), &nominal)
            .unwrap();
        assert_eq!(a, b);
    }
}
