//! Error type for PDK construction and characterisation.

use std::fmt;

use mss_mtj::MtjError;
use mss_spice::SpiceError;

/// Errors produced by PDK operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PdkError {
    /// A device-model error bubbled up from `mss-mtj`.
    Device(MtjError),
    /// A circuit-simulation error bubbled up from `mss-spice`.
    Circuit(SpiceError),
    /// Characterisation could not find a working operating point (e.g. no
    /// access-transistor width delivers the target write current).
    Characterization {
        /// Which step failed.
        step: &'static str,
        /// Why.
        reason: String,
    },
}

impl fmt::Display for PdkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdkError::Device(e) => write!(f, "device model error: {e}"),
            PdkError::Circuit(e) => write!(f, "circuit simulation error: {e}"),
            PdkError::Characterization { step, reason } => {
                write!(f, "characterisation failed in {step}: {reason}")
            }
        }
    }
}

impl std::error::Error for PdkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PdkError::Device(e) => Some(e),
            PdkError::Circuit(e) => Some(e),
            PdkError::Characterization { .. } => None,
        }
    }
}

impl From<MtjError> for PdkError {
    fn from(e: MtjError) -> Self {
        PdkError::Device(e)
    }
}

impl From<SpiceError> for PdkError {
    fn from(e: SpiceError) -> Self {
        PdkError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: PdkError = SpiceError::SingularMatrix.into();
        assert!(e.to_string().contains("singular"));
        let e: PdkError = MtjError::Convergence { context: "x" }.into();
        assert!(e.to_string().contains("x"));
    }
}
