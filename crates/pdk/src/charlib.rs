//! Cell characterisation: template → transient → MDL → cell configuration.
//!
//! This is the paper's Sec. IV-A loop: *"the SPICE simulation generates
//! output measurement file that is then parsed to extract the required cell
//! level parameters such as switching current, delay and energy values.
//! These values are updated into the cell configuration file of the VAET-STT
//! tool."* [`characterize`] produces a [`CellLibrary`]; its
//! [`CellLibrary::to_report`]/[`CellLibrary::from_report`] pair is the
//! measurement-file round trip.

use mss_mtj::mechanism::MechanismKind;
use mss_mtj::resistance::MtjState;
use mss_mtj::{MssStack, SotMechanism, SotParams, SwitchingMechanism};
use mss_spice::analysis::{dc_operating_point, Transient, TransientOptions, TransientResult};
use mss_spice::mdl::{Edge, Measurement, Probe, Report};
use mss_spice::netlist::Netlist;
use mss_spice::waveform::Waveform;

use crate::cells::{
    bitcell_write_deck, nvff_backup_deck, nvff_restore_deck, pcsa_read_deck,
    sot_bitcell_write_deck, sot_pcsa_read_deck, WriteDirection,
};
use crate::tech::{TechNode, TechParams};
use crate::variation::{ProcessCorner, VariationCard};
use crate::PdkError;

/// Latency/energy/current triple for one memory operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMetrics {
    /// Operation latency in seconds.
    pub latency: f64,
    /// Energy per operation in joules (cell-level, excluding array wires).
    pub energy: f64,
    /// Cell current during the operation in amperes.
    pub current: f64,
}

/// The characterised cell configuration consumed by VAET-STT.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    /// Technology node the library was characterised at.
    pub node: TechNode,
    /// Worst-case write metrics across both polarities.
    pub write: OpMetrics,
    /// Worst-case read (sense) metrics across both stored states.
    pub read: OpMetrics,
    /// Access-transistor width chosen by the sizing loop, metres.
    pub access_width: f64,
    /// Bit-cell area in m².
    pub cell_area: f64,
    /// Cell leakage in amperes (access device off-state).
    pub leakage: f64,
    /// Critical current of the junction, amperes.
    pub critical_current: f64,
    /// Thermal stability factor Δ of the junction.
    pub delta: f64,
    /// Parallel-state resistance, ohms.
    pub r_parallel: f64,
    /// Antiparallel-state resistance, ohms.
    pub r_antiparallel: f64,
}

/// The characterised cell configuration for the three-terminal SOT cell.
///
/// Wraps the same [`CellLibrary`] shape the downstream array/variation
/// models consume (so every consumer of `CellLibrary` works unchanged) and
/// carries the SOT-specific extras alongside. Kept as a separate type so
/// the `CellLibrary` hash — and with it every existing STT cache key —
/// stays byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SotCellLibrary {
    /// The cell configuration in the common shape (write/read metrics,
    /// sizing, area, junction constants). `critical_current` holds the SHE
    /// channel critical current, `cell_area` the three-terminal footprint.
    pub base: CellLibrary,
    /// The SOT stack parameters the library was characterised with.
    pub params: SotParams,
    /// Heavy-metal channel resistance, ohms.
    pub channel_resistance: f64,
}

/// Characterised metrics of the non-volatile flip-flop (backup + restore).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvffMetrics {
    /// Two-phase backup time (both junctions written), seconds.
    pub backup_latency: f64,
    /// Energy of one backup, joules.
    pub backup_energy: f64,
    /// Restore (PCSA regeneration) delay, seconds.
    pub restore_latency: f64,
    /// Energy of one restore, joules.
    pub restore_energy: f64,
}

/// Target write overdrive I_write/I_c0 used by the access sizing loop.
const TARGET_OVERDRIVE: f64 = 2.5;
/// Write pulse used during characterisation, seconds.
const CHAR_WRITE_PULSE: f64 = 12e-9;
/// Sense window used during read characterisation, seconds.
const CHAR_SENSE_WINDOW: f64 = 3e-9;
/// Write pulse for SOT characterisation: the damping-limit-free channel
/// write completes in tens of ps, so a 1 ns pulse already carries margin.
const SOT_CHAR_WRITE_PULSE: f64 = 1e-9;
/// Target overdrive for the SOT channel write. The SHE critical current
/// carries no damping factor, so it is an order of magnitude above the STT
/// one — but the switching time collapses as `α·τ_D/(i−1)`, so 1.5×
/// already writes in ~150 ps with a vanishing WER over a 1 ns pulse.
/// Pushing to the STT-style 2.5× would only balloon the channel driver
/// (the source-degenerated access device grows quadratically) for no
/// reliability gain.
const SOT_TARGET_OVERDRIVE: f64 = 1.5;

impl mss_pipe::StableHash for OpMetrics {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_f64(self.latency);
        h.write_f64(self.energy);
        h.write_f64(self.current);
    }
}

impl mss_pipe::StableHash for CellLibrary {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.node.stable_hash(h);
        self.write.stable_hash(h);
        self.read.stable_hash(h);
        h.write_f64(self.access_width);
        h.write_f64(self.cell_area);
        h.write_f64(self.leakage);
        h.write_f64(self.critical_current);
        h.write_f64(self.delta);
        h.write_f64(self.r_parallel);
        h.write_f64(self.r_antiparallel);
    }
}

impl mss_pipe::Artifact for CellLibrary {
    const KIND: &'static str = "cell-library";
    const VERSION: u32 = 1;

    fn encode(&self) -> String {
        mss_pipe::codec::JsonLine::new()
            .u64(
                "node",
                match self.node {
                    TechNode::N45 => 45,
                    TechNode::N65 => 65,
                },
            )
            .f64_bits("write_latency", self.write.latency)
            .f64_bits("write_energy", self.write.energy)
            .f64_bits("write_current", self.write.current)
            .f64_bits("read_latency", self.read.latency)
            .f64_bits("read_energy", self.read.energy)
            .f64_bits("read_current", self.read.current)
            .f64_bits("access_width", self.access_width)
            .f64_bits("cell_area", self.cell_area)
            .f64_bits("leakage", self.leakage)
            .f64_bits("critical_current", self.critical_current)
            .f64_bits("delta", self.delta)
            .f64_bits("r_parallel", self.r_parallel)
            .f64_bits("r_antiparallel", self.r_antiparallel)
            .finish()
    }

    fn decode(payload: &str) -> Option<Self> {
        use mss_pipe::codec::{get_f64_bits, get_u64, parse_object};
        let map = parse_object(payload.trim_end())?;
        let node = match get_u64(&map, "node")? {
            45 => TechNode::N45,
            65 => TechNode::N65,
            _ => return None,
        };
        Some(Self {
            node,
            write: OpMetrics {
                latency: get_f64_bits(&map, "write_latency")?,
                energy: get_f64_bits(&map, "write_energy")?,
                current: get_f64_bits(&map, "write_current")?,
            },
            read: OpMetrics {
                latency: get_f64_bits(&map, "read_latency")?,
                energy: get_f64_bits(&map, "read_energy")?,
                current: get_f64_bits(&map, "read_current")?,
            },
            access_width: get_f64_bits(&map, "access_width")?,
            cell_area: get_f64_bits(&map, "cell_area")?,
            leakage: get_f64_bits(&map, "leakage")?,
            critical_current: get_f64_bits(&map, "critical_current")?,
            delta: get_f64_bits(&map, "delta")?,
            r_parallel: get_f64_bits(&map, "r_parallel")?,
            r_antiparallel: get_f64_bits(&map, "r_antiparallel")?,
        })
    }
}

impl mss_pipe::StableHash for SotCellLibrary {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.base.stable_hash(h);
        self.params.stable_hash(h);
        h.write_f64(self.channel_resistance);
    }
}

impl mss_pipe::Artifact for SotCellLibrary {
    const KIND: &'static str = "sot-cell-library";
    const VERSION: u32 = 1;

    fn encode(&self) -> String {
        let mut out = self.base.encode();
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out.push_str(
            &mss_pipe::codec::JsonLine::new()
                .f64_bits("spin_hall_angle", self.params.spin_hall_angle)
                .f64_bits("channel_thickness", self.params.channel_thickness)
                .f64_bits("channel_resistivity", self.params.channel_resistivity)
                .f64_bits("channel_length_factor", self.params.channel_length_factor)
                .f64_bits("channel_width_factor", self.params.channel_width_factor)
                .f64_bits("field_like_ratio", self.params.field_like_ratio)
                .f64_bits("channel_resistance", self.channel_resistance)
                .finish(),
        );
        out
    }

    fn decode(payload: &str) -> Option<Self> {
        use mss_pipe::codec::{get_f64_bits, parse_object};
        let mut lines = payload.lines();
        let base = CellLibrary::decode(lines.next()?)?;
        let map = parse_object(lines.next()?.trim_end())?;
        Some(Self {
            base,
            params: SotParams {
                spin_hall_angle: get_f64_bits(&map, "spin_hall_angle")?,
                channel_thickness: get_f64_bits(&map, "channel_thickness")?,
                channel_resistivity: get_f64_bits(&map, "channel_resistivity")?,
                channel_length_factor: get_f64_bits(&map, "channel_length_factor")?,
                channel_width_factor: get_f64_bits(&map, "channel_width_factor")?,
                field_like_ratio: get_f64_bits(&map, "field_like_ratio")?,
            },
            channel_resistance: get_f64_bits(&map, "channel_resistance")?,
        })
    }
}

/// Runs the full characterisation flow for a node + stack pair.
///
/// # Errors
///
/// - [`PdkError::Characterization`] when the access device cannot reach the
///   write overdrive or a junction never flips within the pulse,
/// - circuit/device errors from the underlying layers.
pub fn characterize(node: TechNode, stack: &MssStack) -> Result<CellLibrary, PdkError> {
    let tech = TechParams::node(node);
    characterize_with(&tech, stack)
}

/// [`characterize`] through the stage pipeline: the result is memoized in
/// `cache` under [`Stage::CharacterizeCells`](mss_pipe::Stage) keyed by the
/// structural hash of the full `(tech, stack)` input, so repeated node
/// sweeps and multi-scenario flows characterise each distinct input once.
///
/// # Errors
///
/// See [`characterize`]; cache problems are never errors.
pub fn characterize_cached(
    node: TechNode,
    stack: &MssStack,
    cache: &mss_pipe::PipeCache,
) -> Result<std::sync::Arc<CellLibrary>, PdkError> {
    let tech = TechParams::node(node);
    characterize_with_cached(&tech, stack, cache)
}

/// [`characterize_with`] through the stage pipeline (see
/// [`characterize_cached`]).
///
/// # Errors
///
/// See [`characterize`]; cache problems are never errors.
pub fn characterize_with_cached(
    tech: &TechParams,
    stack: &MssStack,
    cache: &mss_pipe::PipeCache,
) -> Result<std::sync::Arc<CellLibrary>, PdkError> {
    let key = mss_pipe::digest_of(&(tech, stack));
    cache.get_or_compute_artifact(mss_pipe::Stage::CharacterizeCells, &key, || {
        characterize_with(tech, stack)
    })
}

/// [`characterize`] with an explicit (possibly variation-sampled) CMOS card.
///
/// # Errors
///
/// See [`characterize`].
pub fn characterize_with(tech: &TechParams, stack: &MssStack) -> Result<CellLibrary, PdkError> {
    let access_width = size_access_width(tech, stack)?;
    let write = characterize_write(tech, stack, access_width)?;
    let read = characterize_read(tech, stack)?;
    Ok(CellLibrary {
        node: tech.node,
        write,
        read,
        access_width,
        cell_area: tech.stt_cell_area(access_width),
        leakage: tech.leakage(access_width) * 1e-4, // off-state ~1e-4 of on-state scale
        critical_current: stack.critical_current(),
        delta: stack.thermal_stability(),
        r_parallel: stack.resistance_parallel(),
        r_antiparallel: stack.resistance_antiparallel(),
    })
}

/// Runs the full three-terminal SOT characterisation flow.
///
/// # Errors
///
/// Same surface as [`characterize`], plus [`mss_mtj::MtjError`]-backed
/// failures for invalid SOT parameters.
pub fn characterize_sot(
    node: TechNode,
    stack: &MssStack,
    params: &SotParams,
) -> Result<SotCellLibrary, PdkError> {
    let tech = TechParams::node(node);
    characterize_sot_with(&tech, stack, params)
}

/// The pipe-cache key for a SOT characterisation.
///
/// Deliberately a different shape from the STT key (`digest_of(&(tech,
/// stack))`): the mechanism discriminant plus the full [`SotParams`] are
/// folded in, so a SOT library can never collide with — or silently
/// shadow — an STT entry for the same `(tech, stack)` pair.
pub fn sot_cache_key(tech: &TechParams, stack: &MssStack, params: &SotParams) -> String {
    mss_pipe::digest_of(&(tech, stack, params, MechanismKind::Sot))
}

/// [`characterize_sot`] through the stage pipeline, memoized under
/// [`Stage::CharacterizeCells`](mss_pipe::Stage) with [`sot_cache_key`].
///
/// # Errors
///
/// See [`characterize_sot`]; cache problems are never errors.
pub fn characterize_sot_cached(
    node: TechNode,
    stack: &MssStack,
    params: &SotParams,
    cache: &mss_pipe::PipeCache,
) -> Result<std::sync::Arc<SotCellLibrary>, PdkError> {
    let tech = TechParams::node(node);
    characterize_sot_with_cached(&tech, stack, params, cache)
}

/// [`characterize_sot_with`] through the stage pipeline (see
/// [`characterize_sot_cached`]).
///
/// # Errors
///
/// See [`characterize_sot`]; cache problems are never errors.
pub fn characterize_sot_with_cached(
    tech: &TechParams,
    stack: &MssStack,
    params: &SotParams,
    cache: &mss_pipe::PipeCache,
) -> Result<std::sync::Arc<SotCellLibrary>, PdkError> {
    let key = sot_cache_key(tech, stack, params);
    cache.get_or_compute_artifact(mss_pipe::Stage::CharacterizeCells, &key, || {
        characterize_sot_with(tech, stack, params)
    })
}

/// [`characterize_sot`] with an explicit (possibly variation-sampled) CMOS
/// card.
///
/// # Errors
///
/// See [`characterize_sot`].
pub fn characterize_sot_with(
    tech: &TechParams,
    stack: &MssStack,
    params: &SotParams,
) -> Result<SotCellLibrary, PdkError> {
    let sot = SotMechanism::new(stack, params.clone())?;
    let access_width = sot_size_access_width(tech, stack, params, &sot)?;
    let write = characterize_sot_write(tech, stack, params, access_width)?;
    let read = characterize_sot_read(tech, stack, params)?;
    Ok(SotCellLibrary {
        base: CellLibrary {
            node: tech.node,
            write,
            read,
            access_width,
            cell_area: tech.sot_cell_area(access_width),
            leakage: tech.leakage(access_width) * 1e-4,
            critical_current: sot.critical_current(),
            delta: sot.delta(),
            r_parallel: stack.resistance_parallel(),
            r_antiparallel: stack.resistance_antiparallel(),
        },
        params: params.clone(),
        channel_resistance: sot.channel_resistance(),
    })
}

/// DC write current through the cell for a candidate width, in the
/// worst-case (source-degenerated, P → AP) polarity.
fn dc_write_current(tech: &TechParams, stack: &MssStack, w: f64) -> Result<f64, PdkError> {
    let mut nl = Netlist::new();
    nl.add_vsource("vbl", "bl", "0", Waveform::dc(tech.vdd))?;
    nl.add_vsource("vwl", "wl", "0", Waveform::dc(tech.vdd))?;
    nl.add_vsource("vsl", "sl", "0", Waveform::dc(0.0))?;
    nl.add_mosfet(
        "m1",
        "bl",
        "wl",
        "x",
        tech.nmos,
        mss_spice::mosfet::MosGeometry {
            width: w,
            length: tech.gate_length(),
        },
    )?;
    // Worst case: writing through the high-resistance AP state with the
    // access source degenerated by the junction voltage drop.
    nl.add_mtj("x1", "x", "sl", stack, MtjState::Antiparallel)?;
    let dc = dc_operating_point(&nl)?;
    Ok((-dc.source_current("vbl")?).abs())
}

/// Finds the smallest access width that reaches the target overdrive in the
/// worst-case write polarity.
fn size_access_width(tech: &TechParams, stack: &MssStack) -> Result<f64, PdkError> {
    let target = TARGET_OVERDRIVE * stack.critical_current();
    let (mut lo, mut hi) = (tech.min_width, 400.0 * tech.min_width);
    if dc_write_current(tech, stack, hi)? < target {
        return Err(PdkError::Characterization {
            step: "access sizing",
            reason: format!(
                "even a {:.2e} m access device cannot deliver {:.2e} A",
                hi, target
            ),
        });
    }
    if dc_write_current(tech, stack, lo)? >= target {
        return Ok(lo);
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if dc_write_current(tech, stack, mid)? >= target {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) < 1e-9 {
            break;
        }
    }
    Ok(hi)
}

/// DC channel current through the SOT cell for a candidate access width.
///
/// The write path is purely metallic (access device + heavy-metal
/// channel); the junction never carries the write current, so there is no
/// state-dependent worst case — the AP start state is used for symmetry
/// with the STT helper.
fn sot_dc_write_current(
    tech: &TechParams,
    stack: &MssStack,
    params: &SotParams,
    w: f64,
) -> Result<f64, PdkError> {
    let mut nl = Netlist::new();
    nl.add_vsource("vwbl", "wbl", "0", Waveform::dc(tech.vdd))?;
    nl.add_vsource("vwl", "wl", "0", Waveform::dc(tech.vdd))?;
    nl.add_vsource("vwsl", "wsl", "0", Waveform::dc(0.0))?;
    nl.add_mosfet(
        "m1",
        "wbl",
        "wl",
        "sh",
        tech.nmos,
        mss_spice::mosfet::MosGeometry {
            width: w,
            length: tech.gate_length(),
        },
    )?;
    nl.add_mtj_sot(
        "x1",
        "rd",
        "sh",
        "wsl",
        stack,
        params,
        MtjState::Antiparallel,
    )?;
    let dc = dc_operating_point(&nl)?;
    Ok((-dc.source_current("vwbl")?).abs())
}

/// Finds the smallest access width whose channel current reaches the
/// target overdrive over the SHE critical current.
fn sot_size_access_width(
    tech: &TechParams,
    stack: &MssStack,
    params: &SotParams,
    sot: &SotMechanism,
) -> Result<f64, PdkError> {
    let target = SOT_TARGET_OVERDRIVE * sot.critical_current();
    let (mut lo, mut hi) = (tech.min_width, 400.0 * tech.min_width);
    if sot_dc_write_current(tech, stack, params, hi)? < target {
        return Err(PdkError::Characterization {
            step: "SOT access sizing",
            reason: format!(
                "even a {:.2e} m access device cannot deliver {:.2e} A through the channel",
                hi, target
            ),
        });
    }
    if sot_dc_write_current(tech, stack, params, lo)? >= target {
        return Ok(lo);
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if sot_dc_write_current(tech, stack, params, mid)? >= target {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) < 1e-9 {
            break;
        }
    }
    Ok(hi)
}

fn characterize_sot_write(
    tech: &TechParams,
    stack: &MssStack,
    params: &SotParams,
    w_access: f64,
) -> Result<OpMetrics, PdkError> {
    let mut worst = OpMetrics {
        latency: 0.0,
        energy: 0.0,
        current: f64::INFINITY,
    };
    for dir in [WriteDirection::ToParallel, WriteDirection::ToAntiparallel] {
        let deck = sot_bitcell_write_deck(
            tech,
            stack,
            params,
            dir,
            w_access,
            SOT_CHAR_WRITE_PULSE,
            5e-15,
        )?;
        let res = run_deck(&deck)?;
        let rail = match dir {
            WriteDirection::ToParallel => "vwbl",
            WriteDirection::ToAntiparallel => "vwsl",
        };
        let flip = Measurement::CrossTime {
            name: "t_flip".into(),
            probe: Probe::MtjState("X1".into()),
            value: 0.0,
            edge: Edge::Either,
            nth: 1,
        }
        .evaluate(&res)
        .map_err(|_| PdkError::Characterization {
            step: "SOT write",
            reason: format!("junction never flipped in {dir:?} within the pulse"),
        })?;
        let t_start = Measurement::CrossTime {
            name: "t_start".into(),
            probe: Probe::NodeVoltage(rail_node(rail)),
            value: tech.vdd / 2.0,
            edge: Edge::Rise,
            nth: 1,
        }
        .evaluate(&res)?;
        let latency = flip - t_start;
        let mut energy = 0.0;
        for src in ["VWBL", "VWSL", "VWL"] {
            energy += Measurement::Energy {
                name: format!("e_{src}"),
                source: src.to_string(),
                from: t_start,
                to: flip,
            }
            .evaluate(&res)?;
        }
        let i_avg = Measurement::Average {
            name: "i_wr".into(),
            probe: Probe::SourceCurrent(rail.to_ascii_uppercase()),
            from: t_start,
            to: flip,
        }
        .evaluate(&res)?
        .abs();
        if latency > worst.latency {
            worst.latency = latency;
            worst.energy = energy;
        }
        worst.current = worst.current.min(i_avg);
    }
    Ok(worst)
}

fn characterize_sot_read(
    tech: &TechParams,
    stack: &MssStack,
    params: &SotParams,
) -> Result<OpMetrics, PdkError> {
    let r_ch = params.channel_resistance(stack.diameter());
    let r_ref = (stack.resistance_parallel() * stack.resistance_antiparallel()).sqrt() + r_ch;
    let mut worst = OpMetrics {
        latency: 0.0,
        energy: 0.0,
        current: 0.0,
    };
    for state in [MtjState::Parallel, MtjState::Antiparallel] {
        let deck = sot_pcsa_read_deck(tech, stack, params, state, r_ref, CHAR_SENSE_WINDOW)?;
        let res = run_deck(&deck)?;
        let falling = if state == MtjState::Parallel {
            "out"
        } else {
            "outb"
        };
        let latency = Measurement::Delay {
            name: "t_sense".into(),
            trig: Probe::NodeVoltage("clk".into()),
            trig_value: tech.vdd / 2.0,
            trig_edge: Edge::Rise,
            targ: Probe::NodeVoltage(falling.into()),
            targ_value: tech.vdd / 2.0,
            targ_edge: Edge::Fall,
        }
        .evaluate(&res)
        .map_err(|_| PdkError::Characterization {
            step: "SOT read",
            reason: format!("PCSA failed to resolve for state {state:?}"),
        })?;
        let mut energy = 0.0;
        for src in ["VDD", "VCLK"] {
            energy += Measurement::Energy {
                name: format!("e_{src}"),
                source: src.to_string(),
                from: 1e-9,
                to: 1e-9 + CHAR_SENSE_WINDOW,
            }
            .evaluate(&res)?;
        }
        // Cell-branch read current across the tunnel barrier.
        let s1 = res.node_voltage("s1")?;
        let shx = res.node_voltage("shx")?;
        let times = res.times();
        let r = match state {
            MtjState::Parallel => stack.resistance_parallel(),
            MtjState::Antiparallel => stack.resistance_antiparallel(),
        };
        let mut q_moved = 0.0;
        let mut window = 0.0;
        for k in 1..times.len() {
            if times[k] >= 1e-9 && times[k] <= 1e-9 + CHAR_SENSE_WINDOW {
                let dt = times[k] - times[k - 1];
                let i_inst = ((s1[k] - shx[k]) / r).abs();
                q_moved += i_inst * dt;
                window += dt;
            }
        }
        let i_avg = if window > 0.0 { q_moved / window } else { 0.0 };
        if latency > worst.latency {
            worst.latency = latency;
            worst.energy = energy;
        }
        worst.current = worst.current.max(i_avg);
    }
    Ok(worst)
}

fn run_deck(deck: &mss_spice::parser::Deck) -> Result<TransientResult, PdkError> {
    let (dt, stop) = deck.tran.ok_or(PdkError::Characterization {
        step: "deck run",
        reason: "deck has no .tran directive".to_string(),
    })?;
    Ok(Transient::new(&deck.netlist)?.run(&TransientOptions::new(dt, stop))?)
}

fn characterize_write(
    tech: &TechParams,
    stack: &MssStack,
    w_access: f64,
) -> Result<OpMetrics, PdkError> {
    let mut worst = OpMetrics {
        latency: 0.0,
        energy: 0.0,
        current: f64::INFINITY,
    };
    for dir in [WriteDirection::ToParallel, WriteDirection::ToAntiparallel] {
        let deck = bitcell_write_deck(tech, stack, dir, w_access, CHAR_WRITE_PULSE, 5e-15)?;
        let res = run_deck(&deck)?;
        // Latency: active-rail 50% rise -> junction flip.
        let rail = match dir {
            WriteDirection::ToParallel => "vbl",
            WriteDirection::ToAntiparallel => "vsl",
        };
        let flip = Measurement::CrossTime {
            name: "t_flip".into(),
            probe: Probe::MtjState("X1".into()),
            value: 0.0,
            edge: Edge::Either,
            nth: 1,
        }
        .evaluate(&res)
        .map_err(|_| PdkError::Characterization {
            step: "write",
            reason: format!("junction never flipped in {dir:?} within the pulse"),
        })?;
        let t_start = Measurement::CrossTime {
            name: "t_start".into(),
            probe: Probe::NodeVoltage(rail_node(rail)),
            value: tech.vdd / 2.0,
            edge: Edge::Rise,
            nth: 1,
        }
        .evaluate(&res)?;
        let latency = flip - t_start;
        // Energy: both rail sources over the active window.
        let mut energy = 0.0;
        for src in ["VBL", "VSL", "VWL"] {
            energy += Measurement::Energy {
                name: format!("e_{src}"),
                source: src.to_string(),
                from: t_start,
                to: flip,
            }
            .evaluate(&res)?;
        }
        // Switching current: average source-line/bit-line current while
        // writing.
        let i_avg = Measurement::Average {
            name: "i_wr".into(),
            probe: Probe::SourceCurrent(rail.to_ascii_uppercase()),
            from: t_start,
            to: flip,
        }
        .evaluate(&res)?
        .abs();
        if latency > worst.latency {
            worst.latency = latency;
            worst.energy = energy;
        }
        worst.current = worst.current.min(i_avg);
    }
    Ok(worst)
}

fn rail_node(rail: &str) -> String {
    match rail {
        "vbl" => "bl".to_string(),
        "vsl" => "sl".to_string(),
        "vwbl" => "wbl".to_string(),
        "vwsl" => "wsl".to_string(),
        other => other.to_string(),
    }
}

fn characterize_read(tech: &TechParams, stack: &MssStack) -> Result<OpMetrics, PdkError> {
    let r_ref = (stack.resistance_parallel() * stack.resistance_antiparallel()).sqrt();
    let mut worst = OpMetrics {
        latency: 0.0,
        energy: 0.0,
        current: 0.0,
    };
    for state in [MtjState::Parallel, MtjState::Antiparallel] {
        let deck = pcsa_read_deck(tech, stack, state, r_ref, CHAR_SENSE_WINDOW)?;
        let res = run_deck(&deck)?;
        // Sense delay: clk 50% rise -> losing side below vdd/2.
        let falling = if state == MtjState::Parallel {
            "out"
        } else {
            "outb"
        };
        let latency = Measurement::Delay {
            name: "t_sense".into(),
            trig: Probe::NodeVoltage("clk".into()),
            trig_value: tech.vdd / 2.0,
            trig_edge: Edge::Rise,
            targ: Probe::NodeVoltage(falling.into()),
            targ_value: tech.vdd / 2.0,
            targ_edge: Edge::Fall,
        }
        .evaluate(&res)
        .map_err(|_| PdkError::Characterization {
            step: "read",
            reason: format!("PCSA failed to resolve for state {state:?}"),
        })?;
        let mut energy = 0.0;
        for src in ["VDD", "VCLK"] {
            energy += Measurement::Energy {
                name: format!("e_{src}"),
                source: src.to_string(),
                from: 1e-9,
                to: 1e-9 + CHAR_SENSE_WINDOW,
            }
            .evaluate(&res)?;
        }
        // Read current through the cell branch: (v(s1) - v(tail)) / R.
        let s1 = res.node_voltage("s1")?;
        let tail = res.node_voltage("tail")?;
        let times = res.times();
        let r = match state {
            MtjState::Parallel => stack.resistance_parallel(),
            MtjState::Antiparallel => stack.resistance_antiparallel(),
        };
        // Charge-average cell current across the sense window: the figure
        // that matters for read disturb (the discharge spike is brief).
        let mut q_moved = 0.0;
        let mut window = 0.0;
        for k in 1..times.len() {
            if times[k] >= 1e-9 && times[k] <= 1e-9 + CHAR_SENSE_WINDOW {
                let dt = times[k] - times[k - 1];
                let i_inst = ((s1[k] - tail[k]) / r).abs();
                q_moved += i_inst * dt;
                window += dt;
            }
        }
        let i_avg = if window > 0.0 { q_moved / window } else { 0.0 };
        if latency > worst.latency {
            worst.latency = latency;
            worst.energy = energy;
        }
        worst.current = worst.current.max(i_avg);
    }
    Ok(worst)
}

/// Characterises the cell at every process corner (TT/SS/FF/SF/FS) —
/// classic corner-based signoff next to the statistical VAET flow.
///
/// # Errors
///
/// Propagates per-corner characterisation failures.
pub fn characterize_corners(
    node: TechNode,
    stack: &MssStack,
) -> Result<Vec<(ProcessCorner, CellLibrary)>, PdkError> {
    let nominal = TechParams::node(node);
    let card = VariationCard::node(node);
    ProcessCorner::ALL
        .iter()
        .map(|&corner| {
            let tech = card.corner_tech(&nominal, corner);
            characterize_with(&tech, stack).map(|lib| (corner, lib))
        })
        .collect()
}

/// Characterises the non-volatile flip-flop: worst-case two-phase backup
/// followed by a PCSA restore.
///
/// # Errors
///
/// [`PdkError::Characterization`] when a junction never flips during backup
/// or the restore latch fails to resolve.
pub fn characterize_nvff(tech: &TechParams, stack: &MssStack) -> Result<NvffMetrics, PdkError> {
    let w_access = 24.0 * tech.feature;
    let t_phase = 15e-9;
    let mut backup_latency: f64 = 0.0;
    let mut backup_energy: f64 = 0.0;
    for q in [true, false] {
        let deck = nvff_backup_deck(tech, stack, q, w_access, t_phase)?;
        let res = run_deck(&deck)?;
        if res.events().len() != 2 {
            return Err(PdkError::Characterization {
                step: "nvff backup",
                reason: format!(
                    "expected both junctions to flip for q={q}, saw {} events",
                    res.events().len()
                ),
            });
        }
        let last_flip = res
            .events()
            .iter()
            .map(|e| e.time)
            .fold(f64::NEG_INFINITY, f64::max);
        backup_latency = backup_latency.max(last_flip - 1e-9);
        let mut energy = 0.0;
        for src in ["VQ", "VQB", "VCOM", "VCTRL"] {
            energy += Measurement::Energy {
                name: format!("e_{src}"),
                source: src.to_string(),
                from: 1e-9,
                to: last_flip,
            }
            .evaluate(&res)?;
        }
        backup_energy = backup_energy.max(energy);
    }

    let t_sense = 3e-9;
    let mut restore_latency: f64 = 0.0;
    let mut restore_energy: f64 = 0.0;
    for q in [true, false] {
        let deck = nvff_restore_deck(tech, stack, q, t_sense)?;
        let res = run_deck(&deck)?;
        // The P-side output falls; measure clk 50% -> falling side below
        // vdd/2.
        let falling = if q { "q" } else { "qb" };
        let latency = Measurement::Delay {
            name: "t_restore".into(),
            trig: Probe::NodeVoltage("clk".into()),
            trig_value: tech.vdd / 2.0,
            trig_edge: Edge::Rise,
            targ: Probe::NodeVoltage(falling.into()),
            targ_value: tech.vdd / 2.0,
            targ_edge: Edge::Fall,
        }
        .evaluate(&res)
        .map_err(|_| PdkError::Characterization {
            step: "nvff restore",
            reason: format!("latch failed to resolve for q={q}"),
        })?;
        restore_latency = restore_latency.max(latency);
        let mut energy = 0.0;
        for src in ["VDD", "VCLK"] {
            energy += Measurement::Energy {
                name: format!("e_{src}"),
                source: src.to_string(),
                from: 1e-9,
                to: 1e-9 + t_sense,
            }
            .evaluate(&res)?;
        }
        restore_energy = restore_energy.max(energy);
    }

    Ok(NvffMetrics {
        backup_latency,
        backup_energy,
        restore_latency,
        restore_energy,
    })
}

impl CellLibrary {
    /// Serialises to the `name = value` measurement-file format (the cell
    /// configuration file of the VAET-STT tool).
    pub fn to_report(&self) -> Report {
        let mut r = Report::new();
        r.insert(
            "node_nm",
            match self.node {
                TechNode::N45 => 45.0,
                TechNode::N65 => 65.0,
            },
        );
        r.insert("write_latency", self.write.latency);
        r.insert("write_energy", self.write.energy);
        r.insert("write_current", self.write.current);
        r.insert("read_latency", self.read.latency);
        r.insert("read_energy", self.read.energy);
        r.insert("read_current", self.read.current);
        r.insert("access_width", self.access_width);
        r.insert("cell_area", self.cell_area);
        r.insert("leakage", self.leakage);
        r.insert("critical_current", self.critical_current);
        r.insert("delta", self.delta);
        r.insert("r_parallel", self.r_parallel);
        r.insert("r_antiparallel", self.r_antiparallel);
        r
    }

    /// Parses a cell configuration back from a measurement report.
    ///
    /// # Errors
    ///
    /// [`PdkError::Characterization`] when a required key is missing.
    pub fn from_report(report: &Report) -> Result<Self, PdkError> {
        let get = |key: &str| {
            report.get(key).ok_or(PdkError::Characterization {
                step: "report parse",
                reason: format!("missing key '{key}'"),
            })
        };
        let node = if (get("node_nm")? - 45.0).abs() < 1.0 {
            TechNode::N45
        } else {
            TechNode::N65
        };
        Ok(Self {
            node,
            write: OpMetrics {
                latency: get("write_latency")?,
                energy: get("write_energy")?,
                current: get("write_current")?,
            },
            read: OpMetrics {
                latency: get("read_latency")?,
                energy: get("read_energy")?,
                current: get("read_current")?,
            },
            access_width: get("access_width")?,
            cell_area: get("cell_area")?,
            leakage: get("leakage")?,
            critical_current: get("critical_current")?,
            delta: get("delta")?,
            r_parallel: get("r_parallel")?,
            r_antiparallel: get("r_antiparallel")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> MssStack {
        MssStack::builder().build().unwrap()
    }

    #[test]
    fn sizing_hits_overdrive_target() {
        let tech = TechParams::node(TechNode::N45);
        let s = stack();
        let w = size_access_width(&tech, &s).unwrap();
        let i = dc_write_current(&tech, &s, w).unwrap();
        let target = TARGET_OVERDRIVE * s.critical_current();
        assert!(
            i >= target && i < 1.3 * target,
            "i = {i:.3e}, target = {target:.3e}"
        );
        assert!(w > tech.min_width && w < 400.0 * tech.min_width);
    }

    #[test]
    fn characterization_produces_sane_metrics_45nm() {
        let lib = characterize(TechNode::N45, &stack()).unwrap();
        // Write: a few ns, read: sub-2ns (paper Table 1 nominal shapes).
        assert!(
            lib.write.latency > 1e-9 && lib.write.latency < 12e-9,
            "write latency = {:.3e}",
            lib.write.latency
        );
        assert!(
            lib.read.latency > 10e-12 && lib.read.latency < 2e-9,
            "read latency = {:.3e}",
            lib.read.latency
        );
        assert!(lib.read.latency < lib.write.latency);
        // Cell-level energies: write in the 100s of fJ, read far less.
        assert!(lib.write.energy > 1e-14 && lib.write.energy < 5e-12);
        assert!(lib.read.energy < lib.write.energy);
        // Write current near the overdrive target, read well below Ic0.
        assert!(lib.write.current > 1.5 * lib.critical_current);
        assert!(lib.read.current < 0.8 * lib.critical_current);
    }

    #[test]
    fn both_nodes_characterize() {
        let s = stack();
        let l45 = characterize(TechNode::N45, &s).unwrap();
        let l65 = characterize(TechNode::N65, &s).unwrap();
        // The same junction needs a similar write current; both nodes must
        // deliver it.
        assert!(l45.write.current > 0.0 && l65.write.current > 0.0);
        // 65 nm cells are physically larger.
        assert!(l65.cell_area > l45.cell_area);
    }

    #[test]
    fn corner_characterisation_orders_write_current() {
        let libs = characterize_corners(TechNode::N45, &stack()).unwrap();
        assert_eq!(libs.len(), 5);
        let get = |c: ProcessCorner| {
            libs.iter()
                .find(|(k, _)| *k == c)
                .map(|(_, l)| l)
                .expect("corner present")
        };
        let ss = get(ProcessCorner::Ss);
        let tt = get(ProcessCorner::Tt);
        let ff = get(ProcessCorner::Ff);
        // Slow silicon needs a wider access device for the same overdrive.
        assert!(ss.access_width > tt.access_width);
        assert!(ff.access_width < tt.access_width);
        // The junction's own numbers don't move with the CMOS corner.
        assert_eq!(ss.critical_current, ff.critical_current);
    }

    #[test]
    fn nvff_characterisation_is_sane() {
        let tech = TechParams::node(TechNode::N45);
        let m = characterize_nvff(&tech, &stack()).unwrap();
        // Backup spans both write phases: slower than a single cell write
        // but bounded by the two 15 ns phases.
        assert!(
            m.backup_latency > 5e-9 && m.backup_latency < 32e-9,
            "backup latency {:.3e}",
            m.backup_latency
        );
        // Restore is a sense, orders of magnitude faster than backup.
        assert!(m.restore_latency < 0.1 * m.backup_latency);
        assert!(m.backup_energy > m.restore_energy);
        assert!(m.restore_energy > 0.0);
    }

    #[test]
    fn sot_characterization_beats_stt_on_write() {
        let s = stack();
        let stt = characterize(TechNode::N45, &s).unwrap();
        let sot = characterize_sot(TechNode::N45, &s, &SotParams::default()).unwrap();
        // The channel write dodges the damping limit: much faster...
        assert!(
            sot.base.write.latency < 0.25 * stt.write.latency,
            "sot = {:.3e}, stt = {:.3e}",
            sot.base.write.latency,
            stt.write.latency
        );
        // ...and cheaper per bit, despite the larger critical current.
        assert!(
            sot.base.write.energy < stt.write.energy,
            "sot = {:.3e}, stt = {:.3e}",
            sot.base.write.energy,
            stt.write.energy
        );
        // The read is still a PCSA sense of the same junction.
        assert!(sot.base.read.latency > 10e-12 && sot.base.read.latency < 2e-9);
        assert!(sot.base.read.current < 0.8 * s.critical_current());
        // Three-terminal cell pays area over the 1T-1MTJ cell of the same
        // access width.
        let tech = TechParams::node(TechNode::N45);
        assert!(sot.base.cell_area > tech.stt_cell_area(sot.base.access_width));
        // Metallic channel is far below the junction resistance.
        assert!(sot.channel_resistance < 0.5 * s.resistance_parallel());
    }

    #[test]
    fn sot_cache_key_is_disjoint_from_stt() {
        let tech = TechParams::node(TechNode::N45);
        let s = stack();
        let p = SotParams::default();
        let stt_key = mss_pipe::digest_of(&(&tech, &s));
        assert_ne!(sot_cache_key(&tech, &s, &p), stt_key);
        let mut p2 = p.clone();
        p2.spin_hall_angle = 0.25;
        assert_ne!(sot_cache_key(&tech, &s, &p), sot_cache_key(&tech, &s, &p2));
    }

    #[test]
    fn sot_cached_characterization_memoizes() {
        let cache = mss_pipe::PipeCache::memory_only();
        let s = stack();
        let p = SotParams::default();
        let a = characterize_sot_cached(TechNode::N45, &s, &p, &cache).unwrap();
        let b = characterize_sot_cached(TechNode::N45, &s, &p, &cache).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        // An STT characterisation of the same inputs must not collide.
        let stt = characterize_cached(TechNode::N45, &s, &cache).unwrap();
        assert!((stt.write.latency - a.base.write.latency).abs() > f64::EPSILON);
    }

    #[test]
    fn sot_artifact_round_trip() {
        use mss_pipe::Artifact;
        let lib = characterize_sot(TechNode::N45, &stack(), &SotParams::default()).unwrap();
        let back = SotCellLibrary::decode(&lib.encode()).unwrap();
        assert_eq!(lib, back);
    }

    #[test]
    fn report_round_trip() {
        let lib = characterize(TechNode::N45, &stack()).unwrap();
        let text = lib.to_report().to_text();
        let back = CellLibrary::from_report(&Report::parse(&text).unwrap()).unwrap();
        assert_eq!(lib.node, back.node);
        assert!((lib.write.latency - back.write.latency).abs() < 1e-20);
        assert!((lib.read.energy - back.read.energy).abs() < 1e-25);
    }

    #[test]
    fn from_report_rejects_missing_keys() {
        let r = Report::parse("node_nm = 45\n").unwrap();
        assert!(CellLibrary::from_report(&r).is_err());
    }
}
