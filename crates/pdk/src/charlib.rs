//! Cell characterisation: template → transient → MDL → cell configuration.
//!
//! This is the paper's Sec. IV-A loop: *"the SPICE simulation generates
//! output measurement file that is then parsed to extract the required cell
//! level parameters such as switching current, delay and energy values.
//! These values are updated into the cell configuration file of the VAET-STT
//! tool."* [`characterize`] produces a [`CellLibrary`]; its
//! [`CellLibrary::to_report`]/[`CellLibrary::from_report`] pair is the
//! measurement-file round trip.

use mss_mtj::resistance::MtjState;
use mss_mtj::MssStack;
use mss_spice::analysis::{dc_operating_point, Transient, TransientOptions, TransientResult};
use mss_spice::mdl::{Edge, Measurement, Probe, Report};
use mss_spice::netlist::Netlist;
use mss_spice::waveform::Waveform;

use crate::cells::{
    bitcell_write_deck, nvff_backup_deck, nvff_restore_deck, pcsa_read_deck, WriteDirection,
};
use crate::tech::{TechNode, TechParams};
use crate::variation::{ProcessCorner, VariationCard};
use crate::PdkError;

/// Latency/energy/current triple for one memory operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMetrics {
    /// Operation latency in seconds.
    pub latency: f64,
    /// Energy per operation in joules (cell-level, excluding array wires).
    pub energy: f64,
    /// Cell current during the operation in amperes.
    pub current: f64,
}

/// The characterised cell configuration consumed by VAET-STT.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    /// Technology node the library was characterised at.
    pub node: TechNode,
    /// Worst-case write metrics across both polarities.
    pub write: OpMetrics,
    /// Worst-case read (sense) metrics across both stored states.
    pub read: OpMetrics,
    /// Access-transistor width chosen by the sizing loop, metres.
    pub access_width: f64,
    /// Bit-cell area in m².
    pub cell_area: f64,
    /// Cell leakage in amperes (access device off-state).
    pub leakage: f64,
    /// Critical current of the junction, amperes.
    pub critical_current: f64,
    /// Thermal stability factor Δ of the junction.
    pub delta: f64,
    /// Parallel-state resistance, ohms.
    pub r_parallel: f64,
    /// Antiparallel-state resistance, ohms.
    pub r_antiparallel: f64,
}

/// Characterised metrics of the non-volatile flip-flop (backup + restore).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvffMetrics {
    /// Two-phase backup time (both junctions written), seconds.
    pub backup_latency: f64,
    /// Energy of one backup, joules.
    pub backup_energy: f64,
    /// Restore (PCSA regeneration) delay, seconds.
    pub restore_latency: f64,
    /// Energy of one restore, joules.
    pub restore_energy: f64,
}

/// Target write overdrive I_write/I_c0 used by the access sizing loop.
const TARGET_OVERDRIVE: f64 = 2.5;
/// Write pulse used during characterisation, seconds.
const CHAR_WRITE_PULSE: f64 = 12e-9;
/// Sense window used during read characterisation, seconds.
const CHAR_SENSE_WINDOW: f64 = 3e-9;

impl mss_pipe::StableHash for OpMetrics {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_f64(self.latency);
        h.write_f64(self.energy);
        h.write_f64(self.current);
    }
}

impl mss_pipe::StableHash for CellLibrary {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.node.stable_hash(h);
        self.write.stable_hash(h);
        self.read.stable_hash(h);
        h.write_f64(self.access_width);
        h.write_f64(self.cell_area);
        h.write_f64(self.leakage);
        h.write_f64(self.critical_current);
        h.write_f64(self.delta);
        h.write_f64(self.r_parallel);
        h.write_f64(self.r_antiparallel);
    }
}

impl mss_pipe::Artifact for CellLibrary {
    const KIND: &'static str = "cell-library";
    const VERSION: u32 = 1;

    fn encode(&self) -> String {
        mss_pipe::codec::JsonLine::new()
            .u64(
                "node",
                match self.node {
                    TechNode::N45 => 45,
                    TechNode::N65 => 65,
                },
            )
            .f64_bits("write_latency", self.write.latency)
            .f64_bits("write_energy", self.write.energy)
            .f64_bits("write_current", self.write.current)
            .f64_bits("read_latency", self.read.latency)
            .f64_bits("read_energy", self.read.energy)
            .f64_bits("read_current", self.read.current)
            .f64_bits("access_width", self.access_width)
            .f64_bits("cell_area", self.cell_area)
            .f64_bits("leakage", self.leakage)
            .f64_bits("critical_current", self.critical_current)
            .f64_bits("delta", self.delta)
            .f64_bits("r_parallel", self.r_parallel)
            .f64_bits("r_antiparallel", self.r_antiparallel)
            .finish()
    }

    fn decode(payload: &str) -> Option<Self> {
        use mss_pipe::codec::{get_f64_bits, get_u64, parse_object};
        let map = parse_object(payload.trim_end())?;
        let node = match get_u64(&map, "node")? {
            45 => TechNode::N45,
            65 => TechNode::N65,
            _ => return None,
        };
        Some(Self {
            node,
            write: OpMetrics {
                latency: get_f64_bits(&map, "write_latency")?,
                energy: get_f64_bits(&map, "write_energy")?,
                current: get_f64_bits(&map, "write_current")?,
            },
            read: OpMetrics {
                latency: get_f64_bits(&map, "read_latency")?,
                energy: get_f64_bits(&map, "read_energy")?,
                current: get_f64_bits(&map, "read_current")?,
            },
            access_width: get_f64_bits(&map, "access_width")?,
            cell_area: get_f64_bits(&map, "cell_area")?,
            leakage: get_f64_bits(&map, "leakage")?,
            critical_current: get_f64_bits(&map, "critical_current")?,
            delta: get_f64_bits(&map, "delta")?,
            r_parallel: get_f64_bits(&map, "r_parallel")?,
            r_antiparallel: get_f64_bits(&map, "r_antiparallel")?,
        })
    }
}

/// Runs the full characterisation flow for a node + stack pair.
///
/// # Errors
///
/// - [`PdkError::Characterization`] when the access device cannot reach the
///   write overdrive or a junction never flips within the pulse,
/// - circuit/device errors from the underlying layers.
pub fn characterize(node: TechNode, stack: &MssStack) -> Result<CellLibrary, PdkError> {
    let tech = TechParams::node(node);
    characterize_with(&tech, stack)
}

/// [`characterize`] through the stage pipeline: the result is memoized in
/// `cache` under [`Stage::CharacterizeCells`](mss_pipe::Stage) keyed by the
/// structural hash of the full `(tech, stack)` input, so repeated node
/// sweeps and multi-scenario flows characterise each distinct input once.
///
/// # Errors
///
/// See [`characterize`]; cache problems are never errors.
pub fn characterize_cached(
    node: TechNode,
    stack: &MssStack,
    cache: &mss_pipe::PipeCache,
) -> Result<std::sync::Arc<CellLibrary>, PdkError> {
    let tech = TechParams::node(node);
    characterize_with_cached(&tech, stack, cache)
}

/// [`characterize_with`] through the stage pipeline (see
/// [`characterize_cached`]).
///
/// # Errors
///
/// See [`characterize`]; cache problems are never errors.
pub fn characterize_with_cached(
    tech: &TechParams,
    stack: &MssStack,
    cache: &mss_pipe::PipeCache,
) -> Result<std::sync::Arc<CellLibrary>, PdkError> {
    let key = mss_pipe::digest_of(&(tech, stack));
    cache.get_or_compute_artifact(mss_pipe::Stage::CharacterizeCells, &key, || {
        characterize_with(tech, stack)
    })
}

/// [`characterize`] with an explicit (possibly variation-sampled) CMOS card.
///
/// # Errors
///
/// See [`characterize`].
pub fn characterize_with(tech: &TechParams, stack: &MssStack) -> Result<CellLibrary, PdkError> {
    let access_width = size_access_width(tech, stack)?;
    let write = characterize_write(tech, stack, access_width)?;
    let read = characterize_read(tech, stack)?;
    Ok(CellLibrary {
        node: tech.node,
        write,
        read,
        access_width,
        cell_area: tech.stt_cell_area(access_width),
        leakage: tech.leakage(access_width) * 1e-4, // off-state ~1e-4 of on-state scale
        critical_current: stack.critical_current(),
        delta: stack.thermal_stability(),
        r_parallel: stack.resistance_parallel(),
        r_antiparallel: stack.resistance_antiparallel(),
    })
}

/// DC write current through the cell for a candidate width, in the
/// worst-case (source-degenerated, P → AP) polarity.
fn dc_write_current(tech: &TechParams, stack: &MssStack, w: f64) -> Result<f64, PdkError> {
    let mut nl = Netlist::new();
    nl.add_vsource("vbl", "bl", "0", Waveform::dc(tech.vdd))?;
    nl.add_vsource("vwl", "wl", "0", Waveform::dc(tech.vdd))?;
    nl.add_vsource("vsl", "sl", "0", Waveform::dc(0.0))?;
    nl.add_mosfet(
        "m1",
        "bl",
        "wl",
        "x",
        tech.nmos,
        mss_spice::mosfet::MosGeometry {
            width: w,
            length: tech.gate_length(),
        },
    )?;
    // Worst case: writing through the high-resistance AP state with the
    // access source degenerated by the junction voltage drop.
    nl.add_mtj("x1", "x", "sl", stack, MtjState::Antiparallel)?;
    let dc = dc_operating_point(&nl)?;
    Ok((-dc.source_current("vbl")?).abs())
}

/// Finds the smallest access width that reaches the target overdrive in the
/// worst-case write polarity.
fn size_access_width(tech: &TechParams, stack: &MssStack) -> Result<f64, PdkError> {
    let target = TARGET_OVERDRIVE * stack.critical_current();
    let (mut lo, mut hi) = (tech.min_width, 400.0 * tech.min_width);
    if dc_write_current(tech, stack, hi)? < target {
        return Err(PdkError::Characterization {
            step: "access sizing",
            reason: format!(
                "even a {:.2e} m access device cannot deliver {:.2e} A",
                hi, target
            ),
        });
    }
    if dc_write_current(tech, stack, lo)? >= target {
        return Ok(lo);
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if dc_write_current(tech, stack, mid)? >= target {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) < 1e-9 {
            break;
        }
    }
    Ok(hi)
}

fn run_deck(deck: &mss_spice::parser::Deck) -> Result<TransientResult, PdkError> {
    let (dt, stop) = deck.tran.ok_or(PdkError::Characterization {
        step: "deck run",
        reason: "deck has no .tran directive".to_string(),
    })?;
    Ok(Transient::new(&deck.netlist)?.run(&TransientOptions::new(dt, stop))?)
}

fn characterize_write(
    tech: &TechParams,
    stack: &MssStack,
    w_access: f64,
) -> Result<OpMetrics, PdkError> {
    let mut worst = OpMetrics {
        latency: 0.0,
        energy: 0.0,
        current: f64::INFINITY,
    };
    for dir in [WriteDirection::ToParallel, WriteDirection::ToAntiparallel] {
        let deck = bitcell_write_deck(tech, stack, dir, w_access, CHAR_WRITE_PULSE, 5e-15)?;
        let res = run_deck(&deck)?;
        // Latency: active-rail 50% rise -> junction flip.
        let rail = match dir {
            WriteDirection::ToParallel => "vbl",
            WriteDirection::ToAntiparallel => "vsl",
        };
        let flip = Measurement::CrossTime {
            name: "t_flip".into(),
            probe: Probe::MtjState("X1".into()),
            value: 0.0,
            edge: Edge::Either,
            nth: 1,
        }
        .evaluate(&res)
        .map_err(|_| PdkError::Characterization {
            step: "write",
            reason: format!("junction never flipped in {dir:?} within the pulse"),
        })?;
        let t_start = Measurement::CrossTime {
            name: "t_start".into(),
            probe: Probe::NodeVoltage(rail_node(rail)),
            value: tech.vdd / 2.0,
            edge: Edge::Rise,
            nth: 1,
        }
        .evaluate(&res)?;
        let latency = flip - t_start;
        // Energy: both rail sources over the active window.
        let mut energy = 0.0;
        for src in ["VBL", "VSL", "VWL"] {
            energy += Measurement::Energy {
                name: format!("e_{src}"),
                source: src.to_string(),
                from: t_start,
                to: flip,
            }
            .evaluate(&res)?;
        }
        // Switching current: average source-line/bit-line current while
        // writing.
        let i_avg = Measurement::Average {
            name: "i_wr".into(),
            probe: Probe::SourceCurrent(rail.to_ascii_uppercase()),
            from: t_start,
            to: flip,
        }
        .evaluate(&res)?
        .abs();
        if latency > worst.latency {
            worst.latency = latency;
            worst.energy = energy;
        }
        worst.current = worst.current.min(i_avg);
    }
    Ok(worst)
}

fn rail_node(rail: &str) -> String {
    match rail {
        "vbl" => "bl".to_string(),
        "vsl" => "sl".to_string(),
        other => other.to_string(),
    }
}

fn characterize_read(tech: &TechParams, stack: &MssStack) -> Result<OpMetrics, PdkError> {
    let r_ref = (stack.resistance_parallel() * stack.resistance_antiparallel()).sqrt();
    let mut worst = OpMetrics {
        latency: 0.0,
        energy: 0.0,
        current: 0.0,
    };
    for state in [MtjState::Parallel, MtjState::Antiparallel] {
        let deck = pcsa_read_deck(tech, stack, state, r_ref, CHAR_SENSE_WINDOW)?;
        let res = run_deck(&deck)?;
        // Sense delay: clk 50% rise -> losing side below vdd/2.
        let falling = if state == MtjState::Parallel {
            "out"
        } else {
            "outb"
        };
        let latency = Measurement::Delay {
            name: "t_sense".into(),
            trig: Probe::NodeVoltage("clk".into()),
            trig_value: tech.vdd / 2.0,
            trig_edge: Edge::Rise,
            targ: Probe::NodeVoltage(falling.into()),
            targ_value: tech.vdd / 2.0,
            targ_edge: Edge::Fall,
        }
        .evaluate(&res)
        .map_err(|_| PdkError::Characterization {
            step: "read",
            reason: format!("PCSA failed to resolve for state {state:?}"),
        })?;
        let mut energy = 0.0;
        for src in ["VDD", "VCLK"] {
            energy += Measurement::Energy {
                name: format!("e_{src}"),
                source: src.to_string(),
                from: 1e-9,
                to: 1e-9 + CHAR_SENSE_WINDOW,
            }
            .evaluate(&res)?;
        }
        // Read current through the cell branch: (v(s1) - v(tail)) / R.
        let s1 = res.node_voltage("s1")?;
        let tail = res.node_voltage("tail")?;
        let times = res.times();
        let r = match state {
            MtjState::Parallel => stack.resistance_parallel(),
            MtjState::Antiparallel => stack.resistance_antiparallel(),
        };
        // Charge-average cell current across the sense window: the figure
        // that matters for read disturb (the discharge spike is brief).
        let mut q_moved = 0.0;
        let mut window = 0.0;
        for k in 1..times.len() {
            if times[k] >= 1e-9 && times[k] <= 1e-9 + CHAR_SENSE_WINDOW {
                let dt = times[k] - times[k - 1];
                let i_inst = ((s1[k] - tail[k]) / r).abs();
                q_moved += i_inst * dt;
                window += dt;
            }
        }
        let i_avg = if window > 0.0 { q_moved / window } else { 0.0 };
        if latency > worst.latency {
            worst.latency = latency;
            worst.energy = energy;
        }
        worst.current = worst.current.max(i_avg);
    }
    Ok(worst)
}

/// Characterises the cell at every process corner (TT/SS/FF/SF/FS) —
/// classic corner-based signoff next to the statistical VAET flow.
///
/// # Errors
///
/// Propagates per-corner characterisation failures.
pub fn characterize_corners(
    node: TechNode,
    stack: &MssStack,
) -> Result<Vec<(ProcessCorner, CellLibrary)>, PdkError> {
    let nominal = TechParams::node(node);
    let card = VariationCard::node(node);
    ProcessCorner::ALL
        .iter()
        .map(|&corner| {
            let tech = card.corner_tech(&nominal, corner);
            characterize_with(&tech, stack).map(|lib| (corner, lib))
        })
        .collect()
}

/// Characterises the non-volatile flip-flop: worst-case two-phase backup
/// followed by a PCSA restore.
///
/// # Errors
///
/// [`PdkError::Characterization`] when a junction never flips during backup
/// or the restore latch fails to resolve.
pub fn characterize_nvff(tech: &TechParams, stack: &MssStack) -> Result<NvffMetrics, PdkError> {
    let w_access = 24.0 * tech.feature;
    let t_phase = 15e-9;
    let mut backup_latency: f64 = 0.0;
    let mut backup_energy: f64 = 0.0;
    for q in [true, false] {
        let deck = nvff_backup_deck(tech, stack, q, w_access, t_phase)?;
        let res = run_deck(&deck)?;
        if res.events().len() != 2 {
            return Err(PdkError::Characterization {
                step: "nvff backup",
                reason: format!(
                    "expected both junctions to flip for q={q}, saw {} events",
                    res.events().len()
                ),
            });
        }
        let last_flip = res
            .events()
            .iter()
            .map(|e| e.time)
            .fold(f64::NEG_INFINITY, f64::max);
        backup_latency = backup_latency.max(last_flip - 1e-9);
        let mut energy = 0.0;
        for src in ["VQ", "VQB", "VCOM", "VCTRL"] {
            energy += Measurement::Energy {
                name: format!("e_{src}"),
                source: src.to_string(),
                from: 1e-9,
                to: last_flip,
            }
            .evaluate(&res)?;
        }
        backup_energy = backup_energy.max(energy);
    }

    let t_sense = 3e-9;
    let mut restore_latency: f64 = 0.0;
    let mut restore_energy: f64 = 0.0;
    for q in [true, false] {
        let deck = nvff_restore_deck(tech, stack, q, t_sense)?;
        let res = run_deck(&deck)?;
        // The P-side output falls; measure clk 50% -> falling side below
        // vdd/2.
        let falling = if q { "q" } else { "qb" };
        let latency = Measurement::Delay {
            name: "t_restore".into(),
            trig: Probe::NodeVoltage("clk".into()),
            trig_value: tech.vdd / 2.0,
            trig_edge: Edge::Rise,
            targ: Probe::NodeVoltage(falling.into()),
            targ_value: tech.vdd / 2.0,
            targ_edge: Edge::Fall,
        }
        .evaluate(&res)
        .map_err(|_| PdkError::Characterization {
            step: "nvff restore",
            reason: format!("latch failed to resolve for q={q}"),
        })?;
        restore_latency = restore_latency.max(latency);
        let mut energy = 0.0;
        for src in ["VDD", "VCLK"] {
            energy += Measurement::Energy {
                name: format!("e_{src}"),
                source: src.to_string(),
                from: 1e-9,
                to: 1e-9 + t_sense,
            }
            .evaluate(&res)?;
        }
        restore_energy = restore_energy.max(energy);
    }

    Ok(NvffMetrics {
        backup_latency,
        backup_energy,
        restore_latency,
        restore_energy,
    })
}

impl CellLibrary {
    /// Serialises to the `name = value` measurement-file format (the cell
    /// configuration file of the VAET-STT tool).
    pub fn to_report(&self) -> Report {
        let mut r = Report::new();
        r.insert(
            "node_nm",
            match self.node {
                TechNode::N45 => 45.0,
                TechNode::N65 => 65.0,
            },
        );
        r.insert("write_latency", self.write.latency);
        r.insert("write_energy", self.write.energy);
        r.insert("write_current", self.write.current);
        r.insert("read_latency", self.read.latency);
        r.insert("read_energy", self.read.energy);
        r.insert("read_current", self.read.current);
        r.insert("access_width", self.access_width);
        r.insert("cell_area", self.cell_area);
        r.insert("leakage", self.leakage);
        r.insert("critical_current", self.critical_current);
        r.insert("delta", self.delta);
        r.insert("r_parallel", self.r_parallel);
        r.insert("r_antiparallel", self.r_antiparallel);
        r
    }

    /// Parses a cell configuration back from a measurement report.
    ///
    /// # Errors
    ///
    /// [`PdkError::Characterization`] when a required key is missing.
    pub fn from_report(report: &Report) -> Result<Self, PdkError> {
        let get = |key: &str| {
            report.get(key).ok_or(PdkError::Characterization {
                step: "report parse",
                reason: format!("missing key '{key}'"),
            })
        };
        let node = if (get("node_nm")? - 45.0).abs() < 1.0 {
            TechNode::N45
        } else {
            TechNode::N65
        };
        Ok(Self {
            node,
            write: OpMetrics {
                latency: get("write_latency")?,
                energy: get("write_energy")?,
                current: get("write_current")?,
            },
            read: OpMetrics {
                latency: get("read_latency")?,
                energy: get("read_energy")?,
                current: get("read_current")?,
            },
            access_width: get("access_width")?,
            cell_area: get("cell_area")?,
            leakage: get("leakage")?,
            critical_current: get("critical_current")?,
            delta: get("delta")?,
            r_parallel: get("r_parallel")?,
            r_antiparallel: get("r_antiparallel")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> MssStack {
        MssStack::builder().build().unwrap()
    }

    #[test]
    fn sizing_hits_overdrive_target() {
        let tech = TechParams::node(TechNode::N45);
        let s = stack();
        let w = size_access_width(&tech, &s).unwrap();
        let i = dc_write_current(&tech, &s, w).unwrap();
        let target = TARGET_OVERDRIVE * s.critical_current();
        assert!(
            i >= target && i < 1.3 * target,
            "i = {i:.3e}, target = {target:.3e}"
        );
        assert!(w > tech.min_width && w < 400.0 * tech.min_width);
    }

    #[test]
    fn characterization_produces_sane_metrics_45nm() {
        let lib = characterize(TechNode::N45, &stack()).unwrap();
        // Write: a few ns, read: sub-2ns (paper Table 1 nominal shapes).
        assert!(
            lib.write.latency > 1e-9 && lib.write.latency < 12e-9,
            "write latency = {:.3e}",
            lib.write.latency
        );
        assert!(
            lib.read.latency > 10e-12 && lib.read.latency < 2e-9,
            "read latency = {:.3e}",
            lib.read.latency
        );
        assert!(lib.read.latency < lib.write.latency);
        // Cell-level energies: write in the 100s of fJ, read far less.
        assert!(lib.write.energy > 1e-14 && lib.write.energy < 5e-12);
        assert!(lib.read.energy < lib.write.energy);
        // Write current near the overdrive target, read well below Ic0.
        assert!(lib.write.current > 1.5 * lib.critical_current);
        assert!(lib.read.current < 0.8 * lib.critical_current);
    }

    #[test]
    fn both_nodes_characterize() {
        let s = stack();
        let l45 = characterize(TechNode::N45, &s).unwrap();
        let l65 = characterize(TechNode::N65, &s).unwrap();
        // The same junction needs a similar write current; both nodes must
        // deliver it.
        assert!(l45.write.current > 0.0 && l65.write.current > 0.0);
        // 65 nm cells are physically larger.
        assert!(l65.cell_area > l45.cell_area);
    }

    #[test]
    fn corner_characterisation_orders_write_current() {
        let libs = characterize_corners(TechNode::N45, &stack()).unwrap();
        assert_eq!(libs.len(), 5);
        let get = |c: ProcessCorner| {
            libs.iter()
                .find(|(k, _)| *k == c)
                .map(|(_, l)| l)
                .expect("corner present")
        };
        let ss = get(ProcessCorner::Ss);
        let tt = get(ProcessCorner::Tt);
        let ff = get(ProcessCorner::Ff);
        // Slow silicon needs a wider access device for the same overdrive.
        assert!(ss.access_width > tt.access_width);
        assert!(ff.access_width < tt.access_width);
        // The junction's own numbers don't move with the CMOS corner.
        assert_eq!(ss.critical_current, ff.critical_current);
    }

    #[test]
    fn nvff_characterisation_is_sane() {
        let tech = TechParams::node(TechNode::N45);
        let m = characterize_nvff(&tech, &stack()).unwrap();
        // Backup spans both write phases: slower than a single cell write
        // but bounded by the two 15 ns phases.
        assert!(
            m.backup_latency > 5e-9 && m.backup_latency < 32e-9,
            "backup latency {:.3e}",
            m.backup_latency
        );
        // Restore is a sense, orders of magnitude faster than backup.
        assert!(m.restore_latency < 0.1 * m.backup_latency);
        assert!(m.backup_energy > m.restore_energy);
        assert!(m.restore_energy > 0.0);
    }

    #[test]
    fn report_round_trip() {
        let lib = characterize(TechNode::N45, &stack()).unwrap();
        let text = lib.to_report().to_text();
        let back = CellLibrary::from_report(&Report::parse(&text).unwrap()).unwrap();
        assert_eq!(lib.node, back.node);
        assert!((lib.write.latency - back.write.latency).abs() < 1e-20);
        assert!((lib.read.energy - back.read.energy).abs() < 1e-25);
    }

    #[test]
    fn from_report_rejects_missing_keys() {
        let r = Report::parse("node_nm = 45\n").unwrap();
        assert!(CellLibrary::from_report(&r).is_err());
    }
}
