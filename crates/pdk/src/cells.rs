//! Standard-cell netlist templates and their parameter binding.
//!
//! Each cell is kept as a SPICE-text template with `{param}` placeholders,
//! expanded through [`mss_spice::template`] and parsed by
//! [`mss_spice::parser::Deck`] — the exact template → netlist → simulation
//! path of the paper's Sec. IV-A. The cells are the ones the paper lists:
//! the 1T-1MTJ bit cell, the pre-charge sense amplifier, the write driver,
//! an MRAM-backed flip-flop (backup path) and the MSS-based programmable
//! current source proposed for the sensor feedback loop.

use mss_mtj::resistance::MtjState;
use mss_mtj::{MssStack, SotParams};
use mss_spice::parser::Deck;
use mss_spice::template::{expand, Bindings};

use crate::tech::TechParams;
use crate::PdkError;

/// Write polarity for bit-cell characterisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteDirection {
    /// AP → P (positive cell current, bit line driven high).
    ToParallel,
    /// P → AP (negative cell current, source line driven high; the access
    /// transistor sees source degeneration, making this the slow direction).
    ToAntiparallel,
}

/// The 1T-1MTJ bit-cell write deck.
const BITCELL_WRITE_TEMPLATE: &str = r"* 1T-1MTJ write characterisation
.model NMOS VTH={vth_n} KP={kp_n} LAMBDA={lambda_n}
VWL wl 0 PULSE(0 {vdd} 0.5n 20p 20p {t_wl} 0)
VBL bl 0 PULSE(0 {v_bl} 1n 20p 20p {t_pulse} 0)
VSL sl 0 PULSE(0 {v_sl} 1n 20p 20p {t_pulse} 0)
M1 bl wl x 0 NMOS W={w_access} L={lgate}
X1 x sl MTJ STATE={state} DIAMETER={diameter}
CBL bl 0 {c_bl}
.tran {dt} {t_stop}
";

/// The three-terminal SOT bit-cell write deck: the write current runs along
/// the heavy-metal channel (shared → write terminal) through the access
/// device, never through the tunnel barrier. The read terminal is left
/// undriven during a write.
const SOT_BITCELL_WRITE_TEMPLATE: &str = r"* SOT three-terminal write characterisation
.model NMOS VTH={vth_n} KP={kp_n} LAMBDA={lambda_n}
VWL wl 0 PULSE(0 {vdd} 0.5n 20p 20p {t_wl} 0)
VWBL wbl 0 PULSE(0 {v_wbl} 1n 20p 20p {t_pulse} 0)
VWSL wsl 0 PULSE(0 {v_wsl} 1n 20p 20p {t_pulse} 0)
M1 wbl wl sh 0 NMOS W={w_access} L={lgate}
X1 rd sh wsl MTJSOT STATE={state} DIAMETER={diameter} THETA_SH={theta_sh} T_CH={t_ch} RHO_CH={rho_ch}
CWB wbl 0 {c_bl}
.tran {dt} {t_stop}
";

/// The PCSA read deck for the SOT cell: the sense current enters the read
/// terminal, crosses the tunnel barrier and returns through half the
/// channel — the separate write path stays idle.
const SOT_PCSA_READ_TEMPLATE: &str = r"* SOT PCSA read characterisation
.model NMOS VTH={vth_n} KP={kp_n} LAMBDA={lambda_n}
.model PMOS VTH={vth_p} KP={kp_p} LAMBDA={lambda_p}
VDD vdd 0 DC {vdd}
VCLK clk 0 PULSE(0 {vdd} 1n 20p 20p {t_sense} 0)
MP1 out clk vdd vdd PMOS W={wp} L={lgate}
MP2 outb clk vdd vdd PMOS W={wp} L={lgate}
MP3 out outb vdd vdd PMOS W={wp} L={lgate}
MP4 outb out vdd vdd PMOS W={wp} L={lgate}
MN1 out outb s1 0 NMOS W={wn} L={lgate}
MN2 outb out s2 0 NMOS W={wn} L={lgate}
X1 s1 shx tail MTJSOT STATE={state} DIAMETER={diameter} THETA_SH={theta_sh} T_CH={t_ch} RHO_CH={rho_ch}
RREF s2 tail {r_ref}
MN5 tail clk 0 0 NMOS W={wtail} L={lgate}
COUT out 0 {c_out}
COUTB outb 0 {c_out}
.tran {dt} {t_stop}
";

/// The pre-charge sense amplifier (PCSA) read deck.
const PCSA_READ_TEMPLATE: &str = r"* PCSA read characterisation
.model NMOS VTH={vth_n} KP={kp_n} LAMBDA={lambda_n}
.model PMOS VTH={vth_p} KP={kp_p} LAMBDA={lambda_p}
VDD vdd 0 DC {vdd}
VCLK clk 0 PULSE(0 {vdd} 1n 20p 20p {t_sense} 0)
MP1 out clk vdd vdd PMOS W={wp} L={lgate}
MP2 outb clk vdd vdd PMOS W={wp} L={lgate}
MP3 out outb vdd vdd PMOS W={wp} L={lgate}
MP4 outb out vdd vdd PMOS W={wp} L={lgate}
MN1 out outb s1 0 NMOS W={wn} L={lgate}
MN2 outb out s2 0 NMOS W={wn} L={lgate}
X1 s1 tail MTJ STATE={state} DIAMETER={diameter}
RREF s2 tail {r_ref}
MN5 tail clk 0 0 NMOS W={wtail} L={lgate}
COUT out 0 {c_out}
COUTB outb 0 {c_out}
.tran {dt} {t_stop}
";

/// The two-stage write-driver deck (inverter chain into the bit line).
const WRITE_DRIVER_TEMPLATE: &str = r"* write driver: 2-stage buffer into the bit line load
.model NMOS VTH={vth_n} KP={kp_n} LAMBDA={lambda_n}
.model PMOS VTH={vth_p} KP={kp_p} LAMBDA={lambda_p}
VDD vdd 0 DC {vdd}
VIN in 0 PULSE(0 {vdd} 1n 20p 20p {t_pulse} 0)
MP1 mid in vdd vdd PMOS W={wp1} L={lgate}
MN1 mid in 0 0 NMOS W={wn1} L={lgate}
MP2 bl mid vdd vdd PMOS W={wp2} L={lgate}
MN2 bl mid 0 0 NMOS W={wn2} L={lgate}
CBL bl 0 {c_bl}
.tran {dt} {t_stop}
";

/// The non-volatile flip-flop backup deck: the latch state is written into a
/// complementary MTJ pair through two access devices.
const NVFF_BACKUP_TEMPLATE: &str = r"* NVFF backup: latch state -> complementary MTJ pair
.model NMOS VTH={vth_n} KP={kp_n} LAMBDA={lambda_n}
VQ q 0 DC {v_q}
VQB qb 0 DC {v_qb}
VCOM com 0 PULSE(0 {vdd} {t_phase2_start} 20p 20p {t_pulse} 0)
VCTRL ctrl 0 PULSE(0 {v_ctrl} 1n 20p 20p {t_total} 0)
M1 q ctrl x1 0 NMOS W={w_access} L={lgate}
M2 qb ctrl x2 0 NMOS W={w_access} L={lgate}
X1 x1 com MTJ STATE={state1} DIAMETER={diameter}
X2 x2 com MTJ STATE={state2} DIAMETER={diameter}
.tran {dt} {t_stop}
";

/// The NVFF restore deck: a PCSA senses the complementary MTJ pair
/// differentially and regenerates the latch state after power-up.
const NVFF_RESTORE_TEMPLATE: &str = r"* NVFF restore: complementary MTJ pair -> PCSA latch
.model NMOS VTH={vth_n} KP={kp_n} LAMBDA={lambda_n}
.model PMOS VTH={vth_p} KP={kp_p} LAMBDA={lambda_p}
VDD vdd 0 DC {vdd}
VCLK clk 0 PULSE(0 {vdd} 1n 20p 20p {t_sense} 0)
MP1 q clk vdd vdd PMOS W={wp} L={lgate}
MP2 qb clk vdd vdd PMOS W={wp} L={lgate}
MP3 q qb vdd vdd PMOS W={wp} L={lgate}
MP4 qb q vdd vdd PMOS W={wp} L={lgate}
MN1 q qb s1 0 NMOS W={wn} L={lgate}
MN2 qb q s2 0 NMOS W={wn} L={lgate}
X1 s1 tail MTJ STATE={state1} DIAMETER={diameter}
X2 s2 tail MTJ STATE={state2} DIAMETER={diameter}
MN5 tail clk 0 0 NMOS W={wtail} L={lgate}
CQ q 0 {c_out}
CQB qb 0 {c_out}
.tran {dt} {t_stop}
";

/// The MSS-based programmable current source (sensor feedback loop): an MTJ
/// sets the reference branch current of an NMOS mirror, so the output
/// current is programmed by the MTJ state.
const CURRENT_SOURCE_TEMPLATE: &str = r"* MSS programmable current source
.model NMOS VTH={vth_n} KP={kp_n} LAMBDA={lambda_n}
VDD vdd 0 DC {vdd}
RSER vdd nr {r_series}
X1 nr n1 MTJ STATE={state} DIAMETER={diameter}
M1 n1 n1 0 0 NMOS W={w_mirror} L={lgate}
M2 out n1 0 0 NMOS W={w_mirror} L={lgate}
VOUT out 0 DC {v_load}
.tran {dt} {t_stop}
";

fn base_bindings(tech: &TechParams, stack: &MssStack) -> Bindings {
    let mut b = Bindings::new();
    b.set_f64("vdd", tech.vdd)
        .set_f64("vth_n", tech.nmos.vth)
        .set_f64("kp_n", tech.nmos.kp)
        .set_f64("lambda_n", tech.nmos.lambda)
        .set_f64("vth_p", tech.pmos.vth)
        .set_f64("kp_p", tech.pmos.kp)
        .set_f64("lambda_p", tech.pmos.lambda)
        .set_f64("lgate", tech.gate_length())
        .set_f64("diameter", stack.diameter());
    b
}

fn sot_bindings(tech: &TechParams, stack: &MssStack, params: &SotParams) -> Bindings {
    let mut b = base_bindings(tech, stack);
    b.set_f64("theta_sh", params.spin_hall_angle)
        .set_f64("t_ch", params.channel_thickness)
        .set_f64("rho_ch", params.channel_resistivity);
    b
}

fn state_token(state: MtjState) -> &'static str {
    match state {
        MtjState::Parallel => "P",
        MtjState::Antiparallel => "AP",
    }
}

/// Builds the bit-cell write deck for one polarity.
///
/// `w_access` is the access-transistor width (m), `t_pulse` the write pulse
/// width (s), `c_bl` the bit-line load the cell sees (F).
///
/// # Errors
///
/// Template or parse failures surface as [`PdkError::Circuit`].
pub fn bitcell_write_deck(
    tech: &TechParams,
    stack: &MssStack,
    dir: WriteDirection,
    w_access: f64,
    t_pulse: f64,
    c_bl: f64,
) -> Result<Deck, PdkError> {
    let mut b = base_bindings(tech, stack);
    let (v_bl, v_sl, state) = match dir {
        WriteDirection::ToParallel => (tech.vdd, 0.0, MtjState::Antiparallel),
        WriteDirection::ToAntiparallel => (0.0, tech.vdd, MtjState::Parallel),
    };
    let t_stop = 1e-9 + t_pulse + 1e-9;
    b.set_f64("v_bl", v_bl)
        .set_f64("v_sl", v_sl)
        .set("state", state_token(state))
        .set_f64("w_access", w_access)
        .set_f64("t_wl", t_pulse + 1.5e-9)
        .set_f64("t_pulse", t_pulse)
        .set_f64("c_bl", c_bl.max(1e-18))
        .set_f64("dt", 10e-12)
        .set_f64("t_stop", t_stop);
    let text = expand(BITCELL_WRITE_TEMPLATE, &b)?;
    Ok(Deck::parse(&text)?)
}

/// Builds the three-terminal SOT bit-cell write deck for one polarity.
///
/// Positive channel current (write bit line high, shared → write terminal)
/// writes the parallel state; the deck starts the junction in the opposite
/// state so the transient captures the flip.
///
/// # Errors
///
/// Template or parse failures surface as [`PdkError::Circuit`].
pub fn sot_bitcell_write_deck(
    tech: &TechParams,
    stack: &MssStack,
    params: &SotParams,
    dir: WriteDirection,
    w_access: f64,
    t_pulse: f64,
    c_bl: f64,
) -> Result<Deck, PdkError> {
    let mut b = sot_bindings(tech, stack, params);
    let (v_wbl, v_wsl, state) = match dir {
        WriteDirection::ToParallel => (tech.vdd, 0.0, MtjState::Antiparallel),
        WriteDirection::ToAntiparallel => (0.0, tech.vdd, MtjState::Parallel),
    };
    let t_stop = 1e-9 + t_pulse + 1e-9;
    b.set_f64("v_wbl", v_wbl)
        .set_f64("v_wsl", v_wsl)
        .set("state", state_token(state))
        .set_f64("w_access", w_access)
        .set_f64("t_wl", t_pulse + 1.5e-9)
        .set_f64("t_pulse", t_pulse)
        .set_f64("c_bl", c_bl.max(1e-18))
        .set_f64("dt", 1e-12)
        .set_f64("t_stop", t_stop);
    let text = expand(SOT_BITCELL_WRITE_TEMPLATE, &b)?;
    Ok(Deck::parse(&text)?)
}

/// Builds the PCSA read deck for the SOT cell and one stored state.
///
/// The cell branch sees the junction in series with the channel, so
/// `r_ref` should balance against `R_state + R_channel` (typically the
/// geometric mean of both states plus the channel resistance).
///
/// # Errors
///
/// Template or parse failures surface as [`PdkError::Circuit`].
pub fn sot_pcsa_read_deck(
    tech: &TechParams,
    stack: &MssStack,
    params: &SotParams,
    state: MtjState,
    r_ref: f64,
    t_sense: f64,
) -> Result<Deck, PdkError> {
    let mut b = sot_bindings(tech, stack, params);
    let f = tech.feature;
    b.set("state", state_token(state))
        .set_f64("r_ref", r_ref)
        .set_f64("wp", 4.0 * f)
        .set_f64("wn", 4.0 * f)
        .set_f64("wtail", 8.0 * f)
        .set_f64("c_out", 2e-15)
        .set_f64("t_sense", t_sense)
        .set_f64("dt", 2e-12)
        .set_f64("t_stop", 1e-9 + t_sense);
    let text = expand(SOT_PCSA_READ_TEMPLATE, &b)?;
    Ok(Deck::parse(&text)?)
}

/// Builds the PCSA read deck for one stored state.
///
/// `r_ref` should sit between R_P and R_AP (typically their geometric mean).
///
/// # Errors
///
/// Template or parse failures surface as [`PdkError::Circuit`].
pub fn pcsa_read_deck(
    tech: &TechParams,
    stack: &MssStack,
    state: MtjState,
    r_ref: f64,
    t_sense: f64,
) -> Result<Deck, PdkError> {
    let mut b = base_bindings(tech, stack);
    let f = tech.feature;
    b.set("state", state_token(state))
        .set_f64("r_ref", r_ref)
        .set_f64("wp", 4.0 * f)
        .set_f64("wn", 4.0 * f)
        .set_f64("wtail", 8.0 * f)
        .set_f64("c_out", 2e-15)
        .set_f64("t_sense", t_sense)
        .set_f64("dt", 2e-12)
        .set_f64("t_stop", 1e-9 + t_sense);
    let text = expand(PCSA_READ_TEMPLATE, &b)?;
    Ok(Deck::parse(&text)?)
}

/// Builds the write-driver deck.
///
/// # Errors
///
/// Template or parse failures surface as [`PdkError::Circuit`].
pub fn write_driver_deck(tech: &TechParams, c_bl: f64, t_pulse: f64) -> Result<Deck, PdkError> {
    let stack = MssStack::builder().build().expect("default stack is valid");
    let mut b = base_bindings(tech, &stack);
    let f = tech.feature;
    b.set_f64("wn1", 2.0 * f)
        .set_f64("wp1", 4.0 * f)
        .set_f64("wn2", 16.0 * f)
        .set_f64("wp2", 32.0 * f)
        .set_f64("c_bl", c_bl)
        .set_f64("t_pulse", t_pulse)
        .set_f64("dt", 2e-12)
        .set_f64("t_stop", 1e-9 + t_pulse + 1e-9);
    let text = expand(WRITE_DRIVER_TEMPLATE, &b)?;
    Ok(Deck::parse(&text)?)
}

/// Builds the NVFF backup deck for a latch holding `q` (`true` = logic 1).
///
/// Both MTJs start in the state *opposite* to what the latch will write, so
/// the deck characterises the worst-case (both-junctions-flip) backup.
/// `t_pulse` is the width of each of the two backup phases (high-side write,
/// then low-side write).
///
/// # Errors
///
/// Template or parse failures surface as [`PdkError::Circuit`].
pub fn nvff_backup_deck(
    tech: &TechParams,
    stack: &MssStack,
    q: bool,
    w_access: f64,
    t_pulse: f64,
) -> Result<Deck, PdkError> {
    let mut b = base_bindings(tech, stack);
    let (v_q, v_qb) = if q { (tech.vdd, 0.0) } else { (0.0, tech.vdd) };
    // Positive current (toward P) flows through the junction on the high
    // side; the low side sees negative current (toward AP).
    let (s1, s2) = if q {
        (MtjState::Antiparallel, MtjState::Parallel)
    } else {
        (MtjState::Parallel, MtjState::Antiparallel)
    };
    // Two-phase backup: phase 1 (com low) writes the q-high junction with a
    // full-swing current; phase 2 (com high) writes the q-low junction.
    b.set_f64("v_q", v_q)
        .set_f64("v_qb", v_qb)
        .set_f64("v_ctrl", tech.vdd)
        .set("state1", state_token(s1))
        .set("state2", state_token(s2))
        .set_f64("w_access", w_access)
        .set_f64("t_phase2_start", 1e-9 + t_pulse)
        .set_f64("t_pulse", t_pulse)
        .set_f64("t_total", 2.0 * t_pulse + 0.5e-9)
        .set_f64("dt", 10e-12)
        .set_f64("t_stop", 1e-9 + 2.0 * t_pulse + 1e-9);
    let text = expand(NVFF_BACKUP_TEMPLATE, &b)?;
    Ok(Deck::parse(&text)?)
}

/// Builds the NVFF restore deck: the complementary junction pair written by
/// a previous backup (`q` = the latch value that was saved) is sensed
/// differentially by a PCSA and regenerates `q`/`qb`.
///
/// # Errors
///
/// Template or parse failures surface as [`PdkError::Circuit`].
pub fn nvff_restore_deck(
    tech: &TechParams,
    stack: &MssStack,
    q: bool,
    t_sense: f64,
) -> Result<Deck, PdkError> {
    let mut b = base_bindings(tech, stack);
    // After a backup of q=1: X1 (q side) is P, X2 is AP — the q side has the
    // lower branch resistance and discharges first, so q resolves LOW...
    // the complementary latch output is taken from the opposite node, which
    // the enclosing flip-flop wiring handles; here we only characterise the
    // resolution delay and energy.
    let (s1, s2) = if q {
        (MtjState::Parallel, MtjState::Antiparallel)
    } else {
        (MtjState::Antiparallel, MtjState::Parallel)
    };
    let f = tech.feature;
    b.set("state1", state_token(s1))
        .set("state2", state_token(s2))
        .set_f64("wp", 4.0 * f)
        .set_f64("wn", 4.0 * f)
        .set_f64("wtail", 8.0 * f)
        .set_f64("c_out", 2e-15)
        .set_f64("t_sense", t_sense)
        .set_f64("dt", 2e-12)
        .set_f64("t_stop", 1e-9 + t_sense);
    let text = expand(NVFF_RESTORE_TEMPLATE, &b)?;
    Ok(Deck::parse(&text)?)
}

/// Builds the programmable-current-source deck for one MTJ program state.
///
/// # Errors
///
/// Template or parse failures surface as [`PdkError::Circuit`].
pub fn current_source_deck(
    tech: &TechParams,
    stack: &MssStack,
    state: MtjState,
) -> Result<Deck, PdkError> {
    let mut b = base_bindings(tech, stack);
    let f = tech.feature;
    b.set("state", state_token(state))
        .set_f64("w_mirror", 8.0 * f)
        .set_f64("r_series", 5.0 * stack.resistance_parallel())
        .set_f64("v_load", tech.vdd / 2.0)
        .set_f64("dt", 10e-12)
        .set_f64("t_stop", 5e-9);
    let text = expand(CURRENT_SOURCE_TEMPLATE, &b)?;
    Ok(Deck::parse(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::TechNode;
    use mss_spice::analysis::{Transient, TransientOptions};

    fn setup() -> (TechParams, MssStack) {
        (
            TechParams::node(TechNode::N45),
            MssStack::builder().build().unwrap(),
        )
    }

    #[test]
    fn bitcell_deck_parses_and_runs() {
        let (tech, stack) = setup();
        let deck = bitcell_write_deck(
            &tech,
            &stack,
            WriteDirection::ToParallel,
            8.0 * tech.feature,
            10e-9,
            5e-15,
        )
        .unwrap();
        let (dt, stop) = deck.tran.unwrap();
        let res = Transient::new(&deck.netlist)
            .unwrap()
            .run(&TransientOptions::new(dt, stop))
            .unwrap();
        assert!(res.times().len() > 100);
    }

    #[test]
    fn sot_bitcell_deck_flips_through_the_channel() {
        let (tech, stack) = setup();
        let params = SotParams::default();
        for dir in [WriteDirection::ToParallel, WriteDirection::ToAntiparallel] {
            let deck = sot_bitcell_write_deck(
                &tech,
                &stack,
                &params,
                dir,
                64.0 * tech.feature,
                1e-9,
                5e-15,
            )
            .unwrap();
            let (dt, stop) = deck.tran.unwrap();
            let res = Transient::new(&deck.netlist)
                .unwrap()
                .run(&TransientOptions::new(dt, stop))
                .unwrap();
            assert_eq!(
                res.events().len(),
                1,
                "{dir:?}: expected one switching event, saw {:?}",
                res.events()
            );
        }
    }

    #[test]
    fn sot_pcsa_deck_latches_for_both_states() {
        let (tech, stack) = setup();
        let params = SotParams::default();
        let r_ch = params.channel_resistance(stack.diameter());
        let r_ref = (stack.resistance_parallel() * stack.resistance_antiparallel()).sqrt() + r_ch;
        for state in [MtjState::Parallel, MtjState::Antiparallel] {
            let deck = sot_pcsa_read_deck(&tech, &stack, &params, state, r_ref, 2e-9).unwrap();
            let (dt, stop) = deck.tran.unwrap();
            let res = Transient::new(&deck.netlist)
                .unwrap()
                .run(&TransientOptions::new(dt, stop))
                .unwrap();
            let out = *res.node_voltage("out").unwrap().last().unwrap();
            let outb = *res.node_voltage("outb").unwrap().last().unwrap();
            assert!(
                (out - outb).abs() > 0.7 * tech.vdd,
                "state {state:?}: out={out:.3}, outb={outb:.3}"
            );
            if state == MtjState::Parallel {
                assert!(out < outb);
            } else {
                assert!(out > outb);
            }
            // A read through the separate terminal must never write.
            assert!(res.events().is_empty(), "read disturbed the cell");
        }
    }

    #[test]
    fn pcsa_deck_latches_for_both_states() {
        let (tech, stack) = setup();
        let r_ref = (stack.resistance_parallel() * stack.resistance_antiparallel()).sqrt();
        for state in [MtjState::Parallel, MtjState::Antiparallel] {
            let deck = pcsa_read_deck(&tech, &stack, state, r_ref, 2e-9).unwrap();
            let (dt, stop) = deck.tran.unwrap();
            let res = Transient::new(&deck.netlist)
                .unwrap()
                .run(&TransientOptions::new(dt, stop))
                .unwrap();
            let out = *res.node_voltage("out").unwrap().last().unwrap();
            let outb = *res.node_voltage("outb").unwrap().last().unwrap();
            // The latch must have resolved to complementary rails.
            assert!(
                (out - outb).abs() > 0.7 * tech.vdd,
                "state {state:?}: out={out:.3}, outb={outb:.3}"
            );
            // Low resistance (P) discharges the cell side -> out low.
            if state == MtjState::Parallel {
                assert!(out < outb);
            } else {
                assert!(out > outb);
            }
        }
    }

    #[test]
    fn write_driver_swings_the_bitline() {
        let (tech, _) = setup();
        let deck = write_driver_deck(&tech, 50e-15, 5e-9).unwrap();
        let (dt, stop) = deck.tran.unwrap();
        let res = Transient::new(&deck.netlist)
            .unwrap()
            .run(&TransientOptions::new(dt, stop))
            .unwrap();
        let bl = res.node_voltage("bl").unwrap();
        let max = bl.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = bl.iter().copied().fold(f64::INFINITY, f64::min);
        // Two inverters: in-phase copy of the input pulse reaches the rail.
        assert!(max > 0.9 * tech.vdd, "max = {max}");
        assert!(min < 0.1 * tech.vdd);
    }

    #[test]
    fn nvff_backup_flips_both_junctions() {
        let (tech, stack) = setup();
        let deck = nvff_backup_deck(&tech, &stack, true, 24.0 * tech.feature, 15e-9).unwrap();
        let (dt, stop) = deck.tran.unwrap();
        let res = Transient::new(&deck.netlist)
            .unwrap()
            .run(&TransientOptions::new(dt, stop))
            .unwrap();
        assert_eq!(
            res.events().len(),
            2,
            "both junctions must flip during backup: {:?}",
            res.events()
        );
    }

    #[test]
    fn nvff_restore_resolves_both_polarities() {
        let (tech, stack) = setup();
        for q in [true, false] {
            let deck = nvff_restore_deck(&tech, &stack, q, 2e-9).unwrap();
            let (dt, stop) = deck.tran.unwrap();
            let res = Transient::new(&deck.netlist)
                .unwrap()
                .run(&TransientOptions::new(dt, stop))
                .unwrap();
            let vq = *res.node_voltage("q").unwrap().last().unwrap();
            let vqb = *res.node_voltage("qb").unwrap().last().unwrap();
            assert!(
                (vq - vqb).abs() > 0.7 * tech.vdd,
                "q={q}: restore unresolved (q={vq:.2}, qb={vqb:.2})"
            );
            // Opposite saved values resolve to opposite rails: the P-side
            // branch discharges first.
            if q {
                assert!(vq < vqb);
            } else {
                assert!(vq > vqb);
            }
        }
    }

    #[test]
    fn current_source_levels_are_programmable() {
        let (tech, stack) = setup();
        let mut levels = Vec::new();
        for state in [MtjState::Parallel, MtjState::Antiparallel] {
            let deck = current_source_deck(&tech, &stack, state).unwrap();
            let (dt, stop) = deck.tran.unwrap();
            let res = Transient::new(&deck.netlist)
                .unwrap()
                .run(&TransientOptions::new(dt, stop))
                .unwrap();
            // Output current = current into VOUT (MNA sign: into + terminal).
            let i = *res.source_current("VOUT").unwrap().last().unwrap();
            levels.push(i);
        }
        // Two clearly distinct programmed levels; P (low R) gives the larger
        // reference current.
        assert!(
            (levels[0].abs() - levels[1].abs()).abs() > 0.1 * levels[0].abs(),
            "levels: {levels:?}"
        );
        assert!(levels[0].abs() > levels[1].abs());
    }

    #[test]
    fn templates_reject_missing_bindings() {
        // Corrupt a template by asking for an unbound parameter.
        let err = expand("{not_bound}", &Bindings::new()).unwrap_err();
        assert!(matches!(
            err,
            mss_spice::SpiceError::UnboundTemplateParameter(_)
        ));
    }
}
