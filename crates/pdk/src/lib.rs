//! Process design kit (PDK) for the MSS technology.
//!
//! Section II of the paper describes a hybrid PDK: CMOS device cards plus
//! the MTJ compact model, feeding circuit simulation of "single bit cells
//! and flip-flops based on MRAM, sense amplifiers, and write circuits". This
//! crate provides:
//!
//! - [`tech`] — the 45 nm and 65 nm CMOS technology cards (supply, MOSFET
//!   model parameters, wire RC, leakage, cell-area factors),
//! - [`variation`] — process-variation cards for both the CMOS and magnetic
//!   processes, with Pelgrom-style node scaling (σ grows at smaller nodes),
//! - [`cells`] — standard-cell netlist templates: the 1T-1MTJ bit cell, the
//!   pre-charge sense amplifier (PCSA), the write driver, a non-volatile
//!   flip-flop and the MSS-based programmable current source mentioned for
//!   the sensor feedback loop,
//! - [`charlib`] — the characterisation harness (template → `mss-spice`
//!   transient → MDL → [`charlib::CellLibrary`]), i.e. the left half of the
//!   paper's Fig. 10 flow.
//!
//! # Example
//!
//! ```
//! use mss_pdk::tech::TechNode;
//! use mss_pdk::charlib::characterize;
//! use mss_mtj::MssStack;
//!
//! # fn main() -> Result<(), mss_pdk::PdkError> {
//! let stack = MssStack::builder().build().map_err(mss_pdk::PdkError::from)?;
//! let lib = characterize(TechNode::N45, &stack)?;
//! assert!(lib.write.latency > 0.0);
//! assert!(lib.read.latency < lib.write.latency);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod cells;
pub mod charlib;
mod error;
pub mod tech;
pub mod variation;

pub use error::PdkError;
