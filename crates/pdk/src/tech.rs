//! CMOS technology cards for the two nodes evaluated in the paper.
//!
//! Table 1 of the paper compares a 45 nm and a 65 nm node; these cards carry
//! every CMOS-side number the flow needs: supply, level-1 MOSFET model
//! parameters, parasitic capacitances, wire RC, leakage and cell-area
//! factors. Values are representative bulk-CMOS figures calibrated so the
//! memory-level results land in the paper's range (see `EXPERIMENTS.md`).

use mss_spice::mosfet::{MosModel, MosPolarity};

/// The two technology nodes of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechNode {
    /// 45 nm bulk CMOS.
    N45,
    /// 65 nm bulk CMOS.
    N65,
}

impl std::fmt::Display for TechNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TechNode::N45 => write!(f, "45 nm"),
            TechNode::N65 => write!(f, "65 nm"),
        }
    }
}

impl TechNode {
    /// Every supported node, in scaling order.
    pub const ALL: [TechNode; 2] = [TechNode::N45, TechNode::N65];
}

impl mss_pipe::StableHash for TechNode {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_u8(match self {
            TechNode::N45 => 0,
            TechNode::N65 => 1,
        });
    }
}

impl mss_pipe::StableHash for TechParams {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.node.stable_hash(h);
        h.write_f64(self.feature);
        h.write_f64(self.vdd);
        self.nmos.stable_hash(h);
        self.pmos.stable_hash(h);
        h.write_f64(self.min_width);
        h.write_f64(self.c_gate_per_width);
        h.write_f64(self.c_junction_per_width);
        h.write_f64(self.wire_res_per_len);
        h.write_f64(self.wire_cap_per_len);
        h.write_f64(self.leak_per_width);
        h.write_f64(self.fo4_delay);
        h.write_f64(self.inv_energy);
        h.write_f64(self.sram_cell_f2);
        h.write_f64(self.stt_cell_f2);
    }
}

/// A complete CMOS technology card.
#[derive(Debug, Clone, PartialEq)]
pub struct TechParams {
    /// Node identity.
    pub node: TechNode,
    /// Feature size F in metres.
    pub feature: f64,
    /// Nominal supply in volts.
    pub vdd: f64,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
    /// Minimum transistor width in metres.
    pub min_width: f64,
    /// Gate capacitance per metre of width, F/m.
    pub c_gate_per_width: f64,
    /// Source/drain junction capacitance per metre of width, F/m.
    pub c_junction_per_width: f64,
    /// Wire resistance per metre, Ω/m.
    pub wire_res_per_len: f64,
    /// Wire capacitance per metre, F/m.
    pub wire_cap_per_len: f64,
    /// Subthreshold leakage per metre of transistor width, A/m.
    pub leak_per_width: f64,
    /// Fanout-4 inverter delay, seconds (logical-effort time unit).
    pub fo4_delay: f64,
    /// Dynamic energy of a minimum inverter switching, joules.
    pub inv_energy: f64,
    /// SRAM cell area in F² (6T reference).
    pub sram_cell_f2: f64,
    /// STT-MRAM 1T-1MTJ cell area in F².
    pub stt_cell_f2: f64,
}

impl TechParams {
    /// The card for a node.
    pub fn node(node: TechNode) -> Self {
        match node {
            TechNode::N45 => Self {
                node,
                feature: 45e-9,
                vdd: 1.0,
                nmos: MosModel {
                    polarity: MosPolarity::Nmos,
                    vth: 0.40,
                    kp: 280e-6,
                    lambda: 0.08,
                },
                pmos: MosModel {
                    polarity: MosPolarity::Pmos,
                    vth: 0.42,
                    kp: 140e-6,
                    lambda: 0.10,
                },
                min_width: 90e-9,
                c_gate_per_width: 1.0e-9,
                c_junction_per_width: 0.3e-9,
                wire_res_per_len: 3.0e6,
                wire_cap_per_len: 0.20e-9,
                leak_per_width: 0.10,
                fo4_delay: 15e-12,
                inv_energy: 0.10e-15,
                sram_cell_f2: 146.0,
                stt_cell_f2: 40.0,
            },
            TechNode::N65 => Self {
                node,
                feature: 65e-9,
                vdd: 1.1,
                nmos: MosModel {
                    polarity: MosPolarity::Nmos,
                    vth: 0.43,
                    kp: 230e-6,
                    lambda: 0.06,
                },
                pmos: MosModel {
                    polarity: MosPolarity::Pmos,
                    vth: 0.45,
                    kp: 115e-6,
                    lambda: 0.08,
                },
                min_width: 130e-9,
                c_gate_per_width: 1.1e-9,
                c_junction_per_width: 0.35e-9,
                wire_res_per_len: 2.0e6,
                wire_cap_per_len: 0.22e-9,
                leak_per_width: 0.05,
                fo4_delay: 22e-12,
                inv_energy: 0.18e-15,
                sram_cell_f2: 146.0,
                stt_cell_f2: 40.0,
            },
        }
    }

    /// Saturation drive current of an NMOS of width `w` at full gate drive,
    /// amperes (quick sizing estimate, channel-length modulation ignored).
    pub fn nmos_sat_current(&self, w: f64) -> f64 {
        let vov = self.vdd - self.nmos.vth;
        0.5 * self.nmos.kp * (w / self.gate_length()) * vov * vov
    }

    /// Drawn gate length used for logic/access devices (≈ F).
    pub fn gate_length(&self) -> f64 {
        self.feature
    }

    /// Gate capacitance of a device of width `w`, farads.
    pub fn gate_cap(&self, w: f64) -> f64 {
        self.c_gate_per_width * w
    }

    /// Junction (drain) capacitance of a device of width `w`, farads.
    pub fn junction_cap(&self, w: f64) -> f64 {
        self.c_junction_per_width * w
    }

    /// Leakage current of a device of width `w`, amperes.
    pub fn leakage(&self, w: f64) -> f64 {
        self.leak_per_width * w
    }

    /// STT-MRAM bit-cell area in m² for an access transistor of width `w`.
    ///
    /// The MTJ pillar sits above the access device, so the base
    /// `stt_cell_f2` footprint absorbs drives up to 8 F of width (folded
    /// fingers); wider access devices stretch the cell linearly.
    pub fn stt_cell_area(&self, w: f64) -> f64 {
        let f = self.feature;
        let width_f = (w / f).max(1.0);
        let area_f2 = if width_f <= 8.0 {
            self.stt_cell_f2
        } else {
            self.stt_cell_f2 * (width_f / 8.0)
        };
        area_f2 * f * f
    }

    /// SRAM (6T) bit-cell area in m².
    pub fn sram_cell_area(&self) -> f64 {
        self.sram_cell_f2 * self.feature * self.feature
    }

    /// SOT-MRAM three-terminal bit-cell area in m² for a write-access
    /// transistor of width `w`.
    ///
    /// The heavy-metal channel needs contacts at both ends and the read
    /// terminal its own via stack, so the base footprint carries a fixed
    /// ~1.5× routing overhead over the 1T-1MTJ cell before the access
    /// device starts to dominate.
    pub fn sot_cell_area(&self, w: f64) -> f64 {
        1.5 * self.stt_cell_area(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_scale_sensibly() {
        let n45 = TechParams::node(TechNode::N45);
        let n65 = TechParams::node(TechNode::N65);
        assert!(n45.feature < n65.feature);
        assert!(n45.vdd < n65.vdd);
        assert!(n45.fo4_delay < n65.fo4_delay);
        assert!(n45.leak_per_width > n65.leak_per_width); // scaling leaks more
        assert!(n45.sram_cell_area() < n65.sram_cell_area());
    }

    #[test]
    fn drive_current_is_realistic() {
        // A 1 um NMOS at 45 nm should drive a few hundred microamps.
        let t = TechParams::node(TechNode::N45);
        let i = t.nmos_sat_current(1e-6);
        assert!(i > 100e-6 && i < 3e-3, "i = {i}");
    }

    #[test]
    fn stt_cell_grows_with_access_width() {
        let t = TechParams::node(TechNode::N45);
        let narrow = t.stt_cell_area(2.0 * t.feature);
        let wide = t.stt_cell_area(16.0 * t.feature);
        assert!(wide > narrow);
        assert!((wide / narrow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stt_cell_denser_than_sram() {
        for node in TechNode::ALL {
            let t = TechParams::node(node);
            assert!(t.stt_cell_area(4.0 * t.feature) < t.sram_cell_area());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(TechNode::N45.to_string(), "45 nm");
        assert_eq!(TechNode::N65.to_string(), "65 nm");
    }
}
