//! The two-tier memoization cache behind the stage pipeline.
//!
//! Tier 1 is an always-on, bounded in-memory `BTreeMap` keyed by
//! `(stage, digest)`; tier 2 is an opt-in on-disk NDJSON store under
//! `target/mss-cache/` (see [`CACHE_ENV`] / [`CACHE_DIR_ENV`]) for the
//! expensive, reusable [`Artifact`] stages. Lookups are semantically
//! transparent: every stage computation in this workspace is a pure
//! deterministic function of its hashed inputs, so a hit returns exactly
//! the bytes a recomputation would produce and reports stay bit-identical
//! at any thread count and any cache temperature.
//!
//! Corrupt, truncated, version-mismatched or foreign on-disk entries are
//! **misses, never errors**: the flow must survive a bad cache directory.
//! Every outcome is observable twice — always through the cache's own
//! atomic [`StageStats`] (queryable even with observability off), and
//! mirrored to `pipe.<stage>.*` counters plus `pipe.<stage>` span timers
//! when `mss-obs` is enabled.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::codec;

/// Environment switch for the on-disk tier: `1`/`on`/`true` enable it,
/// `0`/`off`/`false` (or unset) leave the cache memory-only.
pub const CACHE_ENV: &str = "MSS_CACHE";

/// Environment override for the on-disk tier's directory (only consulted
/// when [`CACHE_ENV`] enables the disk tier).
pub const CACHE_DIR_ENV: &str = "MSS_CACHE_DIR";

/// Default on-disk tier location.
pub const DEFAULT_CACHE_DIR: &str = "target/mss-cache";

/// On-disk entry format version: bumped when the header/payload framing
/// changes, so old caches degrade to misses instead of misparses.
pub const DISK_SCHEMA: u32 = 1;

/// Default bound on in-memory entries (FIFO eviction past this).
pub const DEFAULT_MEM_CAPACITY: usize = 1024;

/// The typed stages of the cross-layer flow, in dataflow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// SPICE/PDK cell characterisation → `CellLibrary`.
    CharacterizeCells,
    /// NVSim array estimation → `ArrayMetrics`.
    EstimateArray,
    /// VAET margined-latency distribution solve → variation-aware candidate.
    VaetDistributions,
    /// gem5-class kernel simulation → `SimReport`.
    SimulateKernel,
    /// McPAT power accounting → `PowerReport`.
    McpatAccount,
}

impl Stage {
    /// Every stage, in dataflow order.
    pub const ALL: [Stage; 5] = [
        Stage::CharacterizeCells,
        Stage::EstimateArray,
        Stage::VaetDistributions,
        Stage::SimulateKernel,
        Stage::McpatAccount,
    ];

    /// Number of stages.
    pub const COUNT: usize = 5;

    /// Stable kebab-case name: used in on-disk file names and headers.
    pub fn name(self) -> &'static str {
        match self {
            Stage::CharacterizeCells => "characterize-cells",
            Stage::EstimateArray => "estimate-array",
            Stage::VaetDistributions => "vaet-distributions",
            Stage::SimulateKernel => "simulate-kernel",
            Stage::McpatAccount => "mcpat-account",
        }
    }

    /// Span name timing cache-miss computations of this stage.
    pub fn span_name(self) -> &'static str {
        match self {
            Stage::CharacterizeCells => "pipe.characterize_cells",
            Stage::EstimateArray => "pipe.estimate_array",
            Stage::VaetDistributions => "pipe.vaet_distributions",
            Stage::SimulateKernel => "pipe.simulate_kernel",
            Stage::McpatAccount => "pipe.mcpat_account",
        }
    }

    fn idx(self) -> usize {
        match self {
            Stage::CharacterizeCells => 0,
            Stage::EstimateArray => 1,
            Stage::VaetDistributions => 2,
            Stage::SimulateKernel => 3,
            Stage::McpatAccount => 4,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A result type that can live in the on-disk tier.
///
/// Implemented for the expensive, reusable upstream artifacts
/// (`CellLibrary`, `ArrayMetrics`); cheap or run-scoped results stay in the
/// memory tier only.
pub trait Artifact: Send + Sync + Sized + 'static {
    /// Stable payload-kind tag written to the entry header.
    const KIND: &'static str;
    /// Payload format version; a mismatch on load is a miss.
    const VERSION: u32;
    /// Serialises the payload (one or more NDJSON lines, no header).
    fn encode(&self) -> String;
    /// Parses a payload; `None` on any malformation (treated as a miss).
    fn decode(payload: &str) -> Option<Self>;
}

/// Per-stage lookup/IO counters (a point-in-time snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// In-memory tier hits.
    pub hits: u64,
    /// On-disk tier hits (entry loaded and promoted to memory).
    pub disk_hits: u64,
    /// Full misses: the stage computation actually ran.
    pub misses: u64,
    /// On-disk entries that existed but failed validation/decoding.
    pub load_failures: u64,
    /// Successful on-disk writes.
    pub stores: u64,
    /// Failed on-disk writes (non-fatal).
    pub store_failures: u64,
    /// In-memory entries evicted by the FIFO bound.
    pub evictions: u64,
}

impl StageStats {
    /// Total lookups (hits + disk hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.disk_hits + self.misses
    }
}

#[derive(Default)]
struct StageCounters {
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    load_failures: AtomicU64,
    stores: AtomicU64,
    store_failures: AtomicU64,
    evictions: AtomicU64,
}

impl StageCounters {
    fn snapshot(&self) -> StageStats {
        StageStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            load_failures: self.load_failures.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            store_failures: self.store_failures.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[derive(Clone, Copy)]
enum Event {
    Hit,
    DiskHit,
    Miss,
    LoadFailure,
    Store,
    StoreFailure,
    Eviction,
}

/// The `pipe.<stage>.<event>` observability counter, as a static string so
/// the hot path never allocates.
fn obs_counter_name(stage: Stage, ev: Event) -> &'static str {
    macro_rules! table {
        ($base:literal) => {
            match ev {
                Event::Hit => concat!($base, ".hit"),
                Event::DiskHit => concat!($base, ".disk_hit"),
                Event::Miss => concat!($base, ".miss"),
                Event::LoadFailure => concat!($base, ".load_failure"),
                Event::Store => concat!($base, ".store"),
                Event::StoreFailure => concat!($base, ".store_failure"),
                Event::Eviction => concat!($base, ".eviction"),
            }
        };
    }
    match stage {
        Stage::CharacterizeCells => table!("pipe.characterize_cells"),
        Stage::EstimateArray => table!("pipe.estimate_array"),
        Stage::VaetDistributions => table!("pipe.vaet_distributions"),
        Stage::SimulateKernel => table!("pipe.simulate_kernel"),
        Stage::McpatAccount => table!("pipe.mcpat_account"),
    }
}

/// Name of the per-stage live hit-ratio gauge.
fn obs_hit_ratio_name(stage: Stage) -> &'static str {
    match stage {
        Stage::CharacterizeCells => "pipe.characterize_cells.hit_ratio",
        Stage::EstimateArray => "pipe.estimate_array.hit_ratio",
        Stage::VaetDistributions => "pipe.vaet_distributions.hit_ratio",
        Stage::SimulateKernel => "pipe.simulate_kernel.hit_ratio",
        Stage::McpatAccount => "pipe.mcpat_account.hit_ratio",
    }
}

type Stored = Arc<dyn Any + Send + Sync>;

#[derive(Default)]
struct MemTier {
    map: BTreeMap<(usize, String), Stored>,
    order: VecDeque<(usize, String)>,
}

/// The two-tier content-addressed cache. See the [module docs](self).
pub struct PipeCache {
    mem: Mutex<MemTier>,
    disk_dir: Option<PathBuf>,
    capacity: usize,
    stats: [StageCounters; Stage::COUNT],
}

impl std::fmt::Debug for PipeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity)
            .field("disk_dir", &self.disk_dir)
            .finish()
    }
}

impl PipeCache {
    fn new(disk_dir: Option<PathBuf>) -> Self {
        Self {
            mem: Mutex::new(MemTier::default()),
            disk_dir,
            capacity: DEFAULT_MEM_CAPACITY,
            stats: std::array::from_fn(|_| StageCounters::default()),
        }
    }

    /// A memory-only cache (no disk tier).
    pub fn memory_only() -> Self {
        Self::new(None)
    }

    /// A cache with the on-disk tier rooted at `dir`.
    pub fn with_disk(dir: impl Into<PathBuf>) -> Self {
        Self::new(Some(dir.into()))
    }

    /// Rebounds the in-memory tier (minimum 1 entry).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Builds the cache from the environment: memory-only unless
    /// [`CACHE_ENV`] enables the disk tier, rooted at [`CACHE_DIR_ENV`] or
    /// [`DEFAULT_CACHE_DIR`].
    ///
    /// Garbled values follow the `MSS_THREADS` convention: they are never
    /// fatal — one warning on stderr (first occurrence only), a
    /// `pipe.bad_cache_env` / `pipe.bad_cache_dir_env` observability
    /// counter, and the safe fallback (disk tier off / default directory).
    pub fn from_env() -> Self {
        let disk_on = match std::env::var(CACHE_ENV) {
            Ok(raw) if !raw.trim().is_empty() => match parse_cache_mode(&raw) {
                Ok(on) => on,
                Err(why) => {
                    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                    mss_exec::warn_ignored_env_once(
                        &WARN_ONCE,
                        "pipe.bad_cache_env",
                        format!(
                            "warning: ignoring {CACHE_ENV}={raw:?} ({why}); \
                             on-disk cache stays disabled"
                        ),
                    );
                    false
                }
            },
            _ => false,
        };
        if !disk_on {
            return Self::memory_only();
        }
        let dir = match std::env::var(CACHE_DIR_ENV) {
            Ok(raw) => match parse_cache_dir(&raw) {
                Ok(dir) => dir,
                Err(why) => {
                    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                    mss_exec::warn_ignored_env_once(
                        &WARN_ONCE,
                        "pipe.bad_cache_dir_env",
                        format!(
                            "warning: ignoring {CACHE_DIR_ENV}={raw:?} ({why}); \
                             using {DEFAULT_CACHE_DIR}"
                        ),
                    );
                    PathBuf::from(DEFAULT_CACHE_DIR)
                }
            },
            Err(_) => PathBuf::from(DEFAULT_CACHE_DIR),
        };
        Self::with_disk(dir)
    }

    /// The on-disk tier's root, when enabled.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Number of live in-memory entries.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("pipe cache poisoned").map.len()
    }

    /// True when the memory tier holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of one stage's counters.
    pub fn stats(&self, stage: Stage) -> StageStats {
        self.stats[stage.idx()].snapshot()
    }

    fn count(&self, stage: Stage, ev: Event) {
        let c = &self.stats[stage.idx()];
        let cell = match ev {
            Event::Hit => &c.hits,
            Event::DiskHit => &c.disk_hits,
            Event::Miss => &c.misses,
            Event::LoadFailure => &c.load_failures,
            Event::Store => &c.stores,
            Event::StoreFailure => &c.store_failures,
            Event::Eviction => &c.evictions,
        };
        cell.fetch_add(1, Ordering::Relaxed);
        mss_obs::counter_add(obs_counter_name(stage, ev), 1);
        // Live hit-ratio gauge per stage (mirrored onto the event bus by
        // the global gauge hook). Only lookups move the ratio, and the
        // whole computation is skipped when observability is off.
        if matches!(ev, Event::Hit | Event::DiskHit | Event::Miss) && mss_obs::enabled() {
            let hits = c.hits.load(Ordering::Relaxed) + c.disk_hits.load(Ordering::Relaxed);
            let lookups = hits + c.misses.load(Ordering::Relaxed);
            if lookups > 0 {
                mss_obs::gauge_set(obs_hit_ratio_name(stage), hits as f64 / lookups as f64);
            }
        }
    }

    fn lookup_mem<T: Send + Sync + 'static>(&self, stage: Stage, key: &str) -> Option<Arc<T>> {
        let mem = self.mem.lock().expect("pipe cache poisoned");
        let stored = mem.map.get(&(stage.idx(), key.to_string()))?;
        // A type mismatch under the same digest cannot happen for honest
        // keys; treat it as absent rather than panicking.
        stored.clone().downcast::<T>().ok()
    }

    fn insert_mem(&self, stage: Stage, key: &str, value: Stored) {
        let mut mem = self.mem.lock().expect("pipe cache poisoned");
        let full_key = (stage.idx(), key.to_string());
        if mem.map.insert(full_key.clone(), value).is_none() {
            mem.order.push_back(full_key);
        }
        while mem.map.len() > self.capacity {
            let Some(victim) = mem.order.pop_front() else {
                break;
            };
            if mem.map.remove(&victim).is_some() {
                if let Some(stage) = Stage::ALL.get(victim.0).copied() {
                    self.count(stage, Event::Eviction);
                }
            }
        }
        // Memory-tier occupancy gauge, computed while the lock is already
        // held (the fraction of `capacity` currently resident).
        if mss_obs::enabled() && self.capacity > 0 {
            mss_obs::gauge_set(
                "pipe.mem_occupancy",
                mem.map.len() as f64 / self.capacity as f64,
            );
        }
    }

    /// Returns the memoized result for `(stage, key)` or computes, caches
    /// and returns it (memory tier only).
    ///
    /// `key` must be a structural digest of **every** input of `compute`
    /// (see [`crate::hash`]). Errors from `compute` are returned verbatim
    /// and nothing is cached.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns.
    pub fn get_or_compute<T, E, F>(&self, stage: Stage, key: &str, compute: F) -> Result<Arc<T>, E>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> Result<T, E>,
    {
        if let Some(hit) = self.lookup_mem::<T>(stage, key) {
            self.count(stage, Event::Hit);
            return Ok(hit);
        }
        self.count(stage, Event::Miss);
        let value = {
            let _span = mss_obs::span(stage.span_name());
            compute()?
        };
        let arc = Arc::new(value);
        self.insert_mem(stage, key, arc.clone() as Stored);
        Ok(arc)
    }

    /// [`get_or_compute`](Self::get_or_compute) with the on-disk tier:
    /// memory, then disk (validated, promoted to memory on success), then
    /// compute + store to both tiers.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns; disk problems are never errors.
    pub fn get_or_compute_artifact<T, E, F>(
        &self,
        stage: Stage,
        key: &str,
        compute: F,
    ) -> Result<Arc<T>, E>
    where
        T: Artifact,
        F: FnOnce() -> Result<T, E>,
    {
        if let Some(hit) = self.lookup_mem::<T>(stage, key) {
            self.count(stage, Event::Hit);
            return Ok(hit);
        }
        if let Some(loaded) = self.load_disk::<T>(stage, key) {
            self.count(stage, Event::DiskHit);
            let arc = Arc::new(loaded);
            self.insert_mem(stage, key, arc.clone() as Stored);
            return Ok(arc);
        }
        self.count(stage, Event::Miss);
        let value = {
            let _span = mss_obs::span(stage.span_name());
            compute()?
        };
        let arc = Arc::new(value);
        self.insert_mem(stage, key, arc.clone() as Stored);
        self.store_disk(stage, key, &*arc);
        Ok(arc)
    }

    fn load_disk<T: Artifact>(&self, stage: Stage, key: &str) -> Option<T> {
        let dir = self.disk_dir.as_ref()?;
        // Disk I/O is the cache's own cost; spanned separately from the
        // stage-compute spans so `mss_report summary` can show how much of a
        // warm run is tier traffic rather than recomputation.
        let _span = mss_obs::span("pipe.disk.load");
        let path = entry_path(dir, stage, key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            // Absent entry: a plain miss. Anything else (permissions, a
            // directory in the way, invalid UTF-8) is a damaged entry.
            Err(e) if e.kind() == ErrorKind::NotFound => return None,
            Err(_) => {
                self.count(stage, Event::LoadFailure);
                return None;
            }
        };
        match decode_entry::<T>(&text, stage, key) {
            Some(v) => Some(v),
            None => {
                self.count(stage, Event::LoadFailure);
                None
            }
        }
    }

    fn store_disk<T: Artifact>(&self, stage: Stage, key: &str, value: &T) {
        let Some(dir) = self.disk_dir.as_ref() else {
            return;
        };
        let _span = mss_obs::span("pipe.disk.store");
        match write_entry(dir, stage, key, value) {
            Ok(()) => self.count(stage, Event::Store),
            Err(_) => self.count(stage, Event::StoreFailure),
        }
    }
}

/// Validates and decodes one on-disk entry; `None` on any mismatch.
fn decode_entry<T: Artifact>(text: &str, stage: Stage, key: &str) -> Option<T> {
    let (header, payload) = text.split_once('\n')?;
    let map = codec::parse_object(header)?;
    if map.get("type").map(String::as_str) != Some("mss-cache")
        || codec::get_u64(&map, "schema") != Some(u64::from(DISK_SCHEMA))
        || map.get("stage").map(String::as_str) != Some(stage.name())
        || map.get("kind").map(String::as_str) != Some(T::KIND)
        || codec::get_u64(&map, "version") != Some(u64::from(T::VERSION))
        || map.get("key").map(String::as_str) != Some(key)
    {
        return None;
    }
    T::decode(payload)
}

fn write_entry<T: Artifact>(dir: &Path, stage: Stage, key: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let header = codec::JsonLine::new()
        .str("type", "mss-cache")
        .u64("schema", u64::from(DISK_SCHEMA))
        .str("stage", stage.name())
        .str("kind", T::KIND)
        .u64("version", u64::from(T::VERSION))
        .str("key", key)
        .finish();
    let mut text = header;
    text.push('\n');
    text.push_str(&value.encode());
    if !text.ends_with('\n') {
        text.push('\n');
    }
    // Write-then-rename so concurrent readers never observe a torn entry,
    // with an fsync before the rename so a crash (or power loss) right
    // after the rename can never publish a truncated entry under the final
    // name — the entry either exists complete or not at all.
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        ".tmp-{}-{}-{}-{key}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        stage.name(),
    ));
    let written = (|| {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()
    })();
    let renamed = written.and_then(|()| std::fs::rename(&tmp, entry_path(dir, stage, key)));
    if renamed.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    renamed
}

/// Where `(stage, key)` lives inside the on-disk tier.
fn entry_path(dir: &Path, stage: Stage, key: &str) -> PathBuf {
    dir.join(format!("{}-{key}.ndjson", stage.name()))
}

/// Parses an [`CACHE_ENV`] value into "disk tier on?".
///
/// Accepted: `1`/`on`/`true`/`yes` (on) and `0`/`off`/`false`/`no` (off),
/// case-insensitively.
///
/// # Errors
///
/// A human-readable description of the rejected value, so callers can warn
/// instead of silently ignoring a misconfiguration.
pub fn parse_cache_mode(raw: &str) -> Result<bool, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value".to_string());
    }
    match trimmed.to_ascii_lowercase().as_str() {
        "1" | "on" | "true" | "yes" => Ok(true),
        "0" | "off" | "false" | "no" => Ok(false),
        other => Err(format!("not a cache switch (use 0/1/on/off): {other:?}")),
    }
}

/// Parses a [`CACHE_DIR_ENV`] value into a directory path.
///
/// # Errors
///
/// A human-readable description when the value is empty/whitespace.
pub fn parse_cache_dir(raw: &str) -> Result<PathBuf, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty path".to_string());
    }
    Ok(PathBuf::from(trimmed))
}

static GLOBAL: OnceLock<Arc<PipeCache>> = OnceLock::new();

/// The process-wide cache, lazily built from the environment
/// ([`PipeCache::from_env`]). Flows sharing it reuse each other's upstream
/// artifacts — the point of the pipeline.
pub fn global() -> Arc<PipeCache> {
    GLOBAL
        .get_or_init(|| Arc::new(PipeCache::from_env()))
        .clone()
}

/// Installs an explicit global cache, overriding the environment. Returns
/// `false` (and changes nothing) when the global cache was already built —
/// call it first thing in `main` or a test binary.
pub fn init_global_with(cache: PipeCache) -> bool {
    let mut fresh = false;
    GLOBAL.get_or_init(|| {
        fresh = true;
        Arc::new(cache)
    });
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny artifact for exercising the disk tier.
    #[derive(Debug, Clone, PartialEq)]
    struct Probe {
        x: f64,
        tag: String,
    }

    impl Artifact for Probe {
        const KIND: &'static str = "probe";
        const VERSION: u32 = 1;

        fn encode(&self) -> String {
            codec::JsonLine::new()
                .f64_bits("x", self.x)
                .str("tag", &self.tag)
                .finish()
        }

        fn decode(payload: &str) -> Option<Self> {
            let map = codec::parse_object(payload.trim_end())?;
            Some(Self {
                x: codec::get_f64_bits(&map, "x")?,
                tag: map.get("tag")?.clone(),
            })
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mss-pipe-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_memoizes_and_counts() {
        let cache = PipeCache::memory_only();
        let mut calls = 0u32;
        for _ in 0..3 {
            let v: Arc<u64> = cache
                .get_or_compute(Stage::SimulateKernel, "k1", || {
                    calls += 1;
                    Ok::<_, ()>(41 + u64::from(calls))
                })
                .unwrap();
            assert_eq!(*v, 42);
        }
        assert_eq!(calls, 1);
        let s = cache.stats(Stage::SimulateKernel);
        assert_eq!((s.hits, s.misses), (2, 1));
        assert_eq!(s.lookups(), 3);
    }

    #[test]
    fn compute_errors_are_propagated_and_not_cached() {
        let cache = PipeCache::memory_only();
        let r: Result<Arc<u64>, &str> =
            cache.get_or_compute(Stage::McpatAccount, "bad", || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        let ok: Arc<u64> = cache
            .get_or_compute(Stage::McpatAccount, "bad", || Ok::<_, &str>(7))
            .unwrap();
        assert_eq!(*ok, 7);
        assert_eq!(cache.stats(Stage::McpatAccount).misses, 2);
    }

    #[test]
    fn fifo_eviction_is_bounded_and_counted() {
        let cache = PipeCache::memory_only().with_capacity(2);
        for i in 0..5u64 {
            let _ = cache
                .get_or_compute(Stage::SimulateKernel, &format!("k{i}"), || Ok::<_, ()>(i))
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(Stage::SimulateKernel).evictions, 3);
        // The newest entry survived.
        let s0 = cache.stats(Stage::SimulateKernel);
        let _ = cache
            .get_or_compute(Stage::SimulateKernel, "k4", || Ok::<_, ()>(99u64))
            .unwrap();
        assert_eq!(cache.stats(Stage::SimulateKernel).hits, s0.hits + 1);
    }

    #[test]
    fn disk_tier_round_trips_and_promotes() {
        let dir = temp_dir("roundtrip");
        let value = Probe {
            x: -0.0,
            tag: "a\"b".into(),
        };
        {
            let cache = PipeCache::with_disk(&dir);
            let got = cache
                .get_or_compute_artifact(Stage::CharacterizeCells, "abcd", {
                    let value = value.clone();
                    move || Ok::<_, ()>(value)
                })
                .unwrap();
            assert_eq!(*got, value);
            assert_eq!(cache.stats(Stage::CharacterizeCells).stores, 1);
        }
        // A "fresh process": new cache, same directory.
        let cache = PipeCache::with_disk(&dir);
        let got: Arc<Probe> = cache
            .get_or_compute_artifact(Stage::CharacterizeCells, "abcd", || {
                Err::<Probe, _>("must not recompute")
            })
            .unwrap();
        assert_eq!(*got, value);
        assert_eq!(got.x.to_bits(), (-0.0f64).to_bits());
        let s = cache.stats(Stage::CharacterizeCells);
        assert_eq!((s.disk_hits, s.misses), (1, 0));
        // Promoted: the next lookup is a memory hit.
        let _: Arc<Probe> = cache
            .get_or_compute_artifact(Stage::CharacterizeCells, "abcd", || {
                Err::<Probe, _>("must not recompute")
            })
            .unwrap();
        assert_eq!(cache.stats(Stage::CharacterizeCells).hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_mismatched_entries_are_misses_never_errors() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let key = "feed";
        let path = entry_path(&dir, Stage::EstimateArray, key);
        let probe = Probe {
            x: 1.5,
            tag: "t".into(),
        };

        // Entry variants that must all degrade to a recompute.
        let good_header = |version: u32, kind: &str, stage: &str, k: &str| {
            codec::JsonLine::new()
                .str("type", "mss-cache")
                .u64("schema", u64::from(DISK_SCHEMA))
                .str("stage", stage)
                .str("kind", kind)
                .u64("version", u64::from(version))
                .str("key", k)
                .finish()
        };
        let cases = [
            "total garbage\n".to_string(),
            "{\"type\":\"mss-cache\"\n".to_string(), // truncated header
            format!(
                "{}\nnot a payload\n",
                good_header(1, "probe", "estimate-array", key)
            ),
            // Version mismatch.
            format!(
                "{}\n{}\n",
                good_header(2, "probe", "estimate-array", key),
                probe.encode()
            ),
            // Kind mismatch.
            format!(
                "{}\n{}\n",
                good_header(1, "other", "estimate-array", key),
                probe.encode()
            ),
            // Stage mismatch.
            format!(
                "{}\n{}\n",
                good_header(1, "probe", "simulate-kernel", key),
                probe.encode()
            ),
            // Key mismatch (renamed/copied file).
            format!(
                "{}\n{}\n",
                good_header(1, "probe", "estimate-array", "beef"),
                probe.encode()
            ),
        ];
        for (i, text) in cases.iter().enumerate() {
            std::fs::write(&path, text).unwrap();
            let cache = PipeCache::with_disk(&dir);
            let got = cache
                .get_or_compute_artifact(Stage::EstimateArray, key, || {
                    Ok::<_, ()>(Probe {
                        x: 9.0,
                        tag: "recomputed".into(),
                    })
                })
                .unwrap();
            assert_eq!(got.tag, "recomputed", "case {i} was served from disk");
            let s = cache.stats(Stage::EstimateArray);
            assert_eq!(
                (s.load_failures, s.misses, s.disk_hits),
                (1, 1, 0),
                "case {i}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_final_line_is_a_miss_never_an_error() {
        // The crash-safety regression: a mid-write kill may leave any
        // prefix of an entry on disk (if the temp-file + fsync + rename
        // protocol were ever weakened). Every such prefix must degrade to
        // a counted load-failure and a recompute — never an error, never
        // stale data.
        let dir = temp_dir("truncated");
        let key = "cafe";
        {
            let cache = PipeCache::with_disk(&dir);
            let _ = cache
                .get_or_compute_artifact(Stage::EstimateArray, key, || {
                    Ok::<_, ()>(Probe {
                        x: 2.25,
                        tag: "whole".into(),
                    })
                })
                .unwrap();
        }
        let path = entry_path(&dir, Stage::EstimateArray, key);
        let full = std::fs::read_to_string(&path).unwrap();
        let header_end = full.find('\n').unwrap() + 1;
        // Cut inside the header, at an empty payload, mid-payload, and one
        // byte short of a complete payload line.
        let cuts = [
            header_end / 2,
            header_end,
            header_end + (full.len() - header_end) / 2,
            full.len() - 2,
        ];
        for cut in cuts {
            std::fs::write(&path, &full[..cut]).unwrap();
            let cache = PipeCache::with_disk(&dir);
            let got = cache
                .get_or_compute_artifact(Stage::EstimateArray, key, || {
                    Ok::<_, ()>(Probe {
                        x: 9.0,
                        tag: "recomputed".into(),
                    })
                })
                .unwrap();
            assert_eq!(got.tag, "recomputed", "cut at {cut} was served from disk");
            let s = cache.stats(Stage::EstimateArray);
            assert_eq!(
                (s.load_failures, s.misses, s.disk_hits),
                (1, 1, 0),
                "cut at {cut}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_parsers_follow_the_threads_convention() {
        assert_eq!(parse_cache_mode("1"), Ok(true));
        assert_eq!(parse_cache_mode(" ON "), Ok(true));
        assert_eq!(parse_cache_mode("true"), Ok(true));
        assert_eq!(parse_cache_mode("0"), Ok(false));
        assert_eq!(parse_cache_mode("off"), Ok(false));
        assert!(parse_cache_mode("").is_err());
        assert!(parse_cache_mode("maybe").is_err());
        assert_eq!(parse_cache_dir(" target/x "), Ok(PathBuf::from("target/x")));
        assert!(parse_cache_dir("   ").is_err());
    }

    #[test]
    fn stage_names_are_stable() {
        // On-disk compatibility: these strings are part of the cache format.
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "characterize-cells",
                "estimate-array",
                "vaet-distributions",
                "simulate-kernel",
                "mcpat-account"
            ]
        );
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s.idx(), i);
            assert_eq!(s.to_string(), s.name());
        }
    }
}
