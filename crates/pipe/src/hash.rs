//! Structural stable hashing: the content-address of a stage input.
//!
//! [`StableHash`] is the in-tree replacement for `std::hash::Hash` when the
//! hash value must be *stable across processes, platforms and releases* —
//! cache keys written to disk by one run must be found by the next. The
//! hasher is FNV-1a over little-endian byte encodings with a SplitMix64
//! finalizer, both fully specified here; `std`'s `DefaultHasher` is
//! explicitly documented as unstable and would silently invalidate every
//! on-disk cache entry on a toolchain upgrade.
//!
//! Design rules encoded by the impls:
//!
//! - every value is framed (length-prefixed strings and sequences, tagged
//!   enums and `Option`s) so adjacent fields can never alias — `("ab", "c")`
//!   and `("a", "bc")` hash differently;
//! - floats hash their IEEE-754 bit pattern ([`f64::to_bits`]), so `0.0`
//!   and `-0.0` are distinct keys and round-tripped values rehash
//!   identically — the same convention the on-disk codec uses.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// SplitMix64 output mix: the avalanche finalizer applied by
/// [`StableHasher::finish`].
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A streaming FNV-1a/SplitMix64 hasher with a stable, documented output.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes (FNV-1a: xor then multiply, byte at a time).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an `i64` (two's complement, little-endian).
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an `f64` as its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The finalized 64-bit hash (SplitMix64 avalanche over the FNV state).
    pub fn finish(&self) -> u64 {
        splitmix64(self.state)
    }

    /// The finalized hash as a 16-character lowercase hex digest — the
    /// cache-key format used in memory and in on-disk file names.
    pub fn digest(&self) -> String {
        format!("{:016x}", self.finish())
    }
}

/// A type whose structure can be absorbed into a [`StableHasher`].
///
/// Implementations are written by hand (no derive machinery in a zero-dep
/// workspace) and must visit every field that influences the computation the
/// hash keys — adding a field to a config struct means extending its
/// `stable_hash` or stale cache entries will be served for changed inputs.
pub trait StableHash {
    /// Absorbs `self` into the hasher.
    fn stable_hash(&self, h: &mut StableHasher);
}

/// Convenience: the hex digest of a single value.
pub fn digest_of<T: StableHash + ?Sized>(v: &T) -> String {
    let mut h = StableHasher::new();
    v.stable_hash(&mut h);
    h.digest()
}

impl StableHash for u8 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(*self);
    }
}

impl StableHash for u16 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(u32::from(*self));
    }
}

impl StableHash for u32 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(*self);
    }
}

impl StableHash for u64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self);
    }
}

impl StableHash for usize {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self as u64);
    }
}

impl StableHash for i32 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_i64(i64::from(*self));
    }
}

impl StableHash for i64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_i64(*self);
    }
}

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(u8::from(*self));
    }
}

impl StableHash for f64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_f64(*self);
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, h: &mut StableHasher) {
        (**self).stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.len() as u64);
        for item in self {
            item.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash> StableHash for (A, B) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash, C: StableHash> StableHash for (A, B, C) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
        self.2.stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash, C: StableHash, D: StableHash> StableHash for (A, B, C, D) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
        self.2.stable_hash(h);
        self.3.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_pinned() {
        // Pinned literals: if these change, every on-disk cache in the wild
        // is silently invalidated — that must be a deliberate act.
        assert_eq!(digest_of(&42u64), digest_of(&42u64));
        assert_eq!(digest_of(&42u64), "a4e6579fd9ba8f6d");
        assert_eq!(digest_of("mss"), "918fbdde2d310689");
    }

    #[test]
    fn distinct_values_produce_distinct_digests() {
        assert_ne!(digest_of(&1u64), digest_of(&2u64));
        assert_ne!(digest_of(&1u64), digest_of(&1u32));
        assert_ne!(digest_of(&0.0f64), digest_of(&-0.0f64));
        assert_ne!(digest_of(&f64::NAN), digest_of(&0.0f64));
    }

    #[test]
    fn framing_prevents_field_aliasing() {
        assert_ne!(digest_of(&("ab", "c")), digest_of(&("a", "bc")));
        assert_ne!(
            digest_of(&vec![vec![1u64, 2], vec![3]]),
            digest_of(&vec![vec![1u64], vec![2, 3]])
        );
        assert_ne!(digest_of(&Option::<u64>::None), digest_of(&Some(0u64)));
    }

    #[test]
    fn digest_format_is_16_hex_chars() {
        for v in [0u64, 1, u64::MAX] {
            let d = digest_of(&v);
            assert_eq!(d.len(), 16);
            assert!(d
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        }
    }
}
