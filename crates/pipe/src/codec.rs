//! NDJSON line codec for on-disk cache entries.
//!
//! Emission reuses the observability layer's hand-rolled JSON emitter
//! ([`mss_obs::ndjson`]) — one flat object per line, keys in insertion
//! order. Parsing is the matching minimal reader: it accepts exactly the
//! flat string/number objects this module emits and returns `None` on
//! anything else, which the cache layer treats as a miss, never an error.
//!
//! Floats round-trip **exactly**: they are stored as the 16-hex-digit
//! [`f64::to_bits`] pattern (same convention as [`crate::hash`]), not as a
//! decimal rendering, so a value loaded from disk is bit-identical to the
//! value that was computed.

use std::collections::BTreeMap;

use mss_obs::ndjson::json_str;

/// Builds one flat JSON object line, keys in insertion order.
#[derive(Debug, Default)]
pub struct JsonLine {
    body: String,
}

impl JsonLine {
    /// An empty object builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push_str(&json_str(key));
        self.body.push(':');
    }

    /// Adds a string field (JSON-escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.push_key(key);
        self.body.push_str(&json_str(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.push_key(key);
        self.body.push_str(&value.to_string());
        self
    }

    /// Adds an `f64` field as its exact 16-hex-digit bit pattern (a JSON
    /// string), so the value survives the round trip bit-for-bit.
    pub fn f64_bits(self, key: &str, value: f64) -> Self {
        let hex = hex_of_f64(value);
        self.str(key, &hex)
    }

    /// Renders the `{...}` object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// The exact 16-hex-digit encoding of an `f64`'s bit pattern.
pub fn hex_of_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parses a 16-hex-digit bit pattern back into the exact `f64`.
pub fn f64_of_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Parses one flat JSON object line into a key → raw-value map.
///
/// String values are unescaped; numeric/bare values are kept as their
/// source text (retrieve them with [`get_u64`] / [`get_f64_bits`]).
/// Returns `None` for anything that is not a flat object of the shape
/// [`JsonLine`] emits.
pub fn parse_object(line: &str) -> Option<BTreeMap<String, String>> {
    let mut out = BTreeMap::new();
    let trimmed = line.trim();
    let inner = trimmed.strip_prefix('{')?.strip_suffix('}')?;
    let mut chars = inner.char_indices().peekable();
    loop {
        skip_ws(inner, &mut chars);
        if chars.peek().is_none() {
            break;
        }
        let key = parse_string(inner, &mut chars)?;
        skip_ws(inner, &mut chars);
        match chars.next() {
            Some((_, ':')) => {}
            _ => return None,
        }
        skip_ws(inner, &mut chars);
        let value = match chars.peek() {
            Some((_, '"')) => parse_string(inner, &mut chars)?,
            Some(_) => parse_bare(inner, &mut chars),
            None => return None,
        };
        out.insert(key, value);
        skip_ws(inner, &mut chars);
        match chars.next() {
            None => break,
            // A comma must introduce another field (no trailing commas).
            Some((_, ',')) => {
                skip_ws(inner, &mut chars);
                chars.peek()?;
            }
            Some(_) => return None,
        }
    }
    Some(out)
}

type CharIter<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(_src: &str, chars: &mut CharIter<'_>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

/// Parses a double-quoted JSON string (the escapes [`json_str`] emits).
fn parse_string(_src: &str, chars: &mut CharIter<'_>) -> Option<String> {
    match chars.next() {
        Some((_, '"')) => {}
        _ => return None,
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            (_, '"') => return Some(out),
            (_, '\\') => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            (_, c) => out.push(c),
        }
    }
}

/// Consumes a bare (unquoted) token up to the next `,` / end.
fn parse_bare(_src: &str, chars: &mut CharIter<'_>) -> String {
    let mut out = String::new();
    while let Some(&(_, c)) = chars.peek() {
        if c == ',' {
            break;
        }
        out.push(c);
        chars.next();
    }
    out.trim().to_string()
}

/// Reads a `u64` field from a parsed object.
pub fn get_u64(map: &BTreeMap<String, String>, key: &str) -> Option<u64> {
    map.get(key)?.parse().ok()
}

/// Reads an exact-bits `f64` field from a parsed object.
pub fn get_f64_bits(map: &BTreeMap<String, String>, key: &str) -> Option<f64> {
    f64_of_hex(map.get(key)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_round_trips() {
        let line = JsonLine::new()
            .str("type", "mss-cache")
            .u64("schema", 1)
            .str("key", "00ff")
            .f64_bits("v", -0.0)
            .finish();
        let map = parse_object(&line).unwrap();
        assert_eq!(map.get("type").unwrap(), "mss-cache");
        assert_eq!(get_u64(&map, "schema"), Some(1));
        assert_eq!(
            get_f64_bits(&map, "v").unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0,
            core::f64::consts::PI,
            1.234_567_890_123_456_7e-308,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::NAN,
            f64::INFINITY,
        ] {
            let hex = hex_of_f64(v);
            assert_eq!(f64_of_hex(&hex).unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn escaped_strings_survive() {
        let line = JsonLine::new().str("k", "a\"b\\c\nd\u{1}e").finish();
        let map = parse_object(&line).unwrap();
        assert_eq!(map.get("k").unwrap(), "a\"b\\c\nd\u{1}e");
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "not json",
            "{\"k\" 1}",
            "{\"k\":}",
            "{\"unterminated",
            "[1,2]",
            "{\"k\":\"v\",}",
        ] {
            assert!(parse_object(bad).is_none(), "accepted {bad:?}");
        }
        assert_eq!(f64_of_hex("xyz"), None);
        assert_eq!(f64_of_hex("0123"), None);
    }
}
