//! `mss-pipe` — the content-addressed stage pipeline.
//!
//! The paper's cross-layer flow (compact model → SPICE/PDK cell
//! characterisation → NVSim array estimation → VAET variation solve →
//! MAGPIE system simulation → McPAT accounting) is a dataflow of
//! artifacts, and the expensive upstream artifacts are *shared*: every
//! scenario of a node sweep re-uses the same `CellLibrary`, and every
//! iso-capacity cache configuration that appears twice re-uses the same
//! `ArrayMetrics`. This crate turns that observation into machinery:
//!
//! - [`hash`] — a structural [`hash::StableHash`] trait with a
//!   fully specified FNV-1a + SplitMix64 hasher, stable across processes
//!   and releases, producing the 16-hex-digit content address of a stage's
//!   inputs;
//! - [`codec`] — the NDJSON line codec for on-disk entries, with exact
//!   (`f64::to_bits`) float round-tripping;
//! - [`cache`] — the two-tier memoization cache: a bounded in-memory store
//!   plus an opt-in on-disk store under `target/mss-cache/` (`MSS_CACHE`,
//!   `MSS_CACHE_DIR`), validated on load so corruption degrades to a
//!   recompute, never an error;
//! - [`checkpoint`] — append-only, crash-tolerant sweep journals so a
//!   killed run resumes from its completed tasks instead of from scratch.
//!
//! Memoization here is semantically transparent by construction: every
//! stage computation in the workspace is a pure deterministic function of
//! its hashed inputs, so reports are bit-identical at any `MSS_THREADS`
//! and any cache temperature. Like the rest of the workspace this crate
//! has **zero external dependencies**.

#![deny(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod codec;
pub mod hash;

pub use cache::{
    global, init_global_with, parse_cache_dir, parse_cache_mode, Artifact, PipeCache, Stage,
    StageStats, CACHE_DIR_ENV, CACHE_ENV, DEFAULT_CACHE_DIR,
};
pub use checkpoint::{SweepJournal, TaskState};
pub use hash::{digest_of, StableHash, StableHasher};
