//! Sweep checkpoint journals: crash-tolerant resume manifests.
//!
//! The two-tier [`cache`](crate::cache) already makes a killed sweep cheap
//! to *recompute* — completed stage artifacts come back as disk hits. What
//! it cannot say is which sweep *tasks* had finished, which had failed, and
//! where a resumed run should pick up. A [`SweepJournal`] records exactly
//! that: one append-only NDJSON file per sweep, one line per terminal task
//! event, written with the same durability discipline as the disk tier
//! (flush + fsync per append) and read with the same damage tolerance (a
//! torn or garbled line — the signature of a mid-write kill — is skipped,
//! never an error).
//!
//! The journal is keyed by a *sweep digest* (the structural hash of the
//! sweep's inputs, see [`crate::digest_of`]): a journal written by a
//! different sweep configuration is ignored wholesale, so a stale file can
//! never convince a new sweep that its work is already done.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::codec;

/// Journal format version; bumped on incompatible line-shape changes.
const JOURNAL_SCHEMA: u32 = 1;

/// Terminal state of one journaled task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskState {
    /// The task completed; the payload is the caller's result digest
    /// (hex), letting a resume cross-check cached artifacts.
    Done {
        /// Structural digest of the task's result.
        digest: String,
    },
    /// The task failed terminally; the payload is a rendered cause.
    Failed {
        /// Human-readable failure cause.
        cause: String,
    },
}

/// An append-only, crash-tolerant sweep manifest.
///
/// ```
/// use mss_pipe::checkpoint::{SweepJournal, TaskState};
///
/// let dir = std::env::temp_dir().join(format!("mss-journal-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let path = dir.join("sweep.ndjson");
///
/// // First run: two of three tasks complete before a (simulated) kill.
/// let mut journal = SweepJournal::open(&path, "0123456789abcdef").unwrap();
/// journal.record(&"task-0", TaskState::Done { digest: "aa".into() }).unwrap();
/// journal.record(&"task-1", TaskState::Failed { cause: "boom".into() }).unwrap();
///
/// // Resumed run: the journal knows what happened.
/// let resumed = SweepJournal::open(&path, "0123456789abcdef").unwrap();
/// assert!(resumed.is_done(&"task-0"));
/// assert!(!resumed.is_done(&"task-1"));   // failed, not done
/// assert!(!resumed.is_done(&"task-2"));   // never ran
/// assert_eq!(resumed.len(), 2);
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    sweep: String,
    entries: BTreeMap<String, TaskState>,
}

impl SweepJournal {
    /// Opens (or creates) the journal at `path` for the sweep identified by
    /// `sweep_digest`, replaying any existing entries.
    ///
    /// Replay is damage-tolerant: lines that are garbled, torn (no final
    /// newline) or belong to a different sweep digest or schema are counted
    /// into the `pipe.journal.skipped_lines` observability counter and
    /// ignored. A later entry for the same task supersedes an earlier one.
    ///
    /// # Errors
    ///
    /// Only real I/O errors (unreadable existing file, uncreatable parent
    /// directory) — never data damage.
    pub fn open(path: &Path, sweep_digest: &str) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut entries = BTreeMap::new();
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let mut skipped = 0u64;
                let complete_up_to = text.rfind('\n').map_or(0, |i| i + 1);
                // Anything after the last newline is a torn final line from
                // a mid-append kill: unreadable by construction, skip it.
                if complete_up_to < text.len() {
                    skipped += 1;
                }
                for line in text[..complete_up_to].lines() {
                    match parse_line(line, sweep_digest) {
                        Some((task, state)) => {
                            entries.insert(task, state);
                        }
                        None => skipped += 1,
                    }
                }
                if skipped > 0 {
                    mss_obs::counter_add("pipe.journal.skipped_lines", skipped);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Self {
            path: path.to_path_buf(),
            sweep: sweep_digest.to_string(),
            entries,
        })
    }

    /// The journal's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sweep digest this journal belongs to.
    pub fn sweep_digest(&self) -> &str {
        &self.sweep
    }

    /// Number of journaled tasks (done + failed).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when `task` completed successfully in this or a previous run.
    pub fn is_done(&self, task: &impl std::fmt::Display) -> bool {
        matches!(
            self.entries.get(&task.to_string()),
            Some(TaskState::Done { .. })
        )
    }

    /// The journaled state of `task`, if any.
    pub fn state(&self, task: &impl std::fmt::Display) -> Option<&TaskState> {
        self.entries.get(&task.to_string())
    }

    /// Completed tasks with their result digests, in task-key order.
    pub fn done(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().filter_map(|(k, v)| match v {
            TaskState::Done { digest } => Some((k.as_str(), digest.as_str())),
            TaskState::Failed { .. } => None,
        })
    }

    /// Terminally failed tasks with their causes, in task-key order.
    pub fn failed(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().filter_map(|(k, v)| match v {
            TaskState::Failed { cause } => Some((k.as_str(), cause.as_str())),
            TaskState::Done { .. } => None,
        })
    }

    /// Appends one terminal task event and makes it durable (flush +
    /// fsync) before returning, so a kill after `record` returns can never
    /// lose the entry.
    ///
    /// # Errors
    ///
    /// The underlying I/O error; the in-memory state is only updated after
    /// a durable append.
    pub fn record(
        &mut self,
        task: &impl std::fmt::Display,
        state: TaskState,
    ) -> std::io::Result<()> {
        let task = task.to_string();
        let line = match &state {
            TaskState::Done { digest } => codec::JsonLine::new()
                .str("type", "mss-sweep")
                .u64("schema", u64::from(JOURNAL_SCHEMA))
                .str("sweep", &self.sweep)
                .str("task", &task)
                .str("status", "done")
                .str("digest", digest)
                .finish(),
            TaskState::Failed { cause } => codec::JsonLine::new()
                .str("type", "mss-sweep")
                .u64("schema", u64::from(JOURNAL_SCHEMA))
                .str("sweep", &self.sweep)
                .str("task", &task)
                .str("status", "failed")
                .str("cause", cause)
                .finish(),
        };
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        mss_obs::counter_add("pipe.journal.records", 1);
        self.entries.insert(task, state);
        Ok(())
    }
}

/// Parses one journal line for `sweep`; `None` skips it.
fn parse_line(line: &str, sweep: &str) -> Option<(String, TaskState)> {
    let map = codec::parse_object(line)?;
    if map.get("type").map(String::as_str) != Some("mss-sweep")
        || codec::get_u64(&map, "schema") != Some(u64::from(JOURNAL_SCHEMA))
        || map.get("sweep").map(String::as_str) != Some(sweep)
    {
        return None;
    }
    let task = map.get("task")?.clone();
    let state = match map.get("status").map(String::as_str)? {
        "done" => TaskState::Done {
            digest: map.get("digest")?.clone(),
        },
        "failed" => TaskState::Failed {
            cause: map.get("cause")?.clone(),
        },
        _ => return None,
    };
    Some((task, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mss-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("sweep.ndjson")
    }

    #[test]
    fn records_replay_across_reopens() {
        let path = temp_path("replay");
        let mut j = SweepJournal::open(&path, "deadbeef00000000").unwrap();
        assert!(j.is_empty());
        j.record(
            &"pair-0-0",
            TaskState::Done {
                digest: "aaaa".into(),
            },
        )
        .unwrap();
        j.record(
            &"pair-0-1",
            TaskState::Failed {
                cause: "panicked: chaos".into(),
            },
        )
        .unwrap();
        j.record(
            &"pair-1-0",
            TaskState::Done {
                digest: "bbbb".into(),
            },
        )
        .unwrap();

        let j2 = SweepJournal::open(&path, "deadbeef00000000").unwrap();
        assert_eq!(j2.len(), 3);
        assert!(j2.is_done(&"pair-0-0"));
        assert!(j2.is_done(&"pair-1-0"));
        assert!(!j2.is_done(&"pair-0-1"));
        assert_eq!(
            j2.state(&"pair-0-1"),
            Some(&TaskState::Failed {
                cause: "panicked: chaos".into()
            })
        );
        assert_eq!(j2.done().count(), 2);
        assert_eq!(j2.failed().count(), 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn later_entries_supersede_earlier_ones() {
        let path = temp_path("supersede");
        let mut j = SweepJournal::open(&path, "feedface00000000").unwrap();
        j.record(
            &"t",
            TaskState::Failed {
                cause: "attempt 0 failed".into(),
            },
        )
        .unwrap();
        j.record(
            &"t",
            TaskState::Done {
                digest: "cc".into(),
            },
        )
        .unwrap();
        assert!(j.is_done(&"t"));
        let j2 = SweepJournal::open(&path, "feedface00000000").unwrap();
        assert!(j2.is_done(&"t"), "retry success must win on replay");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_final_line_is_skipped_never_an_error() {
        let path = temp_path("torn");
        let mut j = SweepJournal::open(&path, "0011223344556677").unwrap();
        j.record(
            &"a",
            TaskState::Done {
                digest: "11".into(),
            },
        )
        .unwrap();
        j.record(
            &"b",
            TaskState::Done {
                digest: "22".into(),
            },
        )
        .unwrap();
        // Simulate a mid-append kill: chop bytes off the end.
        let full = std::fs::read_to_string(&path).unwrap();
        for cut in [full.len() - 1, full.len() - 10, full.rfind('\n').unwrap()] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let j2 = SweepJournal::open(&path, "0011223344556677").unwrap();
            assert!(j2.is_done(&"a"), "cut at {cut}");
            assert!(!j2.is_done(&"b"), "cut at {cut} kept a torn entry");
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn foreign_sweep_digests_are_ignored() {
        let path = temp_path("foreign");
        let mut j = SweepJournal::open(&path, "aaaaaaaaaaaaaaaa").unwrap();
        j.record(
            &"t",
            TaskState::Done {
                digest: "00".into(),
            },
        )
        .unwrap();
        // A new sweep configuration opens the same path: nothing carries
        // over, and its own records coexist in the same file.
        let mut other = SweepJournal::open(&path, "bbbbbbbbbbbbbbbb").unwrap();
        assert!(other.is_empty());
        other
            .record(
                &"t",
                TaskState::Done {
                    digest: "ff".into(),
                },
            )
            .unwrap();
        // Both sweeps replay their own view.
        assert!(SweepJournal::open(&path, "aaaaaaaaaaaaaaaa")
            .unwrap()
            .is_done(&"t"));
        assert!(SweepJournal::open(&path, "bbbbbbbbbbbbbbbb")
            .unwrap()
            .is_done(&"t"));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn garbage_lines_are_counted_and_skipped() {
        let path = temp_path("garbage");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(
            &path,
            "total garbage\n{\"type\":\"mss-sweep\",\"schema\":999}\n",
        )
        .unwrap();
        let j = SweepJournal::open(&path, "cafebabe00000000").unwrap();
        assert!(j.is_empty());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
