//! `mss-fault` — the deterministic fault-injection plane of the GREAT MSS
//! flow.
//!
//! The paper's memory layer is fundamentally about reliability under faults
//! (Sec. III: WER/RER targets, ECC trade-offs, read disturb), but the
//! analytical models in `mss-mtj` and `mss-vaet` only *predict* error rates —
//! they never exercise an actual failure path. This crate closes that loop:
//!
//! - [`plan`] — [`FaultPlan`]/[`FaultModel`]: per-site fault rates (stochastic
//!   write failure, read disturb, retention/transient flips, stuck-at cells),
//!   either given directly or derived from the `mss-mtj` analytical models
//!   via [`MtjOperatingPoint`],
//! - [`inject`] — [`FaultInjector`]: *stateless* seeded Bernoulli draws. Every
//!   decision is a pure hash of `(seed, site, epoch, bit)`, so injection is
//!   bit-identical at any `MSS_THREADS`, any chunking, and any access
//!   interleaving,
//! - [`chaos`] — the runtime chaos harness: stateless seeded decisions to
//!   panic, fail, or stall supervised sweep tasks (attempt-bounded so
//!   bounded retry provably converges) plus deterministic on-disk cache
//!   poisoning, exercising `mss-exec`'s supervisor end to end,
//! - [`campaign`] — seeded Monte Carlo campaigns that inject bit errors into
//!   ECC blocks and compare the empirical word-error and block-uncorrectable
//!   rates against the analytical binomial model
//!   ([`mss_vaet::ecc::EccScheme::uncorrectable_probability`]) with 3σ
//!   binomial tolerances.
//!
//! Everything is **off by default**: a [`FaultPlan::disabled`] plan injects
//! nothing and costs nothing. The resilience mechanisms the plane exercises
//! live next to the subsystems they protect (`mss-gemsim`'s ECC
//! correct/detect/scrub memory path, `mss-spice`'s solver retry ladder).
//!
//! # Determinism contract
//!
//! [`FaultInjector`] draws depend only on `(seed, kind, site, epoch, bit)` —
//! never on thread count, chunk size, or the order in which sites are
//! visited. Campaigns fan out over `mss-exec` with per-block stateless draws
//! and merge counters in block order, so a fixed seed reproduces every
//! injected fault exactly.

#![deny(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod campaign;
pub mod chaos;
pub mod inject;
pub mod plan;

mod error;

pub use campaign::{run_ecc_campaign, CampaignOptions, CampaignReport};
pub use chaos::{poison_cache_dir, ChaosPlan};
pub use error::FaultError;
pub use inject::FaultInjector;
pub use plan::{FaultModel, FaultPlan, MtjOperatingPoint};
