//! Fault plans: per-site fault models and where their rates come from.

use mss_mtj::reliability::{read_disturb_probability, retention_flip_probability};
use mss_mtj::switching::SwitchingModel;
use mss_mtj::MssStack;

use crate::FaultError;

/// Per-bit fault rates of one memory site (array, bank, test structure).
///
/// All rates are probabilities in `[0, 1]`:
///
/// - `write_fail_rate` — per bit, per write attempt (the device WER),
/// - `read_disturb_rate` — per bit, per read (accidental flip of the stored
///   state by the read current),
/// - `transient_flip_rate` — per bit, per access epoch (retention loss /
///   soft upsets between touches),
/// - `stuck_at_rate` — fraction of cells with a fabrication-time stuck-at
///   defect (the cell holds a fixed value; half of all writes mismatch it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Per-bit write failure probability per attempt.
    pub write_fail_rate: f64,
    /// Per-bit read-disturb flip probability per read.
    pub read_disturb_rate: f64,
    /// Per-bit transient flip probability per access epoch.
    pub transient_flip_rate: f64,
    /// Fraction of fabricated cells that are stuck at a fixed value.
    pub stuck_at_rate: f64,
}

impl mss_pipe::StableHash for FaultModel {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_f64(self.write_fail_rate);
        h.write_f64(self.read_disturb_rate);
        h.write_f64(self.transient_flip_rate);
        h.write_f64(self.stuck_at_rate);
    }
}

impl FaultModel {
    /// The all-zero model: nothing ever fails.
    pub const fn none() -> Self {
        Self {
            write_fail_rate: 0.0,
            read_disturb_rate: 0.0,
            transient_flip_rate: 0.0,
            stuck_at_rate: 0.0,
        }
    }

    /// True when at least one rate is non-zero.
    pub fn is_active(&self) -> bool {
        self.write_fail_rate > 0.0
            || self.read_disturb_rate > 0.0
            || self.transient_flip_rate > 0.0
            || self.stuck_at_rate > 0.0
    }

    /// Validates that every rate is a probability.
    ///
    /// # Errors
    ///
    /// [`FaultError::InvalidModel`] naming the offending rate.
    pub fn validate(&self) -> Result<(), FaultError> {
        for (name, rate) in [
            ("write_fail_rate", self.write_fail_rate),
            ("read_disturb_rate", self.read_disturb_rate),
            ("transient_flip_rate", self.transient_flip_rate),
            ("stuck_at_rate", self.stuck_at_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(FaultError::InvalidModel {
                    reason: format!("{name} = {rate} is not a probability in [0, 1]"),
                });
            }
        }
        Ok(())
    }

    /// Derives the stochastic rates from the `mss-mtj` analytical models at
    /// an operating point: WER from the precessional/thermal switching model,
    /// RER from the Néel–Brown read-disturb model, transient flips from the
    /// retention escape rate over the idle window. The stuck-at rate is a
    /// fabrication quantity and is taken from the operating point directly.
    ///
    /// # Errors
    ///
    /// [`FaultError::InvalidModel`] when the operating point produces
    /// out-of-range rates (e.g. a negative pulse width).
    pub fn from_mtj(stack: &MssStack, op: &MtjOperatingPoint) -> Result<Self, FaultError> {
        let sw = SwitchingModel::new(stack);
        let model = Self {
            write_fail_rate: sw.write_error_rate(op.write_pulse, op.write_current),
            read_disturb_rate: read_disturb_probability(stack, op.read_pulse, op.read_current),
            transient_flip_rate: retention_flip_probability(stack, op.idle_window),
            stuck_at_rate: op.stuck_at_rate,
        };
        model.validate()?;
        Ok(model)
    }
}

/// The electrical conditions a [`FaultModel`] is derived at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtjOperatingPoint {
    /// Write pulse width, seconds.
    pub write_pulse: f64,
    /// Write current, amperes.
    pub write_current: f64,
    /// Read pulse width, seconds.
    pub read_pulse: f64,
    /// Read current, amperes.
    pub read_current: f64,
    /// Idle window between touches of a word, seconds (retention exposure).
    pub idle_window: f64,
    /// Fabrication stuck-at defect rate (not derivable from the stack).
    pub stuck_at_rate: f64,
}

impl MtjOperatingPoint {
    /// A representative memory-mode operating point for a stack: 2.5×
    /// overdrive writes, 10 ns pulses, 10%-of-critical 2 ns reads, a 1 ms
    /// idle window and no fabrication defects.
    pub fn memory_defaults(stack: &MssStack) -> Self {
        let ic0 = stack.critical_current();
        Self {
            write_pulse: 10e-9,
            write_current: 2.5 * ic0,
            read_pulse: 2e-9,
            read_current: 0.1 * ic0,
            idle_window: 1e-3,
            stuck_at_rate: 0.0,
        }
    }
}

/// A complete injection plan: a seed plus the fault model it drives.
///
/// The plan is the only thing a fault-aware subsystem needs; everything
/// downstream (which bit fails on which access) is a pure function of the
/// plan via [`crate::FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of every injection decision.
    pub seed: u64,
    /// The rates to inject at.
    pub model: FaultModel,
}

impl mss_pipe::StableHash for FaultPlan {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_u64(self.seed);
        self.model.stable_hash(h);
    }
}

impl FaultPlan {
    /// The default: no injection at all (the production configuration).
    pub const fn disabled() -> Self {
        Self {
            seed: 0,
            model: FaultModel::none(),
        }
    }

    /// A validated plan.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultModel::validate`].
    pub fn new(seed: u64, model: FaultModel) -> Result<Self, FaultError> {
        model.validate()?;
        Ok(Self { seed, model })
    }

    /// True when the plan can inject anything.
    pub fn is_active(&self) -> bool {
        self.model.is_active()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_inactive() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_active());
        assert!(plan.model.validate().is_ok());
        assert_eq!(FaultPlan::default(), plan);
    }

    #[test]
    fn bad_rates_rejected_with_names() {
        let mut m = FaultModel::none();
        m.write_fail_rate = 1.5;
        let err = FaultPlan::new(1, m).expect_err("rate above 1");
        assert!(err.to_string().contains("write_fail_rate"));
        let mut m = FaultModel::none();
        m.read_disturb_rate = -0.1;
        assert!(FaultPlan::new(1, m).is_err());
        let mut m = FaultModel::none();
        m.transient_flip_rate = f64::NAN;
        assert!(FaultPlan::new(1, m).is_err());
    }

    #[test]
    fn mtj_derived_rates_match_the_analytical_models() {
        let stack = MssStack::builder().build().expect("reference stack");
        let op = MtjOperatingPoint::memory_defaults(&stack);
        let model = FaultModel::from_mtj(&stack, &op).expect("derived model");
        let sw = SwitchingModel::new(&stack);
        assert_eq!(
            model.write_fail_rate,
            sw.write_error_rate(op.write_pulse, op.write_current)
        );
        assert_eq!(
            model.read_disturb_rate,
            read_disturb_probability(&stack, op.read_pulse, op.read_current)
        );
        assert_eq!(
            model.transient_flip_rate,
            retention_flip_probability(&stack, op.idle_window)
        );
        // All rates are well-formed probabilities at the default operating
        // point, and the gentle read pulse disturbs far less than writes err.
        assert!(model.validate().is_ok());
        assert!(model.write_fail_rate > 0.0 && model.write_fail_rate < 1.0);
        assert!(model.read_disturb_rate < 1e-6);
        assert!(model.read_disturb_rate < model.write_fail_rate);
    }

    #[test]
    fn longer_pulses_lower_the_derived_wer() {
        let stack = MssStack::builder().build().expect("reference stack");
        let mut op = MtjOperatingPoint::memory_defaults(&stack);
        op.write_pulse = 5e-9;
        let short = FaultModel::from_mtj(&stack, &op).expect("short pulse");
        op.write_pulse = 20e-9;
        let long = FaultModel::from_mtj(&stack, &op).expect("long pulse");
        assert!(long.write_fail_rate < short.write_fail_rate);
    }
}
