//! Seeded Monte Carlo fault campaigns cross-validating the injection plane
//! against the analytical ECC model.
//!
//! A campaign writes-then-reads a population of ECC blocks through the
//! [`FaultInjector`], tallies the raw bit errors each block accumulates, and
//! classifies every block with [`EccScheme::classify`]. Because every
//! per-bit fault is an independent Bernoulli draw, the block error count is
//! exactly binomial — so the empirical word-error, read-disturb, and
//! block-uncorrectable rates must agree with
//! [`EccScheme::uncorrectable_probability`] within standard binomial
//! tolerances. That agreement is the evidence that the stochastic plane and
//! the analytical plane describe the same physics.

use mss_exec::{par_chunks, ParallelConfig};
use mss_vaet::ecc::{EccOutcome, EccScheme};

use crate::inject::FaultInjector;
use crate::plan::FaultPlan;
use crate::FaultError;

/// Campaign shape: how many blocks to expose, under which code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignOptions {
    /// Number of ECC blocks written and read once each.
    pub blocks: u64,
    /// The code protecting each block.
    pub scheme: EccScheme,
    /// Fan-out policy (chunk boundaries do not affect results — draws are
    /// stateless — but a fixed policy keeps run stats comparable).
    pub parallel: ParallelConfig,
}

impl CampaignOptions {
    /// A campaign over `blocks` blocks with the environment's parallelism.
    pub fn new(blocks: u64, scheme: EccScheme) -> Self {
        Self {
            blocks,
            scheme,
            parallel: ParallelConfig::from_env(),
        }
    }

    /// Returns the options with an explicit parallel policy.
    pub const fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    fn validate(&self) -> Result<(), FaultError> {
        if self.blocks == 0 {
            return Err(FaultError::InvalidCampaign {
                reason: "campaign needs at least one block".into(),
            });
        }
        if usize::try_from(self.blocks).is_err() {
            return Err(FaultError::InvalidCampaign {
                reason: format!("{} blocks exceeds the address space", self.blocks),
            });
        }
        if self.scheme.block_bits() == 0 {
            return Err(FaultError::InvalidCampaign {
                reason: "ECC scheme has an empty block".into(),
            });
        }
        Ok(())
    }
}

/// Per-chunk fault tally, merged in chunk order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Tally {
    write_errors: u64,
    read_disturbs: u64,
    transients: u64,
    stuck_cells: u64,
    stuck_errors: u64,
    bit_errors: u64,
    clean: u64,
    corrected: u64,
    detected: u64,
    uncorrectable: u64,
}

impl Tally {
    fn merge(mut self, other: &Tally) -> Tally {
        self.write_errors += other.write_errors;
        self.read_disturbs += other.read_disturbs;
        self.transients += other.transients;
        self.stuck_cells += other.stuck_cells;
        self.stuck_errors += other.stuck_errors;
        self.bit_errors += other.bit_errors;
        self.clean += other.clean;
        self.corrected += other.corrected;
        self.detected += other.detected;
        self.uncorrectable += other.uncorrectable;
        self
    }
}

/// Outcome of a fault campaign: raw tallies plus the analytical predictions
/// they are validated against.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The plan the campaign injected from.
    pub plan: FaultPlan,
    /// The code protecting each block.
    pub scheme: EccScheme,
    /// Blocks exposed.
    pub blocks: u64,
    /// Bits per block (`scheme.block_bits()`).
    pub bits_per_block: u32,
    /// Injected write failures (healthy cells only).
    pub write_errors: u64,
    /// Injected read-disturb flips (healthy cells only).
    pub read_disturbs: u64,
    /// Injected transient/retention flips (healthy cells only).
    pub transients: u64,
    /// Cells selected as fabrication stuck-at defects.
    pub stuck_cells: u64,
    /// Stuck cells whose frozen value mismatched the written data.
    pub stuck_errors: u64,
    /// Bits in error at read time (union of all fault mechanisms).
    pub bit_errors: u64,
    /// Blocks with zero raw errors.
    pub blocks_clean: u64,
    /// Blocks fully corrected by the code (`1..=t` errors).
    pub blocks_corrected: u64,
    /// Blocks with a detected-but-uncorrectable error pattern (`t+1`).
    pub blocks_detected: u64,
    /// Blocks with a potentially silent error pattern (`> t+1`).
    pub blocks_uncorrectable: u64,
    /// Analytical per-bit error probability (all mechanisms combined).
    pub analytical_bit_error_rate: f64,
    /// Analytical block failure probability
    /// ([`EccScheme::uncorrectable_probability`] at the combined rate).
    pub analytical_block_failure_rate: f64,
}

impl CampaignReport {
    /// Total bits exposed, `blocks × bits_per_block`.
    pub fn total_bits(&self) -> u64 {
        self.blocks * self.bits_per_block as u64
    }

    /// Bits not claimed by a stuck-at defect (the write/read/transient
    /// trial population).
    pub fn healthy_bits(&self) -> u64 {
        self.total_bits() - self.stuck_cells
    }

    /// Empirical per-bit error rate at read time.
    pub fn empirical_bit_error_rate(&self) -> f64 {
        self.bit_errors as f64 / self.total_bits() as f64
    }

    /// Empirical block failure rate: detected + uncorrectable, i.e. every
    /// block with more than `t` raw errors (the event
    /// [`EccScheme::uncorrectable_probability`] models).
    pub fn empirical_block_failure_rate(&self) -> f64 {
        (self.blocks_detected + self.blocks_uncorrectable) as f64 / self.blocks as f64
    }

    /// z-score of the injected write-error count against the model's WER.
    pub fn z_write(&self) -> f64 {
        z_score(
            self.write_errors,
            self.healthy_bits(),
            self.plan.model.write_fail_rate,
        )
    }

    /// z-score of the injected read-disturb count against the model's RER.
    pub fn z_read(&self) -> f64 {
        z_score(
            self.read_disturbs,
            self.healthy_bits(),
            self.plan.model.read_disturb_rate,
        )
    }

    /// z-score of the injected transient-flip count against the model.
    pub fn z_transient(&self) -> f64 {
        z_score(
            self.transients,
            self.healthy_bits(),
            self.plan.model.transient_flip_rate,
        )
    }

    /// z-score of the observed block failures against the analytical
    /// binomial ECC model.
    pub fn z_block(&self) -> f64 {
        z_score(
            self.blocks_detected + self.blocks_uncorrectable,
            self.blocks,
            self.analytical_block_failure_rate,
        )
    }

    /// True when every empirical rate sits within `z_max` standard
    /// deviations of its analytical prediction.
    pub fn within_tolerance(&self, z_max: f64) -> bool {
        [
            self.z_write(),
            self.z_read(),
            self.z_transient(),
            self.z_block(),
        ]
        .iter()
        .all(|z| z.abs() <= z_max)
    }
}

/// Binomial z-score of `observed` successes in `trials` trials at rate `p`.
///
/// Degenerate rates (`p` of 0 or 1, or zero trials) return `0.0` when the
/// observation matches the only possible outcome and `f64::INFINITY`
/// otherwise, so impossible observations always fail a tolerance check.
fn z_score(observed: u64, trials: u64, p: f64) -> f64 {
    let n = trials as f64;
    let expected = n * p;
    let var = n * p * (1.0 - p);
    if var <= 0.0 {
        return if (observed as f64 - expected).abs() < 0.5 {
            0.0
        } else {
            f64::INFINITY
        };
    }
    (observed as f64 - expected) / var.sqrt()
}

/// Runs a seeded fault campaign: every block is written once and read once
/// through the injector, classified by the scheme, and tallied.
///
/// Deterministic by construction — every per-bit decision is a pure hash of
/// `(plan.seed, kind, block, bit)`, and per-chunk tallies are merged in
/// chunk order — so a fixed plan reproduces the report bit-for-bit at any
/// `MSS_THREADS`.
///
/// Observability: increments `fault.campaign.*` counters (blocks, injected,
/// corrected, detected, uncorrectable) on the global `mss-obs` registry.
///
/// # Errors
///
/// [`FaultError::InvalidModel`] / [`FaultError::InvalidCampaign`] on
/// malformed inputs; the run itself cannot fail.
pub fn run_ecc_campaign(
    plan: &FaultPlan,
    opts: &CampaignOptions,
) -> Result<CampaignReport, FaultError> {
    plan.model.validate()?;
    opts.validate()?;
    let injector = FaultInjector::new(*plan);
    let scheme = opts.scheme;
    let bits = scheme.block_bits();
    let total = opts.blocks as usize;

    let _span = mss_obs::span("fault.campaign");
    let tallies = par_chunks(&opts.parallel, total, |_chunk, range| {
        let mut t = Tally::default();
        for block in range {
            let site = block as u64;
            let mut raw_errors = 0u32;
            for bit in 0..bits as u64 {
                let error = match injector.stuck_at(site, bit) {
                    Some(stuck_value) => {
                        // The stuck value is an independent fair hash bit, so
                        // it doubles as the "written data mismatches the
                        // frozen cell" coin: P(mismatch) = 1/2.
                        t.stuck_cells += 1;
                        if stuck_value {
                            t.stuck_errors += 1;
                        }
                        stuck_value
                    }
                    None => {
                        let w = injector.write_fails(site, 0, bit);
                        let r = injector.read_disturbs(site, 0, bit);
                        let f = injector.transient_flips(site, 0, bit);
                        t.write_errors += w as u64;
                        t.read_disturbs += r as u64;
                        t.transients += f as u64;
                        w || r || f
                    }
                };
                if error {
                    raw_errors += 1;
                    t.bit_errors += 1;
                }
            }
            match scheme.classify(raw_errors) {
                EccOutcome::Clean => t.clean += 1,
                EccOutcome::Corrected => t.corrected += 1,
                EccOutcome::Detected => t.detected += 1,
                EccOutcome::Uncorrectable => t.uncorrectable += 1,
            }
        }
        t
    });
    let tally = tallies.iter().fold(Tally::default(), Tally::merge);

    mss_obs::counter_add("fault.campaign.blocks", opts.blocks);
    mss_obs::counter_add("fault.campaign.injected", tally.bit_errors);
    mss_obs::counter_add("fault.campaign.corrected", tally.corrected);
    mss_obs::counter_add("fault.campaign.detected", tally.detected);
    mss_obs::counter_add("fault.campaign.uncorrectable", tally.uncorrectable);

    let m = &plan.model;
    // A bit errs if it is stuck and mismatches (s/2), or is healthy and any
    // independent mechanism fires.
    let p_healthy = 1.0
        - (1.0 - m.write_fail_rate) * (1.0 - m.read_disturb_rate) * (1.0 - m.transient_flip_rate);
    let p_bit = 0.5 * m.stuck_at_rate + (1.0 - m.stuck_at_rate) * p_healthy;
    Ok(CampaignReport {
        plan: *plan,
        scheme,
        blocks: opts.blocks,
        bits_per_block: bits,
        write_errors: tally.write_errors,
        read_disturbs: tally.read_disturbs,
        transients: tally.transients,
        stuck_cells: tally.stuck_cells,
        stuck_errors: tally.stuck_errors,
        bit_errors: tally.bit_errors,
        blocks_clean: tally.clean,
        blocks_corrected: tally.corrected,
        blocks_detected: tally.detected,
        blocks_uncorrectable: tally.uncorrectable,
        analytical_bit_error_rate: p_bit,
        analytical_block_failure_rate: scheme.uncorrectable_probability(p_bit),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultModel;

    fn plan(seed: u64, f: impl FnOnce(&mut FaultModel)) -> FaultPlan {
        let mut m = FaultModel::none();
        f(&mut m);
        FaultPlan::new(seed, m).expect("valid model")
    }

    #[test]
    fn zero_blocks_rejected() {
        let opts = CampaignOptions::new(0, EccScheme::bch(1, 64));
        let err = run_ecc_campaign(&FaultPlan::disabled(), &opts).expect_err("zero blocks");
        assert!(matches!(err, FaultError::InvalidCampaign { .. }));
    }

    #[test]
    fn disabled_plan_produces_a_clean_population() {
        let opts = CampaignOptions::new(500, EccScheme::bch(1, 64))
            .with_parallel(ParallelConfig::serial());
        let r = run_ecc_campaign(&FaultPlan::disabled(), &opts).expect("campaign");
        assert_eq!(r.blocks_clean, 500);
        assert_eq!(r.bit_errors, 0);
        assert_eq!(r.empirical_block_failure_rate(), 0.0);
        assert_eq!(r.analytical_block_failure_rate, 0.0);
        assert!(r.within_tolerance(3.0));
    }

    #[test]
    fn empirical_rates_match_analytical_within_3_sigma() {
        // Rates chosen so every mechanism actually fires: over 20k blocks of
        // 71 bits, expect ~14k write errors, ~7k disturbs, ~2.8k transients,
        // and an analytical block-failure probability of ~0.24.
        let p = plan(42, |m| {
            m.write_fail_rate = 0.01;
            m.read_disturb_rate = 0.005;
            m.transient_flip_rate = 0.002;
        });
        let opts = CampaignOptions::new(20_000, EccScheme::bch(1, 64))
            .with_parallel(ParallelConfig::serial().with_threads(4));
        let r = run_ecc_campaign(&p, &opts).expect("campaign");
        assert!(r.write_errors > 0 && r.read_disturbs > 0 && r.transients > 0);
        assert!(r.blocks_detected + r.blocks_uncorrectable > 0);
        assert!(
            r.within_tolerance(3.0),
            "z_write={:.2} z_read={:.2} z_transient={:.2} z_block={:.2}",
            r.z_write(),
            r.z_read(),
            r.z_transient(),
            r.z_block()
        );
        // The tallies are self-consistent.
        assert_eq!(
            r.blocks_clean + r.blocks_corrected + r.blocks_detected + r.blocks_uncorrectable,
            r.blocks
        );
        // Union bound: multi-mechanism bits count once in `bit_errors` but
        // once per mechanism in the per-kind tallies.
        let per_kind = r.write_errors + r.read_disturbs + r.transients + r.stuck_errors;
        assert!(r.bit_errors <= per_kind);
        assert!(per_kind < r.bit_errors + r.blocks); // overlap stays rare
    }

    #[test]
    fn stuck_cells_err_half_the_time() {
        let p = plan(7, |m| m.stuck_at_rate = 0.02);
        let opts = CampaignOptions::new(10_000, EccScheme::bch(1, 64))
            .with_parallel(ParallelConfig::serial());
        let r = run_ecc_campaign(&p, &opts).expect("campaign");
        assert!(r.stuck_cells > 0);
        let mismatch = r.stuck_errors as f64 / r.stuck_cells as f64;
        assert!((mismatch - 0.5).abs() < 0.02, "mismatch ratio {mismatch}");
        assert!(r.within_tolerance(3.0));
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let p = plan(99, |m| {
            m.write_fail_rate = 0.02;
            m.stuck_at_rate = 0.001;
        });
        let base = CampaignOptions::new(4_000, EccScheme::bch(2, 128));
        let runs: Vec<CampaignReport> = [1usize, 2, 8]
            .iter()
            .map(|&n| {
                let opts = base.with_parallel(ParallelConfig::serial().with_threads(n));
                run_ecc_campaign(&p, &opts).expect("campaign")
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn z_score_degenerate_cases() {
        assert_eq!(z_score(0, 100, 0.0), 0.0);
        assert_eq!(z_score(3, 100, 0.0), f64::INFINITY);
        assert_eq!(z_score(100, 100, 1.0), 0.0);
    }
}
