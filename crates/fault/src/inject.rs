//! Stateless seeded fault decisions.
//!
//! Every injection decision is a *pure hash* of
//! `(seed, fault kind, site, epoch, bit)` — there is no generator state to
//! share, lock, or split. That is what makes the plane deterministic under
//! parallelism: the same access produces the same fault no matter which
//! thread evaluates it, how work is chunked, or in which order sites are
//! visited.

use mss_units::rng::{Rng, SplitMix64};

use crate::plan::{FaultModel, FaultPlan};

/// Domain-separation constants: each fault kind hashes into its own stream
/// so e.g. a write-failure decision never correlates with a read-disturb
/// decision at the same `(site, epoch, bit)`.
const KIND_WRITE_FAIL: u64 = 0x57_52_49_54; // "WRIT"
const KIND_READ_DISTURB: u64 = 0x52_45_41_44; // "READ"
const KIND_TRANSIENT: u64 = 0x54_52_4E_53; // "TRNS"
const KIND_STUCK_AT: u64 = 0x53_54_55_4B; // "STUK"

/// One SplitMix64 finalizer step: a high-quality 64-bit mixer.
#[inline]
fn mix(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// Chained hash of the full decision coordinate.
#[inline]
fn hash_decision(seed: u64, kind: u64, site: u64, epoch: u64, bit: u64) -> u64 {
    let mut h = mix(seed ^ kind);
    h = mix(h ^ site);
    h = mix(h ^ epoch);
    mix(h ^ bit)
}

/// Uniform `[0, 1)` from a hash, 53-bit precision (same dyadic grid as
/// [`Rng::next_f64`]).
#[inline]
fn uniform(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The stateless fault oracle derived from a [`FaultPlan`].
///
/// All queries are `&self`, cheap (a handful of integer multiplies), and
/// reproducible: a fixed plan answers every question identically forever.
/// Sites are caller-defined identifiers (an array base address, a bank
/// index, a block index in a campaign); epochs distinguish repeated touches
/// of the same bit (a write attempt counter, an access sequence number).
///
/// # Examples
///
/// ```
/// use mss_fault::{FaultInjector, FaultModel, FaultPlan};
///
/// let mut model = FaultModel::none();
/// model.write_fail_rate = 0.5;
/// let inj = FaultInjector::new(FaultPlan::new(7, model).unwrap_or_default());
/// // Pure function of the coordinate: always the same answer.
/// assert_eq!(
///     inj.write_fails(3, 0, 12),
///     inj.write_fails(3, 0, 12),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps a plan. A [`FaultPlan::disabled`] plan yields an injector that
    /// never injects.
    pub const fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// The plan this injector draws from.
    pub const fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The model this injector draws from.
    pub const fn model(&self) -> &FaultModel {
        &self.plan.model
    }

    /// True when any fault can ever be injected.
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Bernoulli draw at probability `p` for one decision coordinate.
    #[inline]
    fn draw(&self, kind: u64, site: u64, epoch: u64, bit: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        uniform(hash_decision(self.plan.seed, kind, site, epoch, bit)) < p
    }

    /// Does the write of `bit` at `site` fail on attempt `epoch`?
    ///
    /// Distinct epochs are independent draws, so a bounded retry loop sees
    /// fresh (but reproducible) outcomes on each attempt.
    #[inline]
    pub fn write_fails(&self, site: u64, epoch: u64, bit: u64) -> bool {
        self.draw(
            KIND_WRITE_FAIL,
            site,
            epoch,
            bit,
            self.plan.model.write_fail_rate,
        )
    }

    /// Does reading `bit` at `site` during access `epoch` disturb (flip) the
    /// stored state?
    #[inline]
    pub fn read_disturbs(&self, site: u64, epoch: u64, bit: u64) -> bool {
        self.draw(
            KIND_READ_DISTURB,
            site,
            epoch,
            bit,
            self.plan.model.read_disturb_rate,
        )
    }

    /// Does `bit` at `site` suffer a transient flip in access epoch `epoch`
    /// (retention loss / soft upset since the previous touch)?
    #[inline]
    pub fn transient_flips(&self, site: u64, epoch: u64, bit: u64) -> bool {
        self.draw(
            KIND_TRANSIENT,
            site,
            epoch,
            bit,
            self.plan.model.transient_flip_rate,
        )
    }

    /// Is the cell for `bit` at `site` a fabrication-time stuck-at defect,
    /// and if so, which value is it stuck at?
    ///
    /// Stuck-at state is a property of the cell, not of an access: it has no
    /// epoch. Returns `Some(stuck_value)` for defective cells.
    #[inline]
    pub fn stuck_at(&self, site: u64, bit: u64) -> Option<bool> {
        let p = self.plan.model.stuck_at_rate;
        if p <= 0.0 {
            return None;
        }
        let h = hash_decision(self.plan.seed, KIND_STUCK_AT, site, 0, bit);
        if uniform(h) < p {
            // Derive the stuck value from an independent hash bit so it does
            // not correlate with the selection threshold.
            Some(mix(h) & 1 == 1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(f: impl FnOnce(&mut FaultModel)) -> FaultInjector {
        let mut m = FaultModel::none();
        f(&mut m);
        FaultInjector::new(FaultPlan::new(0xDEAD_BEEF, m).expect("valid model"))
    }

    #[test]
    fn disabled_injector_never_injects() {
        let inj = FaultInjector::new(FaultPlan::disabled());
        assert!(!inj.is_active());
        for site in 0..16 {
            for bit in 0..64 {
                assert!(!inj.write_fails(site, 0, bit));
                assert!(!inj.read_disturbs(site, 0, bit));
                assert!(!inj.transient_flips(site, 0, bit));
                assert!(inj.stuck_at(site, bit).is_none());
            }
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_the_coordinate() {
        let inj = injector(|m| {
            m.write_fail_rate = 0.3;
            m.read_disturb_rate = 0.3;
            m.transient_flip_rate = 0.3;
            m.stuck_at_rate = 0.3;
        });
        for site in 0..8 {
            for epoch in 0..4 {
                for bit in 0..32 {
                    assert_eq!(
                        inj.write_fails(site, epoch, bit),
                        inj.write_fails(site, epoch, bit)
                    );
                    assert_eq!(
                        inj.read_disturbs(site, epoch, bit),
                        inj.read_disturbs(site, epoch, bit)
                    );
                    assert_eq!(inj.stuck_at(site, bit), inj.stuck_at(site, bit));
                }
            }
        }
    }

    #[test]
    fn kinds_are_domain_separated() {
        // With all rates at 0.5, the four decision kinds at the same
        // coordinate must not be perfectly correlated.
        let inj = injector(|m| {
            m.write_fail_rate = 0.5;
            m.read_disturb_rate = 0.5;
            m.transient_flip_rate = 0.5;
            m.stuck_at_rate = 0.5;
        });
        let mut all_same = true;
        for bit in 0..256 {
            let w = inj.write_fails(0, 0, bit);
            let r = inj.read_disturbs(0, 0, bit);
            let t = inj.transient_flips(0, 0, bit);
            if w != r || r != t {
                all_same = false;
            }
        }
        assert!(!all_same, "fault kinds are correlated");
    }

    #[test]
    fn epochs_give_independent_retry_outcomes() {
        // A bit that fails at epoch 0 must eventually succeed at some later
        // epoch when the rate is 0.5 — retries see fresh draws.
        let inj = injector(|m| m.write_fail_rate = 0.5);
        let mut failing_bit = None;
        for bit in 0..256 {
            if inj.write_fails(1, 0, bit) {
                failing_bit = Some(bit);
                break;
            }
        }
        let bit = failing_bit.expect("some bit fails at rate 0.5");
        assert!(
            (1..32).any(|epoch| !inj.write_fails(1, epoch, bit)),
            "bit never recovers across 31 retries at rate 0.5"
        );
    }

    #[test]
    fn empirical_rate_tracks_requested_rate() {
        let inj = injector(|m| m.write_fail_rate = 0.2);
        let n = 100_000u64;
        let hits = (0..n).filter(|&bit| inj.write_fails(0, 0, bit)).count();
        let ratio = hits as f64 / n as f64;
        // 3σ binomial band around 0.2 for n = 1e5 is ±0.0038.
        assert!((ratio - 0.2).abs() < 0.004, "ratio {ratio}");
    }

    #[test]
    fn seeds_decorrelate() {
        let m = {
            let mut m = FaultModel::none();
            m.write_fail_rate = 0.5;
            m
        };
        let a = FaultInjector::new(FaultPlan::new(1, m).expect("valid"));
        let b = FaultInjector::new(FaultPlan::new(2, m).expect("valid"));
        let agree = (0..512)
            .filter(|&bit| a.write_fails(0, 0, bit) == b.write_fails(0, 0, bit))
            .count();
        // Independent coins agree ~50% of the time; 512 draws at 3σ is ±68.
        assert!((188..=324).contains(&agree), "agreement {agree}/512");
    }

    #[test]
    fn stuck_values_take_both_polarities() {
        let inj = injector(|m| m.stuck_at_rate = 0.5);
        let mut saw = [false, false];
        for bit in 0..512 {
            if let Some(v) = inj.stuck_at(7, bit) {
                saw[v as usize] = true;
            }
        }
        assert!(saw[0] && saw[1], "stuck-at values are single-polarity");
    }

    #[test]
    fn extreme_rates_shortcut() {
        let never = injector(|m| m.write_fail_rate = 0.0);
        assert!(!never.write_fails(0, 0, 0));
        let always = injector(|m| m.write_fail_rate = 1.0);
        assert!(always.write_fails(0, 0, 0));
    }
}
