//! Error type for the fault-injection plane.

use std::fmt;

use mss_mtj::MtjError;

/// Errors produced while building fault plans or running campaigns.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A fault model carries an unusable rate (negative, above 1, NaN).
    InvalidModel {
        /// Which rate is wrong and why.
        reason: String,
    },
    /// Campaign options are inconsistent (zero blocks, bad rate, ...).
    InvalidCampaign {
        /// Description of the inconsistency.
        reason: String,
    },
    /// Deriving rates from the device model failed.
    Device(MtjError),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidModel { reason } => write!(f, "invalid fault model: {reason}"),
            FaultError::InvalidCampaign { reason } => write!(f, "invalid campaign: {reason}"),
            FaultError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MtjError> for FaultError {
    fn from(e: MtjError) -> Self {
        FaultError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = FaultError::InvalidModel {
            reason: "rate 2.0 out of [0, 1]".into(),
        };
        assert!(e.to_string().contains("2.0"));
        let e = FaultError::InvalidCampaign {
            reason: "zero blocks".into(),
        };
        assert!(e.to_string().contains("zero blocks"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<FaultError>();
    }
}
