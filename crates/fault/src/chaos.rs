//! Deterministic chaos harness for the supervised sweep runtime.
//!
//! Where [`inject`](crate::inject) attacks the *memory under simulation*,
//! this module attacks the *runtime itself*: it decides, from a pure hash
//! of `(seed, task, attempt)`, whether a supervised sweep task should
//! panic, fail with an error, or stall past its deadline — and whether an
//! on-disk cache entry should be damaged. The point is to prove, in tests
//! and in the `chaos_smoke` bench harness, that no injected failure can
//! abort the process, corrupt surviving results, or defeat resume.
//!
//! Two properties make the chaos reproducible and *convergent*:
//!
//! - **Statelessness** — like [`FaultInjector`](crate::FaultInjector),
//!   every decision is a pure hash of its coordinate, so a fixed seed
//!   replays the exact same adversity at any `MSS_THREADS` and any
//!   scheduling order.
//! - **Attempt bounding** — injection is suppressed once `attempt`
//!   reaches [`ChaosPlan::max_faulty_attempts`], so a retrying supervisor
//!   with `retry_max >= max_faulty_attempts` is *guaranteed* to converge
//!   to the same bit-identical result an uninjected run produces. The
//!   supervisor's determinism contract (results derive from `(seed,
//!   index)`, never from `attempt`) does the rest.

use std::path::Path;
use std::time::Duration;

use mss_units::rng::{Rng, SplitMix64};

/// Substring present in every chaos-injected panic message; harnesses use
/// it to install a panic hook that silences expected chaos panics without
/// hiding real ones.
pub const PANIC_TAG: &str = "chaos-injected";

/// Domain-separation constants, one per adversity kind.
const KIND_PANIC: u64 = 0x43_48_50_4E; // "CHPN"
const KIND_FAIL: u64 = 0x43_48_46_4C; // "CHFL"
const KIND_STALL: u64 = 0x43_48_53_54; // "CHST"
const KIND_POISON: u64 = 0x43_48_44_4B; // "CHDK"

/// One SplitMix64 finalizer step.
#[inline]
fn mix(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// Chained hash of the full decision coordinate.
#[inline]
fn hash_decision(seed: u64, kind: u64, task: u64, attempt: u64) -> u64 {
    let mut h = mix(seed ^ kind);
    h = mix(h ^ task);
    mix(h ^ attempt)
}

/// Uniform `[0, 1)` from a hash, 53-bit precision.
#[inline]
fn uniform(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A stateless plan of runtime adversity.
///
/// All rates are per-`(task, attempt)` Bernoulli probabilities; kinds are
/// domain-separated so a task that panics on attempt 0 is not thereby more
/// likely to stall on attempt 1. The default plan injects nothing.
///
/// # Examples
///
/// ```
/// use mss_fault::chaos::ChaosPlan;
///
/// let plan = ChaosPlan::new(42).with_panic_rate(0.25);
/// // Pure function of the coordinate: always the same answer.
/// assert_eq!(plan.should_panic(3, 0), plan.should_panic(3, 0));
/// // Bounded: after `max_faulty_attempts` the task is left alone.
/// assert!(!plan.should_panic(3, plan.max_faulty_attempts));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed for every decision hash.
    pub seed: u64,
    /// Probability that a given `(task, attempt)` panics.
    pub panic_rate: f64,
    /// Probability that a given `(task, attempt)` fails with an error.
    pub fail_rate: f64,
    /// Probability that a given `(task, attempt)` stalls for [`Self::stall`].
    pub stall_rate: f64,
    /// How long an injected stall sleeps.
    pub stall: Duration,
    /// Attempts `>= max_faulty_attempts` are never injected, guaranteeing
    /// convergence under a supervisor with at least that many retries.
    pub max_faulty_attempts: u32,
}

impl ChaosPlan {
    /// A plan with the given seed and no adversity; chain `with_*` calls
    /// to arm it.
    pub const fn new(seed: u64) -> Self {
        Self {
            seed,
            panic_rate: 0.0,
            fail_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(50),
            max_faulty_attempts: 2,
        }
    }

    /// A plan that injects nothing.
    pub const fn disabled() -> Self {
        Self::new(0)
    }

    /// Sets the per-attempt panic probability.
    pub const fn with_panic_rate(mut self, p: f64) -> Self {
        self.panic_rate = p;
        self
    }

    /// Sets the per-attempt error probability.
    pub const fn with_fail_rate(mut self, p: f64) -> Self {
        self.fail_rate = p;
        self
    }

    /// Sets the per-attempt stall probability and duration.
    pub const fn with_stall(mut self, p: f64, stall: Duration) -> Self {
        self.stall_rate = p;
        self.stall = stall;
        self
    }

    /// Sets the attempt bound past which no fault is injected.
    pub const fn with_max_faulty_attempts(mut self, n: u32) -> Self {
        self.max_faulty_attempts = n;
        self
    }

    /// True when any adversity can ever be injected.
    pub fn is_active(&self) -> bool {
        self.panic_rate > 0.0 || self.fail_rate > 0.0 || self.stall_rate > 0.0
    }

    /// Bernoulli draw at probability `p` for one decision coordinate,
    /// suppressed past the attempt bound.
    #[inline]
    fn draw(&self, kind: u64, task: u64, attempt: u32, p: f64) -> bool {
        if attempt >= self.max_faulty_attempts || p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        uniform(hash_decision(self.seed, kind, task, u64::from(attempt))) < p
    }

    /// Should attempt `attempt` of task `task` panic?
    #[inline]
    pub fn should_panic(&self, task: u64, attempt: u32) -> bool {
        self.draw(KIND_PANIC, task, attempt, self.panic_rate)
    }

    /// Should attempt `attempt` of task `task` fail with an error?
    #[inline]
    pub fn should_fail(&self, task: u64, attempt: u32) -> bool {
        self.draw(KIND_FAIL, task, attempt, self.fail_rate)
    }

    /// Should attempt `attempt` of task `task` stall, and for how long?
    #[inline]
    pub fn stall_for(&self, task: u64, attempt: u32) -> Option<Duration> {
        self.draw(KIND_STALL, task, attempt, self.stall_rate)
            .then_some(self.stall)
    }

    /// Applies the plan to one task attempt: sleeps through any injected
    /// stall, then panics or returns an `Err` if the draw says so.
    ///
    /// This is the one-line hook a supervised task body calls first. Panic
    /// messages carry [`PANIC_TAG`] so harness panic hooks can silence
    /// them; counters `fault.chaos.{stalls,panics,failures}` record what
    /// was actually injected.
    ///
    /// # Errors
    ///
    /// A rendered chaos failure when the fail draw fires.
    pub fn injure(&self, task: u64, attempt: u32) -> Result<(), String> {
        if !self.is_active() {
            return Ok(());
        }
        if let Some(stall) = self.stall_for(task, attempt) {
            mss_obs::counter_add("fault.chaos.stalls", 1);
            std::thread::sleep(stall);
        }
        if self.should_panic(task, attempt) {
            mss_obs::counter_add("fault.chaos.panics", 1);
            panic!("{PANIC_TAG} panic: task {task} attempt {attempt}");
        }
        if self.should_fail(task, attempt) {
            mss_obs::counter_add("fault.chaos.failures", 1);
            return Err(format!(
                "{PANIC_TAG} failure: task {task} attempt {attempt}"
            ));
        }
        Ok(())
    }
}

/// Deterministically damages a fraction of the on-disk cache entries under
/// `dir`, simulating torn writes and bit rot: each selected `*.ndjson`
/// entry is truncated to half its length. Returns how many entries were
/// poisoned (also counted as `fault.chaos.poisoned_entries`).
///
/// Selection hashes `(seed, file name)`, so the damaged set is independent
/// of directory iteration order. The disk tier treats damaged entries as
/// misses, so a flow pointed at a poisoned cache must still produce
/// bit-identical results — that is exactly what the chaos harness asserts.
///
/// # Errors
///
/// Real I/O errors only; a missing directory poisons nothing.
pub fn poison_cache_dir(dir: &Path, seed: u64, fraction: f64) -> std::io::Result<usize> {
    let entries = match std::fs::read_dir(dir) {
        Ok(iter) => iter,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut poisoned = 0usize;
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.ends_with(".ndjson") {
            continue;
        }
        let mut h = mix(seed ^ KIND_POISON);
        for byte in name.bytes() {
            h = mix(h ^ u64::from(byte));
        }
        if uniform(h) >= fraction {
            continue;
        }
        let path = entry.path();
        let len = std::fs::metadata(&path)?.len();
        let file = std::fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(len / 2)?;
        poisoned += 1;
    }
    if poisoned > 0 {
        mss_obs::counter_add("fault.chaos.poisoned_entries", poisoned as u64);
    }
    Ok(poisoned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_injects_nothing() {
        let plan = ChaosPlan::disabled();
        assert!(!plan.is_active());
        for task in 0..64 {
            for attempt in 0..4 {
                assert!(!plan.should_panic(task, attempt));
                assert!(!plan.should_fail(task, attempt));
                assert!(plan.stall_for(task, attempt).is_none());
                assert_eq!(plan.injure(task, attempt), Ok(()));
            }
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_the_coordinate() {
        let plan = ChaosPlan::new(99)
            .with_panic_rate(0.4)
            .with_fail_rate(0.4)
            .with_stall(0.4, Duration::from_millis(1));
        for task in 0..32 {
            for attempt in 0..2 {
                assert_eq!(
                    plan.should_panic(task, attempt),
                    plan.should_panic(task, attempt)
                );
                assert_eq!(
                    plan.should_fail(task, attempt),
                    plan.should_fail(task, attempt)
                );
                assert_eq!(plan.stall_for(task, attempt), plan.stall_for(task, attempt));
            }
        }
    }

    #[test]
    fn attempt_bound_guarantees_convergence() {
        // Even at rate 1.0, attempts at or past the bound are clean.
        let plan = ChaosPlan::new(7)
            .with_panic_rate(1.0)
            .with_fail_rate(1.0)
            .with_max_faulty_attempts(2);
        for task in 0..16 {
            assert!(plan.should_panic(task, 0));
            assert!(plan.should_panic(task, 1));
            assert!(!plan.should_panic(task, 2));
            assert!(!plan.should_fail(task, 2));
            assert_eq!(plan.injure(task, 2), Ok(()));
        }
    }

    #[test]
    fn kinds_are_domain_separated() {
        let plan = ChaosPlan::new(5)
            .with_panic_rate(0.5)
            .with_fail_rate(0.5)
            .with_stall(0.5, Duration::from_millis(1));
        let mut all_same = true;
        for task in 0..256 {
            let p = plan.should_panic(task, 0);
            let f = plan.should_fail(task, 0);
            let s = plan.stall_for(task, 0).is_some();
            if p != f || f != s {
                all_same = false;
            }
        }
        assert!(!all_same, "chaos kinds are correlated");
    }

    #[test]
    fn injure_reports_failures_with_the_tag() {
        let plan = ChaosPlan::new(1).with_fail_rate(1.0);
        let err = plan.injure(0, 0).expect_err("rate 1.0 must fail");
        assert!(err.contains(PANIC_TAG), "untagged chaos failure: {err}");
    }

    #[test]
    fn injure_panics_carry_the_tag() {
        let plan = ChaosPlan::new(1).with_panic_rate(1.0);
        let caught = std::panic::catch_unwind(|| plan.injure(0, 0));
        let payload = caught.expect_err("rate 1.0 must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a formatted string");
        assert!(message.contains(PANIC_TAG), "untagged panic: {message}");
    }

    #[test]
    fn poison_selects_deterministically_and_truncates() {
        let dir = std::env::temp_dir().join(format!("mss-chaos-poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        for i in 0..20 {
            std::fs::write(
                dir.join(format!("stage-{i:02}.ndjson")),
                "header line\npayload line\n",
            )
            .expect("write entry");
        }
        std::fs::write(dir.join("not-an-entry.txt"), "untouched").expect("write decoy");

        let first = poison_cache_dir(&dir, 33, 0.5).expect("poison");
        assert!(first > 0 && first < 20, "degenerate selection: {first}");
        // Re-running with the same seed re-selects the same (now shorter)
        // files: deterministic in the names, not the contents.
        let second = poison_cache_dir(&dir, 33, 0.5).expect("re-poison");
        assert_eq!(first, second);
        assert_eq!(
            std::fs::read_to_string(dir.join("not-an-entry.txt")).expect("read decoy"),
            "untouched"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoning_a_missing_dir_is_a_noop() {
        let dir = std::env::temp_dir().join(format!("mss-chaos-missing-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(poison_cache_dir(&dir, 1, 1.0).expect("noop"), 0);
    }
}
