//! Cross-cutting guarantees of the fault plane: thread-count invariance and
//! agreement between the stochastic injector and the analytical ECC model.

use mss_exec::ParallelConfig;
use mss_fault::{run_ecc_campaign, CampaignOptions, FaultModel, FaultPlan};
use mss_vaet::ecc::EccScheme;

fn plan(seed: u64, f: impl FnOnce(&mut FaultModel)) -> FaultPlan {
    let mut m = FaultModel::none();
    f(&mut m);
    FaultPlan::new(seed, m).expect("valid model")
}

/// The ISSUE acceptance gate: identical seeds give bit-identical campaigns
/// at 1, 2, and 8 worker threads, including with non-default chunking.
#[test]
fn campaign_reports_are_bit_identical_across_thread_counts() {
    let p = plan(0xF00D, |m| {
        m.write_fail_rate = 0.015;
        m.read_disturb_rate = 0.003;
        m.transient_flip_rate = 0.001;
        m.stuck_at_rate = 0.0005;
    });
    let scheme = EccScheme::bch(2, 256);
    let reference = run_ecc_campaign(
        &p,
        &CampaignOptions::new(6_000, scheme)
            .with_parallel(ParallelConfig::serial().with_threads(1)),
    )
    .expect("reference campaign");
    for threads in [2usize, 8] {
        for chunk in [64usize, 256, 1024] {
            let cfg = ParallelConfig::serial()
                .with_threads(threads)
                .with_chunk(chunk);
            let run = run_ecc_campaign(&p, &CampaignOptions::new(6_000, scheme).with_parallel(cfg))
                .expect("campaign");
            assert_eq!(
                run, reference,
                "campaign diverged at threads={threads} chunk={chunk}"
            );
        }
    }
}

/// Property sweep: `uncorrectable_probability` is monotone non-decreasing in
/// `p` for every scheme strength, and the empirical small-block injection
/// rate lands within 3σ of it across a grid of rates.
#[test]
fn uncorrectable_probability_is_monotone_and_matches_injection() {
    for t in 0..=3u32 {
        let scheme = EccScheme::bch(t, 32);
        // Monotonicity over a dense grid spanning 12 decades.
        let mut last = 0.0;
        for k in 0..=60 {
            let p = 10f64.powf(-12.0 + 0.2 * k as f64);
            let u = scheme.uncorrectable_probability(p);
            assert!(
                u >= last && (0.0..=1.0).contains(&u),
                "t={t}: u({p:.3e}) = {u:.3e} < {last:.3e}"
            );
            last = u;
        }
    }
    // Empirical agreement at rates large enough for events to occur.
    for (t, rate, seed) in [(0u32, 0.004, 11u64), (1, 0.02, 12), (2, 0.05, 13)] {
        let scheme = EccScheme::bch(t, 32);
        let p = plan(seed, |m| m.write_fail_rate = rate);
        let opts = CampaignOptions::new(15_000, scheme)
            .with_parallel(ParallelConfig::serial().with_threads(4));
        let r = run_ecc_campaign(&p, &opts).expect("campaign");
        assert!(
            r.blocks_detected + r.blocks_uncorrectable > 0,
            "t={t}: no block failures at rate {rate} — test has no power"
        );
        assert!(
            r.z_block().abs() <= 3.0,
            "t={t} rate={rate}: empirical {:.4} vs analytical {:.4} (z = {:.2})",
            r.empirical_block_failure_rate(),
            r.analytical_block_failure_rate,
            r.z_block()
        );
    }
}

/// Campaign counters reach the global observability registry.
#[test]
fn campaign_increments_obs_counters() {
    mss_obs::init_with_mode(mss_obs::Mode::Metrics);
    let before = counter("fault.campaign.blocks");
    let p = plan(3, |m| m.write_fail_rate = 0.02);
    let opts =
        CampaignOptions::new(300, EccScheme::bch(1, 64)).with_parallel(ParallelConfig::serial());
    let r = run_ecc_campaign(&p, &opts).expect("campaign");
    assert_eq!(counter("fault.campaign.blocks") - before, 300);
    assert!(counter("fault.campaign.injected") >= r.bit_errors);
}

fn counter(name: &str) -> u64 {
    mss_obs::counter(name)
}
