//! Physical constants (SI) and magnetics unit conversions.
//!
//! All values are CODATA-2018 rounded to the precision relevant for
//! compact-model work. Magnetic fields inside the workspace are expressed in
//! ampere per metre (A/m); the conversions to/from oersted and tesla are the
//! ones the spintronics literature uses (1 Oe = 1000/4π A/m).

/// Vacuum permeability μ₀ in H/m (T·m/A).
pub const MU0: f64 = 1.256_637_062_12e-6;

/// Boltzmann constant k_B in J/K.
pub const KB: f64 = 1.380_649e-23;

/// Elementary charge e in C.
pub const QE: f64 = 1.602_176_634e-19;

/// Reduced Planck constant ħ in J·s.
pub const HBAR: f64 = 1.054_571_817e-34;

/// Gyromagnetic ratio of the electron γ in rad/(s·T).
pub const GAMMA: f64 = 1.760_859_630e11;

/// Bohr magneton μ_B in J/T.
pub const MU_B: f64 = 9.274_010_078e-24;

/// Default ambient temperature used across the flow, in kelvin (27 °C).
pub const ROOM_TEMPERATURE: f64 = 300.0;

/// Attempt period τ₀ for thermally activated MTJ switching, in seconds.
///
/// The ubiquitous 1 ns attempt time of the Néel–Brown model.
pub const TAU0: f64 = 1.0e-9;

/// Converts a magnetic field from oersted to A/m.
///
/// # Examples
///
/// ```
/// let h = mss_units::consts::oe_to_am(1.0);
/// assert!((h - 79.577).abs() < 1e-2);
/// ```
#[inline]
pub fn oe_to_am(oe: f64) -> f64 {
    oe * (1000.0 / (4.0 * std::f64::consts::PI))
}

/// Converts a magnetic field from A/m to oersted.
#[inline]
pub fn am_to_oe(am: f64) -> f64 {
    am / (1000.0 / (4.0 * std::f64::consts::PI))
}

/// Converts a magnetic flux density in tesla to the equivalent H-field in A/m.
#[inline]
pub fn tesla_to_am(t: f64) -> f64 {
    t / MU0
}

/// Converts an H-field in A/m to the equivalent flux density in tesla.
#[inline]
pub fn am_to_tesla(am: f64) -> f64 {
    am * MU0
}

/// Converts degrees Celsius to kelvin.
#[inline]
pub fn celsius_to_kelvin(c: f64) -> f64 {
    c + 273.15
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oersted_round_trip() {
        let oe = 1000.0; // the ~1 kOe bias field of the MSS sensor mode
        let am = oe_to_am(oe);
        assert!((am_to_oe(am) - oe).abs() < 1e-9);
        // 1 kOe ≈ 79.577 kA/m ≈ 0.1 T
        assert!((am - 79_577.47).abs() < 1.0);
        assert!((am_to_tesla(am) - 0.1).abs() < 1e-3);
    }

    #[test]
    fn thermal_energy_at_room_temperature() {
        let kt = KB * ROOM_TEMPERATURE;
        assert!((kt - 4.141_947e-21).abs() < 1e-24);
    }

    #[test]
    fn tesla_round_trip() {
        for t in [1e-3, 0.1, 1.0] {
            assert!((am_to_tesla(tesla_to_am(t)) - t).abs() < 1e-12);
        }
    }

    #[test]
    fn celsius_conversion() {
        assert!((celsius_to_kelvin(26.85) - 300.0).abs() < 1e-9);
    }
}
