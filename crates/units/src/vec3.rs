//! A minimal 3-vector for macrospin dynamics.
//!
//! The LLG solver in `mss-mtj` integrates the unit magnetization vector; this
//! type provides exactly the operations that requires (dot/cross products,
//! normalisation, scaling) with `Copy` semantics and no external dependency.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 3-component vector of `f64`.
///
/// # Examples
///
/// ```
/// use mss_units::Vec3;
///
/// let z = Vec3::unit_z();
/// let x = Vec3::unit_x();
/// assert_eq!(x.cross(z), -Vec3::unit_y());
/// assert!((z.norm() - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    #[inline]
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0, 0.0)
    }

    /// The +x unit vector.
    #[inline]
    pub const fn unit_x() -> Self {
        Self::new(1.0, 0.0, 0.0)
    }

    /// The +y unit vector.
    #[inline]
    pub const fn unit_y() -> Self {
        Self::new(0.0, 1.0, 0.0)
    }

    /// The +z unit vector.
    #[inline]
    pub const fn unit_z() -> Self {
        Self::new(0.0, 0.0, 1.0)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Self) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector is (numerically) zero.
    #[inline]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalise the zero vector");
        self / n
    }

    /// Polar angle from +z in radians, in `[0, π]`.
    #[inline]
    pub fn polar_angle(self) -> f64 {
        (self.z / self.norm()).clamp(-1.0, 1.0).acos()
    }

    /// Azimuthal angle in the x–y plane in radians, in `(-π, π]`.
    #[inline]
    pub fn azimuth(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Builds a unit vector from spherical angles (`theta` from +z,
    /// `phi` around z from +x).
    #[inline]
    pub fn from_spherical(theta: f64, phi: f64) -> Self {
        Self::new(
            theta.sin() * phi.cos(),
            theta.sin() * phi.sin(),
            theta.cos(),
        )
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Neg for Vec3 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_product_is_right_handed() {
        assert_eq!(Vec3::unit_x().cross(Vec3::unit_y()), Vec3::unit_z());
        assert_eq!(Vec3::unit_y().cross(Vec3::unit_z()), Vec3::unit_x());
        assert_eq!(Vec3::unit_z().cross(Vec3::unit_x()), Vec3::unit_y());
    }

    #[test]
    fn cross_is_orthogonal_to_operands() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-0.5, 0.7, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn spherical_round_trip() {
        let theta = 0.7;
        let phi = -1.3;
        let v = Vec3::from_spherical(theta, phi);
        assert!((v.norm() - 1.0).abs() < 1e-14);
        assert!((v.polar_angle() - theta).abs() < 1e-12);
        assert!((v.azimuth() - phi).abs() < 1e-12);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vec3::new(3.0, -4.0, 12.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 0.5);
        assert_eq!(a + Vec3::zero(), a);
        assert_eq!(a - a, Vec3::zero());
        assert_eq!(a * 2.0, 2.0 * a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
    }
}
