//! A minimal complex number for AC (frequency-domain) circuit analysis.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number `re + j·im` of `f64` parts.
///
/// # Examples
///
/// ```
/// use mss_units::complex::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert!((z.abs() - 5.0).abs() < 1e-12);
/// let w = z * z.conj();
/// assert!((w.re - 25.0).abs() < 1e-12 && w.im.abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit j.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + j·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real value.
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Magnitude |z|.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase in radians, `atan2(im, re)`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on division by (numerical) zero.
    pub fn recip(self) -> Self {
        let d = self.re * self.re + self.im * self.im;
        debug_assert!(d > 0.0, "reciprocal of zero");
        Self::new(self.re / d, -self.im / d)
    }

    /// True when both parts are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for Complex {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Complex {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        #[allow(clippy::suspicious_arithmetic_impl)]
        {
            self * rhs.recip()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(2.0, -3.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(-(-z), z);
        let r = z * z.recip();
        assert!((r.re - 1.0).abs() < 1e-12 && r.im.abs() < 1e-12);
    }

    #[test]
    fn j_squared_is_minus_one() {
        let j2 = Complex::J * Complex::J;
        assert!((j2.re + 1.0).abs() < 1e-15 && j2.im.abs() < 1e-15);
    }

    #[test]
    fn polar_quantities() {
        let z = Complex::new(0.0, 2.0);
        assert!((z.abs() - 2.0).abs() < 1e-15);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn division() {
        let a = Complex::new(1.0, 1.0);
        let b = Complex::new(0.0, 1.0);
        let q = a / b; // (1+j)/j = 1 - j
        assert!((q.re - 1.0).abs() < 1e-12 && (q.im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_real() {
        let z: Complex = 4.0.into();
        assert_eq!(z, Complex::real(4.0));
        assert!(z.is_finite());
    }
}
