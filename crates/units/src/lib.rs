//! Foundations shared by every crate in the GREAT MSS workspace.
//!
//! This crate deliberately contains no domain logic. It provides:
//!
//! - [`consts`] — CODATA physical constants and magnetics conversions,
//! - [`vec3`] — a small 3-vector used by the macrospin LLG solver,
//! - [`complex`] — a minimal complex number for AC circuit analysis,
//! - [`math`] — special functions (erf/erfc, Gaussian tail `Q`, its inverse),
//!   root finding and quadrature,
//! - [`stats`] — streaming statistics (Welford) and percentile helpers,
//! - [`rng`] — an in-tree PRNG stack (SplitMix64 seeding, xoshiro256++
//!   core, deterministic stream splitting) plus reproducible Gaussian /
//!   lognormal / truncated sampling on top of any [`rng::Rng`],
//! - [`fmt`] — engineering-notation formatting for report tables.
//!
//! # Examples
//!
//! ```
//! use mss_units::consts::{KB, ROOM_TEMPERATURE};
//! use mss_units::math::q_function;
//!
//! let thermal_energy = KB * ROOM_TEMPERATURE;
//! assert!(thermal_energy > 4.0e-21 && thermal_energy < 4.2e-21);
//! // One-sided 3-sigma tail.
//! assert!((q_function(3.0) - 1.3499e-3).abs() < 1e-6);
//! ```

pub mod complex;
pub mod consts;
pub mod fmt;
pub mod math;
pub mod rng;
pub mod stats;
pub mod vec3;

pub use vec3::Vec3;
