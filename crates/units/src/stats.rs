//! Streaming and batch statistics for Monte Carlo analyses.
//!
//! VAET-STT reports distributions (μ, σ) rather than nominal scalars; this
//! module provides the numerically stable accumulation those reports use.

/// Welford online accumulator for mean / variance / extrema.
///
/// # Examples
///
/// ```
/// use mss_units::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (Bessel-corrected); 0 with < 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance; 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Minimum observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Summary of a distribution, as reported in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionSummary {
    /// Mean (μ).
    pub mean: f64,
    /// Sample standard deviation (σ).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of Monte Carlo samples behind the summary.
    pub samples: u64,
}

impl DistributionSummary {
    /// True when the summary aggregates zero samples.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }
}

impl From<&OnlineStats> for DistributionSummary {
    fn from(s: &OnlineStats) -> Self {
        if s.count() == 0 {
            // An empty accumulator keeps ±inf extrema internally (the merge
            // identity); leaking them into a report renders as `inf`/`-inf`
            // engineering notation. An empty summary is all-zero with
            // `samples == 0` so renderers can say "n/a" instead.
            return Self {
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                samples: 0,
            };
        }
        Self {
            mean: s.mean(),
            std_dev: s.sample_std_dev(),
            min: s.min(),
            max: s.max(),
            samples: s.count(),
        }
    }
}

/// Error from [`try_quantile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantileError {
    /// The input slice was empty (or all-NaN).
    EmptyData,
    /// `p` fell outside `[0, 1]`.
    BadProbability,
}

impl std::fmt::Display for QuantileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantileError::EmptyData => write!(f, "quantile of empty (or all-NaN) data"),
            QuantileError::BadProbability => write!(f, "quantile probability outside [0, 1]"),
        }
    }
}

impl std::error::Error for QuantileError {}

/// Returns the `p`-quantile (0 ≤ p ≤ 1) of `data` by linear interpolation.
///
/// The input is sorted internally; pass a scratch copy if the original order
/// matters. NaN entries (failed Monte Carlo samples) are excluded from the
/// quantile rather than aborting the whole report — callers that need to
/// know how many were dropped should use [`try_quantile`].
///
/// # Panics
///
/// Panics if `data` is empty (or entirely NaN) or `p` is outside `[0, 1]`.
pub fn quantile(data: &mut [f64], p: f64) -> f64 {
    try_quantile(data, p).map(|q| q.value).unwrap_or_else(|e| {
        panic!("quantile(p = {p}) on {} samples: {e}", data.len());
    })
}

/// A quantile computed over the finite portion of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantile {
    /// The interpolated quantile of the non-NaN samples.
    pub value: f64,
    /// NaN samples excluded from the computation.
    pub dropped_nan: usize,
}

/// Checked [`quantile`]: NaN entries are partitioned out and counted, and
/// degenerate inputs return an error instead of panicking.
///
/// `data` is reordered (NaNs moved to the tail, the rest sorted with
/// [`f64::total_cmp`]); pass a scratch copy if the original order matters.
///
/// # Errors
///
/// [`QuantileError::EmptyData`] when no non-NaN samples remain;
/// [`QuantileError::BadProbability`] when `p` is outside `[0, 1]`.
pub fn try_quantile(data: &mut [f64], p: f64) -> Result<Quantile, QuantileError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(QuantileError::BadProbability);
    }
    // Partition NaNs to the tail so they cannot land inside the sorted range
    // (total_cmp orders negative NaN first and positive NaN last, so sorting
    // alone is not enough).
    let mut n = data.len();
    let mut i = 0;
    while i < n {
        if data[i].is_nan() {
            n -= 1;
            data.swap(i, n);
        } else {
            i += 1;
        }
    }
    let dropped_nan = data.len() - n;
    let finite = &mut data[..n];
    if finite.is_empty() {
        return Err(QuantileError::EmptyData);
    }
    finite.sort_by(f64::total_cmp);
    let idx = p * (finite.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let value = if lo == hi {
        finite[lo]
    } else {
        let t = idx - lo as f64;
        finite[lo] * (1.0 - t) + finite[hi] * t
    };
    Ok(Quantile { value, dropped_nan })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 2.0)
            .collect();
        let s: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (50..120).map(|i| i as f64 * 1.5).collect();
        let mut s1: OnlineStats = a.iter().copied().collect();
        let s2: OnlineStats = b.iter().copied().collect();
        s1.merge(&s2);
        let all: OnlineStats = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(s1.count(), all.count());
        assert!((s1.mean() - all.mean()).abs() < 1e-9);
        assert!((s1.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(s1.min(), all.min());
        assert_eq!(s1.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s.clone();
        s.merge(&OnlineStats::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());
    }

    #[test]
    fn quantile_median_and_extremes() {
        let mut data = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&mut data, 0.5), 3.0);
        assert_eq!(quantile(&mut data, 0.0), 1.0);
        assert_eq!(quantile(&mut data, 1.0), 5.0);
        assert_eq!(quantile(&mut data, 0.25), 2.0);
    }

    #[test]
    fn quantile_tolerates_nan_samples() {
        // One failed Monte Carlo sample used to abort the whole report via
        // the `expect` inside sort_by; now NaNs are dropped and counted.
        let mut data = vec![5.0, f64::NAN, 1.0, 3.0, f64::NAN, 2.0, 4.0];
        let q = try_quantile(&mut data, 0.5).unwrap();
        assert_eq!(q.value, 3.0);
        assert_eq!(q.dropped_nan, 2);
        // The panicking wrapper also survives (same finite median).
        let mut data = vec![5.0, f64::NAN, 1.0, 3.0, f64::NAN, 2.0, 4.0];
        assert_eq!(quantile(&mut data, 0.5), 3.0);
    }

    #[test]
    fn quantile_single_element_and_negative_zero() {
        let mut one = vec![42.0];
        assert_eq!(quantile(&mut one, 0.0), 42.0);
        assert_eq!(quantile(&mut one, 0.5), 42.0);
        assert_eq!(quantile(&mut one, 1.0), 42.0);
        // total_cmp orders -0.0 before +0.0; the interpolated value is 0.
        let mut zeros = vec![0.0, -0.0];
        assert_eq!(quantile(&mut zeros, 0.5), 0.0);
    }

    #[test]
    fn try_quantile_rejects_degenerate_inputs() {
        let mut empty: Vec<f64> = vec![];
        assert_eq!(
            try_quantile(&mut empty, 0.5).unwrap_err(),
            QuantileError::EmptyData
        );
        let mut all_nan = vec![f64::NAN, f64::NAN];
        assert_eq!(
            try_quantile(&mut all_nan, 0.5).unwrap_err(),
            QuantileError::EmptyData
        );
        let mut data = vec![1.0, 2.0];
        assert_eq!(
            try_quantile(&mut data, 1.5).unwrap_err(),
            QuantileError::BadProbability
        );
        assert_eq!(
            try_quantile(&mut data, -0.1).unwrap_err(),
            QuantileError::BadProbability
        );
    }

    #[test]
    fn empty_stats_summarise_finitely() {
        // Internally the accumulator keeps ±inf extrema as merge identity...
        let s = OnlineStats::new();
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
        // ...but the report-facing summary must never leak them.
        let d = DistributionSummary::from(&s);
        assert!(d.is_empty());
        assert_eq!(d.samples, 0);
        for v in [d.mean, d.std_dev, d.min, d.max] {
            assert!(v.is_finite(), "empty summary leaked non-finite: {d:?}");
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn summary_reflects_stats() {
        let s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let d = DistributionSummary::from(&s);
        assert_eq!(d.samples, 3);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 3.0);
        assert!((d.mean - 2.0).abs() < 1e-15);
    }
}
