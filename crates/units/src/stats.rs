//! Streaming and batch statistics for Monte Carlo analyses.
//!
//! VAET-STT reports distributions (μ, σ) rather than nominal scalars; this
//! module provides the numerically stable accumulation those reports use.

/// Welford online accumulator for mean / variance / extrema.
///
/// # Examples
///
/// ```
/// use mss_units::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (Bessel-corrected); 0 with < 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance; 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Minimum observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Summary of a distribution, as reported in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionSummary {
    /// Mean (μ).
    pub mean: f64,
    /// Sample standard deviation (σ).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of Monte Carlo samples behind the summary.
    pub samples: u64,
}

impl From<&OnlineStats> for DistributionSummary {
    fn from(s: &OnlineStats) -> Self {
        Self {
            mean: s.mean(),
            std_dev: s.sample_std_dev(),
            min: s.min(),
            max: s.max(),
            samples: s.count(),
        }
    }
}

/// Returns the `p`-quantile (0 ≤ p ≤ 1) of `data` by linear interpolation.
///
/// The input is sorted internally; pass a scratch copy if the original order
/// matters.
///
/// # Panics
///
/// Panics if `data` is empty or `p` is outside `[0, 1]`.
pub fn quantile(data: &mut [f64], p: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    data.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let idx = p * (data.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        data[lo]
    } else {
        let t = idx - lo as f64;
        data[lo] * (1.0 - t) + data[hi] * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 2.0)
            .collect();
        let s: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (50..120).map(|i| i as f64 * 1.5).collect();
        let mut s1: OnlineStats = a.iter().copied().collect();
        let s2: OnlineStats = b.iter().copied().collect();
        s1.merge(&s2);
        let all: OnlineStats = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(s1.count(), all.count());
        assert!((s1.mean() - all.mean()).abs() < 1e-9);
        assert!((s1.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(s1.min(), all.min());
        assert_eq!(s1.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s.clone();
        s.merge(&OnlineStats::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());
    }

    #[test]
    fn quantile_median_and_extremes() {
        let mut data = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&mut data, 0.5), 3.0);
        assert_eq!(quantile(&mut data, 0.0), 1.0);
        assert_eq!(quantile(&mut data, 1.0), 5.0);
        assert_eq!(quantile(&mut data, 0.25), 2.0);
    }

    #[test]
    fn summary_reflects_stats() {
        let s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let d = DistributionSummary::from(&s);
        assert_eq!(d.samples, 3);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 3.0);
        assert!((d.mean - 2.0).abs() < 1e-15);
    }
}
