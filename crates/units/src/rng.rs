//! Reproducible random sampling for Monte Carlo analyses.
//!
//! The workspace carries its own pseudo-random machinery so that every crate
//! builds with **zero external dependencies** and every analysis is
//! **bit-reproducible** across machines and thread counts:
//!
//! - [`SplitMix64`] — the seeding/stream-derivation generator (Steele,
//!   Lea & Flood, *Fast Splittable Pseudorandom Number Generators*, 2014),
//! - [`Xoshiro256PlusPlus`] — the workhorse generator (Blackman & Vigna,
//!   *Scrambled Linear Pseudorandom Number Generators*, 2019),
//! - the [`Rng`] trait — the minimal uniform-sampling surface the Gaussian
//!   helpers below are built on.
//!
//! # Deterministic stream splitting
//!
//! Parallel Monte Carlo needs one independent random stream per task whose
//! identity depends only on `(seed, task index)` — never on which thread
//! happens to run the task. [`Xoshiro256PlusPlus::stream`] provides exactly
//! that: the 256-bit state is expanded by SplitMix64 from a mix of the run
//! seed and the stream index, so `stream(seed, k)` is a pure function and a
//! fixed seed reproduces bit-identical results at any thread count.
//!
//! The Gaussian machinery is Box–Muller based and works with any [`Rng`],
//! so every crate in the workspace shares seeded, deterministic variation
//! sampling.

/// Minimal uniform-sampling interface implemented by the in-tree generators.
///
/// Only [`Rng::next_u64`] is required; everything else has provided
/// implementations so downstream code stays generator-agnostic.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the 53 high bits; (2^-53) spacing gives a uniform dyadic grid.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `u64` in `[0, n)` via Lemire's widening-multiply rejection
    /// method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below(0)");
        // Lemire 2019: multiply-shift with a rejection zone of size 2^64 % n.
        let mut m = self.next_u64() as u128 * n as u128;
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = self.next_u64() as u128 * n as u128;
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        lo + self.gen_below(hi - lo)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Golden-ratio increment of the SplitMix64 Weyl sequence.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64: a tiny splittable generator used for seeding and stream
/// derivation.
///
/// Reference implementation: Sebastiano Vigna, <https://prng.di.unimi.it/splitmix64.c>.
///
/// # Examples
///
/// ```
/// use mss_units::rng::{Rng, SplitMix64};
///
/// let mut sm = SplitMix64::new(0);
/// // First output of the published reference implementation for seed 0.
/// assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0: the workspace's default generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; reference
/// implementation by Blackman & Vigna, <https://prng.di.unimi.it/xoshiro256plusplus.c>.
///
/// # Examples
///
/// ```
/// use mss_units::rng::Xoshiro256PlusPlus;
/// use mss_units::rng::Rng;
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
/// let z = mss_units::rng::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Builds a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics when the state is all-zero (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must be non-zero"
        );
        Self { s }
    }

    /// Seeds the 256-bit state by expanding a 64-bit seed through
    /// SplitMix64, as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::expand(SplitMix64::new(seed))
    }

    /// Derives the `stream`-th independent generator of a run.
    ///
    /// A pure function of `(seed, stream)`: parallel tasks draw their RNG as
    /// `stream(seed, task_index)` so results do not depend on the thread
    /// that executes the task. Streams are separated in the SplitMix64
    /// seeding space by a golden-ratio Weyl step, so distinct indices expand
    /// to unrelated 256-bit states.
    pub fn stream(seed: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::new(seed ^ stream.wrapping_mul(GOLDEN_GAMMA));
        // Decorrelate neighbouring (seed, stream) pairs before expansion.
        sm.next_u64();
        Self::expand(sm)
    }

    fn expand(mut sm: SplitMix64) -> Self {
        let mut s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        if s.iter().all(|&w| w == 0) {
            // Vanishingly unlikely, but the all-zero state is absorbing.
            s[0] = GOLDEN_GAMMA;
        }
        Self { s }
    }
}

impl Rng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use mss_units::rng::Xoshiro256PlusPlus;
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
/// let z = mss_units::rng::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Reject u1 == 0 so ln(u1) is finite.
    let mut u1: f64 = rng.next_f64();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.next_f64();
    }
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draws a lognormal sample whose *underlying normal* has the given
/// parameters.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws a normal sample truncated to `[lo, hi]` by rejection.
///
/// # Panics
///
/// Panics if `lo >= hi`. Intended for mild truncation (e.g. ±4σ physical
/// clamps on geometry); pathological windows fall back to clamping after
/// 1000 rejections so the call always terminates.
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(lo < hi, "invalid truncation window [{lo}, {hi}]");
    for _ in 0..1000 {
        let x = normal(rng, mean, std_dev);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    mean.clamp(lo, hi)
}

/// A named Gaussian variation source: `value = nominal · (1 + σ_rel·z)` or
/// `value = nominal + σ_abs·z` depending on [`VariationKind`].
///
/// Process-variation cards in `mss-pdk` are built from these.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variation {
    /// Dispersion magnitude; interpretation depends on `kind`.
    pub sigma: f64,
    /// Relative or absolute dispersion.
    pub kind: VariationKind,
}

/// How a [`Variation`]'s sigma is applied to a nominal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariationKind {
    /// `sigma` is a fraction of the nominal value (σ/μ).
    Relative,
    /// `sigma` is in the same unit as the value.
    Absolute,
}

impl Variation {
    /// A relative (σ/μ) variation.
    pub const fn relative(sigma: f64) -> Self {
        Self {
            sigma,
            kind: VariationKind::Relative,
        }
    }

    /// An absolute variation in the value's own unit.
    pub const fn absolute(sigma: f64) -> Self {
        Self {
            sigma,
            kind: VariationKind::Absolute,
        }
    }

    /// No variation at all.
    pub const fn none() -> Self {
        Self::absolute(0.0)
    }

    /// Samples a varied value around `nominal`, truncated at ±4σ so physical
    /// quantities (lengths, currents) cannot go negative for realistic σ/μ.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, nominal: f64) -> f64 {
        if self.sigma == 0.0 {
            return nominal;
        }
        let sd = match self.kind {
            VariationKind::Relative => self.sigma * nominal.abs(),
            VariationKind::Absolute => self.sigma,
        };
        truncated_normal(rng, nominal, sd, nominal - 4.0 * sd, nominal + 4.0 * sd)
    }

    /// The effective absolute standard deviation around `nominal`.
    pub fn std_dev_at(&self, nominal: f64) -> f64 {
        match self.kind {
            VariationKind::Relative => self.sigma * nominal.abs(),
            VariationKind::Absolute => self.sigma,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;

    /// Reference outputs of the published splitmix64.c for seed 0.
    #[test]
    fn splitmix64_reference_vector() {
        let mut sm = SplitMix64::new(0);
        let expected: [u64; 4] = [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
        ];
        for e in expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    /// Reference outputs of the published xoshiro256plusplus.c for the
    /// state {1, 2, 3, 4} (same vector used by the `rand_xoshiro` crate).
    #[test]
    fn xoshiro256pp_reference_vector() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "state must be non-zero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256PlusPlus::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256PlusPlus::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut c = Xoshiro256PlusPlus::seed_from_u64(43);
        assert_ne!(a[0], c.next_u64());
    }

    #[test]
    fn streams_are_pure_and_distinct() {
        let take =
            |mut r: Xoshiro256PlusPlus| -> Vec<u64> { (0..16).map(|_| r.next_u64()).collect() };
        let s0 = take(Xoshiro256PlusPlus::stream(9, 0));
        let s0_again = take(Xoshiro256PlusPlus::stream(9, 0));
        assert_eq!(s0, s0_again);
        let s1 = take(Xoshiro256PlusPlus::stream(9, 1));
        let other_seed = take(Xoshiro256PlusPlus::stream(10, 0));
        assert_ne!(s0, s1);
        assert_ne!(s0, other_seed);
        // Stream 0 coincides with nothing special: it differs from the
        // plain seeded generator too.
        assert_ne!(s0, take(Xoshiro256PlusPlus::seed_from_u64(9)));
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_below_is_unbiased_in_range() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.gen_below(7) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow +/-5%.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..1000 {
            let u = r.gen_range_u64(5, 9);
            assert!((5..9).contains(&u));
            let f = r.gen_range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(4);
        let hits = (0..50_000).filter(|_| r.gen_bool(0.3)).count();
        let ratio = hits as f64 / 50_000.0;
        assert!((ratio - 0.3).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
        let s: OnlineStats = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(s.mean().abs() < 0.03, "mean {}", s.mean());
        assert!(
            (s.sample_std_dev() - 1.0).abs() < 0.03,
            "sd {}",
            s.sample_std_dev()
        );
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let s: OnlineStats = (0..20_000).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        assert!((s.mean() - 10.0).abs() < 0.1);
        assert!((s.sample_std_dev() - 2.0).abs() < 0.1);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(lognormal(&mut rng, 0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn truncated_normal_respects_window() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..1000 {
            let x = truncated_normal(&mut rng, 0.0, 1.0, -0.5, 0.5);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn variation_sampling_is_seed_deterministic() {
        let v = Variation::relative(0.05);
        let a: Vec<f64> = {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
            (0..32).map(|_| v.sample(&mut rng, 100.0)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
            (0..32).map(|_| v.sample(&mut rng, 100.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zero_variation_returns_nominal() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        assert_eq!(Variation::none().sample(&mut rng, 123.0), 123.0);
    }

    #[test]
    fn relative_variation_std_dev() {
        let v = Variation::relative(0.1);
        assert!((v.std_dev_at(50.0) - 5.0).abs() < 1e-12);
        let a = Variation::absolute(0.3);
        assert_eq!(a.std_dev_at(1e9), 0.3);
    }
}
