//! Reproducible random sampling for Monte Carlo analyses.
//!
//! `rand` ships uniform sampling only (we deliberately avoid a `rand_distr`
//! dependency); the Gaussian machinery here is Box–Muller based and works
//! with any [`Rng`], so every crate in the workspace can share seeded,
//! deterministic variation sampling.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let z = mss_units::rng::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Reject u1 == 0 so ln(u1) is finite.
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draws a lognormal sample whose *underlying normal* has the given
/// parameters.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws a normal sample truncated to `[lo, hi]` by rejection.
///
/// # Panics
///
/// Panics if `lo >= hi`. Intended for mild truncation (e.g. ±4σ physical
/// clamps on geometry); pathological windows fall back to clamping after
/// 1000 rejections so the call always terminates.
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(lo < hi, "invalid truncation window [{lo}, {hi}]");
    for _ in 0..1000 {
        let x = normal(rng, mean, std_dev);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    mean.clamp(lo, hi)
}

/// A named Gaussian variation source: `value = nominal · (1 + σ_rel·z)` or
/// `value = nominal + σ_abs·z` depending on [`VariationKind`].
///
/// Process-variation cards in `mss-pdk` are built from these.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Variation {
    /// Dispersion magnitude; interpretation depends on `kind`.
    pub sigma: f64,
    /// Relative or absolute dispersion.
    pub kind: VariationKind,
}

/// How a [`Variation`]'s sigma is applied to a nominal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VariationKind {
    /// `sigma` is a fraction of the nominal value (σ/μ).
    Relative,
    /// `sigma` is in the same unit as the value.
    Absolute,
}

impl Variation {
    /// A relative (σ/μ) variation.
    pub const fn relative(sigma: f64) -> Self {
        Self {
            sigma,
            kind: VariationKind::Relative,
        }
    }

    /// An absolute variation in the value's own unit.
    pub const fn absolute(sigma: f64) -> Self {
        Self {
            sigma,
            kind: VariationKind::Absolute,
        }
    }

    /// No variation at all.
    pub const fn none() -> Self {
        Self::absolute(0.0)
    }

    /// Samples a varied value around `nominal`, truncated at ±4σ so physical
    /// quantities (lengths, currents) cannot go negative for realistic σ/μ.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, nominal: f64) -> f64 {
        if self.sigma == 0.0 {
            return nominal;
        }
        let sd = match self.kind {
            VariationKind::Relative => self.sigma * nominal.abs(),
            VariationKind::Absolute => self.sigma,
        };
        truncated_normal(rng, nominal, sd, nominal - 4.0 * sd, nominal + 4.0 * sd)
    }

    /// The effective absolute standard deviation around `nominal`.
    pub fn std_dev_at(&self, nominal: f64) -> f64 {
        match self.kind {
            VariationKind::Relative => self.sigma * nominal.abs(),
            VariationKind::Absolute => self.sigma,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let s: OnlineStats = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(s.mean().abs() < 0.03, "mean {}", s.mean());
        assert!((s.sample_std_dev() - 1.0).abs() < 0.03, "sd {}", s.sample_std_dev());
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(1);
        let s: OnlineStats = (0..20_000).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        assert!((s.mean() - 10.0).abs() < 0.1);
        assert!((s.sample_std_dev() - 2.0).abs() < 0.1);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(lognormal(&mut rng, 0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn truncated_normal_respects_window() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = truncated_normal(&mut rng, 0.0, 1.0, -0.5, 0.5);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn variation_sampling_is_seed_deterministic() {
        let v = Variation::relative(0.05);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..32).map(|_| v.sample(&mut rng, 100.0)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..32).map(|_| v.sample(&mut rng, 100.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zero_variation_returns_nominal() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(Variation::none().sample(&mut rng, 123.0), 123.0);
    }

    #[test]
    fn relative_variation_std_dev() {
        let v = Variation::relative(0.1);
        assert!((v.std_dev_at(50.0) - 5.0).abs() < 1e-12);
        let a = Variation::absolute(0.3);
        assert_eq!(a.std_dev_at(1e9), 0.3);
    }
}
