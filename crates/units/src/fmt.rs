//! Engineering-notation formatting for report tables.
//!
//! Every experiment binary prints paper-style rows; this module gives them a
//! consistent `4.9 ns` / `159.0 pJ` rendering.

use std::fmt;

/// Wraps a value for engineering-notation display with a unit suffix.
///
/// # Examples
///
/// ```
/// use mss_units::fmt::Eng;
///
/// assert_eq!(Eng(4.9e-9, "s").to_string(), "4.900 ns");
/// assert_eq!(Eng(159.0e-12, "J").to_string(), "159.0 pJ");
/// assert_eq!(Eng(0.0, "A").to_string(), "0.000 A");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eng(pub f64, pub &'static str);

const PREFIXES: &[(f64, &str)] = &[
    (1e-18, "a"),
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "u"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
    (1e12, "T"),
];

impl fmt::Display for Eng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        if v == 0.0 || !v.is_finite() {
            return write!(f, "{:.3} {}", v, self.1);
        }
        let mag = v.abs();
        let mut scale = 1e-18;
        let mut prefix = "a";
        for &(s, p) in PREFIXES {
            if mag >= s {
                scale = s;
                prefix = p;
            }
        }
        let scaled = v / scale;
        // Keep 4 significant digits: width depends on the mantissa size.
        let digits = if scaled.abs() >= 100.0 {
            1
        } else if scaled.abs() >= 10.0 {
            2
        } else {
            3
        };
        write!(f, "{:.*} {}{}", digits, scaled, prefix, self.1)
    }
}

/// Renders a ratio as a percentage with sign, e.g. `-17.3%`.
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

/// Left-pads `s` to `width` columns (simple ASCII table helper).
pub fn pad(s: &str, width: usize) -> String {
    if s.len() >= width {
        s.to_string()
    } else {
        format!("{}{}", " ".repeat(width - s.len()), s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engineering_prefixes() {
        assert_eq!(Eng(1.7e-9, "s").to_string(), "1.700 ns");
        assert_eq!(Eng(425.0e-12, "J").to_string(), "425.0 pJ");
        assert_eq!(Eng(2.0e9, "Hz").to_string(), "2.000 GHz");
        assert_eq!(Eng(32.0e3, "B").to_string(), "32.00 kB");
        assert_eq!(Eng(-5.5e-6, "A").to_string(), "-5.500 uA");
    }

    #[test]
    fn sub_atto_values_render_in_atto() {
        // Below the smallest prefix we still render something sensible.
        let s = Eng(1e-21, "J").to_string();
        assert!(s.ends_with("aJ"), "{s}");
    }

    #[test]
    fn pct_formats_sign() {
        assert_eq!(pct(-0.173), "-17.3%");
        assert_eq!(pct(0.5), "+50.0%");
    }

    #[test]
    fn pad_widths() {
        assert_eq!(pad("ab", 5), "   ab");
        assert_eq!(pad("abcdef", 3), "abcdef");
    }
}
