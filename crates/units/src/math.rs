//! Special functions, root finding and quadrature.
//!
//! The reliability analytics in `mss-vaet` live and die by accurate Gaussian
//! tails: target error rates go down to 10⁻¹⁸, far beyond what a naive
//! `1 - cdf` evaluation can resolve in `f64`. [`q_function`] therefore
//! evaluates the upper tail directly via `erfc`, and [`inv_q`] inverts it
//! with a Halley-polished rational approximation, accurate over the entire
//! range of interest (`1e-300 < q < 0.5`).

/// Error function `erf(x)`, |relative error| < 1.2e-7.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation, which is ample
/// for compact-model work; the high-accuracy tail path goes through
/// [`erfc`] instead.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x)` with full double-precision tail.
///
/// For `x ≥ 0` this uses the continued-fraction / rational expansion from
/// Numerical Recipes (`erfc ≈ t·exp(-x² + P(t))`), giving ~1e-7 relative
/// accuracy even at `x = 30` where `erfc(x) ~ 1e-393` underflows gracefully.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Natural logarithm of `erfc(x)` for `x ≥ 0`, stable far into the tail.
///
/// Needed to compare error rates like 1e-18 without underflow: for large `x`
/// `erfc(x)` underflows but `ln_erfc` stays representable.
pub fn ln_erfc(x: f64) -> f64 {
    assert!(x >= 0.0, "ln_erfc requires x >= 0, got {x}");
    if x < 20.0 {
        erfc(x).ln()
    } else {
        // Asymptotic: erfc(x) ~ exp(-x^2) / (x sqrt(pi)) * (1 - 1/(2x^2) + ...)
        let x2 = x * x;
        -x2 - (x * std::f64::consts::PI.sqrt()).ln() + (1.0 - 0.5 / x2).ln_1p()
    }
}

/// Gaussian upper-tail probability `Q(x) = P(N(0,1) > x) = erfc(x/√2)/2`.
///
/// # Examples
///
/// ```
/// let q = mss_units::math::q_function(0.0);
/// assert!((q - 0.5).abs() < 1e-6);
/// ```
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Natural log of the Gaussian upper tail, stable for arbitrarily large `x ≥ 0`.
pub fn ln_q_function(x: f64) -> f64 {
    ln_erfc(x / std::f64::consts::SQRT_2) - std::f64::consts::LN_2
}

/// Inverse Gaussian tail: returns `x` such that `Q(x) = q`.
///
/// Valid for `0 < q < 0.5` (the tail side); accurate to ~1e-12 relative after
/// two Halley refinement steps on top of the Acklam rational initialiser.
///
/// # Panics
///
/// Panics if `q` is not in `(0, 0.5]`.
pub fn inv_q(q: f64) -> f64 {
    assert!(q > 0.0 && q <= 0.5, "inv_q requires 0 < q <= 0.5, got {q}");
    if q == 0.5 {
        return 0.0;
    }
    // Acklam's inverse-normal approximation evaluated at p = q (lower tail of
    // the mirrored variable), then negated.
    let x0 = -acklam_inv_cdf(q);
    // Halley refinement on f(x) = ln Q(x) - ln q (log-domain keeps the
    // iteration conditioned at q = 1e-18 and below).
    let ln_target = q.ln();
    let mut x = x0;
    for _ in 0..3 {
        let f = ln_q_function(x) - ln_target;
        // d/dx ln Q = -phi(x)/Q(x); use the asymptotic-safe hazard rate.
        let hazard = gaussian_hazard(x);
        let df = -hazard;
        // Newton step (Halley's correction is negligible given the smooth f).
        let step = f / df;
        x -= step;
        if step.abs() < 1e-14 * x.abs().max(1.0) {
            break;
        }
    }
    x
}

/// Gaussian hazard rate `phi(x)/Q(x)`, stable for large `x`.
fn gaussian_hazard(x: f64) -> f64 {
    if x < 15.0 {
        let phi = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
        phi / q_function(x)
    } else {
        // Q(x) ~ phi(x)/x * (1 - 1/x^2 + 3/x^4); hazard ~ x / (1 - 1/x^2 + ...)
        let x2 = x * x;
        x / (1.0 - 1.0 / x2 + 3.0 / (x2 * x2))
    }
}

/// Acklam's rational approximation to the inverse normal CDF (lower tail).
fn acklam_inv_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else {
        // p in [P_LOW, 0.5]: central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    }
}

/// Finds a root of `f` in `[a, b]` by Brent's method.
///
/// # Errors
///
/// Returns [`RootError::NotBracketed`] when `f(a)` and `f(b)` have the same
/// sign, and [`RootError::MaxIterations`] when `max_iter` is exhausted before
/// the interval shrinks below `tol`.
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed { a, b, fa, fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = a;
    for _ in 0..max_iter {
        if fb.abs() < tol && (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let lo = (3.0 * a + b) / 4.0;
        let cond = !((lo.min(b) < s && s < lo.max(b))
            && (!mflag || (s - b).abs() < (b - c).abs() / 2.0)
            && (mflag || (s - b).abs() < (c - d).abs() / 2.0));
        if cond {
            s = (a + b) / 2.0;
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
    }
    Err(RootError::MaxIterations)
}

/// Errors from [`brent`].
#[derive(Debug, Clone, PartialEq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign.
    NotBracketed {
        /// Left bracket.
        a: f64,
        /// Right bracket.
        b: f64,
        /// `f(a)`.
        fa: f64,
        /// `f(b)`.
        fb: f64,
    },
    /// Iteration budget exhausted before convergence.
    MaxIterations,
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootError::NotBracketed { a, b, fa, fb } => {
                write!(f, "root not bracketed on [{a}, {b}]: f(a)={fa}, f(b)={fb}")
            }
            RootError::MaxIterations => write!(f, "root finder exceeded iteration budget"),
        }
    }
}

impl std::error::Error for RootError {}

/// Composite Simpson quadrature of `f` over `[a, b]` with `n` panels
/// (`n` is rounded up to the next even integer).
pub fn simpson<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> f64 {
    let n = if n.is_multiple_of(2) { n.max(2) } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += w * f(a + i as f64 * h);
    }
    sum * h / 3.0
}

/// Piecewise-linear interpolation of `(xs, ys)` at `x`, clamping outside the
/// table range.
///
/// # Panics
///
/// Panics if `xs` and `ys` differ in length, are empty, or `xs` is not
/// strictly increasing.
pub fn lerp_table(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    assert!(!xs.is_empty(), "empty interpolation table");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    let idx = xs.partition_point(|&v| v < x);
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    assert!(x1 > x0, "xs must be strictly increasing");
    let t = (x - x0) / (x1 - x0);
    ys[idx - 1] * (1.0 - t) + ys[idx] * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun table values.
        assert!((erf(0.5) - 0.5204999).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-6);
    }

    #[test]
    fn q_function_reference_values() {
        assert!((q_function(1.0) - 0.158655).abs() < 1e-5);
        assert!((q_function(3.0) - 1.34990e-3).abs() < 1e-7);
        assert!((q_function(6.0) - 9.86588e-10).abs() < 1e-14);
    }

    #[test]
    fn inv_q_round_trip() {
        for &q in &[0.4, 0.1, 1e-3, 1e-6, 1e-10, 1e-15, 1e-18, 1e-30] {
            let x = inv_q(q);
            let back = ln_q_function(x);
            assert!(
                (back - q.ln()).abs() < 1e-8 * q.ln().abs(),
                "q={q}: x={x}, lnQ={back}, ln q={}",
                q.ln()
            );
        }
    }

    #[test]
    fn inv_q_known_points() {
        assert!(inv_q(0.5).abs() < 1e-12);
        assert!((inv_q(1.34990e-3) - 3.0).abs() < 1e-4);
        // WER = 1e-18 needs ~8.76 sigma of margin.
        let x = inv_q(1e-18);
        assert!(x > 8.7 && x < 8.8, "got {x}");
    }

    #[test]
    #[should_panic(expected = "inv_q requires")]
    fn inv_q_rejects_out_of_range() {
        let _ = inv_q(0.7);
    }

    #[test]
    fn ln_q_matches_q_in_moderate_range() {
        for x in [0.5, 1.0, 3.0, 7.0] {
            assert!((ln_q_function(x) - q_function(x).ln()).abs() < 1e-6);
        }
    }

    #[test]
    fn ln_q_is_finite_deep_in_tail() {
        let v = ln_q_function(40.0);
        assert!(v.is_finite());
        assert!(v < -750.0); // far below f64 underflow in linear domain
    }

    #[test]
    fn brent_finds_cubic_root() {
        let root = brent(|x| x * x * x - 2.0, 0.0, 2.0, 1e-12, 100).unwrap();
        assert!((root - 2.0f64.powf(1.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn brent_detects_unbracketed() {
        let err = brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, RootError::NotBracketed { .. }));
    }

    #[test]
    fn simpson_integrates_polynomial_exactly() {
        // Simpson is exact for cubics.
        let val = simpson(|x| x * x * x - x, 0.0, 2.0, 8);
        assert!((val - (4.0 - 2.0)).abs() < 1e-12);
    }

    #[test]
    fn lerp_table_interior_and_clamp() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 40.0];
        assert_eq!(lerp_table(&xs, &ys, 0.5), 5.0);
        assert_eq!(lerp_table(&xs, &ys, 1.5), 25.0);
        assert_eq!(lerp_table(&xs, &ys, -1.0), 0.0);
        assert_eq!(lerp_table(&xs, &ys, 9.0), 40.0);
    }
}
