//! Thread-count invariance of faultmem uncorrectable-error reporting.
//!
//! The fault-aware memory array degrades gracefully: uncorrectable read
//! patterns are *reported*, never panicked on. For that report to be
//! trustworthy in a supervised sweep it must also be reproducible — the
//! per-kernel uncorrectable manifest has to come out bit-identical whether
//! the batch ran on 1, 2 or 8 worker threads, through `run_many` or through
//! the supervised path.

use mss_exec::{ParallelConfig, SupervisorConfig};
use mss_fault::{FaultModel, FaultPlan};
use mss_gemsim::faultmem::FaultMemConfig;
use mss_gemsim::stats::SimReport;
use mss_gemsim::system::{System, SystemConfig};
use mss_gemsim::workload::Kernel;
use mss_vaet::ecc::EccScheme;

/// A platform whose memory array is stressed hard enough that weak ECC
/// leaves detected and uncorrectable residue in every report.
fn stressed_config() -> SystemConfig {
    let mut c = SystemConfig::big_little_default();
    c.sample_accesses_per_thread = 12_000;
    let mut model = FaultModel::none();
    model.write_fail_rate = 0.01;
    model.read_disturb_rate = 0.004;
    model.transient_flip_rate = 0.002;
    // Single-error-correcting code over long words: multi-bit patterns
    // escape correction routinely at these rates.
    c.fault = Some(FaultMemConfig::new(
        FaultPlan::new(1234, model).expect("valid plan"),
        EccScheme::bch(1, 512),
    ));
    c
}

fn kernels() -> Vec<Kernel> {
    vec![
        Kernel::bodytrack(),
        Kernel::streamcluster(),
        Kernel::fluidanimate(),
        Kernel::freqmine(),
    ]
}

/// One manifest line per kernel: every fault counter that feeds the
/// uncorrectable verdict, rendered exactly.
fn uncorrectable_manifest(reports: &[SimReport]) -> String {
    let mut out = String::new();
    for r in reports {
        let f = r.fault.expect("fault stats present under a fault config");
        out.push_str(&format!(
            "{} reads={} clean={} corrected={} detected={} uncorrectable={} \
             injected={} residual={} scrubbed={}\n",
            r.kernel,
            f.reads,
            f.reads_clean,
            f.reads_corrected,
            f.reads_detected,
            f.reads_uncorrectable,
            f.injected_bits,
            f.write_residual_bits,
            f.scrubbed_words,
        ));
    }
    out
}

#[test]
fn uncorrectable_manifest_is_thread_count_invariant() {
    let sys = System::new(stressed_config()).expect("valid system");
    let kernels = kernels();
    let run = |threads: usize| {
        let exec = ParallelConfig::serial().with_threads(threads);
        let reports = sys.run_many(&kernels, 42, &exec).expect("batch runs");
        uncorrectable_manifest(&reports)
    };
    let serial = run(1);
    // The stress rates must actually exercise the uncorrectable path,
    // otherwise this test pins nothing.
    assert!(
        serial.lines().any(|l| !l.contains("uncorrectable=0 ")),
        "stress config produced no uncorrectable reads:\n{serial}"
    );
    assert_eq!(serial, run(2), "manifest differs at 2 threads");
    assert_eq!(serial, run(8), "manifest differs at 8 threads");
}

#[test]
fn supervised_batch_reports_the_same_manifest() {
    let sys = System::new(stressed_config()).expect("valid system");
    let kernels = kernels();
    let plain = uncorrectable_manifest(
        &sys.run_many(&kernels, 42, &ParallelConfig::serial())
            .expect("batch runs"),
    );
    for threads in [1, 2, 8] {
        let exec = ParallelConfig::serial().with_threads(threads);
        let sweep = sys.run_many_supervised(&kernels, 42, &exec, &SupervisorConfig::disabled());
        assert!(sweep.is_complete(), "healthy sweep completes");
        let reports: Vec<SimReport> = sweep.into_results().expect("complete");
        assert_eq!(
            uncorrectable_manifest(&reports),
            plain,
            "supervised manifest differs at {threads} threads"
        );
    }
}
