//! Hot-loop parity: the optimized simulator (struct-of-arrays cache,
//! ring-buffer stream, chunked system loop) must be **bit-for-bit
//! identical** to the naive executable specification in
//! `mss_gemsim::reference` whenever the epoch-skip fast path is off (the
//! default). Any drift — a reordered RNG draw, a different f64 accumulation
//! order, an off-by-one in LRU rank math — fails these tests.

use mss_exec::ParallelConfig;
use mss_gemsim::cache::{Cache, CacheConfig};
use mss_gemsim::reference::{self, NaiveCache, NaiveStream};
use mss_gemsim::system::{Placement, System, SystemConfig};
use mss_gemsim::workload::{AccessStream, Kernel};
use mss_units::rng::{Rng, Xoshiro256PlusPlus};

/// Small sampling cap: parity is a per-access property, so a few thousand
/// references per thread exercise every code path (misses, write-backs,
/// prefetches, row hits) while keeping the debug-profile suite fast.
const SAMPLE_CAP: u64 = 6_000;

fn parity_config() -> SystemConfig {
    let mut c = SystemConfig::big_little_default();
    c.sample_accesses_per_thread = SAMPLE_CAP;
    c
}

#[test]
fn stream_matches_naive_stream() {
    for kernel in [Kernel::bodytrack(), Kernel::streamcluster()] {
        for tid in [0u32, 5] {
            let mut fast = AccessStream::new(&kernel, tid, 42);
            let mut naive = NaiveStream::new(&kernel, tid, 42);
            // Run far past the 4096-entry history capacity so the ring
            // wrap-around is compared against the Vec's remove(0) regime.
            for i in 0..10_000 {
                assert_eq!(
                    fast.next_access(),
                    naive.next_access(),
                    "{}: tid {tid} diverged at access {i}",
                    kernel.name
                );
            }
        }
    }
}

#[test]
fn every_kernel_and_placement_matches_the_reference() {
    let config = parity_config();
    let sys = System::new(config.clone()).unwrap();
    let placements = [
        Placement::AllClusters,
        Placement::Cluster("big".into()),
        Placement::Cluster("LITTLE".into()),
    ];
    for (i, kernel) in Kernel::parsec_extended().iter().enumerate() {
        let placement = &placements[i % placements.len()];
        let fast = sys.run_placed(kernel, 2024, placement).unwrap();
        let naive = reference::run_placed(&config, kernel, 2024, placement).unwrap();
        assert_eq!(fast, naive, "{} @ {placement:?}", kernel.name);
    }
}

#[test]
fn parity_holds_with_prefetch_and_fault_model() {
    use mss_fault::{FaultModel, FaultPlan};
    use mss_gemsim::faultmem::FaultMemConfig;
    use mss_vaet::ecc::EccScheme;
    let mut config = parity_config();
    config.l2_next_line_prefetch = true;
    let mut m = FaultModel::none();
    m.write_fail_rate = 0.002;
    m.read_disturb_rate = 0.0005;
    config.fault = Some(FaultMemConfig::new(
        FaultPlan::new(77, m).unwrap(),
        EccScheme::bch(2, 512),
    ));
    let sys = System::new(config.clone()).unwrap();
    let k = Kernel::streamcluster();
    let fast = sys.run(&k, 7).unwrap();
    let naive = reference::run_placed(&config, &k, 7, &Placement::AllClusters).unwrap();
    assert_eq!(fast, naive);
    assert!(
        fast.fault.is_some(),
        "the fault model must have been active"
    );
}

#[test]
fn two_cluster_row_buffer_hits_match_the_reference() {
    // Regression for the dram_row_hits_scaled accounting bug: the hit
    // counter is cumulative across clusters, but the old code assigned the
    // *total* scaled by the *last* cluster's factor instead of accumulating
    // per-cluster deltas at per-cluster scales. With two active clusters of
    // different weights (big/LITTLE scale differently) the reference and
    // the old formula disagree; bit-equality here pins the fix.
    let mut config = parity_config();
    config.row_buffer = Some(mss_gemsim::dram::RowBufferConfig::lpddr_default());
    let sys = System::new(config.clone()).unwrap();
    let k = Kernel::streamcluster();
    let fast = sys.run(&k, 6).unwrap();
    let naive = reference::run_placed(&config, &k, 6, &Placement::AllClusters).unwrap();
    assert_eq!(fast, naive);
    assert!(
        fast.dram_row_hits > 0,
        "streaming kernel must produce open-row hits"
    );
    // Both clusters saw DRAM traffic, so both contributed deltas.
    assert!(fast.dram_reads > 0);
}

#[test]
fn run_many_is_bit_identical_across_thread_counts() {
    let config = parity_config();
    let sys = System::new(config.clone()).unwrap();
    let kernels = Kernel::parsec_extended();
    let reference: Vec<_> = kernels
        .iter()
        .map(|k| reference::run_placed(&config, k, 9, &Placement::AllClusters).unwrap())
        .collect();
    for threads in [1usize, 2, 8] {
        let batch = sys
            .run_many(&kernels, 9, &ParallelConfig::serial().with_threads(threads))
            .unwrap();
        assert_eq!(batch, reference, "thread count {threads} changed results");
    }
}

/// One randomized op against both cache implementations.
#[derive(Debug, Clone, Copy)]
enum Op {
    Access { addr: u64, write: bool },
    Prefetch { addr: u64 },
    Flush,
}

#[test]
fn lru_cache_property_matches_naive_on_random_streams() {
    // Exhaustive-ish equivalence: every outcome (hit/writeback/victim) and
    // the counters must agree after every single operation, across
    // direct-mapped, 2-way and 4-way shapes, under a mix of demand
    // accesses, prefetches and flushes.
    for (assoc, capacity, seed) in [(1u32, 512u64, 1u64), (2, 1024, 2), (4, 4096, 3)] {
        let cfg = CacheConfig {
            name: format!("prop-{assoc}w"),
            capacity,
            associativity: assoc,
            line_bytes: 64,
            read_latency: 1e-9,
            write_latency: 1e-9,
            read_energy: 1e-12,
            write_energy: 1e-12,
            leakage_power: 1e-3,
        };
        let mut fast = Cache::new(cfg.clone()).unwrap();
        let mut naive = NaiveCache::new(cfg).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for step in 0..30_000 {
            // Address space ~4x the capacity: plenty of conflicts.
            let addr = rng.gen_range_u64(0, 4 * capacity);
            let op = if rng.gen_bool(0.02) {
                Op::Flush
            } else if rng.gen_bool(0.15) {
                Op::Prefetch { addr }
            } else {
                Op::Access {
                    addr,
                    write: rng.gen_bool(0.3),
                }
            };
            match op {
                Op::Access { addr, write } => {
                    let a = fast.access(addr, write);
                    let b = naive.access(addr, write);
                    assert_eq!(a, b, "{assoc}-way step {step}: access {addr:#x}");
                }
                Op::Prefetch { addr } => {
                    let a = fast.prefetch(addr);
                    let b = naive.prefetch(addr);
                    assert_eq!(a, b, "{assoc}-way step {step}: prefetch {addr:#x}");
                }
                Op::Flush => {
                    assert_eq!(fast.flush(), naive.flush(), "{assoc}-way step {step}");
                }
            }
            assert_eq!(fast.stats(), naive.stats(), "{assoc}-way step {step}");
        }
        // The streams must have actually exercised the interesting paths.
        assert!(fast.stats().writebacks > 0, "{assoc}-way: no writebacks");
        assert!(fast.stats().hits() > 0, "{assoc}-way: no hits");
    }
}
