//! Satellite contract for the telemetry plane: `gemsim` surfaces its
//! extrapolation state — `extrapolated_accesses` and epoch-skip
//! engagement — as gauges on the global registry, and an *exact-mode* run
//! (no epoch skip) emits none of them. One process, one `#[test]`: the
//! global registry is initialised exactly once.

use mss_gemsim::system::{EpochSkipConfig, System, SystemConfig};
use mss_gemsim::workload::Kernel;
use mss_obs::Mode;

#[test]
fn epoch_skip_state_is_gauged_and_exact_runs_emit_none() {
    assert!(
        mss_obs::init_with_mode(Mode::Metrics),
        "this test must own registry initialisation"
    );

    // Exact mode first: no extrapolation, so none of the epoch-skip
    // telemetry may appear.
    let mut exact_cfg = SystemConfig::big_little_default();
    exact_cfg.sample_accesses_per_thread = 60_000;
    let k = Kernel::streamcluster();
    let exact = System::new(exact_cfg.clone()).unwrap().run(&k, 2).unwrap();
    assert_eq!(exact.extrapolated_accesses, 0);
    assert_eq!(mss_obs::counter("gemsim.epoch_skip.engaged"), 0);
    assert_eq!(mss_obs::counter("gemsim.extrapolated_accesses"), 0);
    assert_eq!(mss_obs::gauge("gemsim.extrapolated_accesses"), None);
    assert_eq!(mss_obs::gauge("gemsim.simulated_fraction"), None);

    // Now an epoch-skip run on a steady kernel: the gauges must appear and
    // agree with the report.
    let mut skip_cfg = exact_cfg;
    skip_cfg.epoch_skip = Some(EpochSkipConfig {
        window: 2048,
        converge_windows: 3,
        tolerance: 0.10,
    });
    let fast = System::new(skip_cfg).unwrap().run(&k, 2).unwrap();
    assert!(
        fast.extrapolated_accesses > 0,
        "steady kernel must converge"
    );
    assert_eq!(mss_obs::counter("gemsim.epoch_skip.engaged"), 1);
    assert_eq!(
        mss_obs::counter("gemsim.extrapolated_accesses"),
        fast.extrapolated_accesses
    );
    assert_eq!(
        mss_obs::gauge("gemsim.extrapolated_accesses"),
        Some(fast.extrapolated_accesses as f64)
    );
    let frac = mss_obs::gauge("gemsim.simulated_fraction").expect("fraction gauge");
    assert!(frac > 0.0 && frac < 1.0, "{frac}");
    assert_eq!(frac, fast.simulated_fraction);

    // And the gauges land on the registry's NDJSON as schema-v3 lines.
    let ndjson = mss_obs::report_ndjson();
    assert!(
        ndjson.contains("{\"type\":\"gauge\",\"name\":\"gemsim.extrapolated_accesses\""),
        "gauge line missing from report"
    );
}
