//! Proof that the gemsim hot path never allocates: a [`Cache`] is exactly
//! the allocations made in `Cache::new`, and the access/prefetch/flush and
//! stream-synthesis paths are allocation-free after construction. This pins
//! the fix for the old `Cache::new` bug where a capacity-carrying `Vec` was
//! cloned per set (losing the reservation and re-growing in the hot loop).
//!
//! Own integration-test binary: the counting `#[global_allocator]` is
//! process-global, so this file must stay at ONE `#[test]`. The count
//! itself is per-thread (const-initialized thread-local, so reading it
//! inside the allocator never allocates or recurses): the libtest harness
//! thread allocates concurrently with the measured storms, and a
//! process-global counter would pick that noise up.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Counts one allocation on the current thread; silently skipped during
/// thread teardown when the TLS slot is already destroyed.
fn bump() {
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

#[test]
fn hot_paths_never_allocate() {
    use mss_gemsim::cache::{Cache, CacheConfig};
    use mss_gemsim::workload::{AccessStream, Kernel, MemoryAccess};
    use mss_units::rng::{Rng, Xoshiro256PlusPlus};

    let cfg = CacheConfig {
        name: "allocs.L2".into(),
        capacity: 1 << 20,
        associativity: 16,
        line_bytes: 64,
        read_latency: 1e-9,
        write_latency: 1e-9,
        read_energy: 1e-12,
        write_energy: 1e-12,
        leakage_power: 1e-3,
    };
    // Construction: the name clone into the struct plus the four flat
    // slabs (tags/dirty/rank/live) — a small constant, NOT per-set. The
    // old representation cloned a capacity-carrying Vec per set, which
    // dropped the reservation and re-grew inside the hot loop.
    let before_new = allocs();
    let mut cache = Cache::new(cfg).unwrap();
    let ctor_allocs = before_new.abs_diff(allocs());
    assert!(
        ctor_allocs <= 8,
        "Cache::new made {ctor_allocs} allocations; want a small constant \
         (4 slabs + config moves), not one per set"
    );

    // Demand/prefetch/flush storm: zero allocations allowed.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
    let before_storm = allocs();
    for _ in 0..200_000 {
        let addr = rng.gen_range_u64(0, 8 << 20);
        cache.access(addr, rng.gen_bool(0.3));
        if rng.gen_bool(0.05) {
            cache.prefetch(addr + 64);
        }
    }
    cache.flush();
    assert_eq!(
        allocs() - before_storm,
        0,
        "the access/prefetch/flush path must never allocate"
    );

    // Stream synthesis storm: after AccessStream::new, batch fills reuse
    // the caller's buffer and the internal ring — zero allocations.
    let kernel = Kernel::streamcluster();
    let mut stream = AccessStream::new(&kernel, 0, 7);
    let mut buf = vec![
        MemoryAccess {
            address: 0,
            write: false
        };
        1024
    ];
    let before_fill = allocs();
    for _ in 0..100 {
        stream.fill(&mut buf);
    }
    assert_eq!(
        allocs() - before_fill,
        0,
        "AccessStream::fill must never allocate"
    );
    // Keep the cache's work observable so the storm is not optimized out.
    assert!(cache.stats().accesses() >= 200_000);
}
