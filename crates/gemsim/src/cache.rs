//! Set-associative LRU cache simulation with full activity counters.

use crate::GemsimError;

/// Static configuration of one cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Display name ("big.L2", "LITTLE.L1D", ...).
    pub name: String,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Read-hit latency, seconds.
    pub read_latency: f64,
    /// Write-hit latency, seconds.
    pub write_latency: f64,
    /// Energy per read access, joules.
    pub read_energy: f64,
    /// Energy per write access, joules.
    pub write_energy: f64,
    /// Static leakage, watts.
    pub leakage_power: f64,
}

impl mss_pipe::StableHash for CacheConfig {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_str(&self.name);
        h.write_u64(self.capacity);
        h.write_u32(self.associativity);
        h.write_u32(self.line_bytes);
        h.write_f64(self.read_latency);
        h.write_f64(self.write_latency);
        h.write_f64(self.read_energy);
        h.write_f64(self.write_energy);
        h.write_f64(self.leakage_power);
    }
}

impl CacheConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`GemsimError::InvalidCache`] when dimensions are inconsistent.
    pub fn validate(&self) -> Result<(), GemsimError> {
        let fail = |reason: String| {
            Err(GemsimError::InvalidCache {
                name: self.name.clone(),
                reason,
            })
        };
        if self.capacity == 0 || self.associativity == 0 || self.line_bytes == 0 {
            return fail("dimensions must be non-zero".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return fail(format!(
                "line size {} must be a power of two",
                self.line_bytes
            ));
        }
        let ways_bytes = self.associativity as u64 * self.line_bytes as u64;
        if !self.capacity.is_multiple_of(ways_bytes) {
            return fail("capacity not divisible by ways x line size".into());
        }
        let sets = self.capacity / ways_bytes;
        if !sets.is_power_of_two() {
            return fail(format!("{sets} sets is not a power of two"));
        }
        if self.associativity > u32::from(u16::MAX) {
            // The struct-of-arrays store keeps LRU ranks and per-set
            // occupancy in u16.
            return fail(format!(
                "associativity {} exceeds the {}-way limit",
                self.associativity,
                u16::MAX
            ));
        }
        if self.read_latency < 0.0 || self.write_latency < 0.0 {
            return fail("latencies must be non-negative".into());
        }
        Ok(())
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity / (self.associativity as u64 * self.line_bytes as u64)
    }
}

/// Activity counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Dirty evictions (write-backs to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits()
    }

    /// Miss ratio in `[0, 1]` (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Hit ratio in `[0, 1]` (1 when never accessed, so that
    /// `hit_ratio() + miss_ratio() == 1` always holds).
    pub fn hit_ratio(&self) -> f64 {
        1.0 - self.miss_ratio()
    }

    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_hits += other.read_hits;
        self.write_hits += other.write_hits;
        self.writebacks += other.writebacks;
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The access hit in this cache.
    pub hit: bool,
    /// A dirty line was evicted and must be written back below.
    pub writeback: bool,
    /// Line-aligned byte address of the line this access displaced (dirty
    /// *or* clean); `None` when nothing was evicted. `writeback` implies
    /// `victim.is_some()`.
    pub victim: Option<u64>,
}

/// Result of a prefetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchOutcome {
    /// The line was not present and has been allocated (traffic below).
    pub allocated: bool,
    /// A dirty victim must be written back below.
    pub writeback: bool,
    /// Line-aligned byte address of the displaced line, as in
    /// [`AccessOutcome::victim`].
    pub victim: Option<u64>,
}

/// One LRU set-associative cache (write-back, write-allocate).
///
/// Storage is struct-of-arrays: flat `tags` / `dirty` / `rank` slabs indexed
/// by `set * associativity + way`, plus a per-set occupancy count. The LRU
/// order lives in `rank` (0 = MRU, associativity − 1 = LRU), so promoting a
/// line is a handful of `u16` bumps instead of the `Vec::remove`/`insert`
/// element shifting of the previous representation, and the whole cache is
/// exactly four allocations made in [`Cache::new`] — the access path never
/// allocates.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Line tags, `[set][way]` flattened; valid for `way < live[set]`.
    tags: Box<[u64]>,
    /// Dirty bits, same indexing as `tags`.
    dirty: Box<[bool]>,
    /// LRU ranks (0 = most recently used), same indexing as `tags`; the
    /// valid ranks of a set are always a permutation of `0..live[set]`.
    rank: Box<[u16]>,
    /// Occupied ways per set (ways fill from 0; only [`Cache::flush`]
    /// resets them).
    live: Box<[u16]>,
    stats: CacheStats,
    set_mask: u64,
    set_bits: u32,
    line_shift: u32,
    assoc: usize,
}

impl Cache {
    /// Builds (and validates) a cache.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheConfig::validate`].
    pub fn new(config: CacheConfig) -> Result<Self, GemsimError> {
        config.validate()?;
        let sets = config.sets();
        let assoc = config.associativity as usize;
        let slots = sets as usize * assoc;
        Ok(Self {
            set_mask: sets - 1,
            set_bits: (sets - 1).count_ones(),
            line_shift: config.line_bytes.trailing_zeros(),
            tags: vec![0; slots].into_boxed_slice(),
            dirty: vec![false; slots].into_boxed_slice(),
            rank: vec![0; slots].into_boxed_slice(),
            live: vec![0; sets as usize].into_boxed_slice(),
            stats: CacheStats::default(),
            assoc,
            config,
        })
    }

    /// The static configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Activity counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears counters (but not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Line-aligned byte address of the line currently held in `slot`.
    fn slot_address(&self, set_idx: usize, slot: usize) -> u64 {
        ((self.tags[slot] << self.set_bits) | set_idx as u64) << self.line_shift
    }

    /// Performs one access; `write` marks stores.
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_bits;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let base = set_idx * self.assoc;
        let n = usize::from(self.live[set_idx]);
        // Branchless probe: tags are unique within a set, so folding the
        // matching way without an early exit is equivalent to `position`.
        let mut hit = usize::MAX;
        for (way, &t) in self.tags[base..base + n].iter().enumerate() {
            if t == tag {
                hit = way;
            }
        }
        if hit < n {
            // Hit: promote to MRU by ageing every younger line one step.
            let r = self.rank[base + hit];
            for x in &mut self.rank[base..base + n] {
                *x += u16::from(*x < r);
            }
            self.rank[base + hit] = 0;
            self.dirty[base + hit] |= write;
            if write {
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            return AccessOutcome {
                hit: true,
                writeback: false,
                victim: None,
            };
        }
        // Miss: allocate (write-allocate policy), evicting LRU if full.
        let full = n == self.assoc;
        let (slot, victim, writeback) = if full {
            let lru = (self.assoc - 1) as u16;
            let mut v = base;
            for (i, &r) in self.rank[base..base + n].iter().enumerate() {
                if r == lru {
                    v = base + i;
                }
            }
            let wb = self.dirty[v];
            if wb {
                self.stats.writebacks += 1;
            }
            (v, Some(self.slot_address(set_idx, v)), wb)
        } else {
            self.live[set_idx] = (n + 1) as u16;
            (base + n, None, false)
        };
        // Age every survivor; the incoming line becomes MRU.
        let aged = if full {
            (self.assoc - 1) as u16
        } else {
            n as u16
        };
        for x in &mut self.rank[base..base + n] {
            *x += u16::from(*x < aged);
        }
        self.tags[slot] = tag;
        self.dirty[slot] = write;
        self.rank[slot] = 0;
        AccessOutcome {
            hit: false,
            writeback,
            victim,
        }
    }

    /// Prefetches a line: allocates it clean if absent *without* promoting
    /// it on a hit and without touching the demand counters.
    pub fn prefetch(&mut self, addr: u64) -> PrefetchOutcome {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_bits;
        let base = set_idx * self.assoc;
        let n = usize::from(self.live[set_idx]);
        let mut present = false;
        for &t in &self.tags[base..base + n] {
            present |= t == tag;
        }
        if present {
            return PrefetchOutcome {
                allocated: false,
                writeback: false,
                victim: None,
            };
        }
        let full = n == self.assoc;
        let (slot, victim, writeback) = if full {
            let lru = (self.assoc - 1) as u16;
            let mut v = base;
            for (i, &r) in self.rank[base..base + n].iter().enumerate() {
                if r == lru {
                    v = base + i;
                }
            }
            let wb = self.dirty[v];
            if wb {
                self.stats.writebacks += 1;
            }
            (v, Some(self.slot_address(set_idx, v)), wb)
        } else {
            self.live[set_idx] = (n + 1) as u16;
            (base + n, None, false)
        };
        // Insert at LRU+1 (conservative): prefetched lines should not evict
        // the hot working set if they are never used. In rank terms the new
        // line takes the second-worst rank, demoting that rank's previous
        // holder to LRU; every other rank is untouched.
        let survivors = if full { self.assoc - 1 } else { n };
        if survivors == 0 {
            self.rank[slot] = 0;
        } else {
            let demoted = (survivors - 1) as u16;
            for x in &mut self.rank[base..base + n] {
                *x += u16::from(*x == demoted);
            }
            self.rank[slot] = demoted;
        }
        self.tags[slot] = tag;
        self.dirty[slot] = false;
        PrefetchOutcome {
            allocated: true,
            writeback,
            victim,
        }
    }

    /// Invalidates everything (contents, not counters), returning the
    /// number of dirty lines dropped.
    ///
    /// Policy: flushed dirty lines are **not** added to
    /// [`CacheStats::writebacks`] — that counter tracks capacity/conflict
    /// evictions observed by the access path. A caller modelling an explicit
    /// flush (say, a power-collapse of the cluster) charges the returned
    /// count as write-back traffic itself.
    pub fn flush(&mut self) -> u64 {
        let mut dirty_lines = 0u64;
        for (set_idx, live) in self.live.iter_mut().enumerate() {
            let base = set_idx * self.assoc;
            for way in 0..usize::from(*live) {
                dirty_lines += u64::from(self.dirty[base + way]);
            }
            *live = 0;
        }
        dirty_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CacheConfig {
        CacheConfig {
            name: "test".into(),
            capacity: 1024,
            associativity: 2,
            line_bytes: 64,
            read_latency: 1e-9,
            write_latency: 1e-9,
            read_energy: 1e-12,
            write_energy: 1e-12,
            leakage_power: 1e-3,
        }
    }

    #[test]
    fn zero_access_ratios_are_defined() {
        // A never-touched cache must not divide by zero: by convention it
        // misses nothing and hits everything it was (never) asked.
        let s = CacheStats::default();
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 1.0);
    }

    #[test]
    fn hit_and_miss_ratios_are_complementary() {
        let s = CacheStats {
            reads: 6,
            writes: 4,
            read_hits: 3,
            write_hits: 1,
            writebacks: 0,
        };
        assert!((s.miss_ratio() - 0.6).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.4).abs() < 1e-12);
        assert!((s.hit_ratio() + s.miss_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn config_validation() {
        assert!(small_config().validate().is_ok());
        let mut bad = small_config();
        bad.line_bytes = 48;
        assert!(bad.validate().is_err());
        let mut bad = small_config();
        bad.associativity = 0;
        assert!(bad.validate().is_err());
        let mut bad = small_config();
        bad.capacity = 1000;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(small_config()).unwrap();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1010, false).hit); // same 64 B line
        assert_eq!(c.stats().reads, 3);
        assert_eq!(c.stats().read_hits, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(small_config()).unwrap();
        // 8 sets; lines mapping to set 0: line numbers 0, 8, 16 (addr = line*64).
        let a = 0u64;
        let b = 8 * 64;
        let d = 16 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is MRU now
        c.access(d, false); // evicts b (LRU)
        assert!(c.access(a, false).hit);
        assert!(!c.access(b, false).hit, "b must have been evicted");
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = Cache::new(small_config()).unwrap();
        let a = 0u64;
        let b = 8 * 64;
        let d = 16 * 64;
        c.access(a, true); // dirty
        c.access(b, false);
        let out = c.access(d, false); // evicts a (dirty)
        assert!(out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn counters_are_consistent() {
        let mut c = Cache::new(small_config()).unwrap();
        use mss_units::rng::{Rng, Xoshiro256PlusPlus};
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..10_000 {
            let addr = rng.gen_range_u64(0, 64 * 1024);
            c.access(addr, rng.gen_bool(0.3));
        }
        let s = c.stats();
        assert_eq!(s.accesses(), 10_000);
        assert_eq!(s.hits() + s.misses(), s.accesses());
        assert!(s.miss_ratio() > 0.0 && s.miss_ratio() < 1.0);
    }

    #[test]
    fn bigger_cache_misses_less() {
        use mss_units::rng::{Rng, Xoshiro256PlusPlus};
        let run = |capacity: u64| {
            let mut cfg = small_config();
            cfg.capacity = capacity;
            let mut c = Cache::new(cfg).unwrap();
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
            for _ in 0..20_000 {
                let addr = rng.gen_range_u64(0, 32 * 1024);
                c.access(addr, false);
            }
            c.stats().miss_ratio()
        };
        assert!(run(16 * 1024) < run(1024));
    }

    #[test]
    fn prefetch_allocates_without_counting_demand() {
        let mut c = Cache::new(small_config()).unwrap();
        let pf = c.prefetch(0x2000);
        assert!(pf.allocated && !pf.writeback);
        assert_eq!(c.stats().accesses(), 0);
        // The prefetched line now hits on demand.
        assert!(c.access(0x2000, false).hit);
        // Prefetching a present line is a no-op.
        assert!(!c.prefetch(0x2000).allocated);
    }

    #[test]
    fn prefetch_evicts_cold_not_hot() {
        let mut c = Cache::new(small_config()).unwrap();
        // 2-way set: hot line at MRU, cold at LRU.
        let hot = 0u64;
        let cold = 8 * 64;
        c.access(cold, false);
        c.access(hot, false);
        // Prefetch a third line into the same set: must evict... it inserts
        // above LRU, so the next *demand* miss evicts the cold line first,
        // keeping the hot MRU line resident.
        let pf_line = 16 * 64;
        assert!(c.prefetch(pf_line).allocated);
        assert!(c.access(hot, false).hit, "hot line must survive prefetch");
    }

    #[test]
    fn flush_empties_contents_only() {
        let mut c = Cache::new(small_config()).unwrap();
        c.access(0, false);
        c.access(0, false);
        let before = *c.stats();
        c.flush();
        assert_eq!(*c.stats(), before);
        assert!(!c.access(0, false).hit);
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = Cache::new(small_config()).unwrap();
        c.access(0, true); // dirty, set 0
        c.access(64, false); // clean, set 1
        c.access(2 * 64, true); // dirty, set 2
        let before = *c.stats();
        assert_eq!(c.flush(), 2, "two dirty lines were resident");
        // The count is returned, never folded into the counters.
        assert_eq!(*c.stats(), before);
        assert_eq!(c.flush(), 0, "an empty cache has nothing dirty");
    }

    #[test]
    fn eviction_reports_real_victim_address() {
        let mut c = Cache::new(small_config()).unwrap();
        // 8 sets, 2 ways; lines 0, 8, 16 all map to set 0.
        let a = 0u64;
        let b = 8 * 64;
        let d = 16 * 64;
        assert_eq!(c.access(a, true).victim, None);
        assert_eq!(c.access(b, false).victim, None);
        // Hits never evict.
        assert_eq!(c.access(b, false).victim, None);
        // The miss evicts LRU line `a` and must name it, dirty and all.
        let out = c.access(d, false);
        assert!(!out.hit && out.writeback);
        assert_eq!(out.victim, Some(a));
        // Offsets within a line do not leak into the victim address.
        let out = c.access(b + 17, false); // hit, b promoted at d's expense? no: hit
        assert!(out.hit);
        let out = c.access(a + 8, true); // miss, evicts clean d
        assert!(!out.writeback, "d was clean");
        assert_eq!(out.victim, Some(d), "victim is line-aligned");
    }

    #[test]
    fn prefetch_reports_real_victim_address() {
        let mut c = Cache::new(small_config()).unwrap();
        let a = 0u64;
        let b = 8 * 64;
        c.access(a, true);
        c.access(b, false); // b is MRU, a is LRU (and dirty)
        let pf = c.prefetch(16 * 64);
        assert!(pf.allocated && pf.writeback);
        assert_eq!(pf.victim, Some(a));
        // Allocating into a non-full set displaces nothing.
        let pf = c.prefetch(3 * 64);
        assert!(pf.allocated && !pf.writeback);
        assert_eq!(pf.victim, None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            reads: 1,
            writes: 2,
            read_hits: 1,
            write_hits: 0,
            writebacks: 1,
        };
        a.merge(&a.clone());
        assert_eq!(a.reads, 2);
        assert_eq!(a.writes, 4);
        assert_eq!(a.writebacks, 2);
        // 6 accesses, 2 hits -> 4 misses.
        assert_eq!(a.misses(), 4);
    }
}
