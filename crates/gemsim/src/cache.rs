//! Set-associative LRU cache simulation with full activity counters.

use crate::GemsimError;

/// Static configuration of one cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Display name ("big.L2", "LITTLE.L1D", ...).
    pub name: String,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Read-hit latency, seconds.
    pub read_latency: f64,
    /// Write-hit latency, seconds.
    pub write_latency: f64,
    /// Energy per read access, joules.
    pub read_energy: f64,
    /// Energy per write access, joules.
    pub write_energy: f64,
    /// Static leakage, watts.
    pub leakage_power: f64,
}

impl mss_pipe::StableHash for CacheConfig {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_str(&self.name);
        h.write_u64(self.capacity);
        h.write_u32(self.associativity);
        h.write_u32(self.line_bytes);
        h.write_f64(self.read_latency);
        h.write_f64(self.write_latency);
        h.write_f64(self.read_energy);
        h.write_f64(self.write_energy);
        h.write_f64(self.leakage_power);
    }
}

impl CacheConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`GemsimError::InvalidCache`] when dimensions are inconsistent.
    pub fn validate(&self) -> Result<(), GemsimError> {
        let fail = |reason: String| {
            Err(GemsimError::InvalidCache {
                name: self.name.clone(),
                reason,
            })
        };
        if self.capacity == 0 || self.associativity == 0 || self.line_bytes == 0 {
            return fail("dimensions must be non-zero".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return fail(format!(
                "line size {} must be a power of two",
                self.line_bytes
            ));
        }
        let ways_bytes = self.associativity as u64 * self.line_bytes as u64;
        if !self.capacity.is_multiple_of(ways_bytes) {
            return fail("capacity not divisible by ways x line size".into());
        }
        let sets = self.capacity / ways_bytes;
        if !sets.is_power_of_two() {
            return fail(format!("{sets} sets is not a power of two"));
        }
        if self.read_latency < 0.0 || self.write_latency < 0.0 {
            return fail("latencies must be non-negative".into());
        }
        Ok(())
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity / (self.associativity as u64 * self.line_bytes as u64)
    }
}

/// Activity counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Dirty evictions (write-backs to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits()
    }

    /// Miss ratio in `[0, 1]` (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Hit ratio in `[0, 1]` (1 when never accessed, so that
    /// `hit_ratio() + miss_ratio() == 1` always holds).
    pub fn hit_ratio(&self) -> f64 {
        1.0 - self.miss_ratio()
    }

    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_hits += other.read_hits;
        self.write_hits += other.write_hits;
        self.writebacks += other.writebacks;
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The access hit in this cache.
    pub hit: bool,
    /// A dirty line was evicted and must be written back below.
    pub writeback: bool,
}

/// Result of a prefetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchOutcome {
    /// The line was not present and has been allocated (traffic below).
    pub allocated: bool,
    /// A dirty victim must be written back below.
    pub writeback: bool,
}

/// One LRU set-associative cache (write-back, write-allocate).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: (tag, dirty), most recently used last.
    sets: Vec<Vec<(u64, bool)>>,
    stats: CacheStats,
    set_mask: u64,
    line_shift: u32,
}

impl Cache {
    /// Builds (and validates) a cache.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheConfig::validate`].
    pub fn new(config: CacheConfig) -> Result<Self, GemsimError> {
        config.validate()?;
        let sets = config.sets();
        Ok(Self {
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            sets: vec![Vec::with_capacity(config.associativity as usize); sets as usize],
            stats: CacheStats::default(),
            config,
        })
    }

    /// The static configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Activity counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears counters (but not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Performs one access; `write` marks stores.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|(t, _)| *t == tag) {
            // Hit: move to MRU, possibly mark dirty.
            let (t, dirty) = set.remove(pos);
            set.push((t, dirty || write));
            if write {
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            return AccessOutcome {
                hit: true,
                writeback: false,
            };
        }
        // Miss: allocate (write-allocate policy), evicting LRU if full.
        let mut writeback = false;
        if set.len() == self.config.associativity as usize {
            let (_, dirty) = set.remove(0);
            if dirty {
                writeback = true;
                self.stats.writebacks += 1;
            }
        }
        set.push((tag, write));
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Prefetches a line: allocates it clean if absent *without* promoting
    /// it on a hit and without touching the demand counters.
    pub fn prefetch(&mut self, addr: u64) -> PrefetchOutcome {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let set = &mut self.sets[set_idx];
        if set.iter().any(|(t, _)| *t == tag) {
            return PrefetchOutcome {
                allocated: false,
                writeback: false,
            };
        }
        let mut writeback = false;
        if set.len() == self.config.associativity as usize {
            let (_, dirty) = set.remove(0);
            if dirty {
                writeback = true;
                self.stats.writebacks += 1;
            }
        }
        // Insert at LRU+1 (conservative): prefetched lines should not evict
        // the hot working set if they are never used.
        let pos = set.len().min(1);
        set.insert(pos, (tag, false));
        PrefetchOutcome {
            allocated: true,
            writeback,
        }
    }

    /// Invalidates everything (contents and nothing else).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CacheConfig {
        CacheConfig {
            name: "test".into(),
            capacity: 1024,
            associativity: 2,
            line_bytes: 64,
            read_latency: 1e-9,
            write_latency: 1e-9,
            read_energy: 1e-12,
            write_energy: 1e-12,
            leakage_power: 1e-3,
        }
    }

    #[test]
    fn zero_access_ratios_are_defined() {
        // A never-touched cache must not divide by zero: by convention it
        // misses nothing and hits everything it was (never) asked.
        let s = CacheStats::default();
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 1.0);
    }

    #[test]
    fn hit_and_miss_ratios_are_complementary() {
        let s = CacheStats {
            reads: 6,
            writes: 4,
            read_hits: 3,
            write_hits: 1,
            writebacks: 0,
        };
        assert!((s.miss_ratio() - 0.6).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.4).abs() < 1e-12);
        assert!((s.hit_ratio() + s.miss_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn config_validation() {
        assert!(small_config().validate().is_ok());
        let mut bad = small_config();
        bad.line_bytes = 48;
        assert!(bad.validate().is_err());
        let mut bad = small_config();
        bad.associativity = 0;
        assert!(bad.validate().is_err());
        let mut bad = small_config();
        bad.capacity = 1000;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(small_config()).unwrap();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1010, false).hit); // same 64 B line
        assert_eq!(c.stats().reads, 3);
        assert_eq!(c.stats().read_hits, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(small_config()).unwrap();
        // 8 sets; lines mapping to set 0: line numbers 0, 8, 16 (addr = line*64).
        let a = 0u64;
        let b = 8 * 64;
        let d = 16 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is MRU now
        c.access(d, false); // evicts b (LRU)
        assert!(c.access(a, false).hit);
        assert!(!c.access(b, false).hit, "b must have been evicted");
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = Cache::new(small_config()).unwrap();
        let a = 0u64;
        let b = 8 * 64;
        let d = 16 * 64;
        c.access(a, true); // dirty
        c.access(b, false);
        let out = c.access(d, false); // evicts a (dirty)
        assert!(out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn counters_are_consistent() {
        let mut c = Cache::new(small_config()).unwrap();
        use mss_units::rng::{Rng, Xoshiro256PlusPlus};
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..10_000 {
            let addr = rng.gen_range_u64(0, 64 * 1024);
            c.access(addr, rng.gen_bool(0.3));
        }
        let s = c.stats();
        assert_eq!(s.accesses(), 10_000);
        assert_eq!(s.hits() + s.misses(), s.accesses());
        assert!(s.miss_ratio() > 0.0 && s.miss_ratio() < 1.0);
    }

    #[test]
    fn bigger_cache_misses_less() {
        use mss_units::rng::{Rng, Xoshiro256PlusPlus};
        let run = |capacity: u64| {
            let mut cfg = small_config();
            cfg.capacity = capacity;
            let mut c = Cache::new(cfg).unwrap();
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
            for _ in 0..20_000 {
                let addr = rng.gen_range_u64(0, 32 * 1024);
                c.access(addr, false);
            }
            c.stats().miss_ratio()
        };
        assert!(run(16 * 1024) < run(1024));
    }

    #[test]
    fn prefetch_allocates_without_counting_demand() {
        let mut c = Cache::new(small_config()).unwrap();
        let pf = c.prefetch(0x2000);
        assert!(pf.allocated && !pf.writeback);
        assert_eq!(c.stats().accesses(), 0);
        // The prefetched line now hits on demand.
        assert!(c.access(0x2000, false).hit);
        // Prefetching a present line is a no-op.
        assert!(!c.prefetch(0x2000).allocated);
    }

    #[test]
    fn prefetch_evicts_cold_not_hot() {
        let mut c = Cache::new(small_config()).unwrap();
        // 2-way set: hot line at MRU, cold at LRU.
        let hot = 0u64;
        let cold = 8 * 64;
        c.access(cold, false);
        c.access(hot, false);
        // Prefetch a third line into the same set: must evict... it inserts
        // above LRU, so the next *demand* miss evicts the cold line first,
        // keeping the hot MRU line resident.
        let pf_line = 16 * 64;
        assert!(c.prefetch(pf_line).allocated);
        assert!(c.access(hot, false).hit, "hot line must survive prefetch");
    }

    #[test]
    fn flush_empties_contents_only() {
        let mut c = Cache::new(small_config()).unwrap();
        c.access(0, false);
        c.access(0, false);
        let before = *c.stats();
        c.flush();
        assert_eq!(*c.stats(), before);
        assert!(!c.access(0, false).hit);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            reads: 1,
            writes: 2,
            read_hits: 1,
            write_hits: 0,
            writebacks: 1,
        };
        a.merge(&a.clone());
        assert_eq!(a.reads, 2);
        assert_eq!(a.writes, 4);
        assert_eq!(a.writebacks, 2);
        // 6 accesses, 2 hits -> 4 misses.
        assert_eq!(a.misses(), 4);
    }
}
