//! Executable specification of the hot-loop semantics.
//!
//! The optimized simulator ([`crate::cache::Cache`] struct-of-arrays store,
//! [`crate::workload::AccessStream`] ring buffer, the chunked
//! [`crate::system::System::run_placed`] loop) is required to be
//! **bit-for-bit identical** to the straightforward implementations kept
//! here: a `Vec<Vec<(tag, dirty)>>` LRU cache that shifts elements on every
//! promotion and a recent-history `Vec` that pays `remove(0)` per generated
//! access. These are the pre-rewrite data structures with the two
//! accounting fixes applied (L1 victims written back at their real line
//! addresses, per-cluster DRAM row-hit deltas), so they define *what* the
//! simulator computes while the optimized path defines *how fast*.
//!
//! Used by the hot-loop parity suite and by the `cache_smoke` performance
//! gate, which times [`run_placed`] against the production loop. Keep this
//! module naive: do not optimize it.

use crate::cache::{AccessOutcome, CacheConfig, CacheStats, PrefetchOutcome};
use crate::dram::DramSim;
use crate::faultmem::FaultMemory;
use crate::stats::{CacheActivity, CoreActivity, SimReport};
use crate::system::{
    ClusterConfig, Placement, SystemConfig, FILL_WRITE_EXPOSURE, WRITEBACK_EXPOSURE,
};
use crate::workload::{Kernel, MemoryAccess};
use crate::GemsimError;

use mss_units::rng::{Rng, Xoshiro256PlusPlus};

/// The pre-rewrite LRU set-associative cache: per-set `Vec<(tag, dirty)>`
/// ordered least- to most-recently used, promoted and evicted with
/// `Vec::remove`/`insert` element shifting.
#[derive(Debug, Clone)]
pub struct NaiveCache {
    config: CacheConfig,
    /// Per set: (tag, dirty), most recently used last.
    sets: Vec<Vec<(u64, bool)>>,
    stats: CacheStats,
    set_mask: u64,
    line_shift: u32,
}

impl NaiveCache {
    /// Builds (and validates) a cache.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheConfig::validate`].
    pub fn new(config: CacheConfig) -> Result<Self, GemsimError> {
        config.validate()?;
        let sets = config.sets();
        Ok(Self {
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            sets: vec![Vec::new(); sets as usize],
            stats: CacheStats::default(),
            config,
        })
    }

    /// Activity counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Line-aligned byte address of a resident (tag, set) pair.
    fn line_address(&self, set_idx: usize, tag: u64) -> u64 {
        ((tag << self.set_mask.count_ones()) | set_idx as u64) << self.line_shift
    }

    /// Performs one access; `write` marks stores.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|(t, _)| *t == tag) {
            // Hit: move to MRU, possibly mark dirty.
            let (t, dirty) = set.remove(pos);
            set.push((t, dirty || write));
            if write {
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            return AccessOutcome {
                hit: true,
                writeback: false,
                victim: None,
            };
        }
        // Miss: allocate (write-allocate policy), evicting LRU if full.
        let mut writeback = false;
        let mut victim = None;
        if set.len() == self.config.associativity as usize {
            let (t, dirty) = set.remove(0);
            if dirty {
                writeback = true;
                self.stats.writebacks += 1;
            }
            victim = Some(self.line_address(set_idx, t));
        }
        self.sets[set_idx].push((tag, write));
        AccessOutcome {
            hit: false,
            writeback,
            victim,
        }
    }

    /// Prefetches a line: allocates it clean if absent *without* promoting
    /// it on a hit and without touching the demand counters.
    pub fn prefetch(&mut self, addr: u64) -> PrefetchOutcome {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let set = &mut self.sets[set_idx];
        if set.iter().any(|(t, _)| *t == tag) {
            return PrefetchOutcome {
                allocated: false,
                writeback: false,
                victim: None,
            };
        }
        let mut writeback = false;
        let mut victim = None;
        if set.len() == self.config.associativity as usize {
            let (t, dirty) = set.remove(0);
            if dirty {
                writeback = true;
                self.stats.writebacks += 1;
            }
            victim = Some(self.line_address(set_idx, t));
        }
        // Insert at LRU+1 (conservative): prefetched lines should not evict
        // the hot working set if they are never used.
        let set = &mut self.sets[set_idx];
        let pos = set.len().min(1);
        set.insert(pos, (tag, false));
        PrefetchOutcome {
            allocated: true,
            writeback,
            victim,
        }
    }

    /// Invalidates everything (contents, not counters), returning the
    /// number of dirty lines dropped — the same policy as
    /// [`crate::cache::Cache::flush`].
    pub fn flush(&mut self) -> u64 {
        let mut dirty_lines = 0u64;
        for set in &mut self.sets {
            dirty_lines += set.iter().filter(|(_, d)| *d).count() as u64;
            set.clear();
        }
        dirty_lines
    }
}

const LINE: u64 = 64;
const HISTORY: usize = 4096;

/// The pre-rewrite access-stream generator: the recent-line history is a
/// plain `Vec` that pays a full `remove(0)` shift once it is warm.
#[derive(Debug, Clone)]
pub struct NaiveStream {
    rng: Xoshiro256PlusPlus,
    history: Vec<u64>,
    cursor: u64,
    line: u64,
    working_lines: u64,
    write_ratio: f64,
    reuse_probability: f64,
    reuse_p_geom: f64,
    stream_probability: f64,
    far_reuse_probability: f64,
    base: u64,
}

impl NaiveStream {
    /// Creates a stream for `kernel`, thread `tid`, with a global seed —
    /// the same draw sequence as [`crate::workload::AccessStream::new`].
    pub fn new(kernel: &Kernel, tid: u32, seed: u64) -> Self {
        let per_thread = (kernel.working_set / kernel.threads as u64).max(4 * LINE);
        Self {
            rng: Xoshiro256PlusPlus::seed_from_u64(
                seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tid as u64 + 1),
            ),
            history: Vec::with_capacity(HISTORY),
            cursor: 0,
            line: 0,
            working_lines: (per_thread / LINE).max(4),
            write_ratio: kernel.write_ratio,
            reuse_probability: kernel.reuse_probability,
            reuse_p_geom: 1.0 / kernel.mean_reuse_distance.max(1.0),
            stream_probability: kernel.stream_probability,
            far_reuse_probability: kernel.far_reuse_probability,
            base: (tid as u64) << 32,
        }
    }

    /// Draws the next access.
    pub fn next_access(&mut self) -> MemoryAccess {
        let write = self.rng.gen_bool(self.write_ratio);
        if self.rng.gen_bool(self.far_reuse_probability) && self.cursor > 0 {
            let max_d = self.working_lines.max(128) as f64;
            let u: f64 = self.rng.next_f64();
            let d = (64.0 * (max_d / 64.0).powf(u)) as u64;
            let line =
                (self.line + self.working_lines - d % self.working_lines) % self.working_lines;
            self.cursor += 1;
            return MemoryAccess {
                address: self.base + line * LINE,
                write,
            };
        }
        let reuse = !self.history.is_empty() && self.rng.gen_bool(self.reuse_probability);
        let line = if reuse {
            // Geometric stack distance over the recent-history buffer.
            let mut d = 0usize;
            while self.rng.next_f64() > self.reuse_p_geom && d + 1 < self.history.len() {
                d += 1;
            }
            self.history[self.history.len() - 1 - d]
        } else if self.rng.gen_bool(self.stream_probability) {
            self.line = (self.line + 1) % self.working_lines;
            self.line
        } else {
            self.line = self.rng.gen_range_u64(0, self.working_lines);
            self.line
        };
        if self.history.len() == HISTORY {
            self.history.remove(0);
        }
        self.history.push(line);
        self.cursor += 1;
        MemoryAccess {
            address: self.base + line * LINE + self.rng.gen_range_u64(0, LINE / 8) * 8,
            write,
        }
    }
}

fn scale_stats(s: &CacheStats, scale: f64) -> CacheStats {
    let f = |v: u64| (v as f64 * scale).round() as u64;
    CacheStats {
        reads: f(s.reads),
        writes: f(s.writes),
        read_hits: f(s.read_hits),
        write_hits: f(s.write_hits),
        writebacks: f(s.writebacks),
    }
}

/// Runs one kernel with the naive data structures, one access at a time —
/// the reference semantics of
/// [`crate::system::System::run_placed`]. Always exact:
/// [`SystemConfig::epoch_skip`] is ignored (reported
/// [`SimReport::extrapolated_accesses`] is 0), and no observability spans
/// or counters are emitted.
///
/// # Errors
///
/// As [`crate::system::System::run_placed`].
pub fn run_placed(
    config: &SystemConfig,
    kernel: &Kernel,
    seed: u64,
    placement: &Placement,
) -> Result<SimReport, GemsimError> {
    config.validate()?;
    kernel.validate()?;
    if let Placement::Cluster(name) = placement {
        if !config.clusters.iter().any(|c| &c.name == name) {
            return Err(GemsimError::InvalidSystem {
                reason: format!("no cluster named '{name}' to pin to"),
            });
        }
    }
    let cluster_active = |cluster: &ClusterConfig| match placement {
        Placement::AllClusters => true,
        Placement::Cluster(name) => &cluster.name == name,
    };
    let total_cores: u64 = config
        .clusters
        .iter()
        .filter(|c| cluster_active(c))
        .map(|c| c.cores as u64)
        .sum();
    let threads = kernel.threads as u64;
    let total_weight: f64 = {
        let mut w = 0.0;
        let mut core_id = 0u64;
        for cluster in &config.clusters {
            if !cluster_active(cluster) {
                continue;
            }
            for _ in 0..cluster.cores {
                let owned = (0..threads).filter(|t| t % total_cores == core_id).count();
                w += owned as f64 * cluster.core.frequency / cluster.core.base_cpi;
                core_id += 1;
            }
        }
        w
    };

    let mut cores_out = Vec::new();
    let mut caches_out = Vec::new();
    let mut dram_reads_scaled = 0u64;
    let mut dram_writes_scaled = 0u64;
    let mut dram_row_hits_scaled = 0u64;
    let mut dram = match &config.row_buffer {
        Some(rb) => Some(DramSim::new(*rb)?),
        None => None,
    };
    let mut fault_mem = match &config.fault {
        Some(cfg) => Some(FaultMemory::new(*cfg)?),
        None => None,
    };
    let mut runtime: f64 = 0.0;

    let mut global_core_index = 0u32;
    for cluster in &config.clusters {
        if !cluster_active(cluster) {
            for _ in 0..cluster.cores {
                cores_out.push(CoreActivity {
                    kind: cluster.core.kind,
                    instructions: 0,
                    busy_seconds: 0.0,
                    ipc: 0.0,
                });
            }
            caches_out.push(CacheActivity {
                name: cluster.l1d.name.clone(),
                config: cluster.l1d.clone(),
                stats: CacheStats::default(),
            });
            caches_out.push(CacheActivity {
                name: cluster.l2.name.clone(),
                config: cluster.l2.clone(),
                stats: CacheStats::default(),
            });
            continue;
        }
        let weight = cluster.core.frequency / cluster.core.base_cpi;
        let instr_per_thread = (kernel.instructions as f64 * weight / total_weight) as u64;
        let mem_per_thread = (instr_per_thread as f64 * kernel.memory_ratio) as u64;
        let sim_per_thread = mem_per_thread.min(config.sample_accesses_per_thread);
        let scale = if sim_per_thread == 0 {
            1.0
        } else {
            mem_per_thread as f64 / sim_per_thread as f64
        };
        let mut l2 = NaiveCache::new(cluster.l2.clone())?;
        let mut l1_total = CacheStats::default();
        let mut dram_reads_sim = 0u64;
        let mut dram_writes_sim = 0u64;
        let line_bytes = cluster.l2.line_bytes as u64;
        let row_hits_before_cluster = dram.as_ref().map_or(0, |d| d.hits());
        for local_core in 0..cluster.cores {
            let core_id = global_core_index + local_core;
            let owned: Vec<u64> = (0..threads)
                .filter(|t| t % total_cores == core_id as u64)
                .collect();
            let mut l1 = NaiveCache::new(cluster.l1d.clone())?;
            let mut stall_seconds_sim = 0.0;
            for &t in &owned {
                let mut stream = NaiveStream::new(kernel, t as u32, seed);
                for _ in 0..sim_per_thread {
                    let acc = stream.next_access();
                    let l1_out = l1.access(acc.address, acc.write);
                    if l1_out.hit {
                        continue;
                    }
                    // L1 miss: read the line from L2.
                    let l2_out = l2.access(acc.address, false);
                    stall_seconds_sim += cluster.l2.read_latency;
                    if !l2_out.hit {
                        // L2 miss: DRAM fetch + fill write into the L2 array.
                        dram_reads_sim += 1;
                        if let Some(fm) = fault_mem.as_mut() {
                            fm.read(acc.address / line_bytes);
                        }
                        if config.l2_next_line_prefetch {
                            let next = acc.address + line_bytes;
                            let pf = l2.prefetch(next);
                            if pf.allocated {
                                dram_reads_sim += 1;
                                if let Some(fm) = fault_mem.as_mut() {
                                    fm.read(next / line_bytes);
                                }
                            }
                            if pf.writeback {
                                dram_writes_sim += 1;
                                if let Some(fm) = fault_mem.as_mut() {
                                    let v = pf.victim.expect("writeback implies victim");
                                    fm.write(v / line_bytes);
                                }
                            }
                        }
                        let dram_latency = if let Some(d) = dram.as_mut() {
                            if d.access(acc.address) {
                                d.config().hit_latency
                            } else {
                                config.dram_latency
                            }
                        } else {
                            config.dram_latency
                        };
                        stall_seconds_sim +=
                            dram_latency + FILL_WRITE_EXPOSURE * cluster.l2.write_latency;
                    }
                    if l2_out.writeback {
                        dram_writes_sim += 1;
                        if let Some(fm) = fault_mem.as_mut() {
                            let v = l2_out.victim.expect("writeback implies victim");
                            fm.write(v / line_bytes);
                        }
                    }
                    if l1_out.writeback {
                        // Dirty L1 victim written into the L2 array at its
                        // real line address.
                        let victim = l1_out.victim.expect("writeback implies victim");
                        let wb = l2.access(victim, true);
                        stall_seconds_sim += WRITEBACK_EXPOSURE * cluster.l2.write_latency;
                        if wb.writeback {
                            dram_writes_sim += 1;
                            if let Some(fm) = fault_mem.as_mut() {
                                let v = wb.victim.expect("writeback implies victim");
                                fm.write(v / line_bytes);
                            }
                        }
                    }
                }
            }
            let instructions = instr_per_thread * owned.len() as u64;
            let stall_cycles = cluster.core.cycles(stall_seconds_sim * scale);
            let busy = cluster.core.execution_seconds(instructions, stall_cycles);
            let ipc = if busy > 0.0 {
                instructions as f64 / (busy * cluster.core.frequency)
            } else {
                0.0
            };
            runtime = runtime.max(busy);
            cores_out.push(CoreActivity {
                kind: cluster.core.kind,
                instructions,
                busy_seconds: busy,
                ipc,
            });
            l1_total.merge(l1.stats());
        }
        caches_out.push(CacheActivity {
            name: cluster.l1d.name.clone(),
            config: cluster.l1d.clone(),
            stats: scale_stats(&l1_total, scale),
        });
        caches_out.push(CacheActivity {
            name: cluster.l2.name.clone(),
            config: cluster.l2.clone(),
            stats: scale_stats(l2.stats(), scale),
        });
        dram_reads_scaled += (dram_reads_sim as f64 * scale) as u64;
        dram_writes_scaled += (dram_writes_sim as f64 * scale) as u64;
        if let Some(d) = dram.as_ref() {
            // Per-cluster row-hit delta, scaled by this cluster's factor.
            let cluster_hits = d.hits() - row_hits_before_cluster;
            dram_row_hits_scaled += (cluster_hits as f64 * scale) as u64;
        }
        global_core_index += cluster.cores;
    }

    let sampled_fraction = {
        let c0 = config
            .clusters
            .iter()
            .find(|c| cluster_active(c))
            .expect("at least one active cluster");
        let w = c0.core.frequency / c0.core.base_cpi;
        let instr = (kernel.instructions as f64 * w / total_weight) as u64;
        let mem = (instr as f64 * kernel.memory_ratio) as u64;
        let sim = mem.min(config.sample_accesses_per_thread);
        if mem == 0 {
            1.0
        } else {
            sim as f64 / mem as f64
        }
    };
    Ok(SimReport {
        kernel: kernel.name.clone(),
        runtime_seconds: runtime,
        cores: cores_out,
        caches: caches_out,
        dram_reads: dram_reads_scaled,
        dram_writes: dram_writes_scaled,
        dram_row_hits: dram_row_hits_scaled,
        simulated_fraction: sampled_fraction,
        extrapolated_accesses: 0,
        fault: fault_mem.map(|fm| *fm.stats()),
    })
}
