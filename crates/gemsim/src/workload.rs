//! Statistical Parsec-like kernels.
//!
//! The authors ran Parsec 3.0 binaries under full-system gem5; the
//! evaluation consumes only the aggregate activity that produces (runtime,
//! reads/writes, hits/misses, IPC). Each kernel here is a *statistical twin*:
//! an instruction mix, a working-set size and a stack-distance locality
//! model whose generated address stream reproduces the cache-level behaviour
//! class of the original (compute-bound vs memory-bound, streaming vs
//! reuse-heavy).

use mss_units::rng::{Rng, Xoshiro256PlusPlus};

use crate::GemsimError;

/// A statistical workload kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (Parsec 3.0 counterpart).
    pub name: String,
    /// Total dynamic instructions across all threads.
    pub instructions: u64,
    /// Fraction of instructions that access memory.
    pub memory_ratio: f64,
    /// Fraction of memory accesses that are writes.
    pub write_ratio: f64,
    /// Working-set size in bytes.
    pub working_set: u64,
    /// Probability a memory access re-uses a recent line (temporal
    /// locality); the re-use distance is geometric.
    pub reuse_probability: f64,
    /// Mean re-use distance in lines for the geometric re-use draw.
    pub mean_reuse_distance: f64,
    /// Probability a *new* access continues the current streaming run
    /// (spatial locality).
    pub stream_probability: f64,
    /// Probability of a *far* re-reference: revisiting data megabytes back
    /// (log-uniform distance up to the working set). These are the accesses
    /// whose hit/miss fate depends on the L2 capacity.
    pub far_reuse_probability: f64,
    /// Software threads.
    pub threads: u32,
}

impl mss_pipe::StableHash for Kernel {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_str(&self.name);
        h.write_u64(self.instructions);
        h.write_f64(self.memory_ratio);
        h.write_f64(self.write_ratio);
        h.write_u64(self.working_set);
        h.write_f64(self.reuse_probability);
        h.write_f64(self.mean_reuse_distance);
        h.write_f64(self.stream_probability);
        h.write_f64(self.far_reuse_probability);
        h.write_u32(self.threads);
    }
}

impl Kernel {
    /// `bodytrack` — computer-vision body tracking: compute-heavy, moderate
    /// working set, good locality (the paper's Fig. 11 kernel).
    pub fn bodytrack() -> Self {
        Self {
            name: "bodytrack".into(),
            instructions: 60_000_000,
            memory_ratio: 0.28,
            write_ratio: 0.30,
            working_set: 8 << 20,
            reuse_probability: 0.82,
            mean_reuse_distance: 24.0,
            stream_probability: 0.70,
            far_reuse_probability: 0.1,
            threads: 8,
        }
    }

    /// `blackscholes` — option pricing: small working set, very
    /// compute-bound.
    pub fn blackscholes() -> Self {
        Self {
            name: "blackscholes".into(),
            instructions: 50_000_000,
            memory_ratio: 0.20,
            write_ratio: 0.20,
            working_set: 2 << 20,
            reuse_probability: 0.90,
            mean_reuse_distance: 12.0,
            stream_probability: 0.80,
            far_reuse_probability: 0.04,
            threads: 8,
        }
    }

    /// `swaptions` — Monte Carlo pricing: tiny working set, reuse-heavy.
    pub fn swaptions() -> Self {
        Self {
            name: "swaptions".into(),
            instructions: 55_000_000,
            memory_ratio: 0.24,
            write_ratio: 0.25,
            working_set: 1 << 20,
            reuse_probability: 0.92,
            mean_reuse_distance: 10.0,
            stream_probability: 0.75,
            far_reuse_probability: 0.03,
            threads: 8,
        }
    }

    /// `fluidanimate` — SPH fluid simulation: large working set, mixed
    /// locality, write-heavy.
    pub fn fluidanimate() -> Self {
        Self {
            name: "fluidanimate".into(),
            instructions: 65_000_000,
            memory_ratio: 0.32,
            write_ratio: 0.40,
            working_set: 24 << 20,
            reuse_probability: 0.70,
            mean_reuse_distance: 60.0,
            stream_probability: 0.60,
            far_reuse_probability: 0.1,
            threads: 8,
        }
    }

    /// `freqmine` — frequent itemset mining: pointer-chasing, poor spatial
    /// locality, large working set.
    pub fn freqmine() -> Self {
        Self {
            name: "freqmine".into(),
            instructions: 70_000_000,
            memory_ratio: 0.35,
            write_ratio: 0.22,
            working_set: 32 << 20,
            reuse_probability: 0.62,
            mean_reuse_distance: 120.0,
            stream_probability: 0.30,
            far_reuse_probability: 0.12,
            threads: 8,
        }
    }

    /// `streamcluster` — online clustering: streaming, memory-bound, huge
    /// effective working set.
    pub fn streamcluster() -> Self {
        Self {
            name: "streamcluster".into(),
            instructions: 60_000_000,
            memory_ratio: 0.38,
            write_ratio: 0.15,
            working_set: 64 << 20,
            reuse_probability: 0.45,
            mean_reuse_distance: 300.0,
            stream_probability: 0.85,
            far_reuse_probability: 0.15,
            threads: 8,
        }
    }

    /// `canneal` — simulated-annealing place & route: pointer chasing over a
    /// huge graph, almost no spatial locality.
    pub fn canneal() -> Self {
        Self {
            name: "canneal".into(),
            instructions: 55_000_000,
            memory_ratio: 0.36,
            write_ratio: 0.18,
            working_set: 96 << 20,
            reuse_probability: 0.55,
            mean_reuse_distance: 200.0,
            stream_probability: 0.15,
            far_reuse_probability: 0.10,
            threads: 8,
        }
    }

    /// `dedup` — pipelined compression/deduplication: write-heavy with
    /// hash-table reuse.
    pub fn dedup() -> Self {
        Self {
            name: "dedup".into(),
            instructions: 60_000_000,
            memory_ratio: 0.30,
            write_ratio: 0.45,
            working_set: 16 << 20,
            reuse_probability: 0.75,
            mean_reuse_distance: 48.0,
            stream_probability: 0.65,
            far_reuse_probability: 0.08,
            threads: 8,
        }
    }

    /// `x264` — video encoding: streaming macroblocks with strong frame
    /// reuse, compute-heavy.
    pub fn x264() -> Self {
        Self {
            name: "x264".into(),
            instructions: 75_000_000,
            memory_ratio: 0.25,
            write_ratio: 0.28,
            working_set: 12 << 20,
            reuse_probability: 0.80,
            mean_reuse_distance: 32.0,
            stream_probability: 0.85,
            far_reuse_probability: 0.09,
            threads: 8,
        }
    }

    /// The six-kernel suite used for the Fig. 12 sweep.
    pub fn parsec_suite() -> Vec<Kernel> {
        vec![
            Kernel::bodytrack(),
            Kernel::blackscholes(),
            Kernel::swaptions(),
            Kernel::fluidanimate(),
            Kernel::freqmine(),
            Kernel::streamcluster(),
        ]
    }

    /// The extended nine-kernel suite (Parsec 3.0 subset).
    pub fn parsec_extended() -> Vec<Kernel> {
        let mut v = Self::parsec_suite();
        v.push(Kernel::canneal());
        v.push(Kernel::dedup());
        v.push(Kernel::x264());
        v
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// [`GemsimError::InvalidWorkload`] on out-of-range parameters.
    pub fn validate(&self) -> Result<(), GemsimError> {
        let fail = |reason: String| Err(GemsimError::InvalidWorkload { reason });
        if self.instructions == 0 || self.threads == 0 || self.working_set == 0 {
            return fail("instructions, threads and working set must be non-zero".into());
        }
        for (name, v) in [
            ("memory_ratio", self.memory_ratio),
            ("write_ratio", self.write_ratio),
            ("reuse_probability", self.reuse_probability),
            ("stream_probability", self.stream_probability),
            ("far_reuse_probability", self.far_reuse_probability),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return fail(format!("{name} = {v} outside [0, 1]"));
            }
        }
        if self.mean_reuse_distance < 1.0 {
            return fail("mean reuse distance must be >= 1 line".into());
        }
        Ok(())
    }

    /// Total memory accesses implied by the mix.
    pub fn memory_accesses(&self) -> u64 {
        (self.instructions as f64 * self.memory_ratio) as u64
    }
}

/// Seeded generator of one thread's memory-access stream.
///
/// The recent-line history is a fixed-size ring buffer: pushing the
/// 4097th line overwrites the oldest slot in O(1), where the previous
/// `Vec` representation paid a 4096-element shift (`remove(0)`) on every
/// single generated access — the dominant cost of the whole simulator.
/// The draw sequence is bit-identical to the `Vec` version.
#[derive(Debug, Clone)]
pub struct AccessStream {
    rng: Xoshiro256PlusPlus,
    /// Ring of the last [`HISTORY`] line numbers; slot `hist_head` is
    /// written next, so the most recent line sits at `hist_head - 1`.
    history: Box<[u64]>,
    /// Occupied ring slots (saturates at [`HISTORY`]).
    hist_len: u32,
    /// Next ring slot to write.
    hist_head: u32,
    cursor: u64,
    line: u64,
    working_lines: u64,
    /// Bernoulli draws as integer thresholds on the raw 53-bit draw
    /// (see [`coin_threshold`]): `gen_bool(write_ratio)` etc., minus the
    /// per-draw int→f64 conversion. Several of these run per access.
    write_coin: u64,
    reuse_coin: u64,
    /// Integer form of the geometric continue-test: drawing `u` from
    /// [`Rng::next_u64`], `next_f64() > reuse_p_geom` ⟺
    /// `(u >> 11) >= geom_threshold` — exact, because `u >> 11` has 53
    /// bits, so its f64 image and the 2⁻⁵³ scaling are both lossless.
    /// This loop runs `mean_reuse_distance` times per reuse access, so it
    /// dominates stream synthesis.
    geom_threshold: u64,
    stream_coin: u64,
    far_coin: u64,
    base: u64,
}

/// One generated memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccess {
    /// Byte address.
    pub address: u64,
    /// Store (true) or load (false).
    pub write: bool,
}

const LINE: u64 = 64;
const HISTORY: usize = 4096;
const HISTORY_MASK: u32 = HISTORY as u32 - 1;

/// Integer image of [`Rng::gen_bool`]\(p\): with `u53 = next_u64() >> 11`,
/// `next_f64() < p` ⟺ `u53 < ⌈p·2⁵³⌉`. Exact — `u53` has 53 bits, so its
/// f64 image and the 2⁻⁵³ scaling are lossless — which keeps the draw
/// sequence bit-identical to calling `gen_bool` while the hot loop compares
/// integers.
fn coin_threshold(p: f64) -> u64 {
    (p * (1u64 << 53) as f64).ceil() as u64
}

impl AccessStream {
    /// Creates a stream for `kernel`, thread `tid`, with a global seed.
    pub fn new(kernel: &Kernel, tid: u32, seed: u64) -> Self {
        let per_thread = (kernel.working_set / kernel.threads as u64).max(4 * LINE);
        Self {
            rng: Xoshiro256PlusPlus::seed_from_u64(
                seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tid as u64 + 1),
            ),
            history: vec![0; HISTORY].into_boxed_slice(),
            hist_len: 0,
            hist_head: 0,
            cursor: 0,
            line: 0,
            working_lines: (per_thread / LINE).max(4),
            write_coin: coin_threshold(kernel.write_ratio),
            reuse_coin: coin_threshold(kernel.reuse_probability),
            geom_threshold: {
                // `u53 > p·2⁵³` ⟺ `u53 ≥ ⌊p·2⁵³⌋ + 1` (exact: p·2⁵³ is a
                // plain f64 product, u53 is an integer).
                let p_geom = 1.0 / kernel.mean_reuse_distance.max(1.0);
                (p_geom * (1u64 << 53) as f64) as u64 + 1
            },
            stream_coin: coin_threshold(kernel.stream_probability),
            far_coin: coin_threshold(kernel.far_reuse_probability),
            base: (tid as u64) << 32,
        }
    }

    /// One Bernoulli draw against a [`coin_threshold`] — the integer twin
    /// of `self.rng.gen_bool(p)`, consuming exactly one `next_u64`.
    #[inline]
    fn coin(&mut self, threshold: u64) -> bool {
        (self.rng.next_u64() >> 11) < threshold
    }

    /// Draws the next access.
    #[inline]
    pub fn next_access(&mut self) -> MemoryAccess {
        let write = self.coin(self.write_coin);
        if self.coin(self.far_coin) && self.cursor > 0 {
            // Far re-reference: log-uniform distance in [64 lines, working
            // set], i.e. 4 KiB up to the full per-thread partition. Whether
            // it hits depends entirely on how much cache sits below.
            let max_d = self.working_lines.max(128) as f64;
            let u: f64 = self.rng.next_f64();
            let d = (64.0 * (max_d / 64.0).powf(u)) as u64;
            let line =
                (self.line + self.working_lines - d % self.working_lines) % self.working_lines;
            self.cursor += 1;
            return MemoryAccess {
                address: self.base + line * LINE,
                write,
            };
        }
        let reuse = self.hist_len > 0 && self.coin(self.reuse_coin);
        let line = if reuse {
            // Geometric stack distance over the recent-history ring; the
            // continue-test is the integer image of `next_f64() > p_geom`
            // (see [`AccessStream::geom_threshold`]).
            let mut d = 0u32;
            while (self.rng.next_u64() >> 11) >= self.geom_threshold && d + 1 < self.hist_len {
                d += 1;
            }
            // d lines back from the most recent entry (at hist_head - 1).
            self.history[((self.hist_head.wrapping_sub(1 + d)) & HISTORY_MASK) as usize]
        } else if self.coin(self.stream_coin) {
            // Sequential streaming within the working set.
            self.line += 1;
            if self.line == self.working_lines {
                self.line = 0;
            }
            self.line
        } else {
            // Random jump within the working set.
            self.line = self.rng.gen_range_u64(0, self.working_lines);
            self.line
        };
        self.history[self.hist_head as usize] = line;
        self.hist_head = (self.hist_head + 1) & HISTORY_MASK;
        self.hist_len = (self.hist_len + 1).min(HISTORY as u32);
        self.cursor += 1;
        MemoryAccess {
            address: self.base + line * LINE + self.rng.gen_range_u64(0, LINE / 8) * 8,
            write,
        }
    }

    /// Fills `out` with the next `out.len()` accesses — bit-identical to
    /// calling [`AccessStream::next_access`] that many times. This is the
    /// batch entry the system hot loop uses to synthesize addresses in
    /// chunks instead of one virtual call per reference.
    pub fn fill(&mut self, out: &mut [MemoryAccess]) {
        for slot in out {
            *slot = self.next_access();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_kernels_validate() {
        let suite = Kernel::parsec_extended();
        assert_eq!(suite.len(), 9);
        for k in &suite {
            k.validate().unwrap();
            assert!(k.memory_accesses() > 0);
        }
        // Names are unique.
        let mut names: Vec<&str> = suite.iter().map(|k| k.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn invalid_kernels_rejected() {
        let mut k = Kernel::bodytrack();
        k.memory_ratio = 1.5;
        assert!(k.validate().is_err());
        let mut k = Kernel::bodytrack();
        k.threads = 0;
        assert!(k.validate().is_err());
        let mut k = Kernel::bodytrack();
        k.mean_reuse_distance = 0.0;
        assert!(k.validate().is_err());
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let k = Kernel::bodytrack();
        let mut a = AccessStream::new(&k, 0, 42);
        let mut b = AccessStream::new(&k, 0, 42);
        for _ in 0..100 {
            assert_eq!(a.next_access(), b.next_access());
        }
        let mut c = AccessStream::new(&k, 1, 42);
        let first_a = AccessStream::new(&k, 0, 42).next_access();
        assert_ne!(c.next_access().address >> 32, first_a.address >> 32);
    }

    #[test]
    fn write_ratio_is_respected() {
        let k = Kernel::fluidanimate();
        let mut s = AccessStream::new(&k, 0, 7);
        let writes = (0..20_000).filter(|_| s.next_access().write).count();
        let ratio = writes as f64 / 20_000.0;
        assert!((ratio - k.write_ratio).abs() < 0.02, "ratio = {ratio}");
    }

    #[test]
    fn addresses_stay_in_thread_partition() {
        let k = Kernel::swaptions();
        let mut s = AccessStream::new(&k, 3, 1);
        for _ in 0..1000 {
            let a = s.next_access().address;
            assert_eq!(a >> 32, 3);
        }
    }

    #[test]
    fn reuse_heavy_kernel_has_better_locality() {
        // Feed both streams through a small cache; the reuse-heavy kernel
        // must miss less.
        use crate::cache::{Cache, CacheConfig};
        let run = |k: &Kernel| {
            let mut c = Cache::new(CacheConfig {
                name: "probe".into(),
                capacity: 32 << 10,
                associativity: 4,
                line_bytes: 64,
                read_latency: 0.0,
                write_latency: 0.0,
                read_energy: 0.0,
                write_energy: 0.0,
                leakage_power: 0.0,
            })
            .unwrap();
            let mut s = AccessStream::new(k, 0, 5);
            for _ in 0..50_000 {
                let a = s.next_access();
                c.access(a.address, a.write);
            }
            c.stats().miss_ratio()
        };
        let tight = run(&Kernel::swaptions());
        let streaming = run(&Kernel::streamcluster());
        assert!(
            tight < streaming,
            "swaptions {tight} vs streamcluster {streaming}"
        );
    }
}
