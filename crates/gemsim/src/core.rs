//! Core timing models for the big.LITTLE platform.
//!
//! The paper's Fig. 11/12 platform is an Exynos-5-style big.LITTLE SoC. The
//! timing model here is analytic per core: non-memory instructions retire at
//! a base CPI; memory stalls add the hierarchy latency scaled by an overlap
//! factor (out-of-order big cores hide a part of it, in-order LITTLE cores
//! almost none).

/// Which microarchitecture a core implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Out-of-order "big" core (Cortex-A15 class).
    Big,
    /// In-order "LITTLE" core (Cortex-A7 class).
    Little,
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreKind::Big => write!(f, "big"),
            CoreKind::Little => write!(f, "LITTLE"),
        }
    }
}

/// Timing parameters of one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreModel {
    /// Microarchitecture class.
    pub kind: CoreKind,
    /// Clock frequency, hertz.
    pub frequency: f64,
    /// Cycles per non-memory instruction.
    pub base_cpi: f64,
    /// Fraction of memory latency exposed as stall (1.0 = in-order, fully
    /// exposed; OoO cores overlap part of it).
    pub stall_exposure: f64,
}

impl mss_pipe::StableHash for CoreKind {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_u8(match self {
            CoreKind::Big => 0,
            CoreKind::Little => 1,
        });
    }
}

impl mss_pipe::StableHash for CoreModel {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.kind.stable_hash(h);
        h.write_f64(self.frequency);
        h.write_f64(self.base_cpi);
        h.write_f64(self.stall_exposure);
    }
}

impl CoreModel {
    /// Cortex-A15-class big core: 2 GHz, OoO.
    pub fn big() -> Self {
        Self {
            kind: CoreKind::Big,
            frequency: 2.0e9,
            base_cpi: 1.0,
            stall_exposure: 0.55,
        }
    }

    /// Cortex-A7-class LITTLE core: 1.4 GHz, in-order.
    pub fn little() -> Self {
        Self {
            kind: CoreKind::Little,
            frequency: 1.4e9,
            base_cpi: 1.7,
            stall_exposure: 1.0,
        }
    }

    /// Execution time for a given instruction count and total exposed
    /// memory-stall cycles.
    pub fn execution_seconds(&self, instructions: u64, stall_cycles: f64) -> f64 {
        let compute = instructions as f64 * self.base_cpi;
        (compute + self.stall_exposure * stall_cycles) / self.frequency
    }

    /// Converts a latency in seconds into this core's clock cycles.
    pub fn cycles(&self, seconds: f64) -> f64 {
        seconds * self.frequency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_is_faster_than_little_on_compute() {
        let big = CoreModel::big();
        let little = CoreModel::little();
        let t_big = big.execution_seconds(1_000_000, 0.0);
        let t_little = little.execution_seconds(1_000_000, 0.0);
        assert!(t_big < t_little / 2.0);
    }

    #[test]
    fn little_exposes_more_stall() {
        let big = CoreModel::big();
        let little = CoreModel::little();
        let stall = 1_000_000.0;
        let extra_big = big.execution_seconds(0, stall);
        let extra_little = little.execution_seconds(0, stall);
        // Per cycle of stall, the LITTLE core loses more wall-clock.
        assert!(extra_little > extra_big);
    }

    #[test]
    fn cycles_round_trip() {
        let big = CoreModel::big();
        assert!((big.cycles(1e-9) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        assert_eq!(CoreKind::Big.to_string(), "big");
        assert_eq!(CoreKind::Little.to_string(), "LITTLE");
    }
}
