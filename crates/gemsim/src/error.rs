//! Error type for the system simulator.

use std::fmt;

/// Errors produced while configuring or running a system simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum GemsimError {
    /// A cache configuration is inconsistent.
    InvalidCache {
        /// Cache name.
        name: String,
        /// What is wrong.
        reason: String,
    },
    /// A platform configuration is inconsistent (no cores, no clusters...).
    InvalidSystem {
        /// What is wrong.
        reason: String,
    },
    /// A workload specification is inconsistent.
    InvalidWorkload {
        /// What is wrong.
        reason: String,
    },
    /// The run observed its cancellation token (deadline or external
    /// cancel) and bailed out at a chunk boundary before completing.
    Cancelled,
}

impl fmt::Display for GemsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GemsimError::InvalidCache { name, reason } => {
                write!(f, "invalid cache '{name}': {reason}")
            }
            GemsimError::InvalidSystem { reason } => write!(f, "invalid system: {reason}"),
            GemsimError::InvalidWorkload { reason } => write!(f, "invalid workload: {reason}"),
            GemsimError::Cancelled => write!(f, "simulation cancelled"),
        }
    }
}

impl std::error::Error for GemsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = GemsimError::InvalidCache {
            name: "l2".into(),
            reason: "zero ways".into(),
        };
        assert!(e.to_string().contains("l2"));
    }
}
