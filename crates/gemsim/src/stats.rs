//! The activity report consumed by the power/area layer.

use crate::cache::{CacheConfig, CacheStats};
use crate::core::CoreKind;
use crate::faultmem::FaultMemStats;

/// Activity of one cache over a run (counters already scaled back to the
/// full workload when sampling was used).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheActivity {
    /// Cache name ("big.L2", ...).
    pub name: String,
    /// The configuration it ran with (carries per-access energies).
    pub config: CacheConfig,
    /// Scaled activity counters.
    pub stats: CacheStats,
}

/// Activity of one core over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreActivity {
    /// Microarchitecture class.
    pub kind: CoreKind,
    /// Instructions retired.
    pub instructions: u64,
    /// Busy time (the core's own execution time), seconds.
    pub busy_seconds: f64,
    /// Instructions per cycle achieved.
    pub ipc: f64,
}

/// The full activity report of one kernel run — the paper's "detailed
/// report of the system activity including the number of memory
/// transactions ... and the execution time".
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Kernel name.
    pub kernel: String,
    /// Wall-clock execution time (slowest core), seconds.
    pub runtime_seconds: f64,
    /// Per-core activity.
    pub cores: Vec<CoreActivity>,
    /// Per-cache activity.
    pub caches: Vec<CacheActivity>,
    /// DRAM read transactions.
    pub dram_reads: u64,
    /// DRAM write transactions.
    pub dram_writes: u64,
    /// DRAM transactions that hit an open row (0 when the row-buffer model
    /// is disabled).
    pub dram_row_hits: u64,
    /// Fraction of memory accesses actually simulated (sampling factor).
    pub simulated_fraction: f64,
    /// Sampled references extrapolated (not simulated) by the opt-in
    /// epoch-skip fast path; always 0 when
    /// [`crate::system::SystemConfig::epoch_skip`] is `None`.
    pub extrapolated_accesses: u64,
    /// Fault/ECC activity of the memory array (unscaled simulated counts),
    /// `None` when the run modelled a perfect array.
    pub fault: Option<FaultMemStats>,
}

impl SimReport {
    /// Total retired instructions.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Looks up a cache's activity by name.
    pub fn cache(&self, name: &str) -> Option<&CacheActivity> {
        self.caches.iter().find(|c| c.name == name)
    }

    /// Aggregate IPC over all cores.
    pub fn system_ipc(&self, frequency: f64) -> f64 {
        if self.runtime_seconds <= 0.0 {
            return 0.0;
        }
        self.total_instructions() as f64 / (self.runtime_seconds * frequency)
    }
}

impl mss_pipe::Artifact for SimReport {
    const KIND: &'static str = "sim-report";
    const VERSION: u32 = 1;

    fn encode(&self) -> String {
        use mss_pipe::codec::JsonLine;
        let mut text = JsonLine::new()
            .str("kernel", &self.kernel)
            .f64_bits("runtime_seconds", self.runtime_seconds)
            .u64("dram_reads", self.dram_reads)
            .u64("dram_writes", self.dram_writes)
            .u64("dram_row_hits", self.dram_row_hits)
            .f64_bits("simulated_fraction", self.simulated_fraction)
            .u64("extrapolated_accesses", self.extrapolated_accesses)
            .u64("cores", self.cores.len() as u64)
            .u64("caches", self.caches.len() as u64)
            .u64("fault", u64::from(self.fault.is_some()))
            .finish();
        for core in &self.cores {
            text.push('\n');
            text.push_str(
                &JsonLine::new()
                    .u64("kind", matches!(core.kind, CoreKind::Little) as u64)
                    .u64("instructions", core.instructions)
                    .f64_bits("busy_seconds", core.busy_seconds)
                    .f64_bits("ipc", core.ipc)
                    .finish(),
            );
        }
        for cache in &self.caches {
            let c = &cache.config;
            text.push('\n');
            text.push_str(
                &JsonLine::new()
                    .str("name", &cache.name)
                    .str("cfg_name", &c.name)
                    .u64("capacity", c.capacity)
                    .u64("associativity", u64::from(c.associativity))
                    .u64("line_bytes", u64::from(c.line_bytes))
                    .f64_bits("read_latency", c.read_latency)
                    .f64_bits("write_latency", c.write_latency)
                    .f64_bits("read_energy", c.read_energy)
                    .f64_bits("write_energy", c.write_energy)
                    .f64_bits("leakage_power", c.leakage_power)
                    .u64("reads", cache.stats.reads)
                    .u64("writes", cache.stats.writes)
                    .u64("read_hits", cache.stats.read_hits)
                    .u64("write_hits", cache.stats.write_hits)
                    .u64("writebacks", cache.stats.writebacks)
                    .finish(),
            );
        }
        if let Some(f) = &self.fault {
            text.push('\n');
            text.push_str(
                &JsonLine::new()
                    .u64("writes", f.writes)
                    .u64("reads", f.reads)
                    .u64("scrubs", f.scrubs)
                    .u64("injected_bits", f.injected_bits)
                    .u64("write_retries", f.write_retries)
                    .u64("write_residual_bits", f.write_residual_bits)
                    .u64("reads_clean", f.reads_clean)
                    .u64("reads_corrected", f.reads_corrected)
                    .u64("reads_detected", f.reads_detected)
                    .u64("reads_uncorrectable", f.reads_uncorrectable)
                    .u64("scrubbed_words", f.scrubbed_words)
                    .finish(),
            );
        }
        text
    }

    fn decode(payload: &str) -> Option<Self> {
        use mss_pipe::codec::{get_f64_bits, get_u64, parse_object};
        let mut lines = payload.trim_end().lines();
        let meta = parse_object(lines.next()?)?;
        let n_cores = get_u64(&meta, "cores")? as usize;
        let n_caches = get_u64(&meta, "caches")? as usize;
        let has_fault = get_u64(&meta, "fault")? != 0;

        let mut cores = Vec::with_capacity(n_cores);
        for _ in 0..n_cores {
            let map = parse_object(lines.next()?)?;
            cores.push(CoreActivity {
                kind: match get_u64(&map, "kind")? {
                    0 => CoreKind::Big,
                    1 => CoreKind::Little,
                    _ => return None,
                },
                instructions: get_u64(&map, "instructions")?,
                busy_seconds: get_f64_bits(&map, "busy_seconds")?,
                ipc: get_f64_bits(&map, "ipc")?,
            });
        }
        let mut caches = Vec::with_capacity(n_caches);
        for _ in 0..n_caches {
            let map = parse_object(lines.next()?)?;
            caches.push(CacheActivity {
                name: map.get("name")?.clone(),
                config: CacheConfig {
                    name: map.get("cfg_name")?.clone(),
                    capacity: get_u64(&map, "capacity")?,
                    associativity: u32::try_from(get_u64(&map, "associativity")?).ok()?,
                    line_bytes: u32::try_from(get_u64(&map, "line_bytes")?).ok()?,
                    read_latency: get_f64_bits(&map, "read_latency")?,
                    write_latency: get_f64_bits(&map, "write_latency")?,
                    read_energy: get_f64_bits(&map, "read_energy")?,
                    write_energy: get_f64_bits(&map, "write_energy")?,
                    leakage_power: get_f64_bits(&map, "leakage_power")?,
                },
                stats: CacheStats {
                    reads: get_u64(&map, "reads")?,
                    writes: get_u64(&map, "writes")?,
                    read_hits: get_u64(&map, "read_hits")?,
                    write_hits: get_u64(&map, "write_hits")?,
                    writebacks: get_u64(&map, "writebacks")?,
                },
            });
        }
        let fault = if has_fault {
            let map = parse_object(lines.next()?)?;
            Some(FaultMemStats {
                writes: get_u64(&map, "writes")?,
                reads: get_u64(&map, "reads")?,
                scrubs: get_u64(&map, "scrubs")?,
                injected_bits: get_u64(&map, "injected_bits")?,
                write_retries: get_u64(&map, "write_retries")?,
                write_residual_bits: get_u64(&map, "write_residual_bits")?,
                reads_clean: get_u64(&map, "reads_clean")?,
                reads_corrected: get_u64(&map, "reads_corrected")?,
                reads_detected: get_u64(&map, "reads_detected")?,
                reads_uncorrectable: get_u64(&map, "reads_uncorrectable")?,
                scrubbed_words: get_u64(&map, "scrubbed_words")?,
            })
        } else {
            None
        };
        if lines.next().is_some() {
            return None;
        }
        Some(Self {
            kernel: meta.get("kernel")?.clone(),
            runtime_seconds: get_f64_bits(&meta, "runtime_seconds")?,
            cores,
            caches,
            dram_reads: get_u64(&meta, "dram_reads")?,
            dram_writes: get_u64(&meta, "dram_writes")?,
            dram_row_hits: get_u64(&meta, "dram_row_hits")?,
            simulated_fraction: get_f64_bits(&meta, "simulated_fraction")?,
            extrapolated_accesses: get_u64(&meta, "extrapolated_accesses")?,
            fault,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_helpers() {
        let r = SimReport {
            kernel: "k".into(),
            runtime_seconds: 1.0,
            cores: vec![
                CoreActivity {
                    kind: CoreKind::Big,
                    instructions: 100,
                    busy_seconds: 0.9,
                    ipc: 1.2,
                },
                CoreActivity {
                    kind: CoreKind::Little,
                    instructions: 50,
                    busy_seconds: 1.0,
                    ipc: 0.6,
                },
            ],
            caches: vec![],
            dram_reads: 5,
            dram_writes: 2,
            dram_row_hits: 0,
            simulated_fraction: 1.0,
            extrapolated_accesses: 0,
            fault: None,
        };
        assert_eq!(r.total_instructions(), 150);
        assert!(r.cache("none").is_none());
        assert!((r.system_ipc(150.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn artifact_round_trip_is_exact() {
        use mss_pipe::Artifact;
        let report = SimReport {
            kernel: "bodytrack".into(),
            runtime_seconds: 0.012345678901234567,
            cores: vec![
                CoreActivity {
                    kind: CoreKind::Big,
                    instructions: u64::MAX - 3,
                    busy_seconds: 0.011,
                    ipc: 1.75,
                },
                CoreActivity {
                    kind: CoreKind::Little,
                    instructions: 42,
                    busy_seconds: f64::MIN_POSITIVE,
                    ipc: 0.5,
                },
            ],
            caches: vec![CacheActivity {
                name: "big.L2".into(),
                config: CacheConfig {
                    name: "L2 \"quoted\"".into(),
                    capacity: 1 << 20,
                    associativity: 8,
                    line_bytes: 64,
                    read_latency: 2.1e-9,
                    write_latency: 3.4e-9,
                    read_energy: 1.0e-11,
                    write_energy: 2.0e-11,
                    leakage_power: 0.003,
                },
                stats: CacheStats {
                    reads: 1000,
                    writes: 200,
                    read_hits: 900,
                    write_hits: 150,
                    writebacks: 30,
                },
            }],
            dram_reads: 100,
            dram_writes: 70,
            dram_row_hits: 55,
            simulated_fraction: 0.1,
            extrapolated_accesses: 9000,
            fault: Some(FaultMemStats {
                writes: 1,
                reads: 2,
                scrubs: 3,
                injected_bits: 4,
                write_retries: 5,
                write_residual_bits: 6,
                reads_clean: 7,
                reads_corrected: 8,
                reads_detected: 9,
                reads_uncorrectable: 10,
                scrubbed_words: 11,
            }),
        };
        let decoded = SimReport::decode(&report.encode()).expect("round trip");
        assert_eq!(decoded, report);

        // A faultless report round-trips too (the optional line is absent).
        let mut plain = report.clone();
        plain.fault = None;
        assert_eq!(SimReport::decode(&plain.encode()), Some(plain));

        // Truncation is a miss, never a panic.
        let text = report.encode();
        assert_eq!(SimReport::decode(&text[..text.len() / 2]), None);
    }
}
