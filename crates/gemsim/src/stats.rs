//! The activity report consumed by the power/area layer.

use crate::cache::{CacheConfig, CacheStats};
use crate::core::CoreKind;
use crate::faultmem::FaultMemStats;

/// Activity of one cache over a run (counters already scaled back to the
/// full workload when sampling was used).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheActivity {
    /// Cache name ("big.L2", ...).
    pub name: String,
    /// The configuration it ran with (carries per-access energies).
    pub config: CacheConfig,
    /// Scaled activity counters.
    pub stats: CacheStats,
}

/// Activity of one core over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreActivity {
    /// Microarchitecture class.
    pub kind: CoreKind,
    /// Instructions retired.
    pub instructions: u64,
    /// Busy time (the core's own execution time), seconds.
    pub busy_seconds: f64,
    /// Instructions per cycle achieved.
    pub ipc: f64,
}

/// The full activity report of one kernel run — the paper's "detailed
/// report of the system activity including the number of memory
/// transactions ... and the execution time".
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Kernel name.
    pub kernel: String,
    /// Wall-clock execution time (slowest core), seconds.
    pub runtime_seconds: f64,
    /// Per-core activity.
    pub cores: Vec<CoreActivity>,
    /// Per-cache activity.
    pub caches: Vec<CacheActivity>,
    /// DRAM read transactions.
    pub dram_reads: u64,
    /// DRAM write transactions.
    pub dram_writes: u64,
    /// DRAM transactions that hit an open row (0 when the row-buffer model
    /// is disabled).
    pub dram_row_hits: u64,
    /// Fraction of memory accesses actually simulated (sampling factor).
    pub simulated_fraction: f64,
    /// Sampled references extrapolated (not simulated) by the opt-in
    /// epoch-skip fast path; always 0 when
    /// [`crate::system::SystemConfig::epoch_skip`] is `None`.
    pub extrapolated_accesses: u64,
    /// Fault/ECC activity of the memory array (unscaled simulated counts),
    /// `None` when the run modelled a perfect array.
    pub fault: Option<FaultMemStats>,
}

impl SimReport {
    /// Total retired instructions.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Looks up a cache's activity by name.
    pub fn cache(&self, name: &str) -> Option<&CacheActivity> {
        self.caches.iter().find(|c| c.name == name)
    }

    /// Aggregate IPC over all cores.
    pub fn system_ipc(&self, frequency: f64) -> f64 {
        if self.runtime_seconds <= 0.0 {
            return 0.0;
        }
        self.total_instructions() as f64 / (self.runtime_seconds * frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_helpers() {
        let r = SimReport {
            kernel: "k".into(),
            runtime_seconds: 1.0,
            cores: vec![
                CoreActivity {
                    kind: CoreKind::Big,
                    instructions: 100,
                    busy_seconds: 0.9,
                    ipc: 1.2,
                },
                CoreActivity {
                    kind: CoreKind::Little,
                    instructions: 50,
                    busy_seconds: 1.0,
                    ipc: 0.6,
                },
            ],
            caches: vec![],
            dram_reads: 5,
            dram_writes: 2,
            dram_row_hits: 0,
            simulated_fraction: 1.0,
            extrapolated_accesses: 0,
            fault: None,
        };
        assert_eq!(r.total_instructions(), 150);
        assert!(r.cache("none").is_none());
        assert!((r.system_ipc(150.0) - 1.0).abs() < 1e-12);
    }
}
