//! A gem5-class manycore performance simulator.
//!
//! MAGPIE (the paper's Sec. IV) uses gem5 to "simulate a single-core or a
//! multi-core architecture with its memory hierarchy" and to produce "a
//! detailed report of the system activity including the number of memory
//! transactions (e.g. number of reads/writes, number of hits/misses) and the
//! execution time". This crate is that layer, sized to what the evaluation
//! consumes: aggregate activity statistics, not cycle-by-cycle microarchitecture.
//!
//! - [`core`] — big/LITTLE core timing models (frequency, CPI, stall
//!   overlap),
//! - [`cache`] — set-associative LRU caches with full activity counters,
//! - [`workload`] — statistical Parsec-like kernels (instruction mix,
//!   working set, stack-distance locality),
//! - [`dram`] — an opt-in row-buffer model for the memory controller,
//! - [`faultmem`] — an opt-in fault-aware memory array behind an ECC
//!   controller (seeded injection via `mss-fault`, bounded write retry,
//!   correct/detect/scrub, graceful degradation),
//! - [`system`] — the big.LITTLE platform: per-core L1s, per-cluster shared
//!   L2s, DRAM,
//! - [`stats`] — the activity report consumed by `mss-mcpat`,
//! - [`mod@reference`] — deliberately naive executable specification of the
//!   hot-loop semantics, used by the parity tests and the performance gate.
//!
//! # Example
//!
//! ```
//! use mss_gemsim::system::{System, SystemConfig};
//! use mss_gemsim::workload::Kernel;
//!
//! # fn main() -> Result<(), mss_gemsim::GemsimError> {
//! let config = SystemConfig::big_little_default();
//! let system = System::new(config)?;
//! let report = system.run(&Kernel::bodytrack(), 42)?;
//! assert!(report.runtime_seconds > 0.0);
//! assert!(report.total_instructions() > 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod core;
pub mod dram;
mod error;
pub mod faultmem;
pub mod reference;
pub mod stats;
pub mod system;
pub mod workload;

pub use error::GemsimError;
