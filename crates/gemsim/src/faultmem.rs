//! Fault-aware memory array: the resilience path of the memory hierarchy.
//!
//! The paper's MSS arrays are persistent MTJ cells, so — unlike SRAM — the
//! array itself is the dominant error source: stochastic write failures,
//! read disturbs, retention flips and fabrication stuck-at defects. This
//! module models one such array behind an ECC controller:
//!
//! - every access runs through the seeded [`FaultInjector`], so a fixed
//!   [`FaultPlan`] reproduces the exact same fault history forever,
//! - writes are verified and retried a bounded number of times
//!   ([`FaultMemConfig::max_write_retries`]); each retry sees a fresh
//!   (but reproducible) draw per failing bit,
//! - reads tally raw bit errors and classify them with
//!   [`EccScheme::classify`] into clean / corrected / detected /
//!   uncorrectable — an uncorrectable word is *counted and reported*,
//!   never a panic,
//! - corrected reads optionally repair the stored word in place
//!   ([`FaultMemConfig::demand_scrub`]), and [`FaultMemory::scrub`] walks
//!   every corrupted word in a background-scrub pass. Stuck-at cells
//!   survive any rewrite: scrubbing cannot repair them.
//!
//! Observability: the fault path increments `gemsim.fault.*` counters
//! (`injected`, `corrected`, `detected`, `uncorrectable`, `retried`) on the
//! global `mss-obs` registry when observability is enabled.

use std::collections::BTreeMap;

use mss_fault::{FaultInjector, FaultPlan};
use mss_vaet::ecc::{EccOutcome, EccScheme};

use crate::GemsimError;

/// Configuration of a fault-aware memory array: which faults to inject and
/// which code protects each word.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMemConfig {
    /// Seeded fault plan (rates + seed). [`FaultPlan::disabled`] makes the
    /// array perfect.
    pub plan: FaultPlan,
    /// The ECC code protecting each stored word.
    pub scheme: EccScheme,
    /// Write-verify retries after the initial attempt (bounded; `0` means
    /// write-and-hope).
    pub max_write_retries: u32,
    /// Repair the stored word in place when a read corrects it (demand
    /// scrubbing).
    pub demand_scrub: bool,
}

impl mss_pipe::StableHash for FaultMemConfig {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.plan.stable_hash(h);
        self.scheme.stable_hash(h);
        h.write_u32(self.max_write_retries);
        (self.demand_scrub).stable_hash(h);
    }
}

impl FaultMemConfig {
    /// A config with the controller defaults: two write-verify retries and
    /// demand scrubbing on.
    pub fn new(plan: FaultPlan, scheme: EccScheme) -> Self {
        Self {
            plan,
            scheme,
            max_write_retries: 2,
            demand_scrub: true,
        }
    }

    /// Returns the config with a different retry budget.
    pub const fn with_max_write_retries(mut self, retries: u32) -> Self {
        self.max_write_retries = retries;
        self
    }

    /// Returns the config with demand scrubbing switched on or off.
    pub const fn with_demand_scrub(mut self, on: bool) -> Self {
        self.demand_scrub = on;
        self
    }

    /// Validates the plan and the code.
    ///
    /// # Errors
    ///
    /// [`GemsimError::InvalidSystem`] for malformed fault rates or an empty
    /// ECC block.
    pub fn validate(&self) -> Result<(), GemsimError> {
        self.plan
            .model
            .validate()
            .map_err(|e| GemsimError::InvalidSystem {
                reason: format!("fault plan: {e}"),
            })?;
        if self.scheme.block_bits() == 0 {
            return Err(GemsimError::InvalidSystem {
                reason: "fault memory ECC scheme has an empty block".into(),
            });
        }
        Ok(())
    }
}

/// What one write did: how many attempts it took and what it left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Write attempts spent (1 = first try stuck).
    pub attempts: u32,
    /// Bits still wrong after the last attempt (failed writes + mismatched
    /// stuck-at cells).
    pub residual_bits: u32,
}

/// What one read saw after ECC decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The ECC controller's verdict on the word.
    pub outcome: EccOutcome,
    /// Raw bit errors observed before decoding.
    pub raw_errors: u32,
    /// Stored bits flipped by the read current during this access.
    pub disturbed_bits: u32,
    /// Observation-only transient flips during this access.
    pub transient_bits: u32,
}

/// Cumulative activity of a fault-aware array (unscaled simulated counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultMemStats {
    /// Word writes issued.
    pub writes: u64,
    /// Word reads issued.
    pub reads: u64,
    /// Background scrub passes run.
    pub scrubs: u64,
    /// Faulty bits injected (first-attempt write failures, stuck-at
    /// mismatches, read disturbs, transient flips).
    pub injected_bits: u64,
    /// Write-verify retry attempts issued.
    pub write_retries: u64,
    /// Bits still wrong when a write's retry budget ran out.
    pub write_residual_bits: u64,
    /// Reads that decoded with zero raw errors.
    pub reads_clean: u64,
    /// Reads fully corrected by the code.
    pub reads_corrected: u64,
    /// Reads with a detected-but-uncorrectable pattern.
    pub reads_detected: u64,
    /// Reads with a potentially silent error pattern.
    pub reads_uncorrectable: u64,
    /// Stored words repaired (demand scrubbing + background scrubs).
    pub scrubbed_words: u64,
}

impl FaultMemStats {
    /// Reads whose data survived (clean or corrected) over all reads;
    /// `1.0` when nothing was read.
    pub fn read_survival_rate(&self) -> f64 {
        if self.reads == 0 {
            return 1.0;
        }
        (self.reads_clean + self.reads_corrected) as f64 / self.reads as f64
    }

    /// Reads the code could not fix (detected + uncorrectable) over all
    /// reads; `0.0` when nothing was read.
    pub fn read_failure_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        (self.reads_detected + self.reads_uncorrectable) as f64 / self.reads as f64
    }
}

/// A fault-aware memory array behind an ECC controller.
///
/// State is sparse: only words with at least one wrong stored bit occupy
/// memory, so the array can span the full address space. All mutation is
/// sequential and every fault decision is a pure hash of
/// `(plan, address, epoch, bit)`, so a fixed operation sequence replays
/// bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMemory {
    injector: FaultInjector,
    scheme: EccScheme,
    max_write_retries: u32,
    demand_scrub: bool,
    /// Wrong stored bits per word address (sorted bit indices).
    errors: BTreeMap<u64, Vec<u32>>,
    /// Access sequence number; each write attempt and each read consumes
    /// one, keeping every fault draw in the word's history independent.
    epoch: u64,
    stats: FaultMemStats,
}

impl FaultMemory {
    /// Builds an array from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultMemConfig::validate`].
    pub fn new(config: FaultMemConfig) -> Result<Self, GemsimError> {
        config.validate()?;
        Ok(Self {
            injector: FaultInjector::new(config.plan),
            scheme: config.scheme,
            max_write_retries: config.max_write_retries,
            demand_scrub: config.demand_scrub,
            errors: BTreeMap::new(),
            epoch: 0,
            stats: FaultMemStats::default(),
        })
    }

    /// The activity counters so far.
    pub fn stats(&self) -> &FaultMemStats {
        &self.stats
    }

    /// The code protecting each word.
    pub fn scheme(&self) -> &EccScheme {
        &self.scheme
    }

    /// Stored bits currently wrong across the whole array.
    pub fn residual_bit_errors(&self) -> u64 {
        self.errors.values().map(|b| b.len() as u64).sum()
    }

    /// Words currently holding at least one wrong bit.
    pub fn corrupted_words(&self) -> u64 {
        self.errors.len() as u64
    }

    #[inline]
    fn next_epoch(&mut self) -> u64 {
        let e = self.epoch;
        self.epoch += 1;
        e
    }

    /// Writes the word at `addr` with write-verify: bits that fail are
    /// rewritten up to the retry budget, each retry drawing fresh outcomes.
    /// Mismatched stuck-at cells can never be repaired by rewriting.
    pub fn write(&mut self, addr: u64) -> WriteOutcome {
        self.stats.writes += 1;
        let bits = self.scheme.block_bits();
        let epoch = self.next_epoch();
        // Partition the word: stuck cells err iff their frozen value
        // mismatches the data (an independent fair hash bit, as in
        // `mss-fault` campaigns); healthy cells err per write attempt.
        let mut residual: Vec<u32> = Vec::new();
        let mut failing: Vec<u32> = Vec::new();
        for bit in 0..bits {
            match self.injector.stuck_at(addr, bit as u64) {
                Some(true) => residual.push(bit),
                Some(false) => {}
                None => {
                    if self.injector.write_fails(addr, epoch, bit as u64) {
                        failing.push(bit);
                    }
                }
            }
        }
        let injected = (residual.len() + failing.len()) as u64;
        self.stats.injected_bits += injected;
        let mut attempts = 1u32;
        while !failing.is_empty() && attempts <= self.max_write_retries {
            let epoch = self.next_epoch();
            attempts += 1;
            self.stats.write_retries += 1;
            failing.retain(|&bit| self.injector.write_fails(addr, epoch, bit as u64));
        }
        residual.extend_from_slice(&failing);
        residual.sort_unstable();
        let residual_bits = residual.len() as u32;
        self.stats.write_residual_bits += residual_bits as u64;
        if residual.is_empty() {
            self.errors.remove(&addr);
        } else {
            self.errors.insert(addr, residual);
        }
        if mss_obs::enabled() {
            mss_obs::counter_add("gemsim.fault.injected", injected);
            mss_obs::counter_add("gemsim.fault.retried", (attempts - 1) as u64);
        }
        WriteOutcome {
            attempts,
            residual_bits,
        }
    }

    /// Reads the word at `addr`: read disturbs flip *stored* bits, transient
    /// flips corrupt only this observation, and the ECC controller
    /// classifies the union. Uncorrectable words are counted and reported —
    /// degradation is graceful by construction.
    pub fn read(&mut self, addr: u64) -> ReadOutcome {
        self.stats.reads += 1;
        let bits = self.scheme.block_bits();
        let epoch = self.next_epoch();
        let mut stored = self.errors.remove(&addr).unwrap_or_default();
        let mut disturbed_bits = 0u32;
        let mut transient_bits = 0u32;
        let mut observed = Vec::new();
        for bit in 0..bits {
            if self.injector.read_disturbs(addr, epoch, bit as u64) {
                toggle(&mut stored, bit);
                disturbed_bits += 1;
            }
            if self.injector.transient_flips(addr, epoch, bit as u64) {
                toggle(&mut observed, bit);
                transient_bits += 1;
            }
        }
        // The sensed word differs from the truth where the stored state is
        // wrong XOR the sense amp glitched.
        for &bit in &stored {
            toggle(&mut observed, bit);
        }
        let raw_errors = observed.len() as u32;
        let outcome = self.scheme.classify(raw_errors);
        match outcome {
            EccOutcome::Clean => self.stats.reads_clean += 1,
            EccOutcome::Corrected => self.stats.reads_corrected += 1,
            EccOutcome::Detected => self.stats.reads_detected += 1,
            EccOutcome::Uncorrectable => self.stats.reads_uncorrectable += 1,
        }
        self.stats.injected_bits += (disturbed_bits + transient_bits) as u64;
        // Demand scrub: a corrected read recovered the true data, so the
        // controller rewrites the word — which fixes everything except
        // stuck-at cells.
        if self.demand_scrub && outcome == EccOutcome::Corrected && !stored.is_empty() {
            let before = stored.len();
            self.repair(addr, &mut stored);
            if stored.len() < before {
                self.stats.scrubbed_words += 1;
            }
        }
        if !stored.is_empty() {
            self.errors.insert(addr, stored);
        }
        if mss_obs::enabled() {
            mss_obs::counter_add(
                "gemsim.fault.injected",
                (disturbed_bits + transient_bits) as u64,
            );
            match outcome {
                EccOutcome::Clean => {}
                EccOutcome::Corrected => mss_obs::counter_add("gemsim.fault.corrected", 1),
                EccOutcome::Detected => mss_obs::counter_add("gemsim.fault.detected", 1),
                EccOutcome::Uncorrectable => mss_obs::counter_add("gemsim.fault.uncorrectable", 1),
            }
        }
        ReadOutcome {
            outcome,
            raw_errors,
            disturbed_bits,
            transient_bits,
        }
    }

    /// Background scrub: walks every corrupted word, repairs those the code
    /// can correct (except stuck-at cells, which survive any rewrite), and
    /// returns the number of words repaired. Words beyond the correction
    /// strength are left in place and tallied as detected/uncorrectable.
    pub fn scrub(&mut self) -> u64 {
        self.stats.scrubs += 1;
        let mut repaired = 0u64;
        let mut detected = 0u64;
        let mut uncorrectable = 0u64;
        let addrs: Vec<u64> = self.errors.keys().copied().collect();
        for addr in addrs {
            let Some(mut bits) = self.errors.remove(&addr) else {
                continue;
            };
            match self.scheme.classify(bits.len() as u32) {
                EccOutcome::Clean => {}
                EccOutcome::Corrected => {
                    let before = bits.len();
                    self.repair(addr, &mut bits);
                    if bits.len() < before {
                        repaired += 1;
                    }
                }
                EccOutcome::Detected => detected += 1,
                EccOutcome::Uncorrectable => uncorrectable += 1,
            }
            if !bits.is_empty() {
                self.errors.insert(addr, bits);
            }
        }
        self.stats.scrubbed_words += repaired;
        self.stats.reads_detected += detected;
        self.stats.reads_uncorrectable += uncorrectable;
        if mss_obs::enabled() {
            mss_obs::counter_add("gemsim.fault.corrected", repaired);
            mss_obs::counter_add("gemsim.fault.detected", detected);
            mss_obs::counter_add("gemsim.fault.uncorrectable", uncorrectable);
        }
        repaired
    }

    /// Rewrites a corrected word: every wrong bit is fixed except cells
    /// whose stuck value mismatches the data (rewriting cannot move them).
    fn repair(&self, addr: u64, bits: &mut Vec<u32>) {
        bits.retain(|&bit| self.injector.stuck_at(addr, bit as u64) == Some(true));
    }
}

/// Toggles membership of `bit` in a sorted bit list (a flip of an already
/// wrong bit makes it right again).
fn toggle(bits: &mut Vec<u32>, bit: u32) {
    match bits.binary_search(&bit) {
        Ok(i) => {
            bits.remove(i);
        }
        Err(i) => bits.insert(i, bit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_fault::FaultModel;

    fn plan(seed: u64, f: impl FnOnce(&mut FaultModel)) -> FaultPlan {
        let mut m = FaultModel::none();
        f(&mut m);
        FaultPlan::new(seed, m).expect("valid model")
    }

    fn mem(config: FaultMemConfig) -> FaultMemory {
        FaultMemory::new(config).expect("valid config")
    }

    #[test]
    fn perfect_array_stays_perfect() {
        let mut m = mem(FaultMemConfig::new(
            FaultPlan::disabled(),
            EccScheme::bch(1, 64),
        ));
        for addr in 0..64 {
            let w = m.write(addr);
            assert_eq!(w.attempts, 1);
            assert_eq!(w.residual_bits, 0);
            let r = m.read(addr);
            assert_eq!(r.outcome, EccOutcome::Clean);
            assert_eq!(r.raw_errors, 0);
        }
        assert_eq!(m.residual_bit_errors(), 0);
        assert_eq!(m.stats().reads_clean, 64);
        assert_eq!(m.stats().read_failure_rate(), 0.0);
        assert_eq!(m.stats().read_survival_rate(), 1.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut bad = FaultPlan::disabled();
        bad.model.write_fail_rate = 2.0;
        let err = FaultMemory::new(FaultMemConfig::new(bad, EccScheme::bch(1, 64)))
            .expect_err("bad rate");
        assert!(err.to_string().contains("fault plan"));
        let err = FaultMemory::new(FaultMemConfig::new(
            FaultPlan::disabled(),
            EccScheme::bch(0, 0),
        ))
        .expect_err("empty block");
        assert!(err.to_string().contains("empty block"));
    }

    #[test]
    fn write_retry_drains_failing_bits() {
        // At a 30% WER, a retried write leaves far fewer residual errors
        // than a write-and-hope one.
        let p = plan(21, |m| m.write_fail_rate = 0.3);
        let scheme = EccScheme::bch(1, 64);
        let mut none = mem(FaultMemConfig::new(p, scheme).with_max_write_retries(0));
        let mut four = mem(FaultMemConfig::new(p, scheme).with_max_write_retries(4));
        let (mut res_none, mut res_four) = (0u64, 0u64);
        for addr in 0..200 {
            res_none += none.write(addr).residual_bits as u64;
            res_four += four.write(addr).residual_bits as u64;
        }
        assert!(res_none > 0);
        // E[residual] drops by ~0.3^4; leave slack for the small sample.
        assert!(
            (res_four as f64) < 0.05 * res_none as f64,
            "retries left {res_four} of {res_none}"
        );
        assert!(four.stats().write_retries > 0);
        assert_eq!(none.stats().write_retries, 0);
    }

    #[test]
    fn uncorrectable_words_are_reported_not_panicked() {
        // Overwhelm a weak code: ~30% of stored bits wrong means nearly
        // every word exceeds t = 1.
        let p = plan(5, |m| m.write_fail_rate = 0.3);
        let mut m = mem(FaultMemConfig::new(p, EccScheme::bch(1, 64)).with_max_write_retries(0));
        for addr in 0..100 {
            m.write(addr);
            let r = m.read(addr);
            assert!(r.raw_errors <= m.scheme().block_bits());
        }
        let s = *m.stats();
        assert!(s.reads_detected + s.reads_uncorrectable > 0);
        assert_eq!(
            s.reads_clean + s.reads_corrected + s.reads_detected + s.reads_uncorrectable,
            s.reads
        );
        assert!(s.read_failure_rate() > 0.5);
    }

    #[test]
    fn demand_scrub_repairs_corrected_words() {
        // A mild WER with a strong code: most faulty words are corrected on
        // read and repaired in place, so a second read of every address
        // sees a (near-)clean array.
        let p = plan(9, |m| m.write_fail_rate = 0.01);
        let mut m = mem(FaultMemConfig::new(p, EccScheme::bch(4, 64)).with_max_write_retries(0));
        for addr in 0..500 {
            m.write(addr);
        }
        assert!(m.residual_bit_errors() > 0);
        for addr in 0..500 {
            m.read(addr);
        }
        assert!(m.stats().scrubbed_words > 0);
        // Every correctable word was repaired in place; only words beyond
        // the correction strength (if any) may still be corrupted.
        for bits in m.errors.values() {
            assert!(bits.len() as u32 > m.scheme().correctable);
        }
    }

    #[test]
    fn background_scrub_repairs_correctable_words_only() {
        let p = plan(13, |m| m.write_fail_rate = 0.02);
        let mut m = mem(FaultMemConfig::new(p, EccScheme::bch(2, 64))
            .with_max_write_retries(0)
            .with_demand_scrub(false));
        for addr in 0..2_000 {
            m.write(addr);
        }
        let corrupted = m.corrupted_words();
        assert!(corrupted > 0);
        let repaired = m.scrub();
        assert!(repaired > 0);
        assert_eq!(m.corrupted_words(), corrupted - repaired);
        // Whatever survived the scrub is beyond the correction strength.
        for bits in m.errors.values() {
            assert!(bits.len() as u32 > m.scheme().correctable);
        }
    }

    #[test]
    fn stuck_cells_survive_scrubbing() {
        let p = plan(17, |m| m.stuck_at_rate = 0.02);
        let mut m = mem(FaultMemConfig::new(p, EccScheme::bch(4, 64)));
        for addr in 0..200 {
            m.write(addr);
        }
        let before = m.residual_bit_errors();
        assert!(before > 0, "no stuck mismatches at rate 0.02");
        m.scrub();
        // Stuck mismatches are immovable: scrubbing repairs nothing here.
        assert_eq!(m.residual_bit_errors(), before);
    }

    #[test]
    fn operation_sequences_replay_bit_identically() {
        let p = plan(33, |m| {
            m.write_fail_rate = 0.05;
            m.read_disturb_rate = 0.01;
            m.transient_flip_rate = 0.005;
            m.stuck_at_rate = 0.001;
        });
        let cfg = FaultMemConfig::new(p, EccScheme::bch(2, 128));
        let run = |cfg: FaultMemConfig| {
            let mut m = mem(cfg);
            let mut log = Vec::new();
            for addr in 0..300 {
                log.push((m.write(addr).residual_bits, 0));
            }
            for addr in (0..300).rev() {
                let r = m.read(addr);
                log.push((r.raw_errors, r.disturbed_bits + r.transient_bits));
            }
            m.scrub();
            (log, *m.stats(), m.residual_bit_errors())
        };
        assert_eq!(run(cfg), run(cfg));
    }

    #[test]
    fn read_disturb_accumulates_into_stored_state() {
        // Disturb-only plan: repeated reads of the same word keep flipping
        // stored bits, so errors accumulate over time without any writes
        // failing. Demand scrub off to watch the decay.
        let p = plan(41, |m| m.read_disturb_rate = 0.004);
        let mut m = mem(FaultMemConfig::new(p, EccScheme::bch(1, 256)).with_demand_scrub(false));
        m.write(7);
        assert_eq!(m.residual_bit_errors(), 0);
        for _ in 0..200 {
            m.read(7);
        }
        assert!(
            m.residual_bit_errors() > 0,
            "200 disturb-prone reads left no trace"
        );
    }

    #[test]
    fn transients_do_not_corrupt_stored_state() {
        let p = plan(43, |m| m.transient_flip_rate = 0.01);
        let mut m = mem(FaultMemConfig::new(p, EccScheme::bch(1, 256)));
        m.write(1);
        let mut observed = 0u32;
        for _ in 0..100 {
            observed += m.read(1).transient_bits;
        }
        assert!(observed > 0, "no transient fired in 100 reads at 1%");
        // Observation-only: the array itself never degraded.
        assert_eq!(m.residual_bit_errors(), 0);
    }
}
