//! The big.LITTLE platform simulator.
//!
//! Threads are distributed round-robin over every core of every cluster;
//! each core owns a private L1D, each cluster shares an L2, and all clusters
//! share DRAM. Memory-access streams are generated statistically per thread
//! (see [`crate::workload`]) and — for tractability — sampled: up to
//! [`SystemConfig::sample_accesses_per_thread`] references are simulated per
//! thread and the counters scaled back to the full run.
//!
//! Stall accounting (what reaches the core's execution time):
//!
//! - an L1 hit is pipelined away (no stall),
//! - an L1 miss exposes the L2 read-hit latency,
//! - an L2 miss additionally exposes the DRAM latency, and the returning
//!   fill must be *written into the L2 array* — with an STT-MRAM L2 this
//!   write is slow and partially exposed ([`FILL_WRITE_EXPOSURE`]),
//! - dirty evictions from L1 write the L2 array too, mostly hidden behind
//!   buffers ([`WRITEBACK_EXPOSURE`]).

use mss_exec::{par_map, ParallelConfig};

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::core::CoreModel;
use crate::dram::{DramSim, RowBufferConfig};
use crate::faultmem::{FaultMemConfig, FaultMemory};
use crate::stats::{CacheActivity, CoreActivity, SimReport};
use crate::workload::{AccessStream, Kernel};
use crate::GemsimError;

/// Fraction of an L2 fill-write latency exposed to the core.
pub const FILL_WRITE_EXPOSURE: f64 = 0.35;
/// Fraction of an L1→L2 write-back latency exposed to the core.
pub const WRITEBACK_EXPOSURE: f64 = 0.15;

/// One cluster: homogeneous cores + private L1Ds + a shared L2.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Cluster display name ("big", "LITTLE").
    pub name: String,
    /// Core timing model.
    pub core: CoreModel,
    /// Number of cores.
    pub cores: u32,
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
}

impl mss_pipe::StableHash for ClusterConfig {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_str(&self.name);
        self.core.stable_hash(h);
        h.write_u32(self.cores);
        self.l1d.stable_hash(h);
        self.l2.stable_hash(h);
    }
}

/// The platform configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Clusters (the default platform has big + LITTLE).
    pub clusters: Vec<ClusterConfig>,
    /// DRAM access latency, seconds.
    pub dram_latency: f64,
    /// DRAM energy per transaction, joules.
    pub dram_energy: f64,
    /// DRAM background power, watts.
    pub dram_background_power: f64,
    /// Optional row-buffer model; `None` charges the flat latency per
    /// transaction, `Some` makes open-row hits cost
    /// [`RowBufferConfig::hit_latency`] instead.
    pub row_buffer: Option<RowBufferConfig>,
    /// Next-line prefetch into the L2 on every demand miss (opt-in): the
    /// sequential follower line is fetched alongside, hiding the DRAM
    /// latency of streaming kernels at the cost of extra DRAM traffic.
    pub l2_next_line_prefetch: bool,
    /// Per-thread cap on simulated memory references (sampling).
    pub sample_accesses_per_thread: u64,
    /// Optional fault-aware main-memory array: every DRAM-level transaction
    /// runs through a seeded fault injector and an ECC controller (see
    /// [`crate::faultmem`]). `None` models a perfect array.
    pub fault: Option<FaultMemConfig>,
}

fn sram_l1(name: &str) -> CacheConfig {
    CacheConfig {
        name: name.to_string(),
        capacity: 32 << 10,
        associativity: 4,
        line_bytes: 64,
        read_latency: 1.0e-9,
        write_latency: 1.0e-9,
        read_energy: 10e-12,
        write_energy: 12e-12,
        leakage_power: 8e-3,
    }
}

impl mss_pipe::StableHash for SystemConfig {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.clusters.stable_hash(h);
        h.write_f64(self.dram_latency);
        h.write_f64(self.dram_energy);
        h.write_f64(self.dram_background_power);
        match &self.row_buffer {
            None => h.write_u8(0),
            Some(rb) => {
                h.write_u8(1);
                rb.stable_hash(h);
            }
        }
        self.l2_next_line_prefetch.stable_hash(h);
        h.write_u64(self.sample_accesses_per_thread);
        match &self.fault {
            None => h.write_u8(0),
            Some(f) => {
                h.write_u8(1);
                f.stable_hash(h);
            }
        }
    }
}

impl SystemConfig {
    /// The default Exynos-5-style big.LITTLE platform with all-SRAM caches
    /// (the paper's Full-SRAM reference scenario).
    pub fn big_little_default() -> Self {
        Self {
            clusters: vec![
                ClusterConfig {
                    name: "big".into(),
                    core: CoreModel::big(),
                    cores: 4,
                    l1d: sram_l1("big.L1D"),
                    l2: CacheConfig {
                        name: "big.L2".into(),
                        capacity: 2 << 20,
                        associativity: 16,
                        line_bytes: 64,
                        read_latency: 5.0e-9,
                        write_latency: 5.0e-9,
                        read_energy: 120e-12,
                        write_energy: 130e-12,
                        leakage_power: 0.35,
                    },
                },
                ClusterConfig {
                    name: "LITTLE".into(),
                    core: CoreModel::little(),
                    cores: 4,
                    l1d: sram_l1("LITTLE.L1D"),
                    l2: CacheConfig {
                        name: "LITTLE.L2".into(),
                        capacity: 512 << 10,
                        associativity: 8,
                        line_bytes: 64,
                        read_latency: 4.0e-9,
                        write_latency: 4.0e-9,
                        read_energy: 60e-12,
                        write_energy: 65e-12,
                        leakage_power: 0.09,
                    },
                },
            ],
            dram_latency: 80e-9,
            dram_energy: 15e-9,
            dram_background_power: 0.15,
            row_buffer: None,
            l2_next_line_prefetch: false,
            sample_accesses_per_thread: 150_000,
            fault: None,
        }
    }

    /// Validates the platform.
    ///
    /// # Errors
    ///
    /// [`GemsimError::InvalidSystem`] / [`GemsimError::InvalidCache`].
    pub fn validate(&self) -> Result<(), GemsimError> {
        if self.clusters.is_empty() {
            return Err(GemsimError::InvalidSystem {
                reason: "no clusters".into(),
            });
        }
        if self.clusters.iter().all(|c| c.cores == 0) {
            return Err(GemsimError::InvalidSystem {
                reason: "no cores in any cluster".into(),
            });
        }
        if self.dram_latency <= 0.0 || self.sample_accesses_per_thread == 0 {
            return Err(GemsimError::InvalidSystem {
                reason: "DRAM latency and sampling cap must be positive".into(),
            });
        }
        for c in &self.clusters {
            c.l1d.validate()?;
            c.l2.validate()?;
        }
        if let Some(rb) = &self.row_buffer {
            rb.validate()?;
        }
        if let Some(fault) = &self.fault {
            fault.validate()?;
        }
        Ok(())
    }

    /// Total cores across all clusters.
    pub fn total_cores(&self) -> u32 {
        self.clusters.iter().map(|c| c.cores).sum()
    }
}

/// Where a kernel's threads are allowed to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Threads spread over every core of every cluster (default).
    AllClusters,
    /// Threads pinned to the named cluster; the other cluster idles (and
    /// only leaks).
    Cluster(String),
}

/// The platform simulator.
#[derive(Debug, Clone)]
pub struct System {
    config: SystemConfig,
}

impl System {
    /// Validates and wraps a platform configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`SystemConfig::validate`].
    pub fn new(config: SystemConfig) -> Result<Self, GemsimError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The platform configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs one kernel spread over every cluster (see [`System::run_placed`]).
    ///
    /// # Errors
    ///
    /// [`GemsimError::InvalidWorkload`] for malformed kernels.
    pub fn run(&self, kernel: &Kernel, seed: u64) -> Result<SimReport, GemsimError> {
        self.run_placed(kernel, seed, &Placement::AllClusters)
    }

    /// Runs a batch of kernels in parallel (one task per kernel), returning
    /// reports **in kernel order**.
    ///
    /// Every kernel replays its own deterministic access streams from
    /// `seed`, so the batch is bit-identical to running the kernels one by
    /// one — threads only change the wall time.
    ///
    /// # Errors
    ///
    /// The first kernel error in kernel order.
    pub fn run_many(
        &self,
        kernels: &[Kernel],
        seed: u64,
        exec: &ParallelConfig,
    ) -> Result<Vec<SimReport>, GemsimError> {
        let _span = mss_obs::span("gemsim.run_many");
        par_map(exec, kernels, |_, kernel| self.run(kernel, seed))
            .into_iter()
            .collect()
    }

    /// Runs one kernel with an explicit thread placement and reports system
    /// activity.
    ///
    /// # Errors
    ///
    /// [`GemsimError::InvalidWorkload`] for malformed kernels, and
    /// [`GemsimError::InvalidSystem`] when a pinned cluster name does not
    /// exist.
    pub fn run_placed(
        &self,
        kernel: &Kernel,
        seed: u64,
        placement: &Placement,
    ) -> Result<SimReport, GemsimError> {
        let _span = mss_obs::span("gemsim.run");
        kernel.validate()?;
        if let Placement::Cluster(name) = placement {
            if !self.config.clusters.iter().any(|c| &c.name == name) {
                return Err(GemsimError::InvalidSystem {
                    reason: format!("no cluster named '{name}' to pin to"),
                });
            }
        }
        let cluster_active = |cluster: &ClusterConfig| match placement {
            Placement::AllClusters => true,
            Placement::Cluster(name) => &cluster.name == name,
        };
        let total_cores: u64 = self
            .config
            .clusters
            .iter()
            .filter(|c| cluster_active(c))
            .map(|c| c.cores as u64)
            .sum();
        let threads = kernel.threads as u64;
        // Thread t -> core (t mod cores). Work is balanced by compute
        // throughput (frequency / CPI), modelling the work-stealing
        // runtimes Parsec kernels use: every core finishes its compute
        // share simultaneously, so memory stalls decide the critical path.
        let total_weight: f64 = {
            let mut w = 0.0;
            let mut core_id = 0u64;
            for cluster in &self.config.clusters {
                if !cluster_active(cluster) {
                    continue;
                }
                for _ in 0..cluster.cores {
                    let owned = (0..threads).filter(|t| t % total_cores == core_id).count();
                    w += owned as f64 * cluster.core.frequency / cluster.core.base_cpi;
                    core_id += 1;
                }
            }
            w
        };

        let mut cores_out = Vec::new();
        let mut caches_out = Vec::new();
        let mut dram_reads_scaled = 0u64;
        let mut dram_writes_scaled = 0u64;
        let mut dram_row_hits_scaled = 0u64;
        let mut dram = match &self.config.row_buffer {
            Some(rb) => Some(DramSim::new(*rb)?),
            None => None,
        };
        // The fault-aware array sees DRAM-level transactions at line
        // granularity; it is rebuilt per run so identical seeds replay an
        // identical fault history.
        let mut fault_mem = match &self.config.fault {
            Some(cfg) => Some(FaultMemory::new(*cfg)?),
            None => None,
        };
        let mut runtime: f64 = 0.0;

        let mut global_core_index = 0u32;
        for cluster in &self.config.clusters {
            if !cluster_active(cluster) {
                // Idle cluster: cores retire nothing, caches see no traffic;
                // their leakage is still accounted by the power layer.
                for _ in 0..cluster.cores {
                    cores_out.push(CoreActivity {
                        kind: cluster.core.kind,
                        instructions: 0,
                        busy_seconds: 0.0,
                        ipc: 0.0,
                    });
                }
                caches_out.push(CacheActivity {
                    name: cluster.l1d.name.clone(),
                    config: cluster.l1d.clone(),
                    stats: CacheStats::default(),
                });
                caches_out.push(CacheActivity {
                    name: cluster.l2.name.clone(),
                    config: cluster.l2.clone(),
                    stats: CacheStats::default(),
                });
                continue;
            }
            let weight = cluster.core.frequency / cluster.core.base_cpi;
            let instr_per_thread = (kernel.instructions as f64 * weight / total_weight) as u64;
            let mem_per_thread = (instr_per_thread as f64 * kernel.memory_ratio) as u64;
            let sim_per_thread = mem_per_thread.min(self.config.sample_accesses_per_thread);
            let scale = if sim_per_thread == 0 {
                1.0
            } else {
                mem_per_thread as f64 / sim_per_thread as f64
            };
            let mut l2 = Cache::new(cluster.l2.clone())?;
            let mut l1_total = CacheStats::default();
            let mut dram_reads_sim = 0u64;
            let mut dram_writes_sim = 0u64;
            for local_core in 0..cluster.cores {
                let core_id = global_core_index + local_core;
                // Threads owned by this core.
                let owned: Vec<u64> = (0..threads)
                    .filter(|t| t % total_cores == core_id as u64)
                    .collect();
                let mut l1 = Cache::new(cluster.l1d.clone())?;
                let mut stall_seconds_sim = 0.0;
                for &t in &owned {
                    let mut stream = AccessStream::new(kernel, t as u32, seed);
                    for _ in 0..sim_per_thread {
                        let acc = stream.next_access();
                        let l1_out = l1.access(acc.address, acc.write);
                        if l1_out.hit {
                            continue;
                        }
                        // L1 miss: read the line from L2.
                        let l2_out = l2.access(acc.address, false);
                        stall_seconds_sim += cluster.l2.read_latency;
                        let line = acc.address / cluster.l2.line_bytes as u64;
                        if !l2_out.hit {
                            // L2 miss: DRAM fetch + fill write into the L2 array.
                            dram_reads_sim += 1;
                            if let Some(fm) = fault_mem.as_mut() {
                                fm.read(line);
                            }
                            if self.config.l2_next_line_prefetch {
                                // Pull the follower line in alongside; a
                                // line already present is left untouched.
                                let next = acc.address + cluster.l2.line_bytes as u64;
                                let pf = l2.prefetch(next);
                                if pf.allocated {
                                    dram_reads_sim += 1;
                                    if let Some(fm) = fault_mem.as_mut() {
                                        fm.read(next / cluster.l2.line_bytes as u64);
                                    }
                                }
                                if pf.writeback {
                                    dram_writes_sim += 1;
                                    // Victim addresses are not tracked; the
                                    // trigger line stands in as the fault
                                    // site (deterministic either way).
                                    if let Some(fm) = fault_mem.as_mut() {
                                        fm.write(next / cluster.l2.line_bytes as u64);
                                    }
                                }
                            }
                            let dram_latency = if let Some(d) = dram.as_mut() {
                                if d.access(acc.address) {
                                    d.config().hit_latency
                                } else {
                                    self.config.dram_latency
                                }
                            } else {
                                self.config.dram_latency
                            };
                            stall_seconds_sim +=
                                dram_latency + FILL_WRITE_EXPOSURE * cluster.l2.write_latency;
                        }
                        if l2_out.writeback {
                            dram_writes_sim += 1;
                            if let Some(fm) = fault_mem.as_mut() {
                                fm.write(line);
                            }
                        }
                        if l1_out.writeback {
                            // Dirty L1 line written into the L2 array.
                            let wb = l2.access(acc.address ^ 0x8000_0000, true);
                            stall_seconds_sim += WRITEBACK_EXPOSURE * cluster.l2.write_latency;
                            if wb.writeback {
                                dram_writes_sim += 1;
                                if let Some(fm) = fault_mem.as_mut() {
                                    fm.write(
                                        (acc.address ^ 0x8000_0000) / cluster.l2.line_bytes as u64,
                                    );
                                }
                            }
                        }
                    }
                }
                let instructions = instr_per_thread * owned.len() as u64;
                let stall_cycles = cluster.core.cycles(stall_seconds_sim * scale);
                let busy = cluster.core.execution_seconds(instructions, stall_cycles);
                let ipc = if busy > 0.0 {
                    instructions as f64 / (busy * cluster.core.frequency)
                } else {
                    0.0
                };
                runtime = runtime.max(busy);
                cores_out.push(CoreActivity {
                    kind: cluster.core.kind,
                    instructions,
                    busy_seconds: busy,
                    ipc,
                });
                l1_total.merge(l1.stats());
            }
            caches_out.push(CacheActivity {
                name: cluster.l1d.name.clone(),
                config: cluster.l1d.clone(),
                stats: scale_stats(&l1_total, scale),
            });
            caches_out.push(CacheActivity {
                name: cluster.l2.name.clone(),
                config: cluster.l2.clone(),
                stats: scale_stats(l2.stats(), scale),
            });
            dram_reads_scaled += (dram_reads_sim as f64 * scale) as u64;
            dram_writes_scaled += (dram_writes_sim as f64 * scale) as u64;
            if let Some(d) = dram.as_mut() {
                // Attribute hits proportionally per cluster (hit counters are
                // cumulative; take the delta scaled by this cluster's factor).
                dram_row_hits_scaled = (d.hits() as f64 * scale) as u64;
            }
            global_core_index += cluster.cores;
        }

        let sampled_fraction = {
            // Report the first active cluster's sampling ratio (diagnostic
            // only).
            let c0 = self
                .config
                .clusters
                .iter()
                .find(|c| cluster_active(c))
                .expect("at least one active cluster");
            let w = c0.core.frequency / c0.core.base_cpi;
            let instr = (kernel.instructions as f64 * w / total_weight) as u64;
            let mem = (instr as f64 * kernel.memory_ratio) as u64;
            let sim = mem.min(self.config.sample_accesses_per_thread);
            if mem == 0 {
                1.0
            } else {
                sim as f64 / mem as f64
            }
        };
        let report = SimReport {
            kernel: kernel.name.clone(),
            runtime_seconds: runtime,
            cores: cores_out,
            caches: caches_out,
            dram_reads: dram_reads_scaled,
            dram_writes: dram_writes_scaled,
            dram_row_hits: dram_row_hits_scaled,
            simulated_fraction: sampled_fraction,
            fault: fault_mem.map(|fm| *fm.stats()),
        };
        if mss_obs::enabled() {
            mss_obs::counter_add("gemsim.runs", 1);
            mss_obs::counter_add("gemsim.instructions", report.total_instructions());
            mss_obs::counter_add("gemsim.dram.reads", report.dram_reads);
            mss_obs::counter_add("gemsim.dram.writes", report.dram_writes);
            for cache in &report.caches {
                mss_obs::counter_add("gemsim.cache.hits", cache.stats.hits());
                mss_obs::counter_add("gemsim.cache.misses", cache.stats.misses());
            }
            mss_obs::record_value("gemsim.runtime_seconds", report.runtime_seconds);
        }
        Ok(report)
    }
}

fn scale_stats(s: &CacheStats, scale: f64) -> CacheStats {
    let f = |v: u64| (v as f64 * scale).round() as u64;
    CacheStats {
        reads: f(s.reads),
        writes: f(s.writes),
        read_hits: f(s.read_hits),
        write_hits: f(s.write_hits),
        writebacks: f(s.writebacks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SystemConfig {
        let mut c = SystemConfig::big_little_default();
        c.sample_accesses_per_thread = 8_000;
        c
    }

    #[test]
    fn default_platform_validates() {
        SystemConfig::big_little_default().validate().unwrap();
    }

    #[test]
    fn bad_platforms_rejected() {
        let mut c = SystemConfig::big_little_default();
        c.clusters.clear();
        assert!(System::new(c).is_err());
        let mut c = SystemConfig::big_little_default();
        c.dram_latency = 0.0;
        assert!(System::new(c).is_err());
        let mut c = SystemConfig::big_little_default();
        c.clusters[0].l2.line_bytes = 63;
        assert!(System::new(c).is_err());
    }

    #[test]
    fn run_produces_consistent_counters() {
        let sys = System::new(quick_config()).unwrap();
        let report = sys.run(&Kernel::bodytrack(), 1).unwrap();
        assert!(report.runtime_seconds > 0.0);
        assert_eq!(report.cores.len(), 8);
        assert_eq!(report.caches.len(), 4);
        for c in &report.caches {
            assert_eq!(c.stats.hits() + c.stats.misses(), c.stats.accesses());
        }
        // DRAM traffic exists for an 8 MiB working set over 2.5 MiB of L2.
        assert!(report.dram_reads > 0);
        // IPC is positive and below issue limits.
        for core in &report.cores {
            assert!(core.ipc > 0.0 && core.ipc < 2.0);
        }
    }

    #[test]
    fn run_many_matches_sequential_runs() {
        let sys = System::new(quick_config()).unwrap();
        let kernels = [
            Kernel::bodytrack(),
            Kernel::swaptions(),
            Kernel::streamcluster(),
        ];
        let batch = sys
            .run_many(&kernels, 9, &ParallelConfig::serial().with_threads(4))
            .unwrap();
        assert_eq!(batch.len(), kernels.len());
        for (kernel, report) in kernels.iter().zip(&batch) {
            assert_eq!(report, &sys.run(kernel, 9).unwrap());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let sys = System::new(quick_config()).unwrap();
        let a = sys.run(&Kernel::bodytrack(), 7).unwrap();
        let b = sys.run(&Kernel::bodytrack(), 7).unwrap();
        assert_eq!(a, b);
        let c = sys.run(&Kernel::bodytrack(), 8).unwrap();
        assert_ne!(a.runtime_seconds, c.runtime_seconds);
    }

    #[test]
    fn slower_l2_write_latency_slows_the_run() {
        let base = quick_config();
        let mut slow = base.clone();
        for cl in &mut slow.clusters {
            cl.l2.write_latency = 15e-9; // STT-MRAM-like write
        }
        let t_base = System::new(base)
            .unwrap()
            .run(&Kernel::fluidanimate(), 3)
            .unwrap()
            .runtime_seconds;
        let t_slow = System::new(slow)
            .unwrap()
            .run(&Kernel::fluidanimate(), 3)
            .unwrap()
            .runtime_seconds;
        assert!(t_slow > t_base, "slow {t_slow} vs base {t_base}");
    }

    #[test]
    fn larger_l2_reduces_dram_traffic() {
        // Enough samples to get past the cold-start window, so capacity
        // effects are visible.
        let mut base = quick_config();
        base.sample_accesses_per_thread = 40_000;
        let mut big = base.clone();
        for cl in &mut big.clusters {
            cl.l2.capacity *= 4;
        }
        let k = Kernel::freqmine();
        let r_base = System::new(base).unwrap().run(&k, 4).unwrap();
        let r_big = System::new(big).unwrap().run(&k, 4).unwrap();
        assert!(
            r_big.dram_reads < r_base.dram_reads,
            "big {} vs base {}",
            r_big.dram_reads,
            r_base.dram_reads
        );
        assert!(r_big.runtime_seconds < r_base.runtime_seconds);
    }

    #[test]
    fn compute_bound_kernel_is_insensitive_to_l2() {
        let base = quick_config();
        let mut slow = base.clone();
        for cl in &mut slow.clusters {
            cl.l2.write_latency = 15e-9;
        }
        let k = Kernel::swaptions(); // tiny working set
        let t_base = System::new(base)
            .unwrap()
            .run(&k, 5)
            .unwrap()
            .runtime_seconds;
        let t_slow = System::new(slow)
            .unwrap()
            .run(&k, 5)
            .unwrap()
            .runtime_seconds;
        let slowdown = t_slow / t_base;
        assert!(slowdown < 1.10, "slowdown = {slowdown}");
    }

    #[test]
    fn pinning_isolates_a_cluster() {
        let sys = System::new(quick_config()).unwrap();
        let k = Kernel::bodytrack();
        let little = sys
            .run_placed(&k, 3, &Placement::Cluster("LITTLE".into()))
            .unwrap();
        // Only LITTLE cores retire instructions.
        for c in &little.cores {
            match c.kind {
                crate::core::CoreKind::Big => assert_eq!(c.instructions, 0),
                crate::core::CoreKind::Little => assert!(c.instructions > 0),
            }
        }
        // The big cluster's caches see no traffic.
        assert_eq!(little.cache("big.L2").unwrap().stats.accesses(), 0);
        assert!(little.cache("LITTLE.L2").unwrap().stats.accesses() > 0);
        // Pinned-LITTLE runs are slower than spreading over all cores.
        let all = sys.run(&k, 3).unwrap();
        assert!(little.runtime_seconds > all.runtime_seconds);
    }

    #[test]
    fn pinning_to_unknown_cluster_errors() {
        let sys = System::new(quick_config()).unwrap();
        assert!(sys
            .run_placed(&Kernel::bodytrack(), 1, &Placement::Cluster("mid".into()))
            .is_err());
    }

    #[test]
    fn next_line_prefetch_helps_streaming() {
        let base = quick_config();
        let mut pf = base.clone();
        pf.l2_next_line_prefetch = true;
        let k = Kernel::streamcluster();
        let plain = System::new(base).unwrap().run(&k, 11).unwrap();
        let fetched = System::new(pf).unwrap().run(&k, 11).unwrap();
        // The prefetcher converts demand misses into hits...
        let mr_plain = plain.cache("LITTLE.L2").unwrap().stats.miss_ratio();
        let mr_pf = fetched.cache("LITTLE.L2").unwrap().stats.miss_ratio();
        assert!(mr_pf < mr_plain, "pf {mr_pf} vs plain {mr_plain}");
        // ...which shortens the run at the cost of extra DRAM traffic.
        assert!(fetched.runtime_seconds < plain.runtime_seconds);
        assert!(fetched.dram_reads > plain.dram_reads);
    }

    #[test]
    fn row_buffer_speeds_up_streaming_kernels() {
        let base = quick_config();
        let mut with_rb = base.clone();
        with_rb.row_buffer = Some(crate::dram::RowBufferConfig::lpddr_default());
        let k = Kernel::streamcluster();
        let flat = System::new(base).unwrap().run(&k, 6).unwrap();
        let rb = System::new(with_rb).unwrap().run(&k, 6).unwrap();
        assert_eq!(rb.dram_reads, flat.dram_reads);
        assert!(rb.dram_row_hits > 0);
        assert!(
            rb.runtime_seconds < flat.runtime_seconds,
            "rb {} vs flat {}",
            rb.runtime_seconds,
            flat.runtime_seconds
        );
        assert_eq!(flat.dram_row_hits, 0);
    }

    #[test]
    fn fault_free_runs_report_no_fault_stats() {
        let sys = System::new(quick_config()).unwrap();
        let r = sys.run(&Kernel::bodytrack(), 1).unwrap();
        assert!(r.fault.is_none());
    }

    fn faulty_config() -> SystemConfig {
        use mss_fault::{FaultModel, FaultPlan};
        use mss_vaet::ecc::EccScheme;
        let mut c = quick_config();
        let mut m = FaultModel::none();
        m.write_fail_rate = 0.002;
        m.read_disturb_rate = 0.0005;
        c.fault = Some(FaultMemConfig::new(
            FaultPlan::new(77, m).unwrap(),
            EccScheme::bch(2, 512),
        ));
        c
    }

    #[test]
    fn faulty_memory_degrades_gracefully() {
        let sys = System::new(faulty_config()).unwrap();
        let r = sys.run(&Kernel::bodytrack(), 1).unwrap();
        let f = r.fault.expect("fault stats present");
        // DRAM traffic ran through the array...
        assert!(f.reads > 0 && f.writes > 0);
        assert!(f.injected_bits > 0);
        // ...every read got a verdict, and nothing panicked on the way.
        assert_eq!(
            f.reads_clean + f.reads_corrected + f.reads_detected + f.reads_uncorrectable,
            f.reads
        );
        // Timing and traffic are unchanged by error accounting.
        let clean = System::new(quick_config())
            .unwrap()
            .run(&Kernel::bodytrack(), 1)
            .unwrap();
        assert_eq!(r.runtime_seconds, clean.runtime_seconds);
        assert_eq!(r.dram_reads, clean.dram_reads);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let sys = System::new(faulty_config()).unwrap();
        let a = sys.run(&Kernel::bodytrack(), 7).unwrap();
        let b = sys.run(&Kernel::bodytrack(), 7).unwrap();
        assert_eq!(a, b);
        let batch = sys
            .run_many(
                &[Kernel::bodytrack(), Kernel::streamcluster()],
                7,
                &ParallelConfig::serial().with_threads(2),
            )
            .unwrap();
        assert_eq!(batch[0], a);
    }

    #[test]
    fn bad_fault_config_rejected() {
        use mss_fault::FaultPlan;
        use mss_vaet::ecc::EccScheme;
        let mut c = quick_config();
        let mut plan = FaultPlan::disabled();
        plan.model.stuck_at_rate = -1.0;
        c.fault = Some(FaultMemConfig::new(plan, EccScheme::bch(1, 64)));
        assert!(System::new(c).is_err());
    }

    #[test]
    fn sampling_fraction_reported() {
        let sys = System::new(quick_config()).unwrap();
        let r = sys.run(&Kernel::bodytrack(), 1).unwrap();
        assert!(r.simulated_fraction > 0.0 && r.simulated_fraction <= 1.0);
    }
}
