//! The big.LITTLE platform simulator.
//!
//! Threads are distributed round-robin over every core of every cluster;
//! each core owns a private L1D, each cluster shares an L2, and all clusters
//! share DRAM. Memory-access streams are generated statistically per thread
//! (see [`crate::workload`]) and — for tractability — sampled: up to
//! [`SystemConfig::sample_accesses_per_thread`] references are simulated per
//! thread and the counters scaled back to the full run.
//!
//! Stall accounting (what reaches the core's execution time):
//!
//! - an L1 hit is pipelined away (no stall),
//! - an L1 miss exposes the L2 read-hit latency,
//! - an L2 miss additionally exposes the DRAM latency, and the returning
//!   fill must be *written into the L2 array* — with an STT-MRAM L2 this
//!   write is slow and partially exposed ([`FILL_WRITE_EXPOSURE`]),
//! - dirty evictions from L1 write the L2 array too, mostly hidden behind
//!   buffers ([`WRITEBACK_EXPOSURE`]).

use mss_exec::supervise::{CancelToken, PartialSweep, SupervisorConfig};
use mss_exec::{par_map, ParallelConfig};

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::core::CoreModel;
use crate::dram::{DramSim, RowBufferConfig};
use crate::faultmem::{FaultMemConfig, FaultMemory};
use crate::stats::{CacheActivity, CoreActivity, SimReport};
use crate::workload::{AccessStream, Kernel, MemoryAccess};
use crate::GemsimError;

/// Fraction of an L2 fill-write latency exposed to the core.
pub const FILL_WRITE_EXPOSURE: f64 = 0.35;
/// Fraction of an L1→L2 write-back latency exposed to the core.
pub const WRITEBACK_EXPOSURE: f64 = 0.15;

/// Accesses synthesized per [`AccessStream::fill`] batch when the
/// epoch-skip fast path is off (with it on, the window size is the batch).
/// Batching amortizes the generator call and keeps the per-access state in
/// registers; it does not change the consumption order, so reports are
/// bit-identical to the one-at-a-time loop.
const DEFAULT_CHUNK: usize = 1024;

/// Opt-in steady-state extrapolation for the simulate-kernel hot loop.
///
/// The per-thread access stream is simulated in windows of
/// [`EpochSkipConfig::window`] references. After each full window the
/// counter deltas (cache misses/write-backs, DRAM traffic, row hits, stall
/// time) are compared against the previous window's; once
/// [`EpochSkipConfig::converge_windows`] consecutive windows agree within
/// [`EpochSkipConfig::tolerance`] (relative), the phase is declared steady
/// and the thread's **remaining accesses are extrapolated** — every counter
/// is charged `remaining / window` times the last window's delta instead of
/// being simulated.
///
/// Approximations (the reason this is opt-in and off by default):
/// counters become window-rate estimates rather than exact simulation, and
/// the fault-aware memory array ([`SystemConfig::fault`]) sees no
/// transactions for the extrapolated tail, so fault/ECC statistics cover
/// only the simulated prefix. [`SimReport::extrapolated_accesses`] reports
/// how many references were skipped; it is 0 when this feature is off, and
/// default reports stay exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSkipConfig {
    /// References per profiling window (also the hot-loop batch size).
    pub window: u64,
    /// Consecutive windows that must match their predecessor before the
    /// remaining tail is extrapolated.
    pub converge_windows: u32,
    /// Relative tolerance when comparing consecutive window profiles.
    pub tolerance: f64,
}

impl mss_pipe::StableHash for EpochSkipConfig {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_u64(self.window);
        h.write_u32(self.converge_windows);
        h.write_f64(self.tolerance);
    }
}

impl EpochSkipConfig {
    /// A conservative default: 4096-reference windows, four consecutive
    /// agreeing windows within 2 % before skipping.
    pub fn steady_default() -> Self {
        Self {
            window: 4096,
            converge_windows: 4,
            tolerance: 0.02,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`GemsimError::InvalidSystem`] on out-of-range parameters.
    pub fn validate(&self) -> Result<(), GemsimError> {
        let fail = |reason: String| Err(GemsimError::InvalidSystem { reason });
        if self.window == 0 || self.window > (1 << 20) {
            return fail(format!(
                "epoch-skip window {} outside [1, 2^20]",
                self.window
            ));
        }
        if self.converge_windows == 0 {
            return fail("epoch-skip needs at least one converged window".into());
        }
        if !self.tolerance.is_finite() || self.tolerance < 0.0 {
            return fail(format!(
                "epoch-skip tolerance {} must be finite and >= 0",
                self.tolerance
            ));
        }
        Ok(())
    }
}

/// Counter snapshot bracketing one epoch-skip window; consecutive window
/// deltas decide convergence and supply the extrapolation rates.
#[derive(Debug, Clone, Copy, Default)]
struct EpochSnap {
    l1: CacheStats,
    l2: CacheStats,
    dram_reads: u64,
    dram_writes: u64,
    row_hits: u64,
    stall: f64,
}

impl EpochSnap {
    fn delta(&self, before: &EpochSnap) -> EpochSnap {
        let sub = |a: &CacheStats, b: &CacheStats| CacheStats {
            reads: a.reads - b.reads,
            writes: a.writes - b.writes,
            read_hits: a.read_hits - b.read_hits,
            write_hits: a.write_hits - b.write_hits,
            writebacks: a.writebacks - b.writebacks,
        };
        EpochSnap {
            l1: sub(&self.l1, &before.l1),
            l2: sub(&self.l2, &before.l2),
            dram_reads: self.dram_reads - before.dram_reads,
            dram_writes: self.dram_writes - before.dram_writes,
            row_hits: self.row_hits - before.row_hits,
            stall: self.stall - before.stall,
        }
    }

    /// Do two window deltas agree within `tol` on every rate that feeds the
    /// report? (Counts compare relatively with a floor of 1, so an
    /// all-quiet counter pair trivially agrees.)
    fn matches(&self, other: &EpochSnap, tol: f64) -> bool {
        let close = |a: f64, b: f64| (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0);
        let count = |a: u64, b: u64| close(a as f64, b as f64);
        count(self.l1.misses(), other.l1.misses())
            && count(self.l1.writebacks, other.l1.writebacks)
            && count(self.l2.misses(), other.l2.misses())
            && count(self.l2.writebacks, other.l2.writebacks)
            && count(self.dram_reads, other.dram_reads)
            && count(self.dram_writes, other.dram_writes)
            && count(self.row_hits, other.row_hits)
            && close(self.stall * 1e9, other.stall * 1e9)
    }
}

/// Adds `f` times the window delta `d` into `dst` (extrapolated counters
/// are rate estimates; `.round()` keeps them unbiased).
fn add_scaled(dst: &mut CacheStats, d: &CacheStats, f: f64) {
    let s = |v: u64| (v as f64 * f).round() as u64;
    dst.reads += s(d.reads);
    dst.writes += s(d.writes);
    dst.read_hits += s(d.read_hits);
    dst.write_hits += s(d.write_hits);
    dst.writebacks += s(d.writebacks);
}

/// One cluster: homogeneous cores + private L1Ds + a shared L2.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Cluster display name ("big", "LITTLE").
    pub name: String,
    /// Core timing model.
    pub core: CoreModel,
    /// Number of cores.
    pub cores: u32,
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
}

impl mss_pipe::StableHash for ClusterConfig {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_str(&self.name);
        self.core.stable_hash(h);
        h.write_u32(self.cores);
        self.l1d.stable_hash(h);
        self.l2.stable_hash(h);
    }
}

/// The platform configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Clusters (the default platform has big + LITTLE).
    pub clusters: Vec<ClusterConfig>,
    /// DRAM access latency, seconds.
    pub dram_latency: f64,
    /// DRAM energy per transaction, joules.
    pub dram_energy: f64,
    /// DRAM background power, watts.
    pub dram_background_power: f64,
    /// Optional row-buffer model; `None` charges the flat latency per
    /// transaction, `Some` makes open-row hits cost
    /// [`RowBufferConfig::hit_latency`] instead.
    pub row_buffer: Option<RowBufferConfig>,
    /// Next-line prefetch into the L2 on every demand miss (opt-in): the
    /// sequential follower line is fetched alongside, hiding the DRAM
    /// latency of streaming kernels at the cost of extra DRAM traffic.
    pub l2_next_line_prefetch: bool,
    /// Per-thread cap on simulated memory references (sampling).
    pub sample_accesses_per_thread: u64,
    /// Optional fault-aware main-memory array: every DRAM-level transaction
    /// runs through a seeded fault injector and an ECC controller (see
    /// [`crate::faultmem`]). `None` models a perfect array.
    pub fault: Option<FaultMemConfig>,
    /// Opt-in epoch-skipping fast path: extrapolate a thread's remaining
    /// references once its per-window miss profile has converged (see
    /// [`EpochSkipConfig`]). `None` (the default) simulates every sampled
    /// reference exactly.
    pub epoch_skip: Option<EpochSkipConfig>,
}

fn sram_l1(name: &str) -> CacheConfig {
    CacheConfig {
        name: name.to_string(),
        capacity: 32 << 10,
        associativity: 4,
        line_bytes: 64,
        read_latency: 1.0e-9,
        write_latency: 1.0e-9,
        read_energy: 10e-12,
        write_energy: 12e-12,
        leakage_power: 8e-3,
    }
}

impl mss_pipe::StableHash for SystemConfig {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.clusters.stable_hash(h);
        h.write_f64(self.dram_latency);
        h.write_f64(self.dram_energy);
        h.write_f64(self.dram_background_power);
        match &self.row_buffer {
            None => h.write_u8(0),
            Some(rb) => {
                h.write_u8(1);
                rb.stable_hash(h);
            }
        }
        self.l2_next_line_prefetch.stable_hash(h);
        h.write_u64(self.sample_accesses_per_thread);
        match &self.fault {
            None => h.write_u8(0),
            Some(f) => {
                h.write_u8(1);
                f.stable_hash(h);
            }
        }
        match &self.epoch_skip {
            None => h.write_u8(0),
            Some(es) => {
                h.write_u8(1);
                es.stable_hash(h);
            }
        }
    }
}

impl SystemConfig {
    /// The default Exynos-5-style big.LITTLE platform with all-SRAM caches
    /// (the paper's Full-SRAM reference scenario).
    pub fn big_little_default() -> Self {
        Self {
            clusters: vec![
                ClusterConfig {
                    name: "big".into(),
                    core: CoreModel::big(),
                    cores: 4,
                    l1d: sram_l1("big.L1D"),
                    l2: CacheConfig {
                        name: "big.L2".into(),
                        capacity: 2 << 20,
                        associativity: 16,
                        line_bytes: 64,
                        read_latency: 5.0e-9,
                        write_latency: 5.0e-9,
                        read_energy: 120e-12,
                        write_energy: 130e-12,
                        leakage_power: 0.35,
                    },
                },
                ClusterConfig {
                    name: "LITTLE".into(),
                    core: CoreModel::little(),
                    cores: 4,
                    l1d: sram_l1("LITTLE.L1D"),
                    l2: CacheConfig {
                        name: "LITTLE.L2".into(),
                        capacity: 512 << 10,
                        associativity: 8,
                        line_bytes: 64,
                        read_latency: 4.0e-9,
                        write_latency: 4.0e-9,
                        read_energy: 60e-12,
                        write_energy: 65e-12,
                        leakage_power: 0.09,
                    },
                },
            ],
            dram_latency: 80e-9,
            dram_energy: 15e-9,
            dram_background_power: 0.15,
            row_buffer: None,
            l2_next_line_prefetch: false,
            sample_accesses_per_thread: 150_000,
            fault: None,
            epoch_skip: None,
        }
    }

    /// Validates the platform.
    ///
    /// # Errors
    ///
    /// [`GemsimError::InvalidSystem`] / [`GemsimError::InvalidCache`].
    pub fn validate(&self) -> Result<(), GemsimError> {
        if self.clusters.is_empty() {
            return Err(GemsimError::InvalidSystem {
                reason: "no clusters".into(),
            });
        }
        if self.clusters.iter().all(|c| c.cores == 0) {
            return Err(GemsimError::InvalidSystem {
                reason: "no cores in any cluster".into(),
            });
        }
        if self.dram_latency <= 0.0 || self.sample_accesses_per_thread == 0 {
            return Err(GemsimError::InvalidSystem {
                reason: "DRAM latency and sampling cap must be positive".into(),
            });
        }
        for c in &self.clusters {
            c.l1d.validate()?;
            c.l2.validate()?;
        }
        if let Some(rb) = &self.row_buffer {
            rb.validate()?;
        }
        if let Some(fault) = &self.fault {
            fault.validate()?;
        }
        if let Some(es) = &self.epoch_skip {
            es.validate()?;
        }
        Ok(())
    }

    /// Total cores across all clusters.
    pub fn total_cores(&self) -> u32 {
        self.clusters.iter().map(|c| c.cores).sum()
    }
}

/// Where a kernel's threads are allowed to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Threads spread over every core of every cluster (default).
    AllClusters,
    /// Threads pinned to the named cluster; the other cluster idles (and
    /// only leaks).
    Cluster(String),
}

/// The platform simulator.
#[derive(Debug, Clone)]
pub struct System {
    config: SystemConfig,
}

impl System {
    /// Validates and wraps a platform configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`SystemConfig::validate`].
    pub fn new(config: SystemConfig) -> Result<Self, GemsimError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The platform configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs one kernel spread over every cluster (see [`System::run_placed`]).
    ///
    /// # Errors
    ///
    /// [`GemsimError::InvalidWorkload`] for malformed kernels.
    pub fn run(&self, kernel: &Kernel, seed: u64) -> Result<SimReport, GemsimError> {
        self.run_placed(kernel, seed, &Placement::AllClusters)
    }

    /// Runs a batch of kernels in parallel (one task per kernel), returning
    /// reports **in kernel order**.
    ///
    /// Every kernel replays its own deterministic access streams from
    /// `seed`, so the batch is bit-identical to running the kernels one by
    /// one — threads only change the wall time.
    ///
    /// # Errors
    ///
    /// The first kernel error in kernel order.
    pub fn run_many(
        &self,
        kernels: &[Kernel],
        seed: u64,
        exec: &ParallelConfig,
    ) -> Result<Vec<SimReport>, GemsimError> {
        let _span = mss_obs::span("gemsim.run_many");
        par_map(exec, kernels, |_, kernel| self.run(kernel, seed))
            .into_iter()
            .collect()
    }

    /// Runs a batch of kernels under the sweep supervisor: each kernel is
    /// isolated (a panic or failure becomes a [`mss_exec::TaskFailure`]),
    /// bounded by the supervisor's per-task deadline (observed at access
    /// chunk boundaries), retried deterministically, and the batch returns
    /// a [`PartialSweep`] with completed reports in kernel order.
    ///
    /// Completed reports are bit-identical to [`System::run_many`] output
    /// for the same kernels at any thread count.
    pub fn run_many_supervised(
        &self,
        kernels: &[Kernel],
        seed: u64,
        exec: &ParallelConfig,
        sup: &SupervisorConfig,
    ) -> PartialSweep<SimReport> {
        let _span = mss_obs::span("gemsim.run_many");
        let sup = if sup.label.is_empty() {
            sup.with_label("gemsim.run_many")
        } else {
            *sup
        };
        mss_exec::supervised_map(exec, &sup, kernels, |ctx, kernel| {
            self.run_cancellable(kernel, seed, &Placement::AllClusters, ctx.token())
        })
    }

    /// [`System::run_placed`] with a cooperative cancellation token checked
    /// at every access-chunk boundary.
    ///
    /// # Errors
    ///
    /// [`GemsimError::Cancelled`] when the token trips mid-run, plus every
    /// [`System::run_placed`] error.
    pub fn run_cancellable(
        &self,
        kernel: &Kernel,
        seed: u64,
        placement: &Placement,
        token: &CancelToken,
    ) -> Result<SimReport, GemsimError> {
        self.run_inner(kernel, seed, placement, Some(token))
    }

    /// Runs one kernel with an explicit thread placement and reports system
    /// activity.
    ///
    /// # Errors
    ///
    /// [`GemsimError::InvalidWorkload`] for malformed kernels, and
    /// [`GemsimError::InvalidSystem`] when a pinned cluster name does not
    /// exist.
    pub fn run_placed(
        &self,
        kernel: &Kernel,
        seed: u64,
        placement: &Placement,
    ) -> Result<SimReport, GemsimError> {
        self.run_inner(kernel, seed, placement, None)
    }

    fn run_inner(
        &self,
        kernel: &Kernel,
        seed: u64,
        placement: &Placement,
        token: Option<&CancelToken>,
    ) -> Result<SimReport, GemsimError> {
        let _span = mss_obs::span("gemsim.run");
        kernel.validate()?;
        if let Placement::Cluster(name) = placement {
            if !self.config.clusters.iter().any(|c| &c.name == name) {
                return Err(GemsimError::InvalidSystem {
                    reason: format!("no cluster named '{name}' to pin to"),
                });
            }
        }
        let cluster_active = |cluster: &ClusterConfig| match placement {
            Placement::AllClusters => true,
            Placement::Cluster(name) => &cluster.name == name,
        };
        let total_cores: u64 = self
            .config
            .clusters
            .iter()
            .filter(|c| cluster_active(c))
            .map(|c| c.cores as u64)
            .sum();
        let threads = kernel.threads as u64;
        // Thread t -> core (t mod cores). Work is balanced by compute
        // throughput (frequency / CPI), modelling the work-stealing
        // runtimes Parsec kernels use: every core finishes its compute
        // share simultaneously, so memory stalls decide the critical path.
        let total_weight: f64 = {
            let mut w = 0.0;
            let mut core_id = 0u64;
            for cluster in &self.config.clusters {
                if !cluster_active(cluster) {
                    continue;
                }
                for _ in 0..cluster.cores {
                    let owned = (0..threads).filter(|t| t % total_cores == core_id).count();
                    w += owned as f64 * cluster.core.frequency / cluster.core.base_cpi;
                    core_id += 1;
                }
            }
            w
        };

        let mut cores_out = Vec::new();
        let mut caches_out = Vec::new();
        let mut dram_reads_scaled = 0u64;
        let mut dram_writes_scaled = 0u64;
        let mut dram_row_hits_scaled = 0u64;
        let mut dram = match &self.config.row_buffer {
            Some(rb) => Some(DramSim::new(*rb)?),
            None => None,
        };
        // The fault-aware array sees DRAM-level transactions at line
        // granularity; it is rebuilt per run so identical seeds replay an
        // identical fault history.
        let mut fault_mem = match &self.config.fault {
            Some(cfg) => Some(FaultMemory::new(*cfg)?),
            None => None,
        };
        let mut runtime: f64 = 0.0;

        // One reusable synthesis buffer for the whole run: streams are
        // drained in chunks (the epoch window when skipping is on) so the
        // generator and the consuming loop each stay tight. Chunking does
        // not reorder consumption, so default reports are bit-identical to
        // the historic one-access-at-a-time loop.
        let epoch = self.config.epoch_skip;
        let chunk = epoch.map_or(DEFAULT_CHUNK, |es| es.window as usize);
        let mut buf = vec![
            MemoryAccess {
                address: 0,
                write: false
            };
            chunk
        ];
        let mut extrapolated_accesses = 0u64;

        let mut global_core_index = 0u32;
        for cluster in &self.config.clusters {
            if !cluster_active(cluster) {
                // Idle cluster: cores retire nothing, caches see no traffic;
                // their leakage is still accounted by the power layer.
                for _ in 0..cluster.cores {
                    cores_out.push(CoreActivity {
                        kind: cluster.core.kind,
                        instructions: 0,
                        busy_seconds: 0.0,
                        ipc: 0.0,
                    });
                }
                caches_out.push(CacheActivity {
                    name: cluster.l1d.name.clone(),
                    config: cluster.l1d.clone(),
                    stats: CacheStats::default(),
                });
                caches_out.push(CacheActivity {
                    name: cluster.l2.name.clone(),
                    config: cluster.l2.clone(),
                    stats: CacheStats::default(),
                });
                continue;
            }
            let weight = cluster.core.frequency / cluster.core.base_cpi;
            let instr_per_thread = (kernel.instructions as f64 * weight / total_weight) as u64;
            let mem_per_thread = (instr_per_thread as f64 * kernel.memory_ratio) as u64;
            let sim_per_thread = mem_per_thread.min(self.config.sample_accesses_per_thread);
            let scale = if sim_per_thread == 0 {
                1.0
            } else {
                mem_per_thread as f64 / sim_per_thread as f64
            };
            let mut l2 = Cache::new(cluster.l2.clone())?;
            let mut l1_total = CacheStats::default();
            // Extrapolated tails (epoch skip only; all-zero otherwise).
            let mut l1_extra = CacheStats::default();
            let mut l2_extra = CacheStats::default();
            let mut row_hits_extra = 0u64;
            let mut dram_reads_sim = 0u64;
            let mut dram_writes_sim = 0u64;
            let line_bytes = cluster.l2.line_bytes as u64;
            let row_hits_before_cluster = dram.as_ref().map_or(0, |d| d.hits());
            for local_core in 0..cluster.cores {
                let core_id = global_core_index + local_core;
                // Threads owned by this core.
                let owned: Vec<u64> = (0..threads)
                    .filter(|t| t % total_cores == core_id as u64)
                    .collect();
                let mut l1 = Cache::new(cluster.l1d.clone())?;
                let mut stall_seconds_sim = 0.0;
                for &t in &owned {
                    let mut stream = AccessStream::new(kernel, t as u32, seed);
                    let mut done = 0u64;
                    let mut prev_delta: Option<EpochSnap> = None;
                    let mut streak = 0u32;
                    while done < sim_per_thread {
                        // Cancellation checkpoint: one poll per synthesis
                        // chunk keeps the hot loop tight while bounding the
                        // reaction latency to ~a thousand accesses.
                        if token.is_some_and(|t| t.is_cancelled()) {
                            return Err(GemsimError::Cancelled);
                        }
                        let n = chunk.min((sim_per_thread - done) as usize);
                        stream.fill(&mut buf[..n]);
                        let before = epoch.map(|_| EpochSnap {
                            l1: *l1.stats(),
                            l2: *l2.stats(),
                            dram_reads: dram_reads_sim,
                            dram_writes: dram_writes_sim,
                            row_hits: dram.as_ref().map_or(0, |d| d.hits()),
                            stall: stall_seconds_sim,
                        });
                        for acc in &buf[..n] {
                            let l1_out = l1.access(acc.address, acc.write);
                            if l1_out.hit {
                                continue;
                            }
                            // L1 miss: read the line from L2.
                            let l2_out = l2.access(acc.address, false);
                            stall_seconds_sim += cluster.l2.read_latency;
                            if !l2_out.hit {
                                // L2 miss: DRAM fetch + fill write into the
                                // L2 array.
                                dram_reads_sim += 1;
                                if let Some(fm) = fault_mem.as_mut() {
                                    fm.read(acc.address / line_bytes);
                                }
                                if self.config.l2_next_line_prefetch {
                                    // Pull the follower line in alongside; a
                                    // line already present is left untouched.
                                    let next = acc.address + line_bytes;
                                    let pf = l2.prefetch(next);
                                    if pf.allocated {
                                        dram_reads_sim += 1;
                                        if let Some(fm) = fault_mem.as_mut() {
                                            fm.read(next / line_bytes);
                                        }
                                    }
                                    if pf.writeback {
                                        dram_writes_sim += 1;
                                        if let Some(fm) = fault_mem.as_mut() {
                                            let v = pf.victim.expect("writeback implies victim");
                                            fm.write(v / line_bytes);
                                        }
                                    }
                                }
                                let dram_latency = if let Some(d) = dram.as_mut() {
                                    if d.access(acc.address) {
                                        d.config().hit_latency
                                    } else {
                                        self.config.dram_latency
                                    }
                                } else {
                                    self.config.dram_latency
                                };
                                stall_seconds_sim +=
                                    dram_latency + FILL_WRITE_EXPOSURE * cluster.l2.write_latency;
                            }
                            if l2_out.writeback {
                                dram_writes_sim += 1;
                                if let Some(fm) = fault_mem.as_mut() {
                                    // The line going to DRAM is the evicted
                                    // victim, not the line being fetched.
                                    let v = l2_out.victim.expect("writeback implies victim");
                                    fm.write(v / line_bytes);
                                }
                            }
                            if l1_out.writeback {
                                // Dirty L1 victim written into the L2 array
                                // at its real line address.
                                let victim = l1_out.victim.expect("writeback implies victim");
                                let wb = l2.access(victim, true);
                                stall_seconds_sim += WRITEBACK_EXPOSURE * cluster.l2.write_latency;
                                if wb.writeback {
                                    dram_writes_sim += 1;
                                    if let Some(fm) = fault_mem.as_mut() {
                                        let v = wb.victim.expect("writeback implies victim");
                                        fm.write(v / line_bytes);
                                    }
                                }
                            }
                        }
                        done += n as u64;
                        let (Some(es), Some(before)) = (epoch, before) else {
                            continue;
                        };
                        if n as u64 != es.window || done >= sim_per_thread {
                            continue;
                        }
                        let after = EpochSnap {
                            l1: *l1.stats(),
                            l2: *l2.stats(),
                            dram_reads: dram_reads_sim,
                            dram_writes: dram_writes_sim,
                            row_hits: dram.as_ref().map_or(0, |d| d.hits()),
                            stall: stall_seconds_sim,
                        };
                        let delta = after.delta(&before);
                        match prev_delta {
                            Some(prev) if delta.matches(&prev, es.tolerance) => streak += 1,
                            _ => streak = 0,
                        }
                        prev_delta = Some(delta);
                        if streak >= es.converge_windows {
                            // Steady state: charge the remaining tail at the
                            // last window's rates and stop simulating this
                            // thread.
                            let remaining = sim_per_thread - done;
                            let f = remaining as f64 / es.window as f64;
                            add_scaled(&mut l1_extra, &delta.l1, f);
                            add_scaled(&mut l2_extra, &delta.l2, f);
                            dram_reads_sim += (delta.dram_reads as f64 * f).round() as u64;
                            dram_writes_sim += (delta.dram_writes as f64 * f).round() as u64;
                            row_hits_extra += (delta.row_hits as f64 * f).round() as u64;
                            stall_seconds_sim += delta.stall * f;
                            extrapolated_accesses += remaining;
                            break;
                        }
                    }
                }
                let instructions = instr_per_thread * owned.len() as u64;
                let stall_cycles = cluster.core.cycles(stall_seconds_sim * scale);
                let busy = cluster.core.execution_seconds(instructions, stall_cycles);
                let ipc = if busy > 0.0 {
                    instructions as f64 / (busy * cluster.core.frequency)
                } else {
                    0.0
                };
                runtime = runtime.max(busy);
                cores_out.push(CoreActivity {
                    kind: cluster.core.kind,
                    instructions,
                    busy_seconds: busy,
                    ipc,
                });
                l1_total.merge(l1.stats());
            }
            l1_total.merge(&l1_extra);
            let mut l2_stats = *l2.stats();
            l2_stats.merge(&l2_extra);
            caches_out.push(CacheActivity {
                name: cluster.l1d.name.clone(),
                config: cluster.l1d.clone(),
                stats: scale_stats(&l1_total, scale),
            });
            caches_out.push(CacheActivity {
                name: cluster.l2.name.clone(),
                config: cluster.l2.clone(),
                stats: scale_stats(&l2_stats, scale),
            });
            dram_reads_scaled += (dram_reads_sim as f64 * scale) as u64;
            dram_writes_scaled += (dram_writes_sim as f64 * scale) as u64;
            if let Some(d) = dram.as_ref() {
                // The DramSim hit counter is cumulative across clusters:
                // accumulate this cluster's own delta scaled by this
                // cluster's factor.
                let cluster_hits = d.hits() - row_hits_before_cluster + row_hits_extra;
                dram_row_hits_scaled += (cluster_hits as f64 * scale) as u64;
            }
            global_core_index += cluster.cores;
        }

        let sampled_fraction = {
            // Report the first active cluster's sampling ratio (diagnostic
            // only).
            let c0 = self
                .config
                .clusters
                .iter()
                .find(|c| cluster_active(c))
                .expect("at least one active cluster");
            let w = c0.core.frequency / c0.core.base_cpi;
            let instr = (kernel.instructions as f64 * w / total_weight) as u64;
            let mem = (instr as f64 * kernel.memory_ratio) as u64;
            let sim = mem.min(self.config.sample_accesses_per_thread);
            if mem == 0 {
                1.0
            } else {
                sim as f64 / mem as f64
            }
        };
        let report = SimReport {
            kernel: kernel.name.clone(),
            runtime_seconds: runtime,
            cores: cores_out,
            caches: caches_out,
            dram_reads: dram_reads_scaled,
            dram_writes: dram_writes_scaled,
            dram_row_hits: dram_row_hits_scaled,
            simulated_fraction: sampled_fraction,
            extrapolated_accesses,
            fault: fault_mem.map(|fm| *fm.stats()),
        };
        if mss_obs::enabled() {
            mss_obs::counter_add("gemsim.runs", 1);
            if report.extrapolated_accesses > 0 {
                mss_obs::counter_add("gemsim.extrapolated_accesses", report.extrapolated_accesses);
                // Epoch-skip engaged: surface how much of the run was
                // extrapolated as gauges (mirrored onto the event bus by
                // the global gauge hook). Exact-mode runs emit none of
                // these — extrapolated_accesses is identically zero there.
                mss_obs::counter_add("gemsim.epoch_skip.engaged", 1);
                mss_obs::gauge_set(
                    "gemsim.extrapolated_accesses",
                    report.extrapolated_accesses as f64,
                );
                mss_obs::gauge_set("gemsim.simulated_fraction", report.simulated_fraction);
            }
            mss_obs::counter_add("gemsim.instructions", report.total_instructions());
            mss_obs::counter_add("gemsim.dram.reads", report.dram_reads);
            mss_obs::counter_add("gemsim.dram.writes", report.dram_writes);
            for cache in &report.caches {
                mss_obs::counter_add("gemsim.cache.hits", cache.stats.hits());
                mss_obs::counter_add("gemsim.cache.misses", cache.stats.misses());
            }
            mss_obs::record_value("gemsim.runtime_seconds", report.runtime_seconds);
        }
        Ok(report)
    }
}

fn scale_stats(s: &CacheStats, scale: f64) -> CacheStats {
    let f = |v: u64| (v as f64 * scale).round() as u64;
    CacheStats {
        reads: f(s.reads),
        writes: f(s.writes),
        read_hits: f(s.read_hits),
        write_hits: f(s.write_hits),
        writebacks: f(s.writebacks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SystemConfig {
        let mut c = SystemConfig::big_little_default();
        c.sample_accesses_per_thread = 8_000;
        c
    }

    #[test]
    fn default_platform_validates() {
        SystemConfig::big_little_default().validate().unwrap();
    }

    #[test]
    fn bad_platforms_rejected() {
        let mut c = SystemConfig::big_little_default();
        c.clusters.clear();
        assert!(System::new(c).is_err());
        let mut c = SystemConfig::big_little_default();
        c.dram_latency = 0.0;
        assert!(System::new(c).is_err());
        let mut c = SystemConfig::big_little_default();
        c.clusters[0].l2.line_bytes = 63;
        assert!(System::new(c).is_err());
    }

    #[test]
    fn run_produces_consistent_counters() {
        let sys = System::new(quick_config()).unwrap();
        let report = sys.run(&Kernel::bodytrack(), 1).unwrap();
        assert!(report.runtime_seconds > 0.0);
        assert_eq!(report.cores.len(), 8);
        assert_eq!(report.caches.len(), 4);
        for c in &report.caches {
            assert_eq!(c.stats.hits() + c.stats.misses(), c.stats.accesses());
        }
        // DRAM traffic exists for an 8 MiB working set over 2.5 MiB of L2.
        assert!(report.dram_reads > 0);
        // IPC is positive and below issue limits.
        for core in &report.cores {
            assert!(core.ipc > 0.0 && core.ipc < 2.0);
        }
    }

    #[test]
    fn run_many_matches_sequential_runs() {
        let sys = System::new(quick_config()).unwrap();
        let kernels = [
            Kernel::bodytrack(),
            Kernel::swaptions(),
            Kernel::streamcluster(),
        ];
        let batch = sys
            .run_many(&kernels, 9, &ParallelConfig::serial().with_threads(4))
            .unwrap();
        assert_eq!(batch.len(), kernels.len());
        for (kernel, report) in kernels.iter().zip(&batch) {
            assert_eq!(report, &sys.run(kernel, 9).unwrap());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let sys = System::new(quick_config()).unwrap();
        let a = sys.run(&Kernel::bodytrack(), 7).unwrap();
        let b = sys.run(&Kernel::bodytrack(), 7).unwrap();
        assert_eq!(a, b);
        let c = sys.run(&Kernel::bodytrack(), 8).unwrap();
        assert_ne!(a.runtime_seconds, c.runtime_seconds);
    }

    #[test]
    fn slower_l2_write_latency_slows_the_run() {
        let base = quick_config();
        let mut slow = base.clone();
        for cl in &mut slow.clusters {
            cl.l2.write_latency = 15e-9; // STT-MRAM-like write
        }
        let t_base = System::new(base)
            .unwrap()
            .run(&Kernel::fluidanimate(), 3)
            .unwrap()
            .runtime_seconds;
        let t_slow = System::new(slow)
            .unwrap()
            .run(&Kernel::fluidanimate(), 3)
            .unwrap()
            .runtime_seconds;
        assert!(t_slow > t_base, "slow {t_slow} vs base {t_base}");
    }

    #[test]
    fn larger_l2_reduces_dram_traffic() {
        // Enough samples to get past the cold-start window, so capacity
        // effects are visible.
        let mut base = quick_config();
        base.sample_accesses_per_thread = 40_000;
        let mut big = base.clone();
        for cl in &mut big.clusters {
            cl.l2.capacity *= 4;
        }
        let k = Kernel::freqmine();
        let r_base = System::new(base).unwrap().run(&k, 4).unwrap();
        let r_big = System::new(big).unwrap().run(&k, 4).unwrap();
        assert!(
            r_big.dram_reads < r_base.dram_reads,
            "big {} vs base {}",
            r_big.dram_reads,
            r_base.dram_reads
        );
        // The capacity win lands on whichever cores' reuse distances fit the
        // bigger array (here the LITTLE cluster); the critical-path core may
        // be capacity-insensitive, so compare aggregate busy time, not the
        // max.
        let busy = |r: &SimReport| r.cores.iter().map(|c| c.busy_seconds).sum::<f64>();
        assert!(busy(&r_big) < busy(&r_base));
        assert!(r_big.runtime_seconds <= r_base.runtime_seconds);
    }

    #[test]
    fn compute_bound_kernel_is_insensitive_to_l2() {
        let base = quick_config();
        let mut slow = base.clone();
        for cl in &mut slow.clusters {
            cl.l2.write_latency = 15e-9;
        }
        let k = Kernel::swaptions(); // tiny working set
        let t_base = System::new(base)
            .unwrap()
            .run(&k, 5)
            .unwrap()
            .runtime_seconds;
        let t_slow = System::new(slow)
            .unwrap()
            .run(&k, 5)
            .unwrap()
            .runtime_seconds;
        let slowdown = t_slow / t_base;
        assert!(slowdown < 1.10, "slowdown = {slowdown}");
    }

    #[test]
    fn pinning_isolates_a_cluster() {
        let sys = System::new(quick_config()).unwrap();
        let k = Kernel::bodytrack();
        let little = sys
            .run_placed(&k, 3, &Placement::Cluster("LITTLE".into()))
            .unwrap();
        // Only LITTLE cores retire instructions.
        for c in &little.cores {
            match c.kind {
                crate::core::CoreKind::Big => assert_eq!(c.instructions, 0),
                crate::core::CoreKind::Little => assert!(c.instructions > 0),
            }
        }
        // The big cluster's caches see no traffic.
        assert_eq!(little.cache("big.L2").unwrap().stats.accesses(), 0);
        assert!(little.cache("LITTLE.L2").unwrap().stats.accesses() > 0);
        // Pinned-LITTLE runs are slower than spreading over all cores.
        let all = sys.run(&k, 3).unwrap();
        assert!(little.runtime_seconds > all.runtime_seconds);
    }

    #[test]
    fn pinning_to_unknown_cluster_errors() {
        let sys = System::new(quick_config()).unwrap();
        assert!(sys
            .run_placed(&Kernel::bodytrack(), 1, &Placement::Cluster("mid".into()))
            .is_err());
    }

    #[test]
    fn next_line_prefetch_helps_streaming() {
        let base = quick_config();
        let mut pf = base.clone();
        pf.l2_next_line_prefetch = true;
        let k = Kernel::streamcluster();
        let plain = System::new(base).unwrap().run(&k, 11).unwrap();
        let fetched = System::new(pf).unwrap().run(&k, 11).unwrap();
        // The prefetcher converts demand misses into hits...
        let mr_plain = plain.cache("LITTLE.L2").unwrap().stats.miss_ratio();
        let mr_pf = fetched.cache("LITTLE.L2").unwrap().stats.miss_ratio();
        assert!(mr_pf < mr_plain, "pf {mr_pf} vs plain {mr_plain}");
        // ...which shortens the run at the cost of extra DRAM traffic.
        assert!(fetched.runtime_seconds < plain.runtime_seconds);
        assert!(fetched.dram_reads > plain.dram_reads);
    }

    #[test]
    fn row_buffer_speeds_up_streaming_kernels() {
        let base = quick_config();
        let mut with_rb = base.clone();
        with_rb.row_buffer = Some(crate::dram::RowBufferConfig::lpddr_default());
        let k = Kernel::streamcluster();
        let flat = System::new(base).unwrap().run(&k, 6).unwrap();
        let rb = System::new(with_rb).unwrap().run(&k, 6).unwrap();
        assert_eq!(rb.dram_reads, flat.dram_reads);
        assert!(rb.dram_row_hits > 0);
        assert!(
            rb.runtime_seconds < flat.runtime_seconds,
            "rb {} vs flat {}",
            rb.runtime_seconds,
            flat.runtime_seconds
        );
        assert_eq!(flat.dram_row_hits, 0);
    }

    #[test]
    fn fault_free_runs_report_no_fault_stats() {
        let sys = System::new(quick_config()).unwrap();
        let r = sys.run(&Kernel::bodytrack(), 1).unwrap();
        assert!(r.fault.is_none());
    }

    fn faulty_config() -> SystemConfig {
        use mss_fault::{FaultModel, FaultPlan};
        use mss_vaet::ecc::EccScheme;
        let mut c = quick_config();
        let mut m = FaultModel::none();
        m.write_fail_rate = 0.002;
        m.read_disturb_rate = 0.0005;
        c.fault = Some(FaultMemConfig::new(
            FaultPlan::new(77, m).unwrap(),
            EccScheme::bch(2, 512),
        ));
        c
    }

    #[test]
    fn faulty_memory_degrades_gracefully() {
        let sys = System::new(faulty_config()).unwrap();
        let r = sys.run(&Kernel::bodytrack(), 1).unwrap();
        let f = r.fault.expect("fault stats present");
        // DRAM traffic ran through the array...
        assert!(f.reads > 0 && f.writes > 0);
        assert!(f.injected_bits > 0);
        // ...every read got a verdict, and nothing panicked on the way.
        assert_eq!(
            f.reads_clean + f.reads_corrected + f.reads_detected + f.reads_uncorrectable,
            f.reads
        );
        // Timing and traffic are unchanged by error accounting.
        let clean = System::new(quick_config())
            .unwrap()
            .run(&Kernel::bodytrack(), 1)
            .unwrap();
        assert_eq!(r.runtime_seconds, clean.runtime_seconds);
        assert_eq!(r.dram_reads, clean.dram_reads);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let sys = System::new(faulty_config()).unwrap();
        let a = sys.run(&Kernel::bodytrack(), 7).unwrap();
        let b = sys.run(&Kernel::bodytrack(), 7).unwrap();
        assert_eq!(a, b);
        let batch = sys
            .run_many(
                &[Kernel::bodytrack(), Kernel::streamcluster()],
                7,
                &ParallelConfig::serial().with_threads(2),
            )
            .unwrap();
        assert_eq!(batch[0], a);
    }

    #[test]
    fn bad_fault_config_rejected() {
        use mss_fault::FaultPlan;
        use mss_vaet::ecc::EccScheme;
        let mut c = quick_config();
        let mut plan = FaultPlan::disabled();
        plan.model.stuck_at_rate = -1.0;
        c.fault = Some(FaultMemConfig::new(plan, EccScheme::bch(1, 64)));
        assert!(System::new(c).is_err());
    }

    #[test]
    fn cancelled_token_aborts_at_chunk_boundary() {
        let sys = System::new(quick_config()).unwrap();
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            sys.run_cancellable(&Kernel::bodytrack(), 1, &Placement::AllClusters, &token),
            Err(GemsimError::Cancelled)
        );
        // A live token changes nothing: the run equals the plain path.
        let live = CancelToken::new();
        let r = sys
            .run_cancellable(&Kernel::bodytrack(), 1, &Placement::AllClusters, &live)
            .unwrap();
        assert_eq!(r, sys.run(&Kernel::bodytrack(), 1).unwrap());
    }

    #[test]
    fn supervised_batch_isolates_a_poisoned_kernel() {
        let sys = System::new(quick_config()).unwrap();
        let mut bad = Kernel::swaptions();
        bad.threads = 0; // fails validation
        let kernels = [Kernel::bodytrack(), bad, Kernel::streamcluster()];
        let sweep = sys.run_many_supervised(
            &kernels,
            9,
            &ParallelConfig::serial().with_threads(2),
            &SupervisorConfig::disabled(),
        );
        assert_eq!(sweep.completed_count(), 2);
        assert_eq!(sweep.failures.len(), 1);
        assert_eq!(sweep.failures[0].index, 1);
        // Survivors equal the plain per-kernel runs.
        assert_eq!(
            sweep.results[0].as_ref().unwrap(),
            &sys.run(&kernels[0], 9).unwrap()
        );
        assert_eq!(
            sweep.results[2].as_ref().unwrap(),
            &sys.run(&kernels[2], 9).unwrap()
        );
    }

    #[test]
    fn sampling_fraction_reported() {
        let sys = System::new(quick_config()).unwrap();
        let r = sys.run(&Kernel::bodytrack(), 1).unwrap();
        assert!(r.simulated_fraction > 0.0 && r.simulated_fraction <= 1.0);
    }

    #[test]
    fn l1_victim_writebacks_hit_their_real_l2_lines() {
        // Single cluster sized so the L2 holds the whole working set
        // exactly: swaptions touches 2048 lines per thread over 8 threads;
        // the contiguous per-thread line ranges spread them 8-per-set over
        // 4096 sets with 8 ways. With L1 victims written back at their real
        // line addresses every write-back must HIT in the L2 and nothing
        // can spill to DRAM. The old aliasing hack (`addr ^ 0x8000_0000`)
        // fabricated tags that missed, overflowed the sets and bled dirty
        // lines to DRAM — this test fails against it.
        let mut c = SystemConfig::big_little_default();
        c.clusters.truncate(1);
        c.clusters[0].l1d.capacity = 4 << 10; // tiny L1: plenty of victims
        c.clusters[0].l2.capacity = 2 << 20;
        c.clusters[0].l2.associativity = 8;
        c.sample_accesses_per_thread = 30_000;
        let sys = System::new(c).unwrap();
        let r = sys.run(&Kernel::swaptions(), 3).unwrap();
        let l2 = &r.cache("big.L2").unwrap().stats;
        assert!(l2.writes > 0, "the tiny L1 must produce victim write-backs");
        assert_eq!(
            l2.write_hits, l2.writes,
            "every L1 victim write-back must hit its resident L2 line"
        );
        assert_eq!(l2.writebacks, 0, "a fitting L2 evicts nothing");
        assert_eq!(r.dram_writes, 0, "no dirty traffic may reach DRAM");
    }

    #[test]
    fn epoch_skip_config_is_validated() {
        let mut c = quick_config();
        c.epoch_skip = Some(EpochSkipConfig {
            window: 0,
            ..EpochSkipConfig::steady_default()
        });
        assert!(System::new(c).is_err());
        let mut c = quick_config();
        c.epoch_skip = Some(EpochSkipConfig {
            converge_windows: 0,
            ..EpochSkipConfig::steady_default()
        });
        assert!(System::new(c).is_err());
        let mut c = quick_config();
        c.epoch_skip = Some(EpochSkipConfig {
            tolerance: f64::NAN,
            ..EpochSkipConfig::steady_default()
        });
        assert!(System::new(c).is_err());
        let mut c = quick_config();
        c.epoch_skip = Some(EpochSkipConfig::steady_default());
        assert!(System::new(c).is_ok());
    }

    #[test]
    fn default_reports_never_extrapolate() {
        let sys = System::new(quick_config()).unwrap();
        let r = sys.run(&Kernel::swaptions(), 2).unwrap();
        assert_eq!(r.extrapolated_accesses, 0);
    }

    #[test]
    fn epoch_skip_extrapolates_steady_state() {
        let mut exact_cfg = SystemConfig::big_little_default();
        exact_cfg.sample_accesses_per_thread = 60_000;
        let mut skip_cfg = exact_cfg.clone();
        skip_cfg.epoch_skip = Some(EpochSkipConfig {
            window: 2048,
            converge_windows: 3,
            tolerance: 0.10,
        });
        // Epoch skip targets steady phases: streamcluster's streaming miss
        // profile is flat after the first few windows (a warm-up-dominated
        // kernel like swaptions would rightly be extrapolated poorly — or
        // not at all under a tight tolerance).
        let k = Kernel::streamcluster();
        let exact = System::new(exact_cfg).unwrap().run(&k, 2).unwrap();
        let fast = System::new(skip_cfg).unwrap().run(&k, 2).unwrap();
        assert!(
            fast.extrapolated_accesses > 0,
            "steady-state streamcluster must converge"
        );
        // The extrapolated report stays a faithful estimate of the exact
        // one.
        let rel = |a: u64, b: u64| ((a as f64) - (b as f64)).abs() / (b.max(1) as f64);
        assert!(
            rel(fast.dram_reads, exact.dram_reads) < 0.15,
            "dram reads {} vs {}",
            fast.dram_reads,
            exact.dram_reads
        );
        // Per-cache counters are window-rate estimates; a slowly-warming L2
        // keeps drifting inside the tolerance, so allow ~15 % there.
        for (cf, ce) in fast.caches.iter().zip(&exact.caches) {
            assert!(
                rel(cf.stats.hits(), ce.stats.hits()) < 0.15,
                "{}: hits {} vs {}",
                cf.name,
                cf.stats.hits(),
                ce.stats.hits()
            );
        }
        let dt = ((fast.runtime_seconds - exact.runtime_seconds) / exact.runtime_seconds).abs();
        assert!(dt < 0.10, "runtime drift {dt}");
    }
}
