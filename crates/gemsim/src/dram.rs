//! DRAM row-buffer model.
//!
//! The baseline platform charges a flat DRAM latency per transaction. Real
//! controllers keep one row open per bank: a hit in the open row is several
//! times faster (and cheaper) than an activate+precharge cycle. This model
//! is opt-in via [`crate::system::SystemConfig::row_buffer`]; the flat
//! number remains the row-miss cost.

use crate::GemsimError;

/// Row-buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowBufferConfig {
    /// Latency of a row-buffer hit, seconds (the flat DRAM latency of the
    /// platform remains the miss cost).
    pub hit_latency: f64,
    /// Bytes per row (page size).
    pub row_bytes: u64,
    /// Number of DRAM banks.
    pub banks: u32,
    /// Energy fraction of a hit relative to a full activate cycle.
    pub hit_energy_fraction: f64,
}

impl mss_pipe::StableHash for RowBufferConfig {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_f64(self.hit_latency);
        h.write_u64(self.row_bytes);
        h.write_u32(self.banks);
        h.write_f64(self.hit_energy_fraction);
    }
}

impl RowBufferConfig {
    /// A typical LPDDR-class configuration: 2 KiB rows, 8 banks, 25 ns hits
    /// at 40 % of the activate energy.
    pub fn lpddr_default() -> Self {
        Self {
            hit_latency: 25e-9,
            row_bytes: 2048,
            banks: 8,
            hit_energy_fraction: 0.4,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`GemsimError::InvalidSystem`] on degenerate parameters.
    pub fn validate(&self) -> Result<(), GemsimError> {
        if self.hit_latency <= 0.0
            || self.row_bytes == 0
            || !self.row_bytes.is_power_of_two()
            || self.banks == 0
            || !(0.0..=1.0).contains(&self.hit_energy_fraction)
        {
            return Err(GemsimError::InvalidSystem {
                reason: "invalid row-buffer configuration".into(),
            });
        }
        Ok(())
    }
}

/// Open-row tracker across the DRAM banks.
#[derive(Debug, Clone)]
pub struct DramSim {
    config: RowBufferConfig,
    open_rows: Vec<Option<u64>>,
    hits: u64,
    misses: u64,
}

impl DramSim {
    /// Builds a tracker (validates the configuration).
    ///
    /// # Errors
    ///
    /// Propagates [`RowBufferConfig::validate`].
    pub fn new(config: RowBufferConfig) -> Result<Self, GemsimError> {
        config.validate()?;
        Ok(Self {
            open_rows: vec![None; config.banks as usize],
            config,
            hits: 0,
            misses: 0,
        })
    }

    /// Performs one transaction; returns `true` on a row-buffer hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let global_row = addr / self.config.row_bytes;
        let bank = (global_row % self.config.banks as u64) as usize;
        let row = global_row / self.config.banks as u64;
        if self.open_rows[bank] == Some(row) {
            self.hits += 1;
            true
        } else {
            self.open_rows[bank] = Some(row);
            self.misses += 1;
            false
        }
    }

    /// Row-buffer hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Row-buffer misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The configuration.
    pub fn config(&self) -> &RowBufferConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> DramSim {
        DramSim::new(RowBufferConfig::lpddr_default()).unwrap()
    }

    #[test]
    fn sequential_streams_hit_the_open_row() {
        let mut d = sim();
        assert!(!d.access(0)); // cold
        for k in 1..32 {
            assert!(d.access(k * 64), "sequential access {k} must hit");
        }
        assert_eq!(d.hits(), 31);
        assert_eq!(d.misses(), 1);
    }

    #[test]
    fn row_conflicts_miss() {
        let mut d = sim();
        let row_span = 2048 * 8; // same bank, next row
        d.access(0);
        assert!(!d.access(row_span as u64));
        assert!(!d.access(0)); // the original row was closed
    }

    #[test]
    fn different_banks_keep_their_rows() {
        let mut d = sim();
        d.access(0); // bank 0
        d.access(2048); // bank 1
        assert!(d.access(64)); // bank 0 row still open
        assert!(d.access(2048 + 64)); // bank 1 row still open
    }

    #[test]
    fn bad_configs_rejected() {
        let mut c = RowBufferConfig::lpddr_default();
        c.row_bytes = 1000;
        assert!(DramSim::new(c).is_err());
        let mut c = RowBufferConfig::lpddr_default();
        c.banks = 0;
        assert!(DramSim::new(c).is_err());
        let mut c = RowBufferConfig::lpddr_default();
        c.hit_energy_fraction = 1.5;
        assert!(DramSim::new(c).is_err());
    }
}
