//! Retention, retention-driven sizing, and read-disturb analytics.
//!
//! The paper's memory-mode knob is explicit: *"MTJs can have adjustable
//! retention by playing with the diameter of the stack, thus allowing to
//! minimize the switching current according to the specified retention."*
//! [`diameter_for_retention`] implements exactly that sizing loop, and the
//! read-disturb model behind Fig. 9 lives here too.

use mss_units::consts::TAU0;
use mss_units::math::brent;

use crate::stack::MssStack;
use crate::switching::SwitchingModel;
use crate::MtjError;

/// Néel–Brown retention time `τ₀·exp(Δ)` in seconds.
pub fn retention_seconds(stack: &MssStack) -> f64 {
    TAU0 * stack.thermal_stability().exp()
}

/// Retention expressed in years.
pub fn retention_years(stack: &MssStack) -> f64 {
    retention_seconds(stack) / (365.25 * 86400.0)
}

/// Thermal stability factor needed for a retention target in seconds.
pub fn delta_for_retention(retention_s: f64) -> f64 {
    (retention_s / TAU0).ln()
}

/// Sizes the pillar diameter so the stack reaches `retention_s` seconds of
/// retention, holding all other stack parameters fixed.
///
/// Returns the resized stack. This is the paper's "minimise the switching
/// current according to the specified retention" flow: a smaller diameter
/// directly lowers I_c0 (∝ Δ) while still meeting the spec.
///
/// # Errors
///
/// - [`MtjError::NoOperatingPoint`] if no diameter within the valid
///   geometry range (6–900 nm) meets the target,
/// - [`MtjError::Convergence`] if the bracketed solve stalls.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mss_mtj::MtjError> {
/// use mss_mtj::{MssStack, reliability};
///
/// let base = MssStack::builder().build()?;
/// let ten_years = 10.0 * 365.25 * 86400.0;
/// let sized = reliability::diameter_for_retention(&base, ten_years)?;
/// assert!(reliability::retention_seconds(&sized) >= ten_years * 0.99);
/// // Tighter geometry than the (over-provisioned) default:
/// assert!(sized.diameter() < base.diameter());
/// # Ok(())
/// # }
/// ```
pub fn diameter_for_retention(stack: &MssStack, retention_s: f64) -> Result<MssStack, MtjError> {
    if retention_s <= 0.0 || !retention_s.is_finite() {
        return Err(MtjError::NoOperatingPoint {
            reason: format!("retention target {retention_s} s must be positive"),
        });
    }
    let target_delta = delta_for_retention(retention_s);
    if target_delta <= 0.0 {
        return Err(MtjError::NoOperatingPoint {
            reason: format!("retention target {retention_s} s is below the attempt time"),
        });
    }
    // Δ ∝ d² with everything else fixed, so solve analytically then verify.
    let base_delta = stack.thermal_stability();
    let d = stack.diameter() * (target_delta / base_delta).sqrt();
    let (d_min, d_max) = (6e-9, 900e-9);
    if !(d_min..=d_max).contains(&d) {
        // Try the numeric solve in-range in case the analytic guess fell
        // just outside from rounding, otherwise report no solution.
        let f = |dd: f64| {
            stack
                .with_diameter(dd)
                .map(|s| s.thermal_stability() - target_delta)
                .unwrap_or(f64::NAN)
        };
        return match brent(f, d_min, d_max, 1e-15, 200) {
            Ok(root) => stack.with_diameter(root),
            Err(_) => Err(MtjError::NoOperatingPoint {
                reason: format!(
                    "no diameter in [{d_min:.1e}, {d_max:.1e}] m reaches Δ = {target_delta:.1}"
                ),
            }),
        };
    }
    stack.with_diameter(d)
}

/// Read-disturb probability: chance that a read pulse of width
/// `t_read` seconds at read current `i_read` amperes accidentally flips the
/// cell.
///
/// Uses the Néel–Brown rate with the current-lowered barrier
/// `Δ·(1−I/I_c0)²`: `P = 1 − exp(−t_read/τ_th)`. This is the model behind
/// the paper's Fig. 9 — disturb probability grows with the read period.
pub fn read_disturb_probability(stack: &MssStack, t_read: f64, i_read: f64) -> f64 {
    if t_read <= 0.0 {
        return 0.0;
    }
    let sw = SwitchingModel::new(stack);
    let i = (i_read / sw.critical_current()).clamp(0.0, 1.0);
    let barrier = sw.delta() * (1.0 - i).powi(2);
    let tau_th = TAU0 * barrier.exp();
    -(-t_read / tau_th).exp_m1()
}

/// Expected number of disturb events over `n_reads` reads of period
/// `t_read` at `i_read`.
pub fn expected_disturbs(stack: &MssStack, t_read: f64, i_read: f64, n_reads: u64) -> f64 {
    read_disturb_probability(stack, t_read, i_read) * n_reads as f64
}

/// Probability that an idle (undriven) cell thermally loses its state within
/// a window of `t_idle` seconds: `P = 1 − exp(−t_idle/τ_retention)` with the
/// full barrier Δ.
///
/// This is the retention-limited *transient flip* rate a fault model charges
/// per access epoch: between two touches of a word, each bit has had
/// `t_idle` of exposure to the Néel–Brown escape process. It is the
/// zero-current limit of [`read_disturb_probability`].
pub fn retention_flip_probability(stack: &MssStack, t_idle: f64) -> f64 {
    if t_idle <= 0.0 {
        return 0.0;
    }
    -(-t_idle / retention_seconds(stack)).exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> MssStack {
        MssStack::builder().build().unwrap()
    }

    #[test]
    fn retention_is_exponential_in_delta() {
        let s = stack();
        let r = retention_seconds(&s);
        assert!((r / TAU0).ln() - s.thermal_stability() < 1e-9);
    }

    #[test]
    fn sizing_hits_target_both_directions() {
        let s = stack();
        for target_years in [1.0, 10.0, 100.0] {
            let target = target_years * 365.25 * 86400.0;
            let sized = diameter_for_retention(&s, target).unwrap();
            let achieved = retention_seconds(&sized);
            assert!(
                (achieved.ln() - target.ln()).abs() < 1e-6,
                "target {target_years} y: achieved {achieved} s"
            );
        }
    }

    #[test]
    fn smaller_retention_means_smaller_switching_current() {
        let s = stack();
        let short = diameter_for_retention(&s, 86400.0).unwrap(); // 1 day
        let long = diameter_for_retention(&s, 10.0 * 365.25 * 86400.0).unwrap();
        assert!(short.critical_current() < long.critical_current());
        assert!(short.diameter() < long.diameter());
    }

    #[test]
    fn impossible_retention_is_rejected() {
        let s = stack();
        // An exa-year retention needs Δ beyond any 900 nm pillar here? Use a
        // truly absurd value to be safe.
        assert!(diameter_for_retention(&s, 1e300).is_err());
        assert!(diameter_for_retention(&s, -1.0).is_err());
        assert!(diameter_for_retention(&s, 1e-12).is_err());
    }

    #[test]
    fn read_disturb_grows_with_period() {
        let s = stack();
        let i_read = 0.4 * s.critical_current();
        let mut last = 0.0;
        for k in 1..=10 {
            let p = read_disturb_probability(&s, k as f64 * 1e-9, i_read);
            assert!(p >= last);
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn read_disturb_grows_with_current() {
        let s = stack();
        let p_small = read_disturb_probability(&s, 5e-9, 0.1 * s.critical_current());
        let p_large = read_disturb_probability(&s, 5e-9, 0.6 * s.critical_current());
        assert!(p_large > p_small);
    }

    #[test]
    fn zero_period_never_disturbs() {
        let s = stack();
        assert_eq!(read_disturb_probability(&s, 0.0, 1e-5), 0.0);
    }

    #[test]
    fn disturb_probability_is_tiny_at_low_read_current() {
        // Design point: 10% of Ic0 for 2 ns must be far below 1e-9.
        let s = stack();
        let p = read_disturb_probability(&s, 2e-9, 0.1 * s.critical_current());
        assert!(p < 1e-9, "p = {p}");
    }

    #[test]
    fn retention_flip_matches_disturb_at_zero_current() {
        let s = stack();
        let t = 1.0; // one second of idle exposure
        let a = retention_flip_probability(&s, t);
        let b = read_disturb_probability(&s, t, 0.0);
        assert!((a - b).abs() <= 1e-18 * a.max(1e-300), "a={a}, b={b}");
        // Zero or negative windows never flip.
        assert_eq!(retention_flip_probability(&s, 0.0), 0.0);
        assert_eq!(retention_flip_probability(&s, -1.0), 0.0);
        // Longer exposure, higher flip probability.
        assert!(retention_flip_probability(&s, 10.0) > a);
    }

    #[test]
    fn expected_disturbs_scales_linearly() {
        let s = stack();
        let i = 0.5 * s.critical_current();
        let one = expected_disturbs(&s, 5e-9, i, 1);
        let many = expected_disturbs(&s, 5e-9, i, 1000);
        assert!((many / one - 1000.0).abs() < 1e-6);
    }
}
