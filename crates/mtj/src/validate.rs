//! Cross-validation of the behavioural model against stochastic LLG.
//!
//! The analytic WER expression in [`crate::switching`] is derived from the
//! thermal initial-angle distribution and exponential angle growth; the
//! stochastic macrospin solver makes no such approximation. This module
//! runs ensembles of thermal LLG write attempts and estimates the empirical
//! switching probability — the "physical vs behavioural" consistency check
//! the project's compact-modelling comparison (paper reference \[1\]) is
//! about.

use mss_units::Vec3;

use crate::llg::{LlgOptions, LlgSimulator};
use crate::modes::MssDevice;
use crate::switching::SwitchingModel;
use crate::MtjError;

/// Result of a Monte Carlo write-ensemble run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WerValidation {
    /// Write current, amperes.
    pub current: f64,
    /// Pulse width, seconds.
    pub pulse: f64,
    /// Ensemble size.
    pub trials: u32,
    /// Trials that failed to switch.
    pub failures: u32,
    /// Empirical write-error rate.
    pub empirical_wer: f64,
    /// The behavioural model's prediction for the same point.
    pub analytic_wer: f64,
}

/// Runs `trials` thermal LLG write attempts (AP → P at `i_write` for
/// `t_pulse`) and compares the empirical failure rate against the analytic
/// model.
///
/// The integration step is 1 ps; each trial draws an independent thermal
/// history from `seed`.
///
/// # Errors
///
/// [`MtjError::NoOperatingPoint`] for non-positive inputs or a subcritical
/// current (the precessional comparison needs `I > I_c0`).
pub fn validate_wer(
    device: &MssDevice,
    i_write: f64,
    t_pulse: f64,
    trials: u32,
    seed: u64,
) -> Result<WerValidation, MtjError> {
    let sw = SwitchingModel::new(device.stack());
    if trials == 0 || t_pulse <= 0.0 {
        return Err(MtjError::NoOperatingPoint {
            reason: format!("need trials > 0 and a positive pulse, got {trials}, {t_pulse}"),
        });
    }
    if i_write <= sw.critical_current() {
        return Err(MtjError::NoOperatingPoint {
            reason: format!(
                "validation needs a supercritical current (> {:.3e} A)",
                sw.critical_current()
            ),
        });
    }
    let mut failures = 0u32;
    for k in 0..trials {
        let sim = LlgSimulator::new(device).with_current(i_write);
        // Start at the AP pole; the thermal field supplies the initial
        // fluctuation that the analytic model draws from the Rayleigh
        // distribution.
        let traj = sim.run(
            -Vec3::unit_z(),
            t_pulse,
            &LlgOptions {
                dt: 1e-12,
                record_every: 50,
                thermal: true,
                seed: seed.wrapping_add(k as u64),
            },
        );
        if traj.final_m().z < 0.0 {
            failures += 1;
        }
    }
    Ok(WerValidation {
        current: i_write,
        pulse: t_pulse,
        trials,
        failures,
        empirical_wer: failures as f64 / trials as f64,
        analytic_wer: sw.write_error_rate(t_pulse, i_write),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MssDevice, MssStack};

    /// A small, low-barrier stack so the WER sits in the directly-samplable
    /// range (0.05–0.95) for a short pulse.
    fn soft_device() -> MssDevice {
        MssDevice::memory(
            MssStack::builder()
                .diameter(22e-9)
                .build()
                .expect("small stack"),
        )
    }

    #[test]
    fn empirical_wer_matches_analytic_scale() {
        let dev = soft_device();
        let sw = SwitchingModel::new(dev.stack());
        let i = 1.6 * sw.critical_current();
        // Pick the pulse where the analytic model predicts WER ~ 0.3.
        let t = sw.pulse_for_wer(0.3, i).expect("pulse");
        let v = validate_wer(&dev, i, t, 60, 0xBEEF).expect("ensemble");
        assert!(v.empirical_wer > 0.0 && v.empirical_wer < 1.0);
        // Physical vs behavioural: same order of magnitude. The stochastic
        // solver switches somewhat more readily than the analytic model
        // (thermal kicks keep helping during the pulse, which the
        // single-initial-angle derivation ignores), so allow a decade.
        let ratio = (v.empirical_wer / v.analytic_wer).max(v.analytic_wer / v.empirical_wer);
        assert!(
            ratio < 10.0,
            "empirical {} vs analytic {} (ratio {ratio:.1})",
            v.empirical_wer,
            v.analytic_wer
        );
    }

    #[test]
    fn longer_pulses_fail_less() {
        let dev = soft_device();
        let sw = SwitchingModel::new(dev.stack());
        let i = 1.6 * sw.critical_current();
        let t_mid = sw.pulse_for_wer(0.4, i).expect("pulse");
        let short = validate_wer(&dev, i, 0.6 * t_mid, 40, 7).unwrap();
        let long = validate_wer(&dev, i, 2.0 * t_mid, 40, 7).unwrap();
        assert!(
            long.failures <= short.failures,
            "short {} vs long {}",
            short.failures,
            long.failures
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        let dev = soft_device();
        let sw = SwitchingModel::new(dev.stack());
        assert!(validate_wer(&dev, 0.5 * sw.critical_current(), 5e-9, 10, 0).is_err());
        assert!(validate_wer(&dev, 2.0 * sw.critical_current(), 5e-9, 0, 0).is_err());
        assert!(validate_wer(&dev, 2.0 * sw.critical_current(), -1.0, 10, 0).is_err());
    }
}
