//! Analytic (behavioural) STT switching model: switching time and
//! write-error rate in both operating regimes.
//!
//! For overdrive `i = I/I_c0 > 1` (precessional regime) the polar angle grows
//! exponentially, `θ(t) = θ₀·exp((i−1)·t/τ_D)`, from a thermal initial angle
//! whose distribution is Rayleigh-like, `p(θ₀) = 2Δθ₀·exp(−Δθ₀²)`. A pulse of
//! width `t_p` fails to switch exactly when `θ₀ < θ_c = (π/2)·exp(−(i−1)t_p/τ_D)`,
//! giving the closed-form WER used throughout VAET-STT:
//!
//! ```text
//! WER(t_p, i) = 1 − exp(−Δ·(π/2)²·exp(−2(i−1)·t_p/τ_D))
//! ```
//!
//! For `i < 1` (thermal-activation regime) the Néel–Brown rate applies with
//! the current-lowered barrier `Δ·(1−i)²`.

use crate::stack::MssStack;
use crate::MtjError;

/// Analytic switching evaluator bound to one stack.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mss_mtj::MtjError> {
/// use mss_mtj::{MssStack, switching::SwitchingModel};
///
/// let stack = MssStack::builder().build()?;
/// let sw = SwitchingModel::new(&stack);
/// // Doubling the current more than halves the mean switching time.
/// let t2 = sw.mean_switching_time(2.0 * sw.critical_current())?;
/// let t4 = sw.mean_switching_time(4.0 * sw.critical_current())?;
/// assert!(t4 < t2 / 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchingModel {
    delta: f64,
    ic0: f64,
    tau_d: f64,
    theta0: f64,
    attempt_time: f64,
}

impl SwitchingModel {
    /// Builds the evaluator from a stack's derived magnetics.
    pub fn new(stack: &MssStack) -> Self {
        Self {
            delta: stack.thermal_stability(),
            ic0: stack.critical_current(),
            tau_d: stack.tau_d(),
            theta0: stack.thermal_angle(),
            attempt_time: mss_units::consts::TAU0,
        }
    }

    /// Builds an evaluator directly from the dimensionless quantities, used
    /// by variation sampling to perturb Δ and I_c0 independently.
    pub fn from_parts(delta: f64, ic0: f64, tau_d: f64) -> Self {
        Self {
            delta,
            ic0,
            tau_d,
            theta0: (1.0 / (2.0 * delta)).sqrt(),
            attempt_time: mss_units::consts::TAU0,
        }
    }

    /// Thermal stability factor Δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Critical current I_c0 in amperes.
    pub fn critical_current(&self) -> f64 {
        self.ic0
    }

    /// Precession time constant τ_D in seconds.
    pub fn tau_d(&self) -> f64 {
        self.tau_d
    }

    /// Mean (deterministic) switching time for write current `i_write`
    /// (amperes), using the mean thermal initial angle.
    ///
    /// # Errors
    ///
    /// [`MtjError::NoOperatingPoint`] when `i_write ≤ I_c0` — subthreshold
    /// currents have no deterministic switching time; use
    /// [`SwitchingModel::switch_probability`] instead.
    pub fn mean_switching_time(&self, i_write: f64) -> Result<f64, MtjError> {
        let i = i_write / self.ic0;
        if i <= 1.0 {
            return Err(MtjError::NoOperatingPoint {
                reason: format!(
                    "write current {i_write:.3e} A is below Ic0 = {:.3e} A",
                    self.ic0
                ),
            });
        }
        Ok(self.tau_d / (i - 1.0) * (std::f64::consts::FRAC_PI_2 / self.theta0).ln())
    }

    /// Write-error rate for a pulse of width `t_pulse` at current `i_write`.
    ///
    /// Covers both regimes: precessional (`i > 1`) via the closed form above,
    /// thermal activation (`i ≤ 1`) via the Néel–Brown switching probability.
    /// The result is clamped to `[0, 1]`.
    pub fn write_error_rate(&self, t_pulse: f64, i_write: f64) -> f64 {
        if t_pulse <= 0.0 {
            return 1.0;
        }
        let i = i_write / self.ic0;
        if i > 1.0 {
            // 1 - exp(-x) with x = Δ(π/2)² exp(-2(i-1)t/τD); evaluate the
            // log-domain to keep 1e-18 resolvable.
            let ln_x = self.delta.ln() + 2.0 * std::f64::consts::FRAC_PI_2.ln()
                - 2.0 * (i - 1.0) * t_pulse / self.tau_d;
            if ln_x < -700.0 {
                // x underflows: WER ≈ x.
                ln_x.exp()
            } else {
                let x = ln_x.exp();
                -(-x).exp_m1()
            }
        } else {
            // P_switch = 1 - exp(-t/τ_th); WER = exp(-t/τ_th).
            let tau_th = self.thermal_switch_time(i);
            (-t_pulse / tau_th).exp()
        }
    }

    /// Néel–Brown time constant at relative current `i = I/I_c0 ≤ 1`:
    /// `τ₀·exp(Δ·(1−i)²)`.
    fn thermal_switch_time(&self, i: f64) -> f64 {
        let barrier = self.delta * (1.0 - i.clamp(0.0, 1.0)).powi(2);
        self.attempt_time * barrier.exp()
    }

    /// Minimum pulse width achieving the target `wer` at current `i_write`.
    ///
    /// Inverts the regime-appropriate WER expression analytically.
    ///
    /// # Errors
    ///
    /// [`MtjError::NoOperatingPoint`] when `wer` is out of `(0, 1)` or the
    /// current is subcritical and the needed pulse exceeds 1 s (unusable as
    /// a write).
    pub fn pulse_for_wer(&self, wer: f64, i_write: f64) -> Result<f64, MtjError> {
        if !(0.0..1.0).contains(&wer) || wer == 0.0 {
            return Err(MtjError::NoOperatingPoint {
                reason: format!("target WER {wer} must be in (0, 1)"),
            });
        }
        let i = i_write / self.ic0;
        let t = if i > 1.0 {
            // x = -ln(1-wer);  t = τD/(2(i-1)) · ln(Δ(π/2)²/x)
            let x = -(-wer).ln_1p(); // -ln(1-wer), accurate for small wer
            let ln_ratio = self.delta.ln() + 2.0 * std::f64::consts::FRAC_PI_2.ln() - x.ln();
            (self.tau_d / (2.0 * (i - 1.0))) * ln_ratio.max(0.0)
        } else {
            // WER = exp(-t/τ_th)  ->  t = -τ_th·ln(wer)
            -self.thermal_switch_time(i) * wer.ln()
        };
        if !(t.is_finite()) || t > 1.0 {
            return Err(MtjError::NoOperatingPoint {
                reason: format!(
                    "pulse of {t:.3e} s needed for WER {wer} at I/Ic0 = {i:.2} is impractical"
                ),
            });
        }
        Ok(t.max(0.0))
    }

    /// Write current needed to reach `wer` within pulse width `t_pulse`.
    ///
    /// Analytic inversion of the precessional WER for the current ratio.
    ///
    /// # Errors
    ///
    /// [`MtjError::NoOperatingPoint`] for out-of-range targets.
    pub fn current_for_wer(&self, wer: f64, t_pulse: f64) -> Result<f64, MtjError> {
        if !(0.0..1.0).contains(&wer) || wer == 0.0 || t_pulse <= 0.0 {
            return Err(MtjError::NoOperatingPoint {
                reason: format!("invalid targets wer={wer}, t_pulse={t_pulse}"),
            });
        }
        let x = -(-wer).ln_1p();
        let ln_ratio = self.delta.ln() + 2.0 * std::f64::consts::FRAC_PI_2.ln() - x.ln();
        let i = 1.0 + self.tau_d * ln_ratio.max(0.0) / (2.0 * t_pulse);
        Ok(i * self.ic0)
    }

    /// Probability the device switches during `t_pulse` at `i_write`
    /// (complement of the WER).
    pub fn switch_probability(&self, t_pulse: f64, i_write: f64) -> f64 {
        1.0 - self.write_error_rate(t_pulse, i_write)
    }

    /// Write energy for one switching event: `I²·R·t` plus nothing else —
    /// peripheral energies are added at the array level in `mss-nvsim`.
    pub fn write_energy(&self, i_write: f64, t_pulse: f64, resistance: f64) -> f64 {
        i_write * i_write * resistance * t_pulse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MssStack;

    fn model() -> SwitchingModel {
        SwitchingModel::new(&MssStack::builder().build().unwrap())
    }

    #[test]
    fn wer_is_probability() {
        let m = model();
        for i_rel in [0.3, 0.8, 1.5, 2.0, 4.0] {
            for t in [0.1e-9, 1e-9, 10e-9, 100e-9] {
                let wer = m.write_error_rate(t, i_rel * m.critical_current());
                assert!((0.0..=1.0).contains(&wer), "wer={wer} at i={i_rel}, t={t}");
            }
        }
    }

    #[test]
    fn wer_monotone_decreasing_in_pulse_width() {
        let m = model();
        let i = 2.0 * m.critical_current();
        let mut last = 1.0;
        for k in 1..40 {
            let wer = m.write_error_rate(k as f64 * 1e-9, i);
            assert!(wer <= last + 1e-15, "wer must not increase with pulse");
            last = wer;
        }
    }

    #[test]
    fn wer_monotone_decreasing_in_current() {
        let m = model();
        let t = 10e-9;
        let mut last = 1.0;
        for k in 0..30 {
            let i = (1.2 + 0.2 * k as f64) * m.critical_current();
            let wer = m.write_error_rate(t, i);
            assert!(wer <= last + 1e-15);
            last = wer;
        }
    }

    #[test]
    fn pulse_for_wer_round_trips() {
        let m = model();
        let i = 2.5 * m.critical_current();
        for &wer in &[1e-3, 1e-6, 1e-9, 1e-15, 1e-18] {
            let t = m.pulse_for_wer(wer, i).unwrap();
            let back = m.write_error_rate(t, i);
            assert!(
                (back.ln() - wer.ln()).abs() < 1e-6,
                "wer {wer}: pulse {t}, back {back}"
            );
        }
    }

    #[test]
    fn current_for_wer_round_trips() {
        let m = model();
        let t = 10e-9;
        for &wer in &[1e-6, 1e-12, 1e-18] {
            let i = m.current_for_wer(wer, t).unwrap();
            assert!(i > m.critical_current());
            let back = m.write_error_rate(t, i);
            assert!((back.ln() - wer.ln()).abs() < 1e-6);
        }
    }

    #[test]
    fn tighter_wer_needs_longer_pulse() {
        let m = model();
        let i = 2.0 * m.critical_current();
        let t5 = m.pulse_for_wer(1e-5, i).unwrap();
        let t10 = m.pulse_for_wer(1e-10, i).unwrap();
        let t15 = m.pulse_for_wer(1e-15, i).unwrap();
        assert!(t5 < t10 && t10 < t15);
    }

    #[test]
    fn mean_switching_time_is_nanoseconds() {
        let m = model();
        let t = m.mean_switching_time(2.0 * m.critical_current()).unwrap();
        assert!(t > 0.5e-9 && t < 50e-9, "t = {t}");
    }

    #[test]
    fn subcritical_has_no_deterministic_time() {
        let m = model();
        assert!(m.mean_switching_time(0.5 * m.critical_current()).is_err());
    }

    #[test]
    fn subcritical_thermal_switching_is_slow() {
        let m = model();
        // At 30% of Ic0 a 10 ns pulse essentially never switches.
        let p = m.switch_probability(10e-9, 0.3 * m.critical_current());
        assert!(p < 1e-6, "p = {p}");
    }

    #[test]
    fn zero_pulse_never_switches() {
        let m = model();
        assert_eq!(m.write_error_rate(0.0, 2.0 * m.critical_current()), 1.0);
    }

    #[test]
    fn wer_reaches_deep_targets() {
        // The 1e-18 target of Fig. 8 must be representable.
        let m = model();
        let i = 3.0 * m.critical_current();
        let t = m.pulse_for_wer(1e-18, i).unwrap();
        assert!(t.is_finite() && t > 0.0 && t < 100e-9, "t = {t}");
    }

    #[test]
    fn invalid_targets_rejected() {
        let m = model();
        assert!(m.pulse_for_wer(0.0, 2.0 * m.critical_current()).is_err());
        assert!(m.pulse_for_wer(1.5, 2.0 * m.critical_current()).is_err());
        assert!(m.current_for_wer(1e-9, 0.0).is_err());
    }

    #[test]
    fn write_energy_scales_quadratically_with_current() {
        let m = model();
        let e1 = m.write_energy(10e-6, 10e-9, 4000.0);
        let e2 = m.write_energy(20e-6, 10e-9, 4000.0);
        assert!((e2 / e1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn from_parts_matches_new() {
        let stack = MssStack::builder().build().unwrap();
        let a = SwitchingModel::new(&stack);
        let b = SwitchingModel::from_parts(
            stack.thermal_stability(),
            stack.critical_current(),
            stack.tau_d(),
        );
        let i = 2.0 * a.critical_current();
        assert!((a.write_error_rate(5e-9, i) - b.write_error_rate(5e-9, i)).abs() < 1e-18);
    }
}
