//! Compact model of the GREAT project's **Multifunctional Standardized
//! Stack** (MSS): a perpendicular STT-MTJ that one technology retargets into
//! three functions by adding patterned permanent magnets next to the pillar.
//!
//! The paper (Tahoori et al., DATE 2018) describes the MSS as:
//!
//! - **Memory mode** — a plain perpendicular STT-MTJ; retention is tuned by
//!   the pillar diameter, the switching current follows from the retention
//!   spec.
//! - **Spin-torque-oscillator (RF) mode** — an in-plane bias field of about
//!   half the effective perpendicular anisotropy field (~1 kOe) tilts the
//!   free layer to ≈30°; a DC current then sustains GHz precession.
//! - **Sensor mode** — a larger pillar and a bias field slightly *above* the
//!   anisotropy field pull the free layer in-plane; an out-of-plane field
//!   rotates it up or down, producing a resistance change proportional to
//!   the field.
//!
//! This crate implements that device abstraction at two fidelity levels,
//! mirroring the Verilog-A "compact modelling strategies" compared in the
//! project (Jabeur et al., Electronics Letters 2014):
//!
//! - an **analytic (behavioural) model** — closed-form switching time,
//!   write-error rate, retention and read-disturb expressions
//!   ([`switching`], [`reliability`]),
//! - a **physical model** — a macrospin Landau–Lifshitz–Gilbert–Slonczewski
//!   integrator with an optional stochastic thermal field ([`llg`]),
//! - **co-integration analytics** — the Stoner–Wohlfarth astroid and
//!   stray-field retention budget for memory pillars living next to biased
//!   sensor/oscillator pillars ([`astroid`]).
//!
//! # Quickstart
//!
//! ```
//! use mss_mtj::{MssStack, MssDevice};
//!
//! # fn main() -> Result<(), mss_mtj::MtjError> {
//! let stack = MssStack::builder().diameter(40e-9).build()?;
//! // Memory mode: check the stack holds data for > 10 years.
//! let mem = MssDevice::memory(stack.clone());
//! assert!(mem.retention_seconds() > 10.0 * 365.25 * 86400.0);
//! // Oscillator mode: free layer tilts to ~30 degrees.
//! let osc = MssDevice::oscillator(stack);
//! let tilt = osc.equilibrium_tilt_degrees();
//! assert!((tilt - 30.0).abs() < 2.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod astroid;
mod error;
pub mod llg;
pub mod mechanism;
pub mod modes;
pub mod reliability;
pub mod resistance;
pub mod stack;
pub mod switching;
pub mod validate;
pub mod veriloga;

pub use error::MtjError;
pub use mechanism::{
    MechanismConfig, MechanismKind, MechanismModel, SotMechanism, SotParams, SttMechanism,
    SwitchingMechanism,
};
pub use modes::{BiasMagnet, MssDevice, MssMode};
pub use stack::{MssStack, MssStackBuilder};
