//! The MSS film stack: geometry, materials and derived magnetics.
//!
//! One [`MssStack`] describes a patterned perpendicular MTJ pillar. All
//! derived quantities (effective anisotropy field, thermal stability factor,
//! critical current, resistances) are computed on demand from the primary
//! parameters, so variation sampling in `mss-pdk` can perturb the primary
//! parameters and get self-consistent derived behaviour for free.

use mss_units::consts::{GAMMA, HBAR, KB, MU0, QE};

use crate::MtjError;

/// A perpendicular STT-MTJ pillar description (the "standardized stack").
///
/// Construct via [`MssStack::builder`]; defaults describe the 40 nm memory
/// variant calibrated in `DESIGN.md` (Δ ≈ 45 at 300 K, I_c0 ≈ 20 µA,
/// R_P ≈ 4 kΩ).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mss_mtj::MtjError> {
/// let stack = mss_mtj::MssStack::builder()
///     .diameter(40e-9)
///     .temperature(300.0)
///     .build()?;
/// assert!(stack.thermal_stability() > 40.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MssStack {
    diameter: f64,
    free_layer_thickness: f64,
    saturation_magnetization: f64,
    interfacial_anisotropy: f64,
    damping: f64,
    spin_polarization: f64,
    resistance_area_product: f64,
    tmr_zero_bias: f64,
    bias_half_voltage: f64,
    temperature: f64,
}

impl mss_pipe::StableHash for MssStack {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_f64(self.diameter);
        h.write_f64(self.free_layer_thickness);
        h.write_f64(self.saturation_magnetization);
        h.write_f64(self.interfacial_anisotropy);
        h.write_f64(self.damping);
        h.write_f64(self.spin_polarization);
        h.write_f64(self.resistance_area_product);
        h.write_f64(self.tmr_zero_bias);
        h.write_f64(self.bias_half_voltage);
        h.write_f64(self.temperature);
    }
}

impl MssStack {
    /// Starts building a stack from the calibrated defaults.
    pub fn builder() -> MssStackBuilder {
        MssStackBuilder::default()
    }

    /// Pillar diameter in metres.
    pub fn diameter(&self) -> f64 {
        self.diameter
    }

    /// Free-layer thickness in metres.
    pub fn free_layer_thickness(&self) -> f64 {
        self.free_layer_thickness
    }

    /// Saturation magnetization M_s in A/m.
    pub fn saturation_magnetization(&self) -> f64 {
        self.saturation_magnetization
    }

    /// Interfacial perpendicular anisotropy K_i in J/m².
    pub fn interfacial_anisotropy(&self) -> f64 {
        self.interfacial_anisotropy
    }

    /// Gilbert damping constant α (dimensionless).
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// Effective spin polarisation / STT efficiency η (dimensionless).
    pub fn spin_polarization(&self) -> f64 {
        self.spin_polarization
    }

    /// Resistance–area product in Ω·m².
    pub fn resistance_area_product(&self) -> f64 {
        self.resistance_area_product
    }

    /// Zero-bias TMR ratio (1.5 = 150 %).
    pub fn tmr_zero_bias(&self) -> f64 {
        self.tmr_zero_bias
    }

    /// Bias voltage V_h at which TMR halves, in volts.
    pub fn bias_half_voltage(&self) -> f64 {
        self.bias_half_voltage
    }

    /// Operating temperature in kelvin.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Junction area in m².
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.diameter * self.diameter / 4.0
    }

    /// Free-layer volume in m³.
    pub fn volume(&self) -> f64 {
        self.area() * self.free_layer_thickness
    }

    /// Effective perpendicular anisotropy field H_k,eff in A/m:
    /// `2·K_i/(μ₀·M_s·t_f) − M_s` (interfacial anisotropy minus thin-film
    /// demagnetisation).
    pub fn hk_eff(&self) -> f64 {
        2.0 * self.interfacial_anisotropy
            / (MU0 * self.saturation_magnetization * self.free_layer_thickness)
            - self.saturation_magnetization
    }

    /// Energy barrier E_b = μ₀·M_s·H_k,eff·V/2 in joules.
    pub fn energy_barrier(&self) -> f64 {
        0.5 * MU0 * self.saturation_magnetization * self.hk_eff() * self.volume()
    }

    /// Thermal stability factor Δ = E_b/(k_B·T).
    pub fn thermal_stability(&self) -> f64 {
        self.energy_barrier() / (KB * self.temperature)
    }

    /// Zero-temperature critical switching current I_c0 in amperes:
    /// `(2e/ħ)·(α/η)·2·E_b`.
    pub fn critical_current(&self) -> f64 {
        (2.0 * QE / HBAR) * (self.damping / self.spin_polarization) * 2.0 * self.energy_barrier()
    }

    /// Critical current *density* J_c0 in A/m².
    pub fn critical_current_density(&self) -> f64 {
        self.critical_current() / self.area()
    }

    /// Characteristic precession time constant
    /// τ_D = (1+α²)/(α·γ·μ₀·H_k,eff) in seconds — sets the precessional
    /// switching speed.
    pub fn tau_d(&self) -> f64 {
        (1.0 + self.damping * self.damping) / (self.damping * GAMMA * MU0 * self.hk_eff())
    }

    /// Parallel-state resistance R_P = RA/A in ohms.
    pub fn resistance_parallel(&self) -> f64 {
        self.resistance_area_product / self.area()
    }

    /// Zero-bias antiparallel resistance R_AP = R_P·(1+TMR₀) in ohms.
    pub fn resistance_antiparallel(&self) -> f64 {
        self.resistance_parallel() * (1.0 + self.tmr_zero_bias)
    }

    /// Thermal equilibrium RMS polar fluctuation angle
    /// θ₀ = √(1/(2Δ)) in radians, used as the initial angle of the
    /// precessional switching model.
    pub fn thermal_angle(&self) -> f64 {
        (1.0 / (2.0 * self.thermal_stability())).sqrt()
    }

    /// Returns a copy with a different diameter (used by retention sizing
    /// and variation sampling).
    pub fn with_diameter(&self, diameter: f64) -> Result<Self, MtjError> {
        let mut b = MssStackBuilder::from(self.clone());
        b = b.diameter(diameter);
        b.build()
    }

    /// Returns a copy with a different temperature.
    pub fn with_temperature(&self, temperature: f64) -> Result<Self, MtjError> {
        let mut b = MssStackBuilder::from(self.clone());
        b = b.temperature(temperature);
        b.build()
    }
}

/// Builder for [`MssStack`].
///
/// All setters take SI units. [`MssStackBuilder::build`] validates ranges and
/// the perpendicular-anisotropy condition (H_k,eff > 0).
#[derive(Debug, Clone, PartialEq)]
pub struct MssStackBuilder {
    diameter: f64,
    free_layer_thickness: f64,
    saturation_magnetization: f64,
    interfacial_anisotropy: f64,
    damping: f64,
    spin_polarization: f64,
    resistance_area_product: f64,
    tmr_zero_bias: f64,
    bias_half_voltage: f64,
    temperature: f64,
}

impl Default for MssStackBuilder {
    fn default() -> Self {
        Self {
            diameter: 40e-9,
            free_layer_thickness: 1.3e-9,
            saturation_magnetization: 1.05e6,
            interfacial_anisotropy: 1.05e-3,
            damping: 0.010,
            spin_polarization: 0.60,
            resistance_area_product: 5.0e-12,
            tmr_zero_bias: 1.5,
            bias_half_voltage: 0.5,
            temperature: 300.0,
        }
    }
}

impl From<MssStack> for MssStackBuilder {
    fn from(s: MssStack) -> Self {
        Self {
            diameter: s.diameter,
            free_layer_thickness: s.free_layer_thickness,
            saturation_magnetization: s.saturation_magnetization,
            interfacial_anisotropy: s.interfacial_anisotropy,
            damping: s.damping,
            spin_polarization: s.spin_polarization,
            resistance_area_product: s.resistance_area_product,
            tmr_zero_bias: s.tmr_zero_bias,
            bias_half_voltage: s.bias_half_voltage,
            temperature: s.temperature,
        }
    }
}

impl MssStackBuilder {
    /// Sets the pillar diameter in metres (typ. 20–100 nm).
    pub fn diameter(mut self, d: f64) -> Self {
        self.diameter = d;
        self
    }

    /// Sets the free-layer thickness in metres (typ. 1–2 nm).
    pub fn free_layer_thickness(mut self, t: f64) -> Self {
        self.free_layer_thickness = t;
        self
    }

    /// Sets the saturation magnetization in A/m.
    pub fn saturation_magnetization(mut self, ms: f64) -> Self {
        self.saturation_magnetization = ms;
        self
    }

    /// Sets the interfacial anisotropy in J/m².
    pub fn interfacial_anisotropy(mut self, ki: f64) -> Self {
        self.interfacial_anisotropy = ki;
        self
    }

    /// Sets the Gilbert damping constant.
    pub fn damping(mut self, alpha: f64) -> Self {
        self.damping = alpha;
        self
    }

    /// Sets the spin polarisation / STT efficiency.
    pub fn spin_polarization(mut self, p: f64) -> Self {
        self.spin_polarization = p;
        self
    }

    /// Sets the resistance–area product in Ω·m² (5 Ω·µm² = `5e-12`).
    pub fn resistance_area_product(mut self, ra: f64) -> Self {
        self.resistance_area_product = ra;
        self
    }

    /// Sets the zero-bias TMR ratio (1.5 = 150 %).
    pub fn tmr_zero_bias(mut self, tmr: f64) -> Self {
        self.tmr_zero_bias = tmr;
        self
    }

    /// Sets the TMR bias-decay half-voltage in volts.
    pub fn bias_half_voltage(mut self, vh: f64) -> Self {
        self.bias_half_voltage = vh;
        self
    }

    /// Sets the operating temperature in kelvin.
    pub fn temperature(mut self, t: f64) -> Self {
        self.temperature = t;
        self
    }

    /// Validates the parameters and builds the stack.
    ///
    /// # Errors
    ///
    /// Returns [`MtjError::InvalidParameter`] when any primary parameter is
    /// out of range or the net perpendicular anisotropy is not positive
    /// (the film would not be a perpendicular MTJ).
    pub fn build(self) -> Result<MssStack, MtjError> {
        fn check(
            name: &'static str,
            value: f64,
            ok: bool,
            constraint: &'static str,
        ) -> Result<(), MtjError> {
            if ok && value.is_finite() {
                Ok(())
            } else {
                Err(MtjError::InvalidParameter {
                    name,
                    value,
                    constraint,
                })
            }
        }

        check(
            "diameter",
            self.diameter,
            self.diameter > 5e-9 && self.diameter < 1e-6,
            "must be in (5 nm, 1 um)",
        )?;
        check(
            "free_layer_thickness",
            self.free_layer_thickness,
            self.free_layer_thickness > 0.3e-9 && self.free_layer_thickness < 10e-9,
            "must be in (0.3 nm, 10 nm)",
        )?;
        check(
            "saturation_magnetization",
            self.saturation_magnetization,
            self.saturation_magnetization > 1e4 && self.saturation_magnetization < 3e6,
            "must be in (1e4, 3e6) A/m",
        )?;
        check(
            "interfacial_anisotropy",
            self.interfacial_anisotropy,
            self.interfacial_anisotropy > 0.0,
            "must be positive",
        )?;
        check(
            "damping",
            self.damping,
            self.damping > 1e-4 && self.damping < 0.5,
            "must be in (1e-4, 0.5)",
        )?;
        check(
            "spin_polarization",
            self.spin_polarization,
            self.spin_polarization > 0.0 && self.spin_polarization <= 1.0,
            "must be in (0, 1]",
        )?;
        check(
            "resistance_area_product",
            self.resistance_area_product,
            self.resistance_area_product > 0.0,
            "must be positive",
        )?;
        check(
            "tmr_zero_bias",
            self.tmr_zero_bias,
            self.tmr_zero_bias > 0.0 && self.tmr_zero_bias < 10.0,
            "must be in (0, 10)",
        )?;
        check(
            "bias_half_voltage",
            self.bias_half_voltage,
            self.bias_half_voltage > 0.0,
            "must be positive",
        )?;
        check(
            "temperature",
            self.temperature,
            self.temperature > 0.0 && self.temperature < 1000.0,
            "must be in (0, 1000) K",
        )?;

        let stack = MssStack {
            diameter: self.diameter,
            free_layer_thickness: self.free_layer_thickness,
            saturation_magnetization: self.saturation_magnetization,
            interfacial_anisotropy: self.interfacial_anisotropy,
            damping: self.damping,
            spin_polarization: self.spin_polarization,
            resistance_area_product: self.resistance_area_product,
            tmr_zero_bias: self.tmr_zero_bias,
            bias_half_voltage: self.bias_half_voltage,
            temperature: self.temperature,
        };
        if stack.hk_eff() <= 0.0 {
            return Err(MtjError::InvalidParameter {
                name: "interfacial_anisotropy",
                value: self.interfacial_anisotropy,
                constraint: "net perpendicular anisotropy must be positive (Hk_eff > 0)",
            });
        }
        Ok(stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_stack() -> MssStack {
        MssStack::builder().build().unwrap()
    }

    #[test]
    fn default_stack_is_calibrated() {
        let s = default_stack();
        // Thermal stability around 45 at 300 K.
        let delta = s.thermal_stability();
        assert!(delta > 35.0 && delta < 60.0, "delta = {delta}");
        // Critical current in the tens of microamps.
        let ic0 = s.critical_current();
        assert!(ic0 > 5e-6 && ic0 < 100e-6, "ic0 = {ic0}");
        // Parallel resistance in the kiloohm range.
        let rp = s.resistance_parallel();
        assert!(rp > 1e3 && rp < 20e3, "rp = {rp}");
        // Hk_eff of a couple of kOe.
        let hk_oe = mss_units::consts::am_to_oe(s.hk_eff());
        assert!(hk_oe > 500.0 && hk_oe < 5000.0, "hk = {hk_oe} Oe");
    }

    #[test]
    fn bigger_pillar_more_stable() {
        let small = MssStack::builder().diameter(30e-9).build().unwrap();
        let large = MssStack::builder().diameter(60e-9).build().unwrap();
        assert!(large.thermal_stability() > small.thermal_stability());
        assert!(large.critical_current() > small.critical_current());
        // Resistance scales inversely with area.
        assert!(large.resistance_parallel() < small.resistance_parallel());
    }

    #[test]
    fn delta_scales_with_area() {
        let s30 = MssStack::builder().diameter(30e-9).build().unwrap();
        let s60 = MssStack::builder().diameter(60e-9).build().unwrap();
        let ratio = s60.thermal_stability() / s30.thermal_stability();
        assert!((ratio - 4.0).abs() < 1e-9, "Δ ∝ area: ratio = {ratio}");
    }

    #[test]
    fn hotter_is_less_stable() {
        let cold = MssStack::builder().temperature(250.0).build().unwrap();
        let hot = MssStack::builder().temperature(400.0).build().unwrap();
        assert!(cold.thermal_stability() > hot.thermal_stability());
        // The energy barrier itself is temperature-independent in this model.
        assert!((cold.energy_barrier() - hot.energy_barrier()).abs() < 1e-30);
    }

    #[test]
    fn rejects_negative_diameter() {
        let err = MssStack::builder().diameter(-40e-9).build().unwrap_err();
        assert!(matches!(
            err,
            MtjError::InvalidParameter {
                name: "diameter",
                ..
            }
        ));
    }

    #[test]
    fn rejects_in_plane_film() {
        // Tiny Ki -> demag wins -> not a perpendicular MTJ.
        let err = MssStack::builder()
            .interfacial_anisotropy(1e-5)
            .build()
            .unwrap_err();
        assert!(matches!(err, MtjError::InvalidParameter { .. }));
    }

    #[test]
    fn rejects_nan() {
        assert!(MssStack::builder().damping(f64::NAN).build().is_err());
    }

    #[test]
    fn with_diameter_preserves_other_fields() {
        let s = default_stack();
        let s2 = s.with_diameter(55e-9).unwrap();
        assert_eq!(s2.diameter(), 55e-9);
        assert_eq!(s2.damping(), s.damping());
        assert_eq!(s2.temperature(), s.temperature());
    }

    #[test]
    fn ap_resistance_exceeds_p() {
        let s = default_stack();
        assert!(s.resistance_antiparallel() > s.resistance_parallel());
        let tmr = s.resistance_antiparallel() / s.resistance_parallel() - 1.0;
        assert!((tmr - s.tmr_zero_bias()).abs() < 1e-12);
    }

    #[test]
    fn thermal_angle_matches_delta() {
        let s = default_stack();
        let theta0 = s.thermal_angle();
        assert!((theta0 * theta0 * 2.0 * s.thermal_stability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_d_is_nanoseconds() {
        let s = default_stack();
        let tau = s.tau_d();
        assert!(tau > 0.1e-9 && tau < 100e-9, "tau_d = {tau}");
    }

    #[test]
    fn builder_round_trip() {
        let s = default_stack();
        let b = MssStackBuilder::from(s.clone());
        let s2 = b.build().unwrap();
        assert_eq!(s, s2);
    }
}
