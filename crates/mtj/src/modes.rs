//! MSS operating modes: how the patterned permanent magnets re-target one
//! stack into memory, sensor or oscillator behaviour.
//!
//! The paper's recipe (Sec. I): patterned CoCr/NdFeB magnets beside the
//! pillar create an in-plane bias field H_b. The free-layer equilibrium
//! follows the Stoner–Wohlfarth energy
//!
//! ```text
//! E/(μ₀ M_s V) = −H_b·m_x − H_z·m_z − (H_k,eff/2)·m_z²
//! ```
//!
//! whose stationary points give:
//!
//! - `H_b = 0`            → m_z = ±1 (memory, bistable)
//! - `H_b ≈ H_k/2`        → sinθ = H_b/H_k → θ ≈ 30° (oscillator tilt)
//! - `H_b ≳ H_k`          → m in-plane; small H_z gives m_z ≈ H_z/(H_b−H_k)
//!   (linear sensor)

use mss_units::consts::{am_to_oe, oe_to_am};
use mss_units::math::brent;

use crate::reliability;
use crate::resistance::ResistanceModel;
use crate::stack::MssStack;
use crate::MtjError;

/// The patterned permanent-magnet bias structure surrounding an MSS pillar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasMagnet {
    /// In-plane bias field produced at the free layer, in A/m (along +x).
    pub field: f64,
}

impl BiasMagnet {
    /// No bias magnet at all (memory mode).
    pub const fn none() -> Self {
        Self { field: 0.0 }
    }

    /// A bias magnet specified in A/m.
    pub const fn with_field(field: f64) -> Self {
        Self { field }
    }

    /// A bias magnet specified in oersted (the paper quotes ~1 kOe).
    pub fn with_field_oe(oe: f64) -> Self {
        Self {
            field: oe_to_am(oe),
        }
    }

    /// The bias field in oersted.
    pub fn field_oe(&self) -> f64 {
        am_to_oe(self.field)
    }
}

/// The three functions one MSS technology provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MssMode {
    /// Bistable storage element (STT-MRAM bit cell).
    Memory,
    /// Spin-torque oscillator for RF generation.
    Oscillator,
    /// Linear out-of-plane magnetic field sensor.
    Sensor,
}

impl std::fmt::Display for MssMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MssMode::Memory => write!(f, "memory"),
            MssMode::Oscillator => write!(f, "oscillator"),
            MssMode::Sensor => write!(f, "sensor"),
        }
    }
}

/// An MSS pillar plus its bias-magnet configuration: the complete device.
///
/// # Examples
///
/// ```
/// use mss_mtj::{MssStack, MssDevice};
///
/// # fn main() -> Result<(), mss_mtj::MtjError> {
/// let stack = MssStack::builder().build()?;
/// let sensor = MssDevice::sensor(stack)?;
/// // Negative: a +z field rotates the free layer toward the (parallel,
/// // low-resistance) reference direction.
/// let sens = sensor.sensor_sensitivity()?;
/// assert!(sens < 0.0); // ohms per (A/m)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MssDevice {
    stack: MssStack,
    bias: BiasMagnet,
    mode: MssMode,
}

impl MssDevice {
    /// Memory-mode device: no bias magnet.
    pub fn memory(stack: MssStack) -> Self {
        Self {
            stack,
            bias: BiasMagnet::none(),
            mode: MssMode::Memory,
        }
    }

    /// Oscillator-mode device: bias field of half the anisotropy field, the
    /// paper's recipe for a ~30° tilt.
    pub fn oscillator(stack: MssStack) -> Self {
        let field = 0.5 * stack.hk_eff();
        Self {
            stack,
            bias: BiasMagnet::with_field(field),
            mode: MssMode::Oscillator,
        }
    }

    /// Oscillator-mode device with an explicit bias field (A/m).
    ///
    /// # Errors
    ///
    /// The bias must stay below H_k,eff, otherwise the free layer saturates
    /// in-plane and cannot oscillate.
    pub fn oscillator_with_bias(stack: MssStack, bias: BiasMagnet) -> Result<Self, MtjError> {
        if bias.field <= 0.0 || bias.field >= stack.hk_eff() {
            return Err(MtjError::NoOperatingPoint {
                reason: format!(
                    "oscillator bias {:.0} A/m must be in (0, Hk_eff = {:.0} A/m)",
                    bias.field,
                    stack.hk_eff()
                ),
            });
        }
        Ok(Self {
            stack,
            bias,
            mode: MssMode::Oscillator,
        })
    }

    /// Sensor-mode device: the paper's recipe — pillar diameter increased by
    /// 1.5× relative to the memory variant and a bias field 10 % above the
    /// (new) anisotropy field, pulling the free layer in-plane.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors from the enlarged stack.
    pub fn sensor(stack: MssStack) -> Result<Self, MtjError> {
        let enlarged = stack.with_diameter(stack.diameter() * 1.5)?;
        let field = 1.10 * enlarged.hk_eff();
        Ok(Self {
            stack: enlarged,
            bias: BiasMagnet::with_field(field),
            mode: MssMode::Sensor,
        })
    }

    /// Sensor-mode device with explicit geometry and bias.
    ///
    /// # Errors
    ///
    /// The bias field must exceed H_k,eff for a linear sensor response.
    pub fn sensor_with_bias(stack: MssStack, bias: BiasMagnet) -> Result<Self, MtjError> {
        if bias.field <= stack.hk_eff() {
            return Err(MtjError::NoOperatingPoint {
                reason: format!(
                    "sensor bias {:.0} A/m must exceed Hk_eff = {:.0} A/m",
                    bias.field,
                    stack.hk_eff()
                ),
            });
        }
        Ok(Self {
            stack,
            bias,
            mode: MssMode::Sensor,
        })
    }

    /// The underlying stack.
    pub fn stack(&self) -> &MssStack {
        &self.stack
    }

    /// The bias-magnet configuration.
    pub fn bias(&self) -> BiasMagnet {
        self.bias
    }

    /// The operating mode.
    pub fn mode(&self) -> MssMode {
        self.mode
    }

    /// A resistance model bound to this device's stack.
    pub fn resistance_model(&self) -> ResistanceModel {
        ResistanceModel::new(&self.stack)
    }

    /// Data retention time in seconds (memory mode figure of merit),
    /// `τ₀·exp(Δ)`.
    pub fn retention_seconds(&self) -> f64 {
        reliability::retention_seconds(&self.stack)
    }

    /// Equilibrium m_z under the bias field and an additional out-of-plane
    /// field `h_z` (A/m), from the Stoner–Wohlfarth energy.
    ///
    /// Solves `H_k·m_z − H_z + H_b·m_z/√(1−m_z²) ... = 0`; more precisely the
    /// stationarity condition `H_b·m_z/√(1−m_z²) − H_z − H_k·m_z = 0` for the
    /// in-plane-dominated branch, and returns ±1 when the solution saturates.
    ///
    /// # Errors
    ///
    /// [`MtjError::Convergence`] if the bracketing solve fails (does not
    /// happen for physical inputs).
    pub fn equilibrium_mz(&self, h_z: f64) -> Result<f64, MtjError> {
        let hk = self.stack.hk_eff();
        let hb = self.bias.field;
        if hb == 0.0 {
            // Bistable: pick the well selected by the field sign (default +z).
            return Ok(if h_z >= 0.0 { 1.0 } else { -1.0 });
        }
        // Stationarity of E(m_z) = −H_b·√(1−m_z²) − H_z·m_z − (H_k/2)·m_z²:
        // f(m_z) = H_b·m_z/√(1−m_z²) − H_z − H_k·m_z = 0.
        let f = |mz: f64| {
            let s = (1.0 - mz * mz).max(1e-16).sqrt();
            hb * mz / s - h_z - hk * mz
        };
        // Saturation checks: if f has no sign change in (−1, 1) the layer is
        // saturated out of plane.
        let eps = 1e-9;
        let (lo, hi) = (-1.0 + eps, 1.0 - eps);
        let (flo, fhi) = (f(lo), f(hi));
        if flo.signum() == fhi.signum() {
            return Ok(if h_z >= 0.0 { 1.0 } else { -1.0 });
        }
        brent(f, lo, hi, 1e-12, 200).map_err(|_| MtjError::Convergence {
            context: "equilibrium_mz",
        })
    }

    /// Equilibrium tilt angle from +z in degrees, at zero applied field.
    ///
    /// For oscillator bias (H_b < H_k) this is `asin(H_b/H_k)` — the paper's
    /// ≈30° for H_b = H_k/2. For sensor bias (H_b ≥ H_k) it is 90°.
    pub fn equilibrium_tilt_degrees(&self) -> f64 {
        let ratio = self.bias.field / self.stack.hk_eff();
        if ratio >= 1.0 {
            90.0
        } else {
            ratio.asin().to_degrees()
        }
    }

    /// Sensor transfer curve point: resistance at out-of-plane field `h_z`
    /// (A/m), read at bias voltage `v_read`.
    ///
    /// # Errors
    ///
    /// Returns an error when called on a non-sensor device or when the
    /// equilibrium solve fails.
    pub fn sensor_resistance(&self, h_z: f64, v_read: f64) -> Result<f64, MtjError> {
        if self.mode != MssMode::Sensor {
            return Err(MtjError::NoOperatingPoint {
                reason: format!("sensor_resistance called on a {} device", self.mode),
            });
        }
        let mz = self.equilibrium_mz(h_z)?;
        Ok(self.resistance_model().resistance(mz, v_read))
    }

    /// Small-signal sensor sensitivity dR/dH_z at zero field, in Ω/(A/m).
    ///
    /// Analytically `dm_z/dH_z = 1/(H_b − H_k)` and
    /// `dR/dm_z` follows from the conductance interpolation.
    ///
    /// # Errors
    ///
    /// Returns an error on non-sensor devices.
    pub fn sensor_sensitivity(&self) -> Result<f64, MtjError> {
        if self.mode != MssMode::Sensor {
            return Err(MtjError::NoOperatingPoint {
                reason: format!("sensor_sensitivity called on a {} device", self.mode),
            });
        }
        let dmz_dhz = 1.0 / (self.bias.field - self.stack.hk_eff());
        // dR/dmz at mz = 0: R = 1/G, G = g0 + g1*mz with
        // g0 = (Gp+Gap)/2, g1 = (Gp-Gap)/2 -> dR/dmz = -g1/g0^2.
        let m = self.resistance_model();
        let gp = 1.0 / m.r_parallel();
        let gap = 1.0 / m.r_antiparallel();
        let g0 = 0.5 * (gp + gap);
        let g1 = 0.5 * (gp - gap);
        let dr_dmz = -g1 / (g0 * g0);
        Ok(dr_dmz * dmz_dhz)
    }

    /// Linear range of the sensor in A/m: the out-of-plane field at which
    /// m_z saturates, `|H_z| ≈ H_b − H_k`.
    pub fn sensor_linear_range(&self) -> f64 {
        (self.bias.field - self.stack.hk_eff()).max(0.0)
    }

    /// Analytic small-angle estimate of the oscillator free-running
    /// frequency in hertz: precession about the effective field at the
    /// tilted equilibrium, `f ≈ (γμ₀/2π)·H_k·cosθ_eq`.
    pub fn oscillator_frequency_estimate(&self) -> f64 {
        use mss_units::consts::{GAMMA, MU0};
        let theta = self.equilibrium_tilt_degrees().to_radians();
        (GAMMA * MU0 / (2.0 * std::f64::consts::PI)) * self.stack.hk_eff() * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> MssStack {
        MssStack::builder().build().unwrap()
    }

    #[test]
    fn memory_mode_is_bistable() {
        let d = MssDevice::memory(stack());
        assert_eq!(d.equilibrium_mz(1.0).unwrap(), 1.0);
        assert_eq!(d.equilibrium_mz(-1.0).unwrap(), -1.0);
        assert_eq!(d.equilibrium_tilt_degrees(), 0.0);
    }

    #[test]
    fn oscillator_tilts_to_thirty_degrees() {
        let d = MssDevice::oscillator(stack());
        let tilt = d.equilibrium_tilt_degrees();
        assert!((tilt - 30.0).abs() < 1e-9, "tilt = {tilt}");
    }

    #[test]
    fn oscillator_frequency_is_gigahertz() {
        let d = MssDevice::oscillator(stack());
        let f = d.oscillator_frequency_estimate();
        assert!(f > 1e9 && f < 20e9, "f = {f}");
    }

    #[test]
    fn oscillator_rejects_saturating_bias() {
        let s = stack();
        let too_big = BiasMagnet::with_field(2.0 * s.hk_eff());
        assert!(MssDevice::oscillator_with_bias(s, too_big).is_err());
    }

    #[test]
    fn sensor_pulls_in_plane() {
        let d = MssDevice::sensor(stack()).unwrap();
        assert_eq!(d.equilibrium_tilt_degrees(), 90.0);
        let mz = d.equilibrium_mz(0.0).unwrap();
        assert!(mz.abs() < 1e-6, "mz at zero field = {mz}");
    }

    #[test]
    fn sensor_transfer_is_linear_and_odd() {
        let d = MssDevice::sensor(stack()).unwrap();
        let range = d.sensor_linear_range();
        let h = 0.02 * range;
        let r0 = d.sensor_resistance(0.0, 0.0).unwrap();
        let rp = d.sensor_resistance(h, 0.0).unwrap();
        let rm = d.sensor_resistance(-h, 0.0).unwrap();
        // Odd symmetry around zero field.
        assert!((rp - r0) * (rm - r0) < 0.0);
        assert!(((rp - r0) + (rm - r0)).abs() < 0.05 * (rp - r0).abs());
        // Slope matches the analytic sensitivity.
        let slope = (rp - rm) / (2.0 * h);
        let sens = d.sensor_sensitivity().unwrap();
        assert!(
            (slope - sens).abs() < 0.05 * sens.abs(),
            "slope {slope} vs sens {sens}"
        );
    }

    #[test]
    fn sensor_saturates_beyond_linear_range() {
        // Coherent rotation saturates only asymptotically: far beyond the
        // linear range the response must be strongly sub-linear and m_z high.
        let d = MssDevice::sensor(stack()).unwrap();
        let range = d.sensor_linear_range();
        let mz_big = d.equilibrium_mz(20.0 * range).unwrap();
        assert!(mz_big > 0.9, "mz = {mz_big}");
        // Sub-linearity: 20x the field gives far less than 20x the response.
        let mz_small = d.equilibrium_mz(0.05 * range).unwrap();
        assert!(mz_big < 10.0 * (mz_small * 20.0));
        assert!(mz_big < 0.9999);
    }

    #[test]
    fn sensor_rejects_weak_bias() {
        let s = stack();
        let weak = BiasMagnet::with_field(0.5 * s.hk_eff());
        assert!(MssDevice::sensor_with_bias(s, weak).is_err());
    }

    #[test]
    fn mode_mismatch_is_an_error() {
        let d = MssDevice::memory(stack());
        assert!(d.sensor_resistance(0.0, 0.0).is_err());
        assert!(d.sensor_sensitivity().is_err());
    }

    #[test]
    fn bias_magnet_oe_round_trip() {
        let b = BiasMagnet::with_field_oe(1000.0);
        assert!((b.field_oe() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn oscillator_bias_matches_paper_order_of_magnitude() {
        // Paper: bias "in the order of half of the effective perpendicular
        // anisotropy field (~1 kOe)".
        let d = MssDevice::oscillator(stack());
        let oe = d.bias().field_oe();
        assert!(oe > 300.0 && oe < 3000.0, "bias = {oe} Oe");
    }
}
