//! Tunnel-junction resistance model: angular dependence and bias-voltage
//! dependence of the TMR.
//!
//! The conductance between free and reference layer follows the standard
//! cosine interpolation between the parallel and antiparallel states,
//! `G(θ) = (G_P+G_AP)/2 + (G_P−G_AP)/2·cosθ`, and the antiparallel
//! resistance decays with bias as `TMR(V) = TMR₀/(1+(V/V_h)²)`.

use crate::stack::MssStack;

/// The two stable memory states of an MTJ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MtjState {
    /// Free layer parallel to the reference layer (low resistance, logic 0).
    Parallel,
    /// Free layer antiparallel to the reference layer (high resistance, logic 1).
    Antiparallel,
}

impl MtjState {
    /// The opposite state.
    pub fn flipped(self) -> Self {
        match self {
            MtjState::Parallel => MtjState::Antiparallel,
            MtjState::Antiparallel => MtjState::Parallel,
        }
    }

    /// cos(θ) of the state: +1 for parallel, −1 for antiparallel.
    pub fn cos_angle(self) -> f64 {
        match self {
            MtjState::Parallel => 1.0,
            MtjState::Antiparallel => -1.0,
        }
    }
}

/// Resistance evaluator bound to a stack.
#[derive(Debug, Clone, PartialEq)]
pub struct ResistanceModel {
    r_p: f64,
    tmr0: f64,
    v_h: f64,
}

impl ResistanceModel {
    /// Builds the evaluator from a stack's RA product, TMR and V_h.
    pub fn new(stack: &MssStack) -> Self {
        Self {
            r_p: stack.resistance_parallel(),
            tmr0: stack.tmr_zero_bias(),
            v_h: stack.bias_half_voltage(),
        }
    }

    /// TMR ratio at bias voltage `v` (volts): `TMR₀/(1+(v/V_h)²)`.
    pub fn tmr_at_bias(&self, v: f64) -> f64 {
        self.tmr0 / (1.0 + (v / self.v_h).powi(2))
    }

    /// Resistance for a given relative angle cosine `cos θ ∈ [−1, 1]` at
    /// bias voltage `v`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `cos_theta` is outside `[-1, 1]`.
    pub fn resistance(&self, cos_theta: f64, v: f64) -> f64 {
        debug_assert!(
            (-1.0..=1.0).contains(&cos_theta),
            "cos_theta out of range: {cos_theta}"
        );
        let g_p = 1.0 / self.r_p;
        let r_ap = self.r_p * (1.0 + self.tmr_at_bias(v));
        let g_ap = 1.0 / r_ap;
        let g = 0.5 * (g_p + g_ap) + 0.5 * (g_p - g_ap) * cos_theta;
        1.0 / g
    }

    /// Resistance of a discrete memory state at bias `v`.
    pub fn state_resistance(&self, state: MtjState, v: f64) -> f64 {
        self.resistance(state.cos_angle(), v)
    }

    /// Read signal: resistance difference between the two states at read
    /// bias `v_read`.
    pub fn read_window(&self, v_read: f64) -> f64 {
        self.state_resistance(MtjState::Antiparallel, v_read)
            - self.state_resistance(MtjState::Parallel, v_read)
    }

    /// Zero-bias parallel resistance.
    pub fn r_parallel(&self) -> f64 {
        self.r_p
    }

    /// Zero-bias antiparallel resistance.
    pub fn r_antiparallel(&self) -> f64 {
        self.r_p * (1.0 + self.tmr0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MssStack;

    fn model() -> ResistanceModel {
        ResistanceModel::new(&MssStack::builder().build().unwrap())
    }

    #[test]
    fn endpoints_match_state_resistances() {
        let m = model();
        assert!((m.resistance(1.0, 0.0) - m.r_parallel()).abs() < 1e-9);
        assert!((m.resistance(-1.0, 0.0) - m.r_antiparallel()).abs() < 1e-6);
    }

    #[test]
    fn resistance_monotone_in_angle() {
        let m = model();
        let mut last = m.resistance(1.0, 0.0);
        let mut c = 0.9f64;
        while c >= -1.0 {
            let r = m.resistance(c, 0.0);
            assert!(r > last, "resistance must grow P->AP");
            last = r;
            c -= 0.1;
        }
    }

    #[test]
    fn tmr_decays_with_bias() {
        let m = model();
        let t0 = m.tmr_at_bias(0.0);
        let th = m.tmr_at_bias(0.5); // V_h default
        assert!((th - t0 / 2.0).abs() < 1e-12);
        assert!(m.tmr_at_bias(1.0) < th);
    }

    #[test]
    fn read_window_shrinks_with_bias() {
        let m = model();
        assert!(m.read_window(0.0) > m.read_window(0.3));
        assert!(m.read_window(0.3) > 0.0);
    }

    #[test]
    fn parallel_resistance_is_bias_independent() {
        let m = model();
        assert!(
            (m.state_resistance(MtjState::Parallel, 0.0)
                - m.state_resistance(MtjState::Parallel, 0.4))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn flipped_inverts() {
        assert_eq!(MtjState::Parallel.flipped(), MtjState::Antiparallel);
        assert_eq!(MtjState::Antiparallel.flipped(), MtjState::Parallel);
    }
}
