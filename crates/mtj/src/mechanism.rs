//! Switching-mechanism abstraction: STT and SOT/SHE write backends behind
//! one trait.
//!
//! The paper treats the MSS as a *universal* spintronic stack, but the
//! original flow hard-coded the two-terminal STT write path. This module
//! factors the write physics behind [`SwitchingMechanism`] so every
//! downstream layer (mss-spice three-terminal cells, mss-nvsim read/write
//! path accounting, mss-vaet margins, the MAGPIE flow) can run either
//! backend:
//!
//! - **STT** — the existing analytic model ([`crate::switching`]); the
//!   trait impl delegates to [`SwitchingModel`]'s inherent methods, so the
//!   default path is bit-identical to the pre-refactor code.
//! - **SOT/SHE** — a three-terminal cell ([`SotMechanism`]): the write
//!   current flows through a heavy-metal channel under the pillar and the
//!   spin Hall effect injects a transverse spin current into the free
//!   layer. The compact relations follow the macrospin antidamping-SOT
//!   treatment used by the NGSPICE-compatible STT/SHE compact model
//!   (arXiv:2208.14055):
//!
//! ```text
//! J_c0,SOT = (2e/ħ) · μ₀·M_s·t_f · H_k,eff / (2·θ_SH)      (channel density)
//! I_c0,SOT = J_c0,SOT · w_ch · t_ch                        (charge current)
//! τ_SOT    = α · τ_D = (1+α²)/(γ·μ₀·H_k,eff)               (no damping limit)
//! ```
//!
//! Two qualitative SOT advantages fall out: the critical current carries no
//! Gilbert-damping factor (STT's `I_c0 ∝ α`), and the characteristic time
//! constant is the bare precession time `τ_SOT = α·τ_D`, enabling sub-ns
//! writes. The WER/pulse/current closed forms are *shared* with STT — the
//! precessional escape statistics are torque-agnostic once `(Δ, I_c0, τ)`
//! are fixed — so [`SotMechanism`] reuses [`SwitchingModel::from_parts`]
//! with the SOT constants instead of duplicating the math.
//!
//! Reads are unchanged in both mechanisms: the TMR read path always goes
//! through the tunnel barrier. Only the write path differs — SOT writes
//! through the low-resistance channel (`R_ch = ρ·L/(w·t_ch)`, hundreds of
//! ohms against the ~4 kΩ junction), which is where the write-energy win
//! comes from.

use crate::stack::MssStack;
use crate::switching::SwitchingModel;
use crate::MtjError;
use mss_units::consts::{HBAR, MU0, QE};

/// Which write mechanism a device/config uses.
///
/// Hashes stably (`Stt = 0`, `Sot = 1`) so pipe-cache keys distinguish the
/// backends; the STT discriminant is pinned by `tests/stable_digests.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MechanismKind {
    /// Spin-transfer torque: two-terminal write through the junction.
    Stt,
    /// Spin-orbit torque (spin Hall effect): three-terminal write through a
    /// heavy-metal channel.
    Sot,
}

impl MechanismKind {
    /// Short lowercase token used in CLI arguments and CSV metadata.
    pub fn token(&self) -> &'static str {
        match self {
            MechanismKind::Stt => "stt",
            MechanismKind::Sot => "sot",
        }
    }

    /// Parses the token produced by [`MechanismKind::token`]
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("stt") {
            Some(MechanismKind::Stt)
        } else if s.eq_ignore_ascii_case("sot") || s.eq_ignore_ascii_case("she") {
            Some(MechanismKind::Sot)
        } else {
            None
        }
    }
}

impl std::fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MechanismKind::Stt => write!(f, "STT"),
            MechanismKind::Sot => write!(f, "SOT"),
        }
    }
}

impl mss_pipe::StableHash for MechanismKind {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_u8(match self {
            MechanismKind::Stt => 0,
            MechanismKind::Sot => 1,
        });
    }
}

/// Heavy-metal channel parameters of the three-terminal SOT cell.
///
/// Geometry is tied to the pillar: the channel is `width_factor·d` wide and
/// `length_factor·d` long between the two write terminals, `thickness`
/// thick. Defaults describe a β-W channel (θ_SH ≈ 0.3, ρ ≈ 200 µΩ·cm).
#[derive(Debug, Clone, PartialEq)]
pub struct SotParams {
    /// Spin Hall angle θ_SH of the channel material (dimensionless).
    pub spin_hall_angle: f64,
    /// Channel (heavy-metal) thickness t_ch in metres.
    pub channel_thickness: f64,
    /// Channel resistivity ρ in Ω·m (200 µΩ·cm = `2e-6`).
    pub channel_resistivity: f64,
    /// Channel length between write terminals, as a multiple of the pillar
    /// diameter.
    pub channel_length_factor: f64,
    /// Channel width as a multiple of the pillar diameter.
    pub channel_width_factor: f64,
    /// Field-like torque amplitude relative to the damping-like term
    /// (0 = pure antidamping SOT). Only the LLG integrator uses this.
    pub field_like_ratio: f64,
}

impl Default for SotParams {
    fn default() -> Self {
        Self {
            spin_hall_angle: 0.30,
            channel_thickness: 3e-9,
            channel_resistivity: 2.0e-6,
            channel_length_factor: 1.5,
            channel_width_factor: 1.2,
            field_like_ratio: 0.0,
        }
    }
}

impl mss_pipe::StableHash for SotParams {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_f64(self.spin_hall_angle);
        h.write_f64(self.channel_thickness);
        h.write_f64(self.channel_resistivity);
        h.write_f64(self.channel_length_factor);
        h.write_f64(self.channel_width_factor);
        h.write_f64(self.field_like_ratio);
    }
}

impl SotParams {
    /// Validates the parameter ranges.
    ///
    /// # Errors
    ///
    /// [`MtjError::InvalidParameter`] when any parameter is out of range.
    pub fn validate(&self) -> Result<(), MtjError> {
        fn check(
            name: &'static str,
            value: f64,
            ok: bool,
            constraint: &'static str,
        ) -> Result<(), MtjError> {
            if ok && value.is_finite() {
                Ok(())
            } else {
                Err(MtjError::InvalidParameter {
                    name,
                    value,
                    constraint,
                })
            }
        }
        check(
            "spin_hall_angle",
            self.spin_hall_angle,
            self.spin_hall_angle > 0.0 && self.spin_hall_angle <= 1.0,
            "must be in (0, 1]",
        )?;
        check(
            "channel_thickness",
            self.channel_thickness,
            self.channel_thickness > 0.5e-9 && self.channel_thickness < 50e-9,
            "must be in (0.5 nm, 50 nm)",
        )?;
        check(
            "channel_resistivity",
            self.channel_resistivity,
            self.channel_resistivity > 0.0,
            "must be positive",
        )?;
        check(
            "channel_length_factor",
            self.channel_length_factor,
            self.channel_length_factor >= 1.0 && self.channel_length_factor < 100.0,
            "must be in [1, 100)",
        )?;
        check(
            "channel_width_factor",
            self.channel_width_factor,
            self.channel_width_factor >= 1.0 && self.channel_width_factor < 100.0,
            "must be in [1, 100)",
        )?;
        check(
            "field_like_ratio",
            self.field_like_ratio,
            (-5.0..=5.0).contains(&self.field_like_ratio),
            "must be in [-5, 5]",
        )?;
        Ok(())
    }

    /// Channel width in metres for pillar diameter `d`.
    pub fn channel_width(&self, d: f64) -> f64 {
        self.channel_width_factor * d
    }

    /// Channel length in metres for pillar diameter `d`.
    pub fn channel_length(&self, d: f64) -> f64 {
        self.channel_length_factor * d
    }

    /// Channel cross-section `w·t_ch` in m² for pillar diameter `d`.
    pub fn channel_cross_section(&self, d: f64) -> f64 {
        self.channel_width(d) * self.channel_thickness
    }

    /// Channel resistance `ρ·L/(w·t_ch)` in ohms for pillar diameter `d`.
    pub fn channel_resistance(&self, d: f64) -> f64 {
        self.channel_resistivity * self.channel_length(d) / self.channel_cross_section(d)
    }
}

/// The write-physics interface every device backend provides.
///
/// `i_write` is the current through the *write path*: the junction for STT,
/// the heavy-metal channel for SOT. Pulse/WER/energy semantics are shared
/// so array models and margin solvers are mechanism-agnostic.
pub trait SwitchingMechanism {
    /// Which backend this is.
    fn kind(&self) -> MechanismKind;

    /// Thermal stability factor Δ (retention is mechanism-independent).
    fn delta(&self) -> f64;

    /// Critical write-path current I_c0 in amperes.
    fn critical_current(&self) -> f64;

    /// Characteristic switching time constant in seconds (τ_D for STT,
    /// α·τ_D for SOT).
    fn time_constant(&self) -> f64;

    /// Write-error rate for a pulse of width `t_pulse` at write-path
    /// current `i_write`.
    fn write_error_rate(&self, t_pulse: f64, i_write: f64) -> f64;

    /// Mean (deterministic) switching time at `i_write`.
    ///
    /// # Errors
    ///
    /// [`MtjError::NoOperatingPoint`] for subcritical currents.
    fn mean_switching_time(&self, i_write: f64) -> Result<f64, MtjError>;

    /// Minimum pulse width achieving `wer` at `i_write`.
    ///
    /// # Errors
    ///
    /// [`MtjError::NoOperatingPoint`] for unreachable targets.
    fn pulse_for_wer(&self, wer: f64, i_write: f64) -> Result<f64, MtjError>;

    /// Write-path current needed to reach `wer` within `t_pulse`.
    ///
    /// # Errors
    ///
    /// [`MtjError::NoOperatingPoint`] for unreachable targets.
    fn current_for_wer(&self, wer: f64, t_pulse: f64) -> Result<f64, MtjError>;

    /// Probability the device switches during `t_pulse` at `i_write`.
    fn switch_probability(&self, t_pulse: f64, i_write: f64) -> f64 {
        1.0 - self.write_error_rate(t_pulse, i_write)
    }

    /// Write energy `I²·R·t` over the write path.
    fn write_energy(&self, i_write: f64, t_pulse: f64, resistance: f64) -> f64 {
        i_write * i_write * resistance * t_pulse
    }

    /// Resistance of the write path in ohms, given the junction resistance
    /// the write would otherwise see (STT returns it unchanged; SOT returns
    /// the channel resistance).
    fn write_path_resistance(&self, junction_resistance: f64) -> f64;
}

/// The STT backend *is* the historic analytic model; the alias names it in
/// mechanism-generic code. Behaviour is bit-identical by construction — the
/// trait impl below delegates to the same inherent methods every caller
/// already used.
pub type SttMechanism = SwitchingModel;

impl SwitchingMechanism for SwitchingModel {
    fn kind(&self) -> MechanismKind {
        MechanismKind::Stt
    }

    fn delta(&self) -> f64 {
        SwitchingModel::delta(self)
    }

    fn critical_current(&self) -> f64 {
        SwitchingModel::critical_current(self)
    }

    fn time_constant(&self) -> f64 {
        SwitchingModel::tau_d(self)
    }

    fn write_error_rate(&self, t_pulse: f64, i_write: f64) -> f64 {
        SwitchingModel::write_error_rate(self, t_pulse, i_write)
    }

    fn mean_switching_time(&self, i_write: f64) -> Result<f64, MtjError> {
        SwitchingModel::mean_switching_time(self, i_write)
    }

    fn pulse_for_wer(&self, wer: f64, i_write: f64) -> Result<f64, MtjError> {
        SwitchingModel::pulse_for_wer(self, wer, i_write)
    }

    fn current_for_wer(&self, wer: f64, t_pulse: f64) -> Result<f64, MtjError> {
        SwitchingModel::current_for_wer(self, wer, t_pulse)
    }

    fn switch_probability(&self, t_pulse: f64, i_write: f64) -> f64 {
        SwitchingModel::switch_probability(self, t_pulse, i_write)
    }

    fn write_energy(&self, i_write: f64, t_pulse: f64, resistance: f64) -> f64 {
        SwitchingModel::write_energy(self, i_write, t_pulse, resistance)
    }

    fn write_path_resistance(&self, junction_resistance: f64) -> f64 {
        junction_resistance
    }
}

/// The SOT/SHE backend: antidamping spin-Hall switching of the same pillar
/// through a heavy-metal channel.
///
/// Internally this reuses [`SwitchingModel::from_parts`] with the SOT
/// constants `(Δ, I_c0,SOT, τ_SOT)` — the precessional/thermal escape
/// closed forms are torque-agnostic — plus the channel resistance for the
/// write path.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mss_mtj::MtjError> {
/// use mss_mtj::mechanism::{SotMechanism, SotParams, SwitchingMechanism};
/// let stack = mss_mtj::MssStack::builder().build()?;
/// let sot = SotMechanism::new(&stack, SotParams::default())?;
/// // No damping limit: SOT switches in well under a nanosecond at 2x Ic.
/// let t = sot.mean_switching_time(2.0 * sot.critical_current())?;
/// assert!(t < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SotMechanism {
    inner: SwitchingModel,
    params: SotParams,
    channel_resistance: f64,
    pillar_diameter: f64,
}

impl SotMechanism {
    /// Builds the SOT evaluator for a stack + channel description.
    ///
    /// # Errors
    ///
    /// [`MtjError::InvalidParameter`] when the channel parameters are out
    /// of range.
    pub fn new(stack: &MssStack, params: SotParams) -> Result<Self, MtjError> {
        params.validate()?;
        let d = stack.diameter();
        // Antidamping-SOT critical density for a perpendicular free layer:
        // J_c0 = (2e/ħ)·μ₀·M_s·t_f·H_k,eff/(2·θ_SH). Note the absence of
        // the Gilbert-damping factor that scales the STT critical current.
        let jc0 = (2.0 * QE / HBAR)
            * MU0
            * stack.saturation_magnetization()
            * stack.free_layer_thickness()
            * stack.hk_eff()
            / (2.0 * params.spin_hall_angle);
        let ic0 = jc0 * params.channel_cross_section(d);
        // The SOT time constant is the bare precession time: the damping
        // bottleneck α in τ_D cancels because the spin current is injected
        // transverse to the easy axis.
        let tau_sot = stack.damping() * stack.tau_d();
        let inner = SwitchingModel::from_parts(stack.thermal_stability(), ic0, tau_sot);
        Ok(Self {
            inner,
            channel_resistance: params.channel_resistance(d),
            pillar_diameter: d,
            params,
        })
    }

    /// The channel parameters this evaluator was built with.
    pub fn params(&self) -> &SotParams {
        &self.params
    }

    /// The underlying closed-form evaluator calibrated with the SOT
    /// constants `(Δ, I_c0,SOT, τ_SOT)` — circuit elements reuse it to
    /// integrate switching progress against the *channel* current.
    pub fn switching_model(&self) -> &SwitchingModel {
        &self.inner
    }

    /// Heavy-metal channel resistance between the write terminals, ohms.
    pub fn channel_resistance(&self) -> f64 {
        self.channel_resistance
    }

    /// Critical channel current *density* J_c0,SOT in A/m².
    pub fn critical_current_density(&self) -> f64 {
        self.inner.critical_current() / self.params.channel_cross_section(self.pillar_diameter)
    }
}

impl SwitchingMechanism for SotMechanism {
    fn kind(&self) -> MechanismKind {
        MechanismKind::Sot
    }

    fn delta(&self) -> f64 {
        self.inner.delta()
    }

    fn critical_current(&self) -> f64 {
        self.inner.critical_current()
    }

    fn time_constant(&self) -> f64 {
        self.inner.tau_d()
    }

    fn write_error_rate(&self, t_pulse: f64, i_write: f64) -> f64 {
        self.inner.write_error_rate(t_pulse, i_write)
    }

    fn mean_switching_time(&self, i_write: f64) -> Result<f64, MtjError> {
        self.inner.mean_switching_time(i_write)
    }

    fn pulse_for_wer(&self, wer: f64, i_write: f64) -> Result<f64, MtjError> {
        self.inner.pulse_for_wer(wer, i_write)
    }

    fn current_for_wer(&self, wer: f64, t_pulse: f64) -> Result<f64, MtjError> {
        self.inner.current_for_wer(wer, t_pulse)
    }

    fn write_path_resistance(&self, _junction_resistance: f64) -> f64 {
        self.channel_resistance
    }
}

/// Serializable mechanism selection for configs that flow through the
/// pipe cache (nvsim configs, MAGPIE inputs, CLI arguments).
///
/// Hashing is framed: the discriminant byte first, then — for SOT — the
/// channel parameters, so an STT config hashes exactly as the bare
/// discriminant and SOT configs can never collide with it.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum MechanismConfig {
    /// Two-terminal STT write (the historic default).
    #[default]
    Stt,
    /// Three-terminal SOT/SHE write with the given channel.
    Sot(SotParams),
}

impl mss_pipe::StableHash for MechanismConfig {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        match self {
            MechanismConfig::Stt => h.write_u8(0),
            MechanismConfig::Sot(p) => {
                h.write_u8(1);
                p.stable_hash(h);
            }
        }
    }
}

impl MechanismConfig {
    /// The kind tag of this config.
    pub fn kind(&self) -> MechanismKind {
        match self {
            MechanismConfig::Stt => MechanismKind::Stt,
            MechanismConfig::Sot(_) => MechanismKind::Sot,
        }
    }

    /// True for the historic STT default (used to keep cache digests and
    /// golden outputs byte-identical when nothing was asked for).
    pub fn is_default(&self) -> bool {
        matches!(self, MechanismConfig::Stt)
    }

    /// Builds the concrete evaluator for `stack`.
    ///
    /// # Errors
    ///
    /// [`MtjError::InvalidParameter`] for invalid SOT channel parameters.
    pub fn model(&self, stack: &MssStack) -> Result<MechanismModel, MtjError> {
        Ok(match self {
            MechanismConfig::Stt => MechanismModel::Stt(SwitchingModel::new(stack)),
            MechanismConfig::Sot(p) => MechanismModel::Sot(SotMechanism::new(stack, p.clone())?),
        })
    }
}

/// Enum-dispatched mechanism evaluator (avoids boxing in hot paths).
#[derive(Debug, Clone, PartialEq)]
pub enum MechanismModel {
    /// STT evaluator.
    Stt(SwitchingModel),
    /// SOT evaluator.
    Sot(SotMechanism),
}

impl SwitchingMechanism for MechanismModel {
    fn kind(&self) -> MechanismKind {
        match self {
            MechanismModel::Stt(m) => SwitchingMechanism::kind(m),
            MechanismModel::Sot(m) => m.kind(),
        }
    }

    fn delta(&self) -> f64 {
        match self {
            MechanismModel::Stt(m) => SwitchingMechanism::delta(m),
            MechanismModel::Sot(m) => SwitchingMechanism::delta(m),
        }
    }

    fn critical_current(&self) -> f64 {
        match self {
            MechanismModel::Stt(m) => SwitchingMechanism::critical_current(m),
            MechanismModel::Sot(m) => SwitchingMechanism::critical_current(m),
        }
    }

    fn time_constant(&self) -> f64 {
        match self {
            MechanismModel::Stt(m) => SwitchingMechanism::time_constant(m),
            MechanismModel::Sot(m) => m.time_constant(),
        }
    }

    fn write_error_rate(&self, t_pulse: f64, i_write: f64) -> f64 {
        match self {
            MechanismModel::Stt(m) => SwitchingMechanism::write_error_rate(m, t_pulse, i_write),
            MechanismModel::Sot(m) => m.write_error_rate(t_pulse, i_write),
        }
    }

    fn mean_switching_time(&self, i_write: f64) -> Result<f64, MtjError> {
        match self {
            MechanismModel::Stt(m) => SwitchingMechanism::mean_switching_time(m, i_write),
            MechanismModel::Sot(m) => m.mean_switching_time(i_write),
        }
    }

    fn pulse_for_wer(&self, wer: f64, i_write: f64) -> Result<f64, MtjError> {
        match self {
            MechanismModel::Stt(m) => SwitchingMechanism::pulse_for_wer(m, wer, i_write),
            MechanismModel::Sot(m) => m.pulse_for_wer(wer, i_write),
        }
    }

    fn current_for_wer(&self, wer: f64, t_pulse: f64) -> Result<f64, MtjError> {
        match self {
            MechanismModel::Stt(m) => SwitchingMechanism::current_for_wer(m, wer, t_pulse),
            MechanismModel::Sot(m) => m.current_for_wer(wer, t_pulse),
        }
    }

    fn write_path_resistance(&self, junction_resistance: f64) -> f64 {
        match self {
            MechanismModel::Stt(m) => m.write_path_resistance(junction_resistance),
            MechanismModel::Sot(m) => m.write_path_resistance(junction_resistance),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MssStack;

    fn stack() -> MssStack {
        MssStack::builder().build().unwrap()
    }

    fn sot() -> SotMechanism {
        SotMechanism::new(&stack(), SotParams::default()).unwrap()
    }

    #[test]
    fn stt_trait_is_bit_identical_to_inherent() {
        let s = stack();
        let m = SwitchingModel::new(&s);
        let i = 2.0 * SwitchingModel::critical_current(&m);
        let via_trait = SwitchingMechanism::write_error_rate(&m, 5e-9, i);
        let direct = SwitchingModel::write_error_rate(&m, 5e-9, i);
        assert_eq!(via_trait.to_bits(), direct.to_bits());
        assert_eq!(
            SwitchingMechanism::mean_switching_time(&m, i)
                .unwrap()
                .to_bits(),
            SwitchingModel::mean_switching_time(&m, i)
                .unwrap()
                .to_bits()
        );
        assert_eq!(SwitchingMechanism::kind(&m), MechanismKind::Stt);
        assert_eq!(m.write_path_resistance(4.0e3), 4.0e3);
    }

    #[test]
    fn sot_removes_the_damping_limit() {
        // τ_SOT = α·τ_D: three orders of magnitude faster than STT's
        // precession bottleneck at α = 0.01.
        let s = stack();
        let stt = SwitchingModel::new(&s);
        let sot = sot();
        let t_stt = stt
            .mean_switching_time(2.0 * SwitchingModel::critical_current(&stt))
            .unwrap();
        let t_sot = sot
            .mean_switching_time(2.0 * sot.critical_current())
            .unwrap();
        assert!(t_sot < 1e-9, "SOT write should be sub-ns: {t_sot:.3e}");
        assert!(t_sot < t_stt / 10.0, "stt {t_stt:.3e} vs sot {t_sot:.3e}");
    }

    #[test]
    fn sot_critical_current_has_no_damping_factor() {
        // Doubling α doubles the STT Ic0 but leaves the SOT Ic0 unchanged.
        let base = stack();
        let damped = MssStack::builder().damping(0.020).build().unwrap();
        let stt_ratio = damped.critical_current() / base.critical_current();
        assert!((stt_ratio - 2.0).abs() < 1e-9);
        let sot_a = SotMechanism::new(&base, SotParams::default()).unwrap();
        let sot_b = SotMechanism::new(&damped, SotParams::default()).unwrap();
        let sot_ratio = sot_b.critical_current() / sot_a.critical_current();
        assert!((sot_ratio - 1.0).abs() < 1e-9, "ratio = {sot_ratio}");
    }

    #[test]
    fn sot_channel_is_low_resistance() {
        let s = stack();
        let sot = sot();
        let r_ch = sot.channel_resistance();
        assert!(r_ch > 10.0 && r_ch < 2.0e3, "r_ch = {r_ch}");
        assert!(r_ch < s.resistance_parallel() / 2.0);
        assert_eq!(sot.write_path_resistance(s.resistance_parallel()), r_ch);
    }

    #[test]
    fn sot_wer_is_probability_and_monotone() {
        let sot = sot();
        let mut last = 1.0;
        for k in 1..30 {
            let wer = sot.write_error_rate(k as f64 * 0.05e-9, 2.0 * sot.critical_current());
            assert!((0.0..=1.0).contains(&wer));
            assert!(wer <= last + 1e-15);
            last = wer;
        }
    }

    #[test]
    fn sot_pulse_for_wer_round_trips() {
        let sot = sot();
        let i = 2.5 * sot.critical_current();
        for &wer in &[1e-3, 1e-9, 1e-18] {
            let t = sot.pulse_for_wer(wer, i).unwrap();
            assert!(t > 0.0 && t < 5e-9, "SOT pulses stay short: {t:.3e}");
            let back = sot.write_error_rate(t, i);
            assert!((back.ln() - wer.ln()).abs() < 1e-6);
        }
    }

    #[test]
    fn retention_is_mechanism_independent() {
        let s = stack();
        let stt = SwitchingModel::new(&s);
        let sot = SotMechanism::new(&s, SotParams::default()).unwrap();
        assert_eq!(
            SwitchingMechanism::delta(&stt).to_bits(),
            SwitchingMechanism::delta(&sot).to_bits()
        );
    }

    #[test]
    fn params_validation_rejects_out_of_range() {
        let bad = SotParams {
            spin_hall_angle: 0.0,
            ..SotParams::default()
        };
        assert!(bad.validate().is_err());
        assert!(SotMechanism::new(&stack(), bad).is_err());
        let nan = SotParams {
            channel_resistivity: f64::NAN,
            ..SotParams::default()
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn config_default_is_stt() {
        let cfg = MechanismConfig::default();
        assert!(cfg.is_default());
        assert_eq!(cfg.kind(), MechanismKind::Stt);
        let model = cfg.model(&stack()).unwrap();
        assert_eq!(model.kind(), MechanismKind::Stt);
    }

    #[test]
    fn config_digests_are_framed() {
        use mss_pipe::digest_of;
        let stt = digest_of(&MechanismConfig::Stt);
        let sot = digest_of(&MechanismConfig::Sot(SotParams::default()));
        assert_ne!(stt, sot);
        // Two different channels hash differently too.
        let other = digest_of(&MechanismConfig::Sot(SotParams {
            spin_hall_angle: 0.25,
            ..SotParams::default()
        }));
        assert_ne!(sot, other);
    }

    #[test]
    fn kind_tokens_round_trip() {
        for kind in [MechanismKind::Stt, MechanismKind::Sot] {
            assert_eq!(MechanismKind::parse(kind.token()), Some(kind));
        }
        assert_eq!(MechanismKind::parse("SHE"), Some(MechanismKind::Sot));
        assert_eq!(MechanismKind::parse("quantum"), None);
    }

    #[test]
    fn enum_dispatch_matches_backends() {
        let s = stack();
        let cfg = MechanismConfig::Sot(SotParams::default());
        let model = cfg.model(&s).unwrap();
        let direct = SotMechanism::new(&s, SotParams::default()).unwrap();
        assert_eq!(
            model.critical_current().to_bits(),
            direct.critical_current().to_bits()
        );
        assert_eq!(model.kind(), MechanismKind::Sot);
    }
}
