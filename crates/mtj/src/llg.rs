//! Macrospin Landau–Lifshitz–Gilbert–Slonczewski solver: the *physical*
//! compact-model strategy.
//!
//! The project compared Verilog-A compact-modelling strategies for
//! spintronic devices (Jabeur et al., 2014): a fast behavioural model (our
//! [`crate::switching`]) versus a physical macrospin model. This module is
//! the physical one; the `ablation_integrator` bench and several tests check
//! the two stay consistent.
//!
//! The integrated equation (Landau–Lifshitz form, fields in A/m):
//!
//! ```text
//! dm/dt = −γ̃/(1+α²)·[ m×H  +  α·m×(m×H) ]  −  γ̃·a_J/(1+α²)·m×(m×p)
//! ```
//!
//! with `γ̃ = γ·μ₀` and the Slonczewski field `a_J = ħ·J·η/(2·e·μ₀·M_s·t_f)`.
//! With this sign convention **positive current pulls m toward the reference
//! layer `p = +ẑ`** (writes the parallel state); negative current writes the
//! antiparallel state.
//!
//! The thermal field follows Brown's fluctuation–dissipation result,
//! `⟨H_i H_j⟩ = 2D·δ_ij·δ(t−t')` with
//! `D = α·k_B·T / ((1+α²)·γ̃·μ₀·M_s·V)`, integrated with the stochastic Heun
//! scheme (Stratonovich). Deterministic runs use classic RK4.

use mss_exec::{par_map, ParallelConfig};
use mss_units::consts::{GAMMA, HBAR, KB, MU0, QE};
use mss_units::rng::{standard_normal, Rng, Xoshiro256PlusPlus};
use mss_units::stats::{DistributionSummary, OnlineStats};
use mss_units::Vec3;

use crate::mechanism::SotParams;
use crate::modes::MssDevice;

/// Integration options for an LLG run.
#[derive(Debug, Clone, PartialEq)]
pub struct LlgOptions {
    /// Time step in seconds. 1 ps resolves GHz precession comfortably.
    pub dt: f64,
    /// Record every `record_every`-th step into the trajectory (1 = all).
    pub record_every: usize,
    /// Enable the stochastic thermal field.
    pub thermal: bool,
    /// RNG seed for the thermal field (ignored when `thermal` is false).
    pub seed: u64,
}

impl Default for LlgOptions {
    fn default() -> Self {
        Self {
            dt: 1e-12,
            record_every: 10,
            thermal: false,
            seed: 0,
        }
    }
}

/// A macrospin simulator bound to one MSS device configuration.
///
/// # Examples
///
/// ```
/// use mss_mtj::{MssStack, MssDevice};
/// use mss_mtj::llg::{LlgSimulator, LlgOptions};
/// use mss_units::Vec3;
///
/// # fn main() -> Result<(), mss_mtj::MtjError> {
/// let device = MssDevice::memory(MssStack::builder().build()?);
/// let sim = LlgSimulator::new(&device);
/// // Relax from a small tilt: must return to +z.
/// let m0 = Vec3::from_spherical(0.2, 0.0);
/// let traj = sim.run(m0, 5e-9, &LlgOptions::default());
/// assert!(traj.final_m().z > 0.99);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LlgSimulator {
    hk_eff: f64,
    alpha: f64,
    ms: f64,
    volume: f64,
    free_layer_thickness: f64,
    area: f64,
    polarization: f64,
    temperature: f64,
    bias_field: Vec3,
    applied_field: Vec3,
    current: f64,
    reference: Vec3,
    sot_field: f64,
    sot_polarization: Vec3,
    sot_field_like_ratio: f64,
}

impl LlgSimulator {
    /// Builds a simulator from a device (stack + bias magnet).
    pub fn new(device: &MssDevice) -> Self {
        let s = device.stack();
        Self {
            hk_eff: s.hk_eff(),
            alpha: s.damping(),
            ms: s.saturation_magnetization(),
            volume: s.volume(),
            free_layer_thickness: s.free_layer_thickness(),
            area: s.area(),
            polarization: s.spin_polarization(),
            temperature: s.temperature(),
            bias_field: Vec3::new(device.bias().field, 0.0, 0.0),
            applied_field: Vec3::zero(),
            current: 0.0,
            reference: Vec3::unit_z(),
            sot_field: 0.0,
            sot_polarization: Vec3::unit_y(),
            sot_field_like_ratio: 0.0,
        }
    }

    /// Adds a uniform applied field (A/m) on top of the bias magnet.
    pub fn with_applied_field(mut self, h: Vec3) -> Self {
        self.applied_field = h;
        self
    }

    /// Sets the DC tunnel current in amperes (positive writes parallel).
    pub fn with_current(mut self, i: f64) -> Self {
        self.current = i;
        self
    }

    /// Configures the SOT/SHE torque for a heavy-metal channel current
    /// `i_channel` (amperes, +x flow) through the channel described by
    /// `params`.
    ///
    /// The spin Hall effect injects spins polarised along σ = ±ŷ (sign of
    /// the channel current) with damping-like amplitude
    /// `a_SOT = ħ·θ_SH·|J_ch|/(2·e·μ₀·M_s·t_f)` and an optional field-like
    /// component `params.field_like_ratio · a_SOT`. The default simulator
    /// leaves all SOT fields at zero, so plain STT runs are bit-identical
    /// to the pre-SOT integrator.
    pub fn with_sot_current(mut self, i_channel: f64, params: &SotParams) -> Self {
        // Recover the pillar diameter from the stored junction area.
        let d = (4.0 * self.area / std::f64::consts::PI).sqrt();
        let j = i_channel / params.channel_cross_section(d);
        self.sot_field = HBAR * params.spin_hall_angle * j.abs()
            / (2.0 * QE * MU0 * self.ms * self.free_layer_thickness);
        self.sot_polarization = if i_channel >= 0.0 {
            Vec3::unit_y()
        } else {
            Vec3::new(0.0, -1.0, 0.0)
        };
        self.sot_field_like_ratio = params.field_like_ratio;
        self
    }

    /// Slonczewski effective field a_J in A/m for the configured current.
    pub fn slonczewski_field(&self) -> f64 {
        let j = self.current / self.area;
        HBAR * j * self.polarization / (2.0 * QE * MU0 * self.ms * self.free_layer_thickness)
    }

    /// Deterministic effective field (A/m) at magnetization `m`.
    fn h_eff(&self, m: Vec3) -> Vec3 {
        Vec3::new(0.0, 0.0, self.hk_eff * m.z) + self.bias_field + self.applied_field
    }

    /// Right-hand side of the Landau–Lifshitz equation at `m` with an extra
    /// (thermal) field `h_extra`.
    fn rhs(&self, m: Vec3, h_extra: Vec3) -> Vec3 {
        let gamma_tilde = GAMMA * MU0;
        let pre = gamma_tilde / (1.0 + self.alpha * self.alpha);
        let h = self.h_eff(m) + h_extra;
        let mxh = m.cross(h);
        let mxmxh = m.cross(mxh);
        let mut dm = -pre * (mxh + self.alpha * mxmxh);
        let aj = self.slonczewski_field();
        if aj != 0.0 {
            let mxp = m.cross(self.reference);
            let mxmxp = m.cross(mxp);
            dm += -pre * aj * mxmxp;
        }
        // SOT: damping-like torque toward the spin-Hall polarisation σ plus
        // an optional field-like term. Zero amplitude (the default) adds
        // nothing, keeping STT-only runs bit-identical.
        if self.sot_field != 0.0 {
            let mxs = m.cross(self.sot_polarization);
            let mxmxs = m.cross(mxs);
            dm += -pre * self.sot_field * mxmxs;
            if self.sot_field_like_ratio != 0.0 {
                dm += -pre * self.sot_field * self.sot_field_like_ratio * mxs;
            }
        }
        dm
    }

    /// Brown diffusion constant D in (A/m)²·s.
    fn thermal_diffusion(&self) -> f64 {
        let gamma_tilde = GAMMA * MU0;
        self.alpha * KB * self.temperature
            / ((1.0 + self.alpha * self.alpha) * gamma_tilde * MU0 * self.ms * self.volume)
    }

    /// Integrates from `m0` for `duration` seconds.
    ///
    /// `m0` is normalised on entry; the trajectory stays on the unit sphere
    /// (renormalised every step, drift is checked in tests).
    pub fn run(&self, m0: Vec3, duration: f64, opts: &LlgOptions) -> Trajectory {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(opts.seed);
        self.run_with_rng(m0, duration, opts, &mut rng)
    }

    /// [`run`](Self::run) drawing the thermal field from a caller-supplied
    /// RNG instead of seeding from `opts.seed` — the hook the parallel
    /// ensembles use to give every member its own deterministic stream.
    pub fn run_with_rng<R: Rng + ?Sized>(
        &self,
        m0: Vec3,
        duration: f64,
        opts: &LlgOptions,
        rng: &mut R,
    ) -> Trajectory {
        assert!(opts.dt > 0.0, "dt must be positive");
        assert!(opts.record_every >= 1, "record_every must be >= 1");
        let steps = (duration / opts.dt).ceil() as usize;
        let mut m = m0.normalized();
        let mut traj = Trajectory::with_capacity(steps / opts.record_every + 2);
        traj.push(0.0, m);
        let sigma_h = if opts.thermal {
            (2.0 * self.thermal_diffusion() / opts.dt).sqrt()
        } else {
            0.0
        };
        for k in 0..steps {
            if opts.thermal {
                // Stochastic Heun: one thermal-field draw per step, shared
                // between predictor and corrector (Stratonovich).
                let h_th = Vec3::new(
                    sigma_h * standard_normal(&mut *rng),
                    sigma_h * standard_normal(&mut *rng),
                    sigma_h * standard_normal(&mut *rng),
                );
                let f1 = self.rhs(m, h_th);
                let m_pred = (m + f1 * opts.dt).normalized();
                let f2 = self.rhs(m_pred, h_th);
                m = (m + (f1 + f2) * (0.5 * opts.dt)).normalized();
            } else {
                // RK4.
                let f1 = self.rhs(m, Vec3::zero());
                let f2 = self.rhs(m + f1 * (0.5 * opts.dt), Vec3::zero());
                let f3 = self.rhs(m + f2 * (0.5 * opts.dt), Vec3::zero());
                let f4 = self.rhs(m + f3 * opts.dt, Vec3::zero());
                m = (m + (f1 + 2.0 * f2 + 2.0 * f3 + f4) * (opts.dt / 6.0)).normalized();
            }
            if (k + 1) % opts.record_every == 0 || k + 1 == steps {
                traj.push((k + 1) as f64 * opts.dt, m);
            }
        }
        // One bump per run (never per step): integration volume is the
        // denominator of every LLG throughput number.
        if mss_obs::enabled() {
            mss_obs::counter_add("mtj.llg.runs", 1);
            mss_obs::counter_add("mtj.llg.steps", steps as u64);
        }
        traj
    }

    /// Parallel sweep over write currents: one LLG run per current, fanned
    /// out with `mss-exec`.
    ///
    /// Thermal runs give point `i` RNG stream `(opts.seed, i)`, so the sweep
    /// is bit-identical at any thread count. `threshold` is the `m_z` level
    /// that counts as switched (e.g. `0.0` for crossing the equator).
    pub fn current_sweep(
        &self,
        currents: &[f64],
        m0: Vec3,
        duration: f64,
        threshold: f64,
        opts: &LlgOptions,
        cfg: &ParallelConfig,
    ) -> Vec<SweepPoint> {
        let _span = mss_obs::span("mtj.llg.current_sweep");
        mss_obs::counter_add("mtj.llg.sweep_points", currents.len() as u64);
        par_map(cfg, currents, |idx, &current| {
            let sim = self.clone().with_current(current);
            let mut rng = Xoshiro256PlusPlus::stream(opts.seed, idx as u64);
            let traj = sim.run_with_rng(m0, duration, opts, &mut rng);
            SweepPoint {
                current,
                switching_time: traj.switching_time(threshold),
                final_mz: traj.final_m().z,
            }
        })
    }

    /// Parallel stochastic ensemble: `runs` independent thermal LLG runs of
    /// this simulator, each on RNG stream `(opts.seed, run_index)`.
    ///
    /// Returns switching statistics against `threshold`. Results are merged
    /// in run order and are therefore independent of the thread count.
    pub fn thermal_ensemble(
        &self,
        runs: usize,
        m0: Vec3,
        duration: f64,
        threshold: f64,
        opts: &LlgOptions,
        cfg: &ParallelConfig,
    ) -> ThermalEnsemble {
        let _span = mss_obs::span("mtj.llg.thermal_ensemble");
        let thermal_opts = LlgOptions {
            thermal: true,
            ..opts.clone()
        };
        let indices: Vec<u64> = (0..runs as u64).collect();
        let members = par_map(cfg, &indices, |_, &run| {
            let mut rng = Xoshiro256PlusPlus::stream(opts.seed, run);
            let traj = self.run_with_rng(m0, duration, &thermal_opts, &mut rng);
            (traj.switching_time(threshold), traj.final_m().z)
        });
        let mut switched = 0u64;
        let mut t_switch = OnlineStats::new();
        let mut mz = OnlineStats::new();
        for (t, final_mz) in members {
            if let Some(t) = t {
                switched += 1;
                t_switch.push(t);
            }
            mz.push(final_mz);
        }
        mss_obs::counter_add("mtj.llg.ensemble_runs", runs as u64);
        mss_obs::counter_add("mtj.llg.ensemble_switched", switched);
        ThermalEnsemble {
            runs: runs as u64,
            switched,
            switching_time: DistributionSummary::from(&t_switch),
            final_mz: DistributionSummary::from(&mz),
        }
    }
}

/// One point of a [`LlgSimulator::current_sweep`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Write current at this point, amperes.
    pub current: f64,
    /// First crossing of the switching threshold, if any.
    pub switching_time: Option<f64>,
    /// Final `m_z` at the end of the run.
    pub final_mz: f64,
}

/// Aggregate result of a [`LlgSimulator::thermal_ensemble`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalEnsemble {
    /// Ensemble size.
    pub runs: u64,
    /// Members that crossed the switching threshold.
    pub switched: u64,
    /// Switching-time distribution over the switched members.
    pub switching_time: DistributionSummary,
    /// Distribution of the final `m_z` over all members.
    pub final_mz: DistributionSummary,
}

impl ThermalEnsemble {
    /// Fraction of members that switched (write success rate).
    pub fn switching_probability(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.switched as f64 / self.runs as f64
        }
    }
}

/// A recorded magnetization trajectory.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    times: Vec<f64>,
    magnetization: Vec<Vec3>,
}

impl Trajectory {
    fn with_capacity(n: usize) -> Self {
        Self {
            times: Vec::with_capacity(n),
            magnetization: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, t: f64, m: Vec3) {
        self.times.push(t);
        self.magnetization.push(m);
    }

    /// Recorded sample count.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Time stamps in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Magnetization samples (unit vectors).
    pub fn magnetization(&self) -> &[Vec3] {
        &self.magnetization
    }

    /// The last recorded magnetization.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn final_m(&self) -> Vec3 {
        *self.magnetization.last().expect("empty trajectory")
    }

    /// First time `m_z` crosses `threshold` coming from below (switching
    /// detection for −z→+z writes); `None` if it never does.
    pub fn switching_time(&self, threshold: f64) -> Option<f64> {
        self.times
            .iter()
            .zip(&self.magnetization)
            .find(|(_, m)| m.z >= threshold)
            .map(|(t, _)| *t)
    }

    /// Mean of `m_z` over the trailing `fraction` of the trajectory.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty or `fraction` is outside `(0, 1]`.
    pub fn tail_mean_mz(&self, fraction: f64) -> f64 {
        assert!(!self.is_empty(), "empty trajectory");
        assert!(fraction > 0.0 && fraction <= 1.0);
        let start = ((1.0 - fraction) * self.magnetization.len() as f64) as usize;
        let tail = &self.magnetization[start..];
        tail.iter().map(|m| m.z).sum::<f64>() / tail.len() as f64
    }

    /// Peak-to-peak swing of `m_y` over the trailing `fraction`.
    pub fn tail_my_peak_to_peak(&self, fraction: f64) -> f64 {
        assert!(!self.is_empty(), "empty trajectory");
        let start = ((1.0 - fraction) * self.magnetization.len() as f64) as usize;
        let tail = &self.magnetization[start..];
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for m in tail {
            lo = lo.min(m.y);
            hi = hi.max(m.y);
        }
        hi - lo
    }

    /// Estimates the precession frequency in hertz by counting rising zero
    /// crossings of `m_y`; `None` when fewer than two crossings exist.
    pub fn estimate_frequency(&self) -> Option<f64> {
        let mut crossings = Vec::new();
        for w in self.magnetization.windows(2).zip(self.times.windows(2)) {
            let ((a, b), (ta, tb)) = ((w.0[0], w.0[1]), (w.1[0], w.1[1]));
            if a.y < 0.0 && b.y >= 0.0 {
                // Linear interpolation of the crossing time.
                let frac = -a.y / (b.y - a.y);
                crossings.push(ta + frac * (tb - ta));
            }
        }
        if crossings.len() < 2 {
            return None;
        }
        let span = crossings.last().unwrap() - crossings.first().unwrap();
        Some((crossings.len() - 1) as f64 / span)
    }

    /// Root-mean-square polar angle from +z over the trailing `fraction`,
    /// in radians (thermal-equilibrium diagnostics).
    pub fn tail_rms_polar_angle(&self, fraction: f64) -> f64 {
        assert!(!self.is_empty(), "empty trajectory");
        let start = ((1.0 - fraction) * self.magnetization.len() as f64) as usize;
        let tail = &self.magnetization[start..];
        let mean_sq = tail.iter().map(|m| m.polar_angle().powi(2)).sum::<f64>() / tail.len() as f64;
        mean_sq.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switching::SwitchingModel;
    use crate::{MssDevice, MssStack};

    fn memory_device() -> MssDevice {
        MssDevice::memory(MssStack::builder().build().unwrap())
    }

    #[test]
    fn relaxation_to_easy_axis() {
        let sim = LlgSimulator::new(&memory_device());
        let traj = sim.run(
            Vec3::from_spherical(0.3, 0.5),
            10e-9,
            &LlgOptions::default(),
        );
        assert!(traj.final_m().z > 0.999);
    }

    #[test]
    fn magnetization_stays_on_unit_sphere() {
        let sim = LlgSimulator::new(&memory_device());
        let traj = sim.run(Vec3::from_spherical(0.4, 0.0), 3e-9, &LlgOptions::default());
        for m in traj.magnetization() {
            assert!((m.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn positive_current_switches_ap_to_p() {
        let dev = memory_device();
        let sw = SwitchingModel::new(dev.stack());
        let i = 2.5 * sw.critical_current();
        let sim = LlgSimulator::new(&dev).with_current(i);
        // Start near -z (AP) with the thermal tilt.
        let theta0 = std::f64::consts::PI - dev.stack().thermal_angle();
        let m0 = Vec3::from_spherical(theta0, 0.3);
        let traj = sim.run(m0, 60e-9, &LlgOptions::default());
        assert!(
            traj.final_m().z > 0.9,
            "did not switch: mz = {}",
            traj.final_m().z
        );
    }

    #[test]
    fn negative_current_switches_p_to_ap() {
        let dev = memory_device();
        let sw = SwitchingModel::new(dev.stack());
        let i = -2.5 * sw.critical_current();
        let sim = LlgSimulator::new(&dev).with_current(i);
        let m0 = Vec3::from_spherical(dev.stack().thermal_angle(), 0.3);
        let traj = sim.run(m0, 60e-9, &LlgOptions::default());
        assert!(traj.final_m().z < -0.9, "mz = {}", traj.final_m().z);
    }

    #[test]
    fn subcritical_current_does_not_switch() {
        let dev = memory_device();
        let sw = SwitchingModel::new(dev.stack());
        let sim = LlgSimulator::new(&dev).with_current(0.5 * sw.critical_current());
        let m0 = Vec3::from_spherical(std::f64::consts::PI - dev.stack().thermal_angle(), 0.0);
        let traj = sim.run(m0, 30e-9, &LlgOptions::default());
        assert!(traj.final_m().z < -0.9);
    }

    #[test]
    fn llg_switching_time_matches_analytic_model() {
        // Physical vs behavioural compact model: within a factor of three.
        let dev = memory_device();
        let sw = SwitchingModel::new(dev.stack());
        let i = 3.0 * sw.critical_current();
        let analytic = sw.mean_switching_time(i).unwrap();
        let sim = LlgSimulator::new(&dev).with_current(i);
        let theta0 = std::f64::consts::PI - dev.stack().thermal_angle();
        let traj = sim.run(
            Vec3::from_spherical(theta0, 0.0),
            20.0 * analytic,
            &LlgOptions {
                record_every: 1,
                ..LlgOptions::default()
            },
        );
        let simulated = traj
            .switching_time(0.0)
            .expect("LLG run never crossed the equator");
        let ratio = simulated / analytic;
        assert!(
            (0.3..3.0).contains(&ratio),
            "LLG {simulated:.3e} s vs analytic {analytic:.3e} s (ratio {ratio:.2})"
        );
    }

    #[test]
    fn oscillator_ringdown_frequency_matches_estimate() {
        let dev = MssDevice::oscillator(MssStack::builder().build().unwrap());
        let est = dev.oscillator_frequency_estimate();
        // Kick the magnetization off equilibrium and ring down.
        let theta_eq = dev.equilibrium_tilt_degrees().to_radians();
        let m0 = Vec3::from_spherical(theta_eq + 0.15, 0.1);
        let sim = LlgSimulator::new(&dev);
        let traj = sim.run(
            m0,
            4e-9,
            &LlgOptions {
                record_every: 1,
                ..LlgOptions::default()
            },
        );
        let f = traj.estimate_frequency().expect("no oscillation detected");
        assert!(
            (f / est - 1.0).abs() < 0.5,
            "LLG f = {f:.3e} Hz vs estimate {est:.3e} Hz"
        );
    }

    #[test]
    fn sensor_llg_equilibrium_matches_stoner_wohlfarth() {
        let dev = MssDevice::sensor(MssStack::builder().build().unwrap()).unwrap();
        let h_z = 0.3 * dev.sensor_linear_range();
        let expected = dev.equilibrium_mz(h_z).unwrap();
        let sim = LlgSimulator::new(&dev).with_applied_field(Vec3::new(0.0, 0.0, h_z));
        // Start in-plane and relax.
        let traj = sim.run(Vec3::unit_x(), 20e-9, &LlgOptions::default());
        let mz = traj.tail_mean_mz(0.2);
        assert!(
            (mz - expected).abs() < 0.05,
            "LLG mz = {mz} vs Stoner-Wohlfarth {expected}"
        );
    }

    #[test]
    fn thermal_equilibrium_satisfies_equipartition() {
        // <theta^2> = 1/Delta for the bistable well (two transverse modes).
        let dev = memory_device();
        let delta = dev.stack().thermal_stability();
        let sim = LlgSimulator::new(&dev);
        let opts = LlgOptions {
            dt: 1e-12,
            record_every: 5,
            thermal: true,
            seed: 1234,
        };
        let traj = sim.run(Vec3::unit_z(), 80e-9, &opts);
        let rms = traj.tail_rms_polar_angle(0.8);
        let expected = (1.0 / delta).sqrt();
        assert!(
            (rms / expected - 1.0).abs() < 0.35,
            "rms theta = {rms:.4} vs equipartition {expected:.4}"
        );
    }

    #[test]
    fn thermal_runs_are_seed_deterministic() {
        let dev = memory_device();
        let sim = LlgSimulator::new(&dev);
        let opts = LlgOptions {
            thermal: true,
            seed: 7,
            ..LlgOptions::default()
        };
        let a = sim.run(Vec3::unit_z(), 1e-9, &opts);
        let b = sim.run(Vec3::unit_z(), 1e-9, &opts);
        assert_eq!(a.final_m(), b.final_m());
        let other = sim.run(Vec3::unit_z(), 1e-9, &LlgOptions { seed: 8, ..opts });
        assert_ne!(a.final_m(), other.final_m());
    }

    #[test]
    fn current_sweep_speeds_up_with_overdrive() {
        let dev = memory_device();
        let sw = SwitchingModel::new(dev.stack());
        let ic = sw.critical_current();
        let sim = LlgSimulator::new(&dev);
        let theta0 = std::f64::consts::PI - dev.stack().thermal_angle();
        let m0 = Vec3::from_spherical(theta0, 0.0);
        let points = sim.current_sweep(
            &[2.0 * ic, 4.0 * ic],
            m0,
            60e-9,
            0.0,
            &LlgOptions::default(),
            &ParallelConfig::serial().with_threads(2),
        );
        let t_low = points[0].switching_time.expect("2*Ic should switch");
        let t_high = points[1].switching_time.expect("4*Ic should switch");
        assert!(
            t_high < t_low,
            "overdrive should switch faster: {t_high} vs {t_low}"
        );
    }

    #[test]
    fn thermal_ensemble_is_thread_count_invariant() {
        let dev = memory_device();
        let sw = SwitchingModel::new(dev.stack());
        let sim = LlgSimulator::new(&dev).with_current(2.5 * sw.critical_current());
        let theta0 = std::f64::consts::PI - dev.stack().thermal_angle();
        let m0 = Vec3::from_spherical(theta0, 0.0);
        let opts = LlgOptions {
            seed: 42,
            ..LlgOptions::default()
        };
        let run = |threads| {
            sim.thermal_ensemble(
                6,
                m0,
                30e-9,
                0.0,
                &opts,
                &ParallelConfig::serial().with_threads(threads),
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial.runs, 6);
        assert!(
            serial.switching_probability() > 0.5,
            "overdriven writes should mostly switch"
        );
        assert!(serial.switching_probability() <= 1.0);
    }

    #[test]
    fn trajectory_helpers() {
        let sim = LlgSimulator::new(&memory_device());
        let traj = sim.run(Vec3::from_spherical(0.2, 0.0), 1e-9, &LlgOptions::default());
        assert!(!traj.is_empty());
        assert!(traj.len() >= 2);
        assert_eq!(traj.times().len(), traj.magnetization().len());
        assert!(traj.times().windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn sot_torque_pulls_magnetization_toward_sigma() {
        use crate::mechanism::{SotMechanism, SotParams, SwitchingMechanism};
        let dev = memory_device();
        let params = SotParams::default();
        let sot = SotMechanism::new(dev.stack(), params.clone()).unwrap();
        let i_ch = 3.0 * sot.critical_current();
        let sim = LlgSimulator::new(&dev).with_sot_current(i_ch, &params);
        // Start near -z; a strong damping-like SOT torque rotates m toward
        // +y, destabilising the easy axis (the precursor to a switch).
        let theta0 = std::f64::consts::PI - dev.stack().thermal_angle();
        let m0 = Vec3::from_spherical(theta0, 0.0);
        let traj = sim.run(
            m0,
            2e-9,
            &LlgOptions {
                dt: 0.2e-12,
                record_every: 1,
                ..LlgOptions::default()
            },
        );
        let pulled = traj
            .magnetization()
            .iter()
            .map(|m| m.y)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(pulled > 0.5, "max m_y = {pulled}");
        assert!(
            traj.final_m().z > -0.99,
            "easy axis should be destabilised: mz = {}",
            traj.final_m().z
        );
    }

    #[test]
    fn negative_channel_current_flips_sigma() {
        use crate::mechanism::{SotMechanism, SotParams, SwitchingMechanism};
        let dev = memory_device();
        let params = SotParams::default();
        let sot = SotMechanism::new(dev.stack(), params.clone()).unwrap();
        let i_ch = 3.0 * sot.critical_current();
        let m0 = Vec3::from_spherical(std::f64::consts::PI - dev.stack().thermal_angle(), 0.0);
        let opts = LlgOptions {
            dt: 0.2e-12,
            record_every: 1,
            ..LlgOptions::default()
        };
        let pos = LlgSimulator::new(&dev)
            .with_sot_current(i_ch, &params)
            .run(m0, 1e-9, &opts);
        let neg = LlgSimulator::new(&dev)
            .with_sot_current(-i_ch, &params)
            .run(m0, 1e-9, &opts);
        let max_y = |t: &Trajectory| {
            t.magnetization()
                .iter()
                .map(|m| m.y)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let min_y = |t: &Trajectory| {
            t.magnetization()
                .iter()
                .map(|m| m.y)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(max_y(&pos) > 0.5, "positive current pulls +y");
        assert!(min_y(&neg) < -0.5, "negative current pulls -y");
    }

    #[test]
    fn zero_sot_field_is_bit_identical_to_plain_run() {
        // The SOT fields default to zero; the rhs must be numerically
        // untouched so historic STT trajectories do not move.
        let dev = memory_device();
        let sw = SwitchingModel::new(dev.stack());
        let i = 2.0 * sw.critical_current();
        let m0 = Vec3::from_spherical(std::f64::consts::PI - dev.stack().thermal_angle(), 0.2);
        let plain = LlgSimulator::new(&dev)
            .with_current(i)
            .run(m0, 5e-9, &LlgOptions::default());
        let with_zero_sot = {
            let mut sim = LlgSimulator::new(&dev).with_current(i);
            sim.sot_field_like_ratio = 0.7; // irrelevant while sot_field == 0
            sim.run(m0, 5e-9, &LlgOptions::default())
        };
        assert_eq!(plain.final_m(), with_zero_sot.final_m());
        assert_eq!(plain.magnetization(), with_zero_sot.magnetization());
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let sim = LlgSimulator::new(&memory_device());
        let _ = sim.run(
            Vec3::unit_z(),
            1e-9,
            &LlgOptions {
                dt: 0.0,
                ..LlgOptions::default()
            },
        );
    }
}
