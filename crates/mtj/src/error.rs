//! Error type for the MSS compact model.

use std::fmt;

/// Errors produced while constructing or evaluating an MSS device model.
#[derive(Debug, Clone, PartialEq)]
pub enum MtjError {
    /// A geometric or material parameter is outside its physical range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint description.
        constraint: &'static str,
    },
    /// A numerical routine (equilibrium solve, margin inversion) failed to
    /// converge.
    Convergence {
        /// What was being solved.
        context: &'static str,
    },
    /// The requested operating point has no solution (e.g. asking the sensor
    /// transfer curve for a bias field below the anisotropy field).
    NoOperatingPoint {
        /// Description of the contradiction.
        reason: String,
    },
}

impl fmt::Display for MtjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtjError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            MtjError::Convergence { context } => {
                write!(f, "numerical convergence failure in {context}")
            }
            MtjError::NoOperatingPoint { reason } => {
                write!(f, "no operating point: {reason}")
            }
        }
    }
}

impl std::error::Error for MtjError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MtjError::InvalidParameter {
            name: "diameter",
            value: -1.0,
            constraint: "must be positive",
        };
        let s = e.to_string();
        assert!(s.contains("diameter"));
        assert!(s.contains("-1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MtjError>();
    }
}
