//! Stoner–Wohlfarth switching astroid: field-driven switching limits and
//! stray-field tolerance.
//!
//! The MSS idea co-integrates memory pillars with sensor/oscillator pillars
//! whose patterned permanent magnets produce ~kOe in-plane bias fields. A
//! memory-mode neighbour must *not* switch or lose retention in the stray
//! tail of those magnets. The classic astroid condition bounds the
//! field-driven switching region,
//!
//! ```text
//! (H_x/H_k)^(2/3) + (H_z/H_k)^(2/3) ≥ 1  ⇒  switching possible
//! ```
//!
//! and an in-plane component below the boundary still *lowers the barrier*:
//! `Δ_eff = Δ·(1 − H_x/H_k)^2` (hard-axis field), degrading retention
//! exponentially. Both effects are exposed here for layout-level stray-field
//! budgeting.

use mss_units::consts::TAU0;

use crate::stack::MssStack;
use crate::MtjError;

/// Stray-field assessment of a memory-mode pillar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrayFieldAssessment {
    /// In-plane (hard-axis) stray field, A/m.
    pub h_inplane: f64,
    /// Out-of-plane (easy-axis) stray field, A/m.
    pub h_easy: f64,
    /// True when the field combination crosses the astroid (deterministic
    /// switching possible — data loss).
    pub switches: bool,
    /// Barrier-degraded thermal stability Δ_eff.
    pub effective_delta: f64,
    /// Retention under the stray field, seconds.
    pub retention_seconds: f64,
}

/// Astroid switching criterion for normalised field components
/// `h = H/H_k` (absolute values are taken internally).
pub fn crosses_astroid(h_inplane_rel: f64, h_easy_rel: f64) -> bool {
    let hx = h_inplane_rel.abs();
    let hz = h_easy_rel.abs();
    if hx >= 1.0 || hz >= 1.0 {
        return true;
    }
    hx.powf(2.0 / 3.0) + hz.powf(2.0 / 3.0) >= 1.0
}

/// The easy-axis switching field (normalised) that the astroid allows at a
/// given in-plane component `h_inplane_rel = H_x/H_k`.
///
/// Returns 0 when the in-plane component alone already switches the layer.
pub fn easy_axis_boundary(h_inplane_rel: f64) -> f64 {
    let hx = h_inplane_rel.abs();
    if hx >= 1.0 {
        return 0.0;
    }
    (1.0 - hx.powf(2.0 / 3.0)).powf(1.5)
}

/// Barrier-degraded stability under a hard-axis field:
/// `Δ_eff = Δ·(1 − |H_x|/H_k)²` (clamped at zero beyond the boundary).
pub fn effective_delta(stack: &MssStack, h_inplane: f64) -> f64 {
    let rel = (h_inplane / stack.hk_eff()).abs().min(1.0);
    stack.thermal_stability() * (1.0 - rel).powi(2)
}

/// Assesses a memory pillar under a stray field.
pub fn assess(stack: &MssStack, h_inplane: f64, h_easy: f64) -> StrayFieldAssessment {
    let hk = stack.hk_eff();
    let switches = crosses_astroid(h_inplane / hk, h_easy / hk);
    let delta_eff = effective_delta(stack, h_inplane);
    StrayFieldAssessment {
        h_inplane,
        h_easy,
        switches,
        effective_delta: delta_eff,
        retention_seconds: if switches {
            0.0
        } else {
            TAU0 * delta_eff.exp()
        },
    }
}

/// The largest in-plane stray field (A/m) a memory pillar tolerates while
/// keeping at least `retention_target` seconds of retention.
///
/// # Errors
///
/// [`MtjError::NoOperatingPoint`] when even a zero stray field cannot reach
/// the target (the pillar is too small for the spec).
pub fn max_tolerable_stray_field(stack: &MssStack, retention_target: f64) -> Result<f64, MtjError> {
    if retention_target <= 0.0 || !retention_target.is_finite() {
        return Err(MtjError::NoOperatingPoint {
            reason: format!("retention target {retention_target} s must be positive"),
        });
    }
    let needed_delta = (retention_target / TAU0).ln();
    let delta0 = stack.thermal_stability();
    if needed_delta > delta0 {
        return Err(MtjError::NoOperatingPoint {
            reason: format!(
                "target needs Δ = {needed_delta:.1} but the pillar only has Δ = {delta0:.1}"
            ),
        });
    }
    // Δ_eff = Δ (1-x)^2 = needed  =>  x = 1 - sqrt(needed/Δ).
    let x = 1.0 - (needed_delta / delta0).sqrt();
    Ok(x * stack.hk_eff())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> MssStack {
        MssStack::builder().build().unwrap()
    }

    #[test]
    fn astroid_corners() {
        // Pure easy-axis switching needs the full H_k; pure hard-axis too.
        assert!(crosses_astroid(0.0, 1.0));
        assert!(crosses_astroid(1.0, 0.0));
        assert!(!crosses_astroid(0.0, 0.99));
        // The astroid sags between the axes: at 45 degrees each component
        // only needs ~0.35 H_k.
        assert!(crosses_astroid(0.36, 0.36));
        assert!(!crosses_astroid(0.34, 0.34));
    }

    #[test]
    fn boundary_is_monotone() {
        let mut last = 1.0;
        for k in 1..=10 {
            let b = easy_axis_boundary(k as f64 * 0.1);
            assert!(b <= last);
            last = b;
        }
        assert_eq!(easy_axis_boundary(1.0), 0.0);
        assert!((easy_axis_boundary(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stray_field_degrades_retention_exponentially() {
        let s = stack();
        let clean = assess(&s, 0.0, 0.0);
        let stressed = assess(&s, 0.3 * s.hk_eff(), 0.0);
        assert!(!clean.switches && !stressed.switches);
        assert!(stressed.effective_delta < clean.effective_delta);
        assert!(stressed.retention_seconds < 1e-3 * clean.retention_seconds);
    }

    #[test]
    fn crossing_fields_mean_data_loss() {
        let s = stack();
        let a = assess(&s, 0.8 * s.hk_eff(), 0.3 * s.hk_eff());
        assert!(a.switches);
        assert_eq!(a.retention_seconds, 0.0);
    }

    #[test]
    fn tolerable_field_round_trips() {
        let s = stack();
        let ten_years = 10.0 * 365.25 * 86400.0;
        let h = max_tolerable_stray_field(&s, ten_years).unwrap();
        assert!(h > 0.0 && h < s.hk_eff());
        let at_limit = assess(&s, h, 0.0);
        assert!(
            (at_limit.retention_seconds.ln() - ten_years.ln()).abs() < 1e-6,
            "retention at limit: {} s",
            at_limit.retention_seconds
        );
    }

    #[test]
    fn impossible_targets_rejected() {
        let s = stack();
        assert!(max_tolerable_stray_field(&s, 1e300).is_err());
        assert!(max_tolerable_stray_field(&s, -1.0).is_err());
    }

    #[test]
    fn sensor_bias_magnet_needs_standoff() {
        // A sensor pillar's ~2.4 kOe bias field, if fully coupled into a
        // memory neighbour, is far above its tolerance — the layout needs
        // the stray tail to decay well below Hk (the paper's "one additional
        // lithography step" places the magnets only beside sensor pillars).
        let s = stack();
        let sensor_bias = 1.1 * s.hk_eff();
        let a = assess(&s, sensor_bias, 0.0);
        assert!(a.switches);
        let ten_years = 10.0 * 365.25 * 86400.0;
        let budget = max_tolerable_stray_field(&s, ten_years).unwrap();
        assert!(budget < 0.2 * sensor_bias);
    }
}
