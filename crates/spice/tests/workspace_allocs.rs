//! Proof that a transient run performs O(1) workspace (matrix)
//! allocations, regardless of step count or retry-ladder activity.
//!
//! Own integration-test binary: the obs registry is process-global, so the
//! `spice.solver.workspace_allocs` counter is only meaningful when a single
//! test owns every solve in the process. Keep this file to ONE `#[test]`.

use mss_spice::analysis::{Transient, TransientOptions};
use mss_spice::netlist::Netlist;
use mss_spice::waveform::Waveform;

fn rc_deck() -> Netlist {
    let mut nl = Netlist::new();
    nl.add_vsource(
        "vin",
        "in",
        "0",
        Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 0.0),
    )
    .unwrap();
    nl.add_resistor("r1", "in", "out", 1e3).unwrap();
    nl.add_capacitor("c1", "out", "0", 1e-12).unwrap();
    nl
}

#[test]
fn transient_allocates_o1_workspaces() {
    assert!(
        mss_obs::init_with_mode(mss_obs::Mode::Metrics),
        "this binary must own the obs registry"
    );
    let nl = rc_deck();
    let solves = |steps: usize| {
        let before = mss_obs::counter("spice.solver.workspace_allocs");
        Transient::new(&nl)
            .unwrap()
            .run(&TransientOptions::new(1e-12, steps as f64 * 1e-12))
            .unwrap();
        mss_obs::counter("spice.solver.workspace_allocs") - before
    };
    let short = solves(10);
    let long = solves(1000);
    // One workspace per run — the DC init and every step share it.
    assert_eq!(
        short, 1,
        "short transient must allocate exactly one workspace"
    );
    assert_eq!(
        long, short,
        "allocations must not scale with step count (O(1) per transient)"
    );
}
