//! Property-style parity suite: the batched same-structure path and the
//! workspace backend must be *bit-identical* to the historic single-solve
//! path — solutions and `SpiceError` classification alike — across random
//! well- and ill-conditioned systems and at any thread count.

use mss_exec::ParallelConfig;
use mss_spice::analysis::{dc_operating_point_with, SolverOptions};
use mss_spice::batch::DcBatch;
use mss_spice::mosfet::{MosGeometry, MosModel};
use mss_spice::netlist::Netlist;
use mss_spice::solver::{solve, Matrix};
use mss_spice::waveform::Waveform;
use mss_spice::{DenseLu, SolverBackend, SpiceError, Workspace};
use mss_units::rng::{Rng, Xoshiro256PlusPlus};

/// Random stamp classes: well-conditioned, badly scaled near-singular, and
/// exactly rank-deficient.
#[allow(clippy::needless_range_loop)]
fn random_system(rng: &mut Xoshiro256PlusPlus, class: usize, n: usize) -> (Matrix, Vec<f64>) {
    let mut a = Matrix::zeros(n, n);
    let mut b = vec![0.0; n];
    match class {
        // Diagonally dominant: always solvable.
        0 => {
            for r in 0..n {
                for c in 0..n {
                    a.set(r, c, rng.gen_range_f64(-1.0, 1.0));
                }
                a.add(r, r, n as f64);
                b[r] = rng.gen_range_f64(-2.0, 2.0);
            }
        }
        // Badly scaled: entries spanning ~200 decades around a random
        // exponent; pivots flirt with the relative tolerance.
        1 => {
            let scale = 10f64.powi(rng.gen_range_f64(-140.0, 140.0) as i32);
            for r in 0..n {
                for c in 0..n {
                    a.set(r, c, scale * rng.gen_range_f64(-1.0, 1.0));
                }
                if rng.gen_range_f64(0.0, 1.0) < 0.5 {
                    a.add(r, r, scale * n as f64);
                }
                b[r] = scale * rng.gen_range_f64(-1.0, 1.0);
            }
        }
        // Rank-deficient: one row is a multiple of another.
        _ => {
            for r in 0..n {
                for c in 0..n {
                    a.set(r, c, rng.gen_range_f64(-1.0, 1.0));
                }
                b[r] = rng.gen_range_f64(-1.0, 1.0);
            }
            if n >= 2 {
                let k = rng.gen_range_f64(-3.0, 3.0);
                for c in 0..n {
                    a.set(n - 1, c, k * a.get(0, c));
                }
            }
        }
    }
    (a, b)
}

#[test]
fn backend_matches_legacy_solve_bitwise_over_random_stamps() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x5EED);
    let mut ws = Workspace::new(); // deliberately reused across ALL trials
    let (mut oks, mut errs) = (0usize, 0usize);
    for trial in 0..300 {
        let class = trial % 3;
        let n = 2 + (trial % 9);
        let (a, b) = random_system(&mut rng, class, n);
        let legacy = solve(a.clone(), b.clone());
        ws.prepare(n);
        {
            let (m, rhs) = ws.assembly_mut();
            for r in 0..n {
                for c in 0..n {
                    m.set(r, c, a.get(r, c));
                }
            }
            rhs.copy_from_slice(&b);
        }
        let batched = DenseLu.solve_in_place(&mut ws);
        match (legacy, batched) {
            (Ok(x), Ok(())) => {
                assert_eq!(x.as_slice(), ws.solution(), "trial {trial}: bits differ");
                oks += 1;
            }
            (Err(el), Err(eb)) => {
                assert_eq!(el, eb, "trial {trial}: error classification differs");
                errs += 1;
            }
            (l, r) => panic!("trial {trial}: outcomes diverge: {l:?} vs {r:?}"),
        }
    }
    // The sweep must actually exercise both outcomes.
    assert!(oks > 50, "only {oks} successful trials");
    assert!(errs > 50, "only {errs} singular trials");
}

fn ladder_network() -> Netlist {
    let mut nl = Netlist::new();
    nl.add_vsource("vs", "n1", "0", Waveform::dc(1.2)).unwrap();
    for i in 1..4 {
        nl.add_resistor(
            &format!("r{i}"),
            &format!("n{i}"),
            &format!("n{}", i + 1),
            1e3,
        )
        .unwrap();
    }
    nl.add_resistor("rload", "n4", "0", 1e3).unwrap();
    nl
}

#[test]
fn batched_bit_identical_to_single_at_1_2_8_threads() {
    let nl = ladder_network();
    let idx: Vec<usize> = (1..4)
        .map(|i| nl.element_index(&format!("r{i}")).unwrap())
        .chain([nl.element_index("rload").unwrap()])
        .collect();
    // Per-sample values from a split RNG stream: log-uniform over 11
    // decades, the same for every thread count.
    let ohms = |sample: usize, k: usize| {
        let mut rng = Xoshiro256PlusPlus::stream(42, sample as u64);
        let mut v = 0.0;
        for _ in 0..=k {
            v = 10f64.powf(rng.gen_range_f64(-2.0, 9.0));
        }
        v
    };
    let edit = |sample: usize, nl: &mut Netlist| {
        for (k, &ei) in idx.iter().enumerate() {
            nl.set_resistance(ei, ohms(sample, k))?;
        }
        Ok(())
    };
    let batch = DcBatch::new(&nl);
    let n = 200;
    let runs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            batch.run_with(
                n,
                &ParallelConfig::serial().with_threads(t).with_chunk(13),
                edit,
            )
        })
        .collect();
    for i in 0..n {
        // Single-solve reference: a fresh netlist mutated the same way.
        let mut single = ladder_network();
        edit(i, &mut single).unwrap();
        let dc = dc_operating_point_with(&single, &SolverOptions::default()).unwrap();
        for node in ["n1", "n2", "n3", "n4"] {
            let want = dc.node_voltage(node).unwrap();
            for run in &runs {
                assert_eq!(
                    run.node_voltage(i, node).unwrap(),
                    want,
                    "sample {i} node {node}"
                );
            }
        }
    }
}

#[test]
fn singular_classification_matches_single_path() {
    // Two voltage sources forcing different values on the same node pair:
    // structurally singular for every sample.
    let mut nl = Netlist::new();
    nl.add_vsource("v1", "a", "0", Waveform::dc(1.0)).unwrap();
    nl.add_vsource("v2", "a", "0", Waveform::dc(2.0)).unwrap();
    nl.add_resistor("r1", "a", "0", 1e3).unwrap();
    let single = dc_operating_point_with(&nl, &SolverOptions::default()).unwrap_err();
    assert_eq!(single, SpiceError::SingularMatrix);

    let v2 = nl.element_index("v2").unwrap();
    let batch = DcBatch::new(&nl);
    for threads in [1usize, 2, 8] {
        let cfg = ParallelConfig::serial().with_threads(threads).with_chunk(3);
        let result = batch.run_with(8, &cfg, |i, nl| {
            nl.set_source_wave(v2, Waveform::dc(2.0 + i as f64))
        });
        assert_eq!(result.failure_count(), 8);
        for i in 0..8 {
            assert_eq!(result.outcome(i).unwrap_err(), &single, "sample {i}");
        }
    }
}

#[test]
fn nonconvergence_classification_matches_single_path() {
    // A stiff NMOS inverter under a 1-iteration budget with the ladder off:
    // plain Newton cannot converge, and the batched path must report the
    // *numerically identical* NoConvergence (same iterations, same max_dv).
    let mut nl = Netlist::new();
    nl.add_vsource("vdd", "vdd", "0", Waveform::dc(1.0))
        .unwrap();
    nl.add_vsource("vin", "in", "0", Waveform::dc(0.0)).unwrap();
    nl.add_resistor("rl", "vdd", "out", 10e3).unwrap();
    nl.add_mosfet(
        "m1",
        "out",
        "in",
        "0",
        MosModel::generic_nmos(),
        MosGeometry {
            width: 1e-6,
            length: 100e-9,
        },
    )
    .unwrap();
    let starved = SolverOptions::without_ladder().with_max_newton(1);
    let vin = nl.element_index("vin").unwrap();
    let vin_of = |i: usize| 0.1 * i as f64;

    let batch = DcBatch::new(&nl).with_solver(starved);
    for threads in [1usize, 2, 8] {
        let cfg = ParallelConfig::serial().with_threads(threads).with_chunk(2);
        let result = batch.run_with(6, &cfg, |i, nl| {
            nl.set_source_wave(vin, Waveform::dc(vin_of(i)))
        });
        assert_eq!(result.failure_count(), 6);
        for i in 0..6 {
            let mut single = nl.clone();
            single
                .set_source_wave(vin, Waveform::dc(vin_of(i)))
                .unwrap();
            let want = dc_operating_point_with(&single, &starved).unwrap_err();
            let got = result.outcome(i).unwrap_err();
            // The `analysis` label legitimately differs ("batched dc" vs
            // "dc operating point"); the classification and the *numbers*
            // must be bit-identical.
            match (&want, got) {
                (
                    SpiceError::NoConvergence {
                        time: wt,
                        iterations: wi,
                        max_dv: wd,
                        ..
                    },
                    SpiceError::NoConvergence {
                        time: gt,
                        iterations: gi,
                        max_dv: gd,
                        ..
                    },
                ) => {
                    assert_eq!(wt, gt, "sample {i}");
                    assert_eq!(wi, gi, "sample {i}");
                    assert_eq!(wd, gd, "sample {i}: max_dv bits differ");
                }
                other => panic!("sample {i}: expected NoConvergence pair, got {other:?}"),
            }
        }
    }
}
