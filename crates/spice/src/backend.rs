//! Pluggable linear-solver backends over a reusable workspace.
//!
//! The historic entry point, [`crate::solver::solve`], consumes its matrix
//! and right-hand side on every call, which forces the Newton loop (and
//! every Monte Carlo sample) to reallocate the full MNA system per
//! iteration. This module splits the solver into two pieces:
//!
//! * a [`Workspace`] owning the matrix, RHS and solution storage, reused
//!   across iterations, retry-ladder attempts and batch samples — after the
//!   first solve of a given dimension, assembling and solving allocates
//!   nothing;
//! * a [`SolverBackend`] trait so alternative numeric kernels (today the
//!   dense LU, tomorrow a sparse or static-pivot-order variant) plug in
//!   underneath `analysis.rs` without touching the Newton logic.
//!
//! **Determinism contract.** Backends are pure functions of the assembled
//! `(A, b)`: the dense backend performs the *bit-identical* arithmetic of
//! the historic `solve` (same scale/tolerance computation, same pivot
//! search order, same elimination and back-substitution loops), so single
//! and batched paths produce identical bits and identical
//! [`SpiceError`] classification no matter which path — or how many
//! threads — ran the sample.

use crate::solver::Matrix;
use crate::SpiceError;

/// Reusable solve storage: matrix, right-hand side and solution vector.
///
/// [`Workspace::prepare`] returns the storage zeroed and correctly sized;
/// it only (re)allocates when the system dimension changes, and bumps the
/// `spice.solver.workspace_allocs` counter when it does — the counter is
/// how tests prove a whole transient runs on O(1) allocations.
#[derive(Debug, Clone)]
pub struct Workspace {
    a: Matrix,
    rhs: Vec<f64>,
    x: Vec<f64>,
    dim: usize,
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Workspace {
    /// An empty workspace; the first [`prepare`](Self::prepare) sizes it.
    pub fn new() -> Self {
        Self {
            a: Matrix::zeros(0, 0),
            rhs: Vec::new(),
            x: Vec::new(),
            dim: 0,
        }
    }

    /// Adopts an existing system as the workspace contents (the legacy
    /// consuming-`solve` path). Counts as a workspace allocation.
    pub fn from_parts(a: Matrix, rhs: Vec<f64>) -> Self {
        let dim = a.n_rows();
        mss_obs::counter_add("spice.solver.workspace_allocs", 1);
        Self {
            a,
            rhs,
            x: vec![0.0; dim],
            dim,
        }
    }

    /// Clears the workspace to an all-zero `dim × dim` system, reusing the
    /// existing storage when the dimension is unchanged.
    pub fn prepare(&mut self, dim: usize) {
        if self.dim != dim {
            self.a = Matrix::zeros(dim, dim);
            self.rhs = vec![0.0; dim];
            self.x = vec![0.0; dim];
            self.dim = dim;
            mss_obs::counter_add("spice.solver.workspace_allocs", 1);
        } else {
            self.a.clear();
            self.rhs.fill(0.0);
            self.x.fill(0.0);
        }
    }

    /// Current system dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The solution of the last successful [`SolverBackend::solve_in_place`].
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    /// Mutable matrix + RHS for assembly (split borrow).
    pub fn assembly_mut(&mut self) -> (&mut Matrix, &mut [f64]) {
        (&mut self.a, &mut self.rhs)
    }

    /// Moves the solution vector out (legacy consuming-`solve` path).
    pub(crate) fn take_solution(&mut self) -> Vec<f64> {
        self.dim = 0; // storage no longer consistent; force re-prepare
        std::mem::take(&mut self.x)
    }
}

/// A numeric kernel solving the assembled system in a [`Workspace`].
pub trait SolverBackend: Sync {
    /// Stable backend name (used in spans and reports).
    fn name(&self) -> &'static str;

    /// Solves `A·x = b` using the workspace's matrix and RHS as scratch,
    /// leaving the solution in [`Workspace::solution`].
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] when the system is singular at the
    /// backend's tolerance or the solution is non-finite.
    fn solve_in_place(&self, ws: &mut Workspace) -> Result<(), SpiceError>;
}

/// Dense LU with partial pivoting — the fallback backend, bit-identical to
/// the historic `solver::solve`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseLu;

impl SolverBackend for DenseLu {
    fn name(&self) -> &'static str {
        "dense-lu"
    }

    #[allow(clippy::needless_range_loop)]
    fn solve_in_place(&self, ws: &mut Workspace) -> Result<(), SpiceError> {
        let n = ws.dim;
        let a = &mut ws.a;
        let b = &mut ws.rhs;
        debug_assert_eq!(a.n_rows(), n);
        debug_assert_eq!(b.len(), n);
        // Matrix scale for the relative pivot tolerance; the MIN_POSITIVE
        // floor makes the all-zero matrix (scale 0) singular rather than
        // tol == 0.
        let scale = a.max_abs();
        let tol = (scale * n as f64 * f64::EPSILON).max(f64::MIN_POSITIVE);
        let mut min_pivot_ratio = f64::INFINITY;
        for k in 0..n {
            // Partial pivot.
            let mut piv = k;
            let mut max = a.get(k, k).abs();
            for r in (k + 1)..n {
                let v = a.get(r, k).abs();
                if v > max {
                    max = v;
                    piv = r;
                }
            }
            if max < tol {
                mss_obs::counter_add("spice.solver.singular", 1);
                return Err(SpiceError::SingularMatrix);
            }
            min_pivot_ratio = min_pivot_ratio.min(max / scale);
            if piv != k {
                for c in 0..n {
                    let tmp = a.get(k, c);
                    a.set(k, c, a.get(piv, c));
                    a.set(piv, c, tmp);
                }
                b.swap(k, piv);
            }
            let pivot = a.get(k, k);
            for r in (k + 1)..n {
                let factor = a.get(r, k) / pivot;
                if factor == 0.0 {
                    continue;
                }
                a.set(r, k, 0.0);
                for c in (k + 1)..n {
                    let v = a.get(r, c) - factor * a.get(k, c);
                    a.set(r, c, v);
                }
                b[r] -= factor * b[k];
            }
        }
        // Back substitution into the workspace solution vector.
        let x = &mut ws.x;
        for k in (0..n).rev() {
            let mut sum = b[k];
            for c in (k + 1)..n {
                sum -= a.get(k, c) * x[c];
            }
            x[k] = sum / a.get(k, k);
        }
        // Defence in depth: a pivot chain can pass the tolerance yet still
        // overflow during substitution; never hand back non-finite
        // "solutions".
        if x.iter().any(|v| !v.is_finite()) {
            mss_obs::counter_add("spice.solver.singular", 1);
            return Err(SpiceError::SingularMatrix);
        }
        if mss_obs::enabled() {
            mss_obs::counter_add("spice.solver.solves", 1);
            mss_obs::record_value("spice.solver.min_pivot_ratio", min_pivot_ratio);
        }
        Ok(())
    }
}

/// Selectable backend, carried by value inside `SolverOptions` (which is
/// `Copy`); [`BackendKind::instance`] resolves it to the shared kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Dense LU with partial pivoting (the fallback, always available).
    #[default]
    DenseLu,
}

impl BackendKind {
    /// The backend implementation for this kind.
    pub fn instance(self) -> &'static dyn SolverBackend {
        match self {
            BackendKind::DenseLu => &DenseLu,
        }
    }

    /// Stable name of the selected backend.
    pub fn name(self) -> &'static str {
        self.instance().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(entries: &[(usize, usize, f64)], rhs: &[f64], ws: &mut Workspace) {
        ws.prepare(rhs.len());
        let (a, b) = ws.assembly_mut();
        for &(r, c, v) in entries {
            a.add(r, c, v);
        }
        b.copy_from_slice(rhs);
    }

    // NOTE: the `spice.solver.workspace_allocs` counter assertion lives in
    // `tests/workspace_allocs.rs` — the global obs registry is shared by
    // every test in a binary, so counter deltas are only meaningful in a
    // binary that owns the counter.
    #[test]
    fn workspace_reuse_solves_repeatedly() {
        let mut ws = Workspace::new();
        for _ in 0..10 {
            stamp(&[(0, 0, 2.0), (1, 1, 4.0)], &[2.0, 8.0], &mut ws);
            DenseLu.solve_in_place(&mut ws).unwrap();
            assert_eq!(ws.solution(), &[1.0, 2.0]);
        }
    }

    #[test]
    fn prepare_clears_stale_state() {
        let mut ws = Workspace::new();
        stamp(&[(0, 0, 1.0), (1, 1, 1.0)], &[3.0, 4.0], &mut ws);
        DenseLu.solve_in_place(&mut ws).unwrap();
        // Same dimension again: old matrix/rhs/x must not leak through.
        stamp(&[(0, 0, 2.0), (1, 1, 2.0)], &[2.0, 2.0], &mut ws);
        DenseLu.solve_in_place(&mut ws).unwrap();
        assert_eq!(ws.solution(), &[1.0, 1.0]);
    }

    #[test]
    fn dimension_change_resizes() {
        let mut ws = Workspace::new();
        stamp(&[(0, 0, 1.0)], &[5.0], &mut ws);
        DenseLu.solve_in_place(&mut ws).unwrap();
        assert_eq!(ws.solution(), &[5.0]);
        stamp(
            &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)],
            &[1.0, 2.0, 3.0],
            &mut ws,
        );
        DenseLu.solve_in_place(&mut ws).unwrap();
        assert_eq!(ws.solution(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn singular_reported_through_backend() {
        let mut ws = Workspace::new();
        stamp(
            &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)],
            &[1.0, 2.0],
            &mut ws,
        );
        assert_eq!(
            DenseLu.solve_in_place(&mut ws).unwrap_err(),
            SpiceError::SingularMatrix
        );
    }

    #[test]
    fn backend_kind_resolves() {
        assert_eq!(BackendKind::default().name(), "dense-lu");
        assert_eq!(BackendKind::DenseLu.instance().name(), "dense-lu");
    }
}
