//! DC operating-point and transient analyses.
//!
//! Both analyses assemble a Modified Nodal Analysis system: one unknown per
//! non-ground node voltage plus one branch current per voltage source.
//! Nonlinear devices (MOSFETs, MTJs) are handled by Newton iteration with
//! per-iteration linearised stamps; capacitors use backward-Euler companion
//! models in transient (A-stable, which matters for the stiff RC/MTJ decks
//! the characterisation flow produces).

use std::collections::HashMap;

use crate::backend::{BackendKind, SolverBackend, Workspace};
use crate::error::RetryAttempt;
use crate::netlist::{Element, Netlist, NodeId};
use crate::solver::Matrix;
use crate::SpiceError;

/// Conductance from every node to ground, keeping floating nets solvable.
const GMIN: f64 = 1e-12;
/// Newton voltage tolerance (volts).
const VTOL: f64 = 1e-9;
/// Newton iteration cap.
const MAX_NEWTON: usize = 200;
/// Per-iteration clamp on voltage updates (volts) for Newton damping.
const VSTEP_MAX: f64 = 0.5;
/// Largest shunt conductance the gmin-stepping ladder starts from.
const GMIN_LADDER_START: f64 = 1e-3;
/// Source-stepping ladder resolution (number of alpha levels up to 1.0).
const SOURCE_LADDER_LEVELS: usize = 10;

/// Convergence policy: how hard the solver tries before reporting failure.
///
/// Plain Newton runs first with `max_newton` iterations. If it fails to
/// converge the solver does **not** give up; it climbs a retry ladder:
///
/// - **DC** (and the transient `t = 0` init): *gmin stepping* — re-solve with
///   a large shunt conductance to ground (`1e-3` S) and relax it decade by
///   decade down to the nominal `GMIN`, warm-starting each level from the
///   previous solution; if that fails too, *source stepping* — ramp all
///   source values from 10% to 100% in ten homotopy steps,
/// - **transient steps**: *step rejection* — halve `dt` (exact for the
///   backward-Euler companion models used here) and advance in two half
///   steps, recursively, up to `max_step_halvings` levels deep.
///
/// Exhausted ladders return [`SpiceError::RetryLadderExhausted`] with the
/// full attempt history — never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverOptions {
    /// Newton iteration budget for the plain (first) attempt.
    pub max_newton: usize,
    /// Newton iteration budget per continuation level (gmin/source steps).
    pub ladder_newton: usize,
    /// Enables the gmin-stepping stage for DC-like solves.
    pub gmin_stepping: bool,
    /// Enables the source-stepping homotopy for DC-like solves.
    pub source_stepping: bool,
    /// Maximum recursive `dt` halvings per transient step (0 = reject
    /// nothing).
    pub max_step_halvings: u32,
    /// Numeric kernel used for the linear solves.
    pub backend: BackendKind,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            max_newton: MAX_NEWTON,
            ladder_newton: MAX_NEWTON,
            gmin_stepping: true,
            source_stepping: true,
            max_step_halvings: 6,
            backend: BackendKind::default(),
        }
    }
}

impl SolverOptions {
    /// The full ladder at default budgets.
    pub fn robust() -> Self {
        Self::default()
    }

    /// Plain Newton only: any non-convergence is reported immediately with
    /// iteration count and final `max_dv` ([`SpiceError::NoConvergence`]).
    pub fn without_ladder() -> Self {
        Self {
            gmin_stepping: false,
            source_stepping: false,
            max_step_halvings: 0,
            ..Self::default()
        }
    }

    /// Returns the options with a different plain-Newton budget.
    pub fn with_max_newton(mut self, n: usize) -> Self {
        self.max_newton = n.max(1);
        self
    }

    /// Returns the options with a different per-ladder-level budget.
    pub fn with_ladder_newton(mut self, n: usize) -> Self {
        self.ladder_newton = n.max(1);
        self
    }

    /// Returns the options with a different halving depth.
    pub fn with_max_step_halvings(mut self, n: u32) -> Self {
        self.max_step_halvings = n;
        self
    }

    /// Returns the options with a different solver backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

/// Continuation knobs of one Newton attempt: the shunt conductance stamped
/// to ground and the global scale applied to every source value.
#[derive(Debug, Clone, Copy)]
struct SolveKnobs {
    gmin: f64,
    source_scale: f64,
}

impl SolveKnobs {
    const NOMINAL: SolveKnobs = SolveKnobs {
        gmin: GMIN,
        source_scale: 1.0,
    };
}

/// Result of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    node_names: Vec<String>,
    voltages: Vec<f64>,
    vsource_currents: HashMap<String, f64>,
}

impl DcSolution {
    /// Voltage at a named node.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] when the node does not exist.
    pub fn node_voltage(&self, name: &str) -> Result<f64, SpiceError> {
        let key = name.to_ascii_lowercase();
        self.node_names
            .iter()
            .position(|n| *n == key)
            .map(|i| self.voltages[i])
            .ok_or(SpiceError::UnknownNode(key))
    }

    /// Branch current of a named voltage source (MNA convention: positive
    /// flowing from the `+` terminal through the source to `-`; a battery
    /// delivering power therefore reads negative).
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] when no such source exists.
    pub fn source_current(&self, name: &str) -> Result<f64, SpiceError> {
        self.vsource_currents
            .get(name)
            .copied()
            .ok_or_else(|| SpiceError::UnknownNode(name.to_string()))
    }
}

/// Symbolic MNA structure shared by DC, transient and batched assembly:
/// the index mapping computed once per netlist *topology*. Holds only index
/// structure, never a borrow of the netlist, so the transient loop can
/// mutate MTJ states between steps and the batch path can re-stamp many
/// parameter vectors against one analysis.
pub(crate) struct Mna {
    n_nodes: usize,
    pub(crate) vsource_rows: Vec<(usize, usize)>, // (element index, mna row)
    has_nonlinear: bool,
}

impl Mna {
    pub(crate) fn new(netlist: &Netlist) -> Self {
        let n_nodes = netlist.node_count() - 1; // exclude ground
        let mut vsource_rows = Vec::new();
        let mut next = n_nodes;
        for (ei, e) in netlist.elements().iter().enumerate() {
            if matches!(e, Element::VSource { .. }) {
                vsource_rows.push((ei, next));
                next += 1;
            }
        }
        let has_nonlinear = netlist.elements().iter().any(|e| {
            matches!(
                e,
                Element::Mosfet { .. } | Element::Mtj { .. } | Element::MtjSot { .. }
            )
        });
        Self {
            n_nodes,
            vsource_rows,
            has_nonlinear,
        }
    }

    pub(crate) fn dim(&self) -> usize {
        self.n_nodes + self.vsource_rows.len()
    }

    fn node_idx(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.0 - 1)
        }
    }

    pub(crate) fn voltage(&self, x: &[f64], n: NodeId) -> f64 {
        match self.node_idx(n) {
            Some(i) => x[i],
            None => 0.0,
        }
    }

    fn stamp_conductance(&self, m: &mut Matrix, a: NodeId, b: NodeId, g: f64) {
        if let Some(ia) = self.node_idx(a) {
            m.add(ia, ia, g);
            if let Some(ib) = self.node_idx(b) {
                m.add(ia, ib, -g);
                m.add(ib, ia, -g);
                m.add(ib, ib, g);
            }
        } else if let Some(ib) = self.node_idx(b) {
            m.add(ib, ib, g);
        }
    }

    /// Injects current `i` into node `n` (adds to the RHS).
    fn inject(&self, rhs: &mut [f64], n: NodeId, i: f64) {
        if let Some(idx) = self.node_idx(n) {
            rhs[idx] += i;
        }
    }

    /// Assembles one Newton iteration into the workspace and solves it with
    /// the given backend; the solution lands in [`Workspace::solution`].
    ///
    /// `t` selects source values; `cap_prev` holds previous-step voltages
    /// for the backward-Euler companions (`None` in DC: capacitors open).
    /// `x0` is the current Newton iterate — MTJ/MOSFET linearisations are
    /// read from it.
    #[allow(clippy::too_many_arguments)]
    fn assemble_and_solve(
        &self,
        netlist: &Netlist,
        t: f64,
        x0: &[f64],
        dt: Option<f64>,
        cap_prev: Option<&[f64]>,
        knobs: &SolveKnobs,
        backend: &dyn SolverBackend,
        ws: &mut Workspace,
    ) -> Result<(), SpiceError> {
        let dim = self.dim();
        ws.prepare(dim);
        let (m, rhs) = ws.assembly_mut();

        // gmin to ground on every node (the ladder may inflate it).
        for i in 0..self.n_nodes {
            m.add(i, i, knobs.gmin);
        }

        let mut vk = 0usize;
        for e in netlist.elements() {
            match e {
                Element::Resistor { a, b, ohms, .. } => {
                    self.stamp_conductance(m, *a, *b, 1.0 / ohms);
                }
                Element::Capacitor { a, b, farads, .. } => {
                    if let (Some(dt), Some(prev)) = (dt, cap_prev) {
                        let geq = farads / dt;
                        self.stamp_conductance(m, *a, *b, geq);
                        let va = match self.node_idx(*a) {
                            Some(i) => prev[i],
                            None => 0.0,
                        };
                        let vb = match self.node_idx(*b) {
                            Some(i) => prev[i],
                            None => 0.0,
                        };
                        let ieq = geq * (va - vb);
                        self.inject(rhs, *a, ieq);
                        self.inject(rhs, *b, -ieq);
                    }
                    // DC: open circuit (gmin keeps nodes grounded).
                }
                Element::VSource {
                    plus, minus, wave, ..
                } => {
                    let row = self.vsource_rows[vk].1;
                    vk += 1;
                    if let Some(ip) = self.node_idx(*plus) {
                        m.add(ip, row, 1.0);
                        m.add(row, ip, 1.0);
                    }
                    if let Some(im) = self.node_idx(*minus) {
                        m.add(im, row, -1.0);
                        m.add(row, im, -1.0);
                    }
                    rhs[row] = knobs.source_scale * wave.eval(t);
                }
                Element::ISource {
                    plus, minus, wave, ..
                } => {
                    let i = knobs.source_scale * wave.eval(t);
                    self.inject(rhs, *plus, -i);
                    self.inject(rhs, *minus, i);
                }
                Element::Mosfet {
                    d,
                    g,
                    s,
                    model,
                    geom,
                    ..
                } => {
                    let vg = self.voltage(x0, *g);
                    let vd = self.voltage(x0, *d);
                    let vs = self.voltage(x0, *s);
                    let op = model.evaluate(geom, vg - vs, vd - vs);
                    // i_d = id0 + gm*(vgs - vgs0) + gds*(vds - vds0)
                    // Stamps: gds between d and s, VCCS gm from (g,s) into (d,s).
                    self.stamp_conductance(m, *d, *s, op.gds);
                    let (id_, ig, is_) = (self.node_idx(*d), self.node_idx(*g), self.node_idx(*s));
                    if let Some(di) = id_ {
                        if let Some(gi) = ig {
                            m.add(di, gi, op.gm);
                        }
                        if let Some(si) = is_ {
                            m.add(di, si, -op.gm);
                        }
                    }
                    if let Some(si) = is_ {
                        if let Some(gi) = ig {
                            m.add(si, gi, -op.gm);
                        }
                        m.add(si, si, op.gm);
                    }
                    let i0 = op.id - op.gm * (vg - vs) - op.gds * (vd - vs);
                    self.inject(rhs, *d, -i0);
                    self.inject(rhs, *s, i0);
                }
                Element::Mtj {
                    plus,
                    minus,
                    device,
                    ..
                } => {
                    let v = self.voltage(x0, *plus) - self.voltage(x0, *minus);
                    let (g, _) = device.linearize(v);
                    self.stamp_conductance(m, *plus, *minus, g);
                }
                Element::MtjSot {
                    read,
                    shared,
                    write,
                    channel_ohms,
                    device,
                    ..
                } => {
                    // Junction (read path): same chord-conductance
                    // linearisation as the two-terminal MTJ.
                    let v = self.voltage(x0, *read) - self.voltage(x0, *shared);
                    let (g, _) = device.linearize(v);
                    self.stamp_conductance(m, *read, *shared, g);
                    // Heavy-metal channel (write path): linear resistor.
                    self.stamp_conductance(m, *shared, *write, 1.0 / channel_ohms);
                }
            }
        }

        backend.solve_in_place(ws)
    }

    /// Newton loop at time `t` with a bounded iteration budget.
    ///
    /// All linear solves run in the caller's workspace: one Newton call —
    /// and one whole transient — performs O(1) matrix allocations. Damping
    /// is applied in place on the iterate (values identical to the historic
    /// clone-and-clamp), so per-iteration allocations are gone too.
    ///
    /// Failure carries the iteration count and the final `max_dv` so the
    /// retry ladder (and the user) can see how close the iterate got.
    #[allow(clippy::too_many_arguments)]
    fn newton(
        &self,
        netlist: &Netlist,
        t: f64,
        x_init: &[f64],
        dt: Option<f64>,
        cap_prev: Option<&[f64]>,
        analysis: &'static str,
        knobs: &SolveKnobs,
        budget: usize,
        backend: &dyn SolverBackend,
        ws: &mut Workspace,
    ) -> Result<Vec<f64>, SpiceError> {
        let mut x = x_init.to_vec();
        if !self.has_nonlinear {
            self.assemble_and_solve(netlist, t, &x, dt, cap_prev, knobs, backend, ws)?;
            x.copy_from_slice(ws.solution());
            return Ok(x);
        }
        mss_obs::counter_add("spice.newton.calls", 1);
        let budget = budget.max(1);
        let mut last_dv = f64::INFINITY;
        for iter in 0..budget {
            self.assemble_and_solve(netlist, t, &x, dt, cap_prev, knobs, backend, ws)?;
            let x_new = ws.solution();
            let mut max_dv: f64 = 0.0;
            for i in 0..x.len() {
                let dv = x_new[i] - x[i];
                if i < self.n_nodes {
                    max_dv = max_dv.max(dv.abs());
                    x[i] = if dv.abs() > VSTEP_MAX {
                        x[i] + dv.signum() * VSTEP_MAX
                    } else {
                        x_new[i]
                    };
                } else {
                    x[i] = x_new[i];
                }
            }
            let converged = max_dv < VTOL;
            last_dv = max_dv;
            if converged {
                mss_obs::counter_add("spice.newton.iterations", iter as u64 + 1);
                return Ok(x);
            }
        }
        mss_obs::counter_add("spice.newton.iterations", budget as u64);
        mss_obs::counter_add("spice.newton.nonconverged", 1);
        Err(SpiceError::NoConvergence {
            analysis,
            time: if dt.is_some() { Some(t) } else { None },
            iterations: budget,
            max_dv: last_dv,
        })
    }

    /// DC-like solve with the full convergence retry ladder: plain Newton,
    /// then gmin stepping, then source stepping. Every attempt reuses the
    /// caller's workspace.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_static(
        &self,
        netlist: &Netlist,
        t: f64,
        x_init: &[f64],
        dt: Option<f64>,
        cap_prev: Option<&[f64]>,
        analysis: &'static str,
        opts: &SolverOptions,
        ws: &mut Workspace,
    ) -> Result<Vec<f64>, SpiceError> {
        let backend = opts.backend.instance();
        let mut attempts = Vec::new();
        match self.newton(
            netlist,
            t,
            x_init,
            dt,
            cap_prev,
            analysis,
            &SolveKnobs::NOMINAL,
            opts.max_newton,
            backend,
            ws,
        ) {
            Ok(x) => return Ok(x),
            Err(e) => record_attempt(&mut attempts, "newton", e)?,
        }
        if opts.gmin_stepping {
            if let Some(x) = self.gmin_ladder(
                netlist,
                t,
                x_init,
                dt,
                cap_prev,
                analysis,
                opts,
                &mut attempts,
                ws,
            )? {
                mss_obs::counter_add("spice.ladder.gmin_rescued", 1);
                return Ok(x);
            }
        }
        if opts.source_stepping {
            if let Some(x) = self.source_ladder(
                netlist,
                t,
                x_init,
                dt,
                cap_prev,
                analysis,
                opts,
                &mut attempts,
                ws,
            )? {
                mss_obs::counter_add("spice.ladder.source_rescued", 1);
                return Ok(x);
            }
        }
        mss_obs::counter_add("spice.ladder.exhausted", 1);
        Err(exhausted(analysis, dt.map(|_| t), attempts))
    }

    /// Gmin stepping: inflate the universal shunt to `1e-3` S (which makes
    /// almost any circuit solvable), then relax it decade by decade back to
    /// the nominal `GMIN`, warm-starting each level from the last. Returns
    /// `Ok(None)` when a level fails (failure recorded in `attempts`).
    #[allow(clippy::too_many_arguments)]
    fn gmin_ladder(
        &self,
        netlist: &Netlist,
        t: f64,
        x_init: &[f64],
        dt: Option<f64>,
        cap_prev: Option<&[f64]>,
        analysis: &'static str,
        opts: &SolverOptions,
        attempts: &mut Vec<RetryAttempt>,
        ws: &mut Workspace,
    ) -> Result<Option<Vec<f64>>, SpiceError> {
        let backend = opts.backend.instance();
        let mut x = x_init.to_vec();
        let mut gmin = GMIN_LADDER_START;
        while gmin > GMIN {
            // Attempt history for chaos/robustness runs: one count per
            // ladder level actually tried, win or lose.
            mss_obs::counter_add("spice.retry.gmin_steps", 1);
            let knobs = SolveKnobs {
                gmin,
                source_scale: 1.0,
            };
            match self.newton(
                netlist,
                t,
                &x,
                dt,
                cap_prev,
                analysis,
                &knobs,
                opts.ladder_newton,
                backend,
                ws,
            ) {
                Ok(next) => x = next,
                Err(e) => {
                    record_attempt(attempts, &format!("gmin={gmin:.1e}"), e)?;
                    return Ok(None);
                }
            }
            gmin /= 10.0;
        }
        // Final solve at the nominal gmin seals the continuation.
        match self.newton(
            netlist,
            t,
            &x,
            dt,
            cap_prev,
            analysis,
            &SolveKnobs::NOMINAL,
            opts.ladder_newton,
            backend,
            ws,
        ) {
            Ok(x) => Ok(Some(x)),
            Err(e) => {
                record_attempt(attempts, &format!("gmin={GMIN:.1e}"), e)?;
                Ok(None)
            }
        }
    }

    /// Source stepping: ramp every independent source from 10% to 100% of
    /// its value in equal homotopy steps, tracking the solution branch from
    /// the trivially solvable low-drive circuit. Returns `Ok(None)` when a
    /// level fails (failure recorded in `attempts`).
    #[allow(clippy::too_many_arguments)]
    fn source_ladder(
        &self,
        netlist: &Netlist,
        t: f64,
        x_init: &[f64],
        dt: Option<f64>,
        cap_prev: Option<&[f64]>,
        analysis: &'static str,
        opts: &SolverOptions,
        attempts: &mut Vec<RetryAttempt>,
        ws: &mut Workspace,
    ) -> Result<Option<Vec<f64>>, SpiceError> {
        let backend = opts.backend.instance();
        let mut x = x_init.to_vec();
        for level in 1..=SOURCE_LADDER_LEVELS {
            mss_obs::counter_add("spice.retry.source_steps", 1);
            let alpha = level as f64 / SOURCE_LADDER_LEVELS as f64;
            let knobs = SolveKnobs {
                gmin: GMIN,
                source_scale: alpha,
            };
            match self.newton(
                netlist,
                t,
                &x,
                dt,
                cap_prev,
                analysis,
                &knobs,
                opts.ladder_newton,
                backend,
                ws,
            ) {
                Ok(next) => x = next,
                Err(e) => {
                    record_attempt(attempts, &format!("source-alpha={alpha:.2}"), e)?;
                    return Ok(None);
                }
            }
        }
        Ok(Some(x))
    }

    /// Advances one transient step with step rejection: on non-convergence
    /// the step is halved (exact for the backward-Euler companions) and
    /// retried as two half steps, recursively up to
    /// [`SolverOptions::max_step_halvings`] levels.
    #[allow(clippy::too_many_arguments)]
    fn advance_step(
        &self,
        netlist: &Netlist,
        t_end: f64,
        dt: f64,
        x_start: &[f64],
        depth: u32,
        opts: &SolverOptions,
        attempts: &mut Vec<RetryAttempt>,
        ws: &mut Workspace,
    ) -> Result<Vec<f64>, SpiceError> {
        match self.newton(
            netlist,
            t_end,
            x_start,
            Some(dt),
            Some(x_start),
            "transient",
            &SolveKnobs::NOMINAL,
            opts.max_newton,
            opts.backend.instance(),
            ws,
        ) {
            Ok(x) => Ok(x),
            Err(e) => {
                record_attempt(attempts, &format!("dt={dt:.2e}"), e)?;
                if depth >= opts.max_step_halvings {
                    mss_obs::counter_add("spice.ladder.exhausted", 1);
                    return Err(exhausted(
                        "transient",
                        Some(t_end),
                        std::mem::take(attempts),
                    ));
                }
                mss_obs::counter_add("spice.ladder.step_halvings", 1);
                mss_obs::counter_add("spice.retry.step_halvings", 1);
                let half = dt / 2.0;
                let x_mid = self.advance_step(
                    netlist,
                    t_end - half,
                    half,
                    x_start,
                    depth + 1,
                    opts,
                    attempts,
                    ws,
                )?;
                self.advance_step(netlist, t_end, half, &x_mid, depth + 1, opts, attempts, ws)
            }
        }
    }
}

/// Builds the terminal error of a failed solve: a single attempt reports as
/// plain (enriched) non-convergence, a real ladder reports its full history.
fn exhausted(
    analysis: &'static str,
    time: Option<f64>,
    mut attempts: Vec<RetryAttempt>,
) -> SpiceError {
    if attempts.len() == 1 {
        let a = attempts.remove(0);
        SpiceError::NoConvergence {
            analysis,
            time,
            iterations: a.iterations,
            max_dv: a.max_dv,
        }
    } else {
        SpiceError::RetryLadderExhausted {
            analysis,
            time,
            attempts,
        }
    }
}

/// Folds a Newton failure into the retry history; anything other than
/// non-convergence (e.g. a singular matrix) aborts the ladder immediately.
fn record_attempt(
    attempts: &mut Vec<RetryAttempt>,
    strategy: &str,
    e: SpiceError,
) -> Result<(), SpiceError> {
    match e {
        SpiceError::NoConvergence {
            iterations, max_dv, ..
        } => {
            attempts.push(RetryAttempt {
                strategy: strategy.to_string(),
                iterations,
                max_dv,
            });
            Ok(())
        }
        other => Err(other),
    }
}

/// Computes the DC operating point with sources at their `t = 0` values and
/// capacitors open, using the default convergence retry ladder.
///
/// # Errors
///
/// Propagates singular-matrix failures; convergence failures surface only
/// after the full gmin/source-stepping ladder is exhausted.
pub fn dc_operating_point(netlist: &Netlist) -> Result<DcSolution, SpiceError> {
    dc_operating_point_with(netlist, &SolverOptions::default())
}

/// [`dc_operating_point`] with an explicit convergence policy.
///
/// # Errors
///
/// [`SpiceError::NoConvergence`] when the ladder is disabled and plain
/// Newton fails; [`SpiceError::RetryLadderExhausted`] when every enabled
/// stage fails; singular-matrix failures propagate immediately.
pub fn dc_operating_point_with(
    netlist: &Netlist,
    solver: &SolverOptions,
) -> Result<DcSolution, SpiceError> {
    let _span = mss_obs::span("spice.dc");
    let mna = Mna::new(netlist);
    let mut ws = Workspace::new();
    let x0 = vec![0.0; mna.dim()];
    let x = mna.solve_static(
        netlist,
        0.0,
        &x0,
        None,
        None,
        "dc operating point",
        solver,
        &mut ws,
    )?;
    Ok(package_dc(netlist, &mna, &x))
}

fn package_dc(netlist: &Netlist, mna: &Mna, x: &[f64]) -> DcSolution {
    let mut node_names = Vec::with_capacity(netlist.node_count());
    let mut voltages = Vec::with_capacity(netlist.node_count());
    for i in 0..netlist.node_count() {
        node_names.push(netlist.node_name(NodeId(i)).to_string());
        voltages.push(if i == 0 { 0.0 } else { x[i - 1] });
    }
    let mut vsource_currents = HashMap::new();
    for (ei, row) in &mna.vsource_rows {
        if let Element::VSource { name, .. } = &netlist.elements()[*ei] {
            vsource_currents.insert(name.clone(), x[*row]);
        }
    }
    DcSolution {
        node_names,
        voltages,
        vsource_currents,
    }
}

/// Options for a fixed-step transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Time step in seconds.
    pub dt: f64,
    /// Stop time in seconds.
    pub t_stop: f64,
    /// Convergence policy (retry ladder on by default).
    pub solver: SolverOptions,
}

impl TransientOptions {
    /// Creates options with the given step and stop time, and the default
    /// convergence retry ladder.
    ///
    /// # Panics
    ///
    /// Panics if either value is non-positive or `t_stop < dt`.
    pub fn new(dt: f64, t_stop: f64) -> Self {
        assert!(
            dt > 0.0 && t_stop > 0.0 && t_stop >= dt,
            "bad transient window"
        );
        Self {
            dt,
            t_stop,
            solver: SolverOptions::default(),
        }
    }

    /// Returns the options with an explicit convergence policy.
    pub fn with_solver(mut self, solver: SolverOptions) -> Self {
        self.solver = solver;
        self
    }
}

/// An MTJ state-change event observed during transient.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchEvent {
    /// Simulation time of the flip, seconds.
    pub time: f64,
    /// MTJ instance name.
    pub element: String,
    /// `+1` for parallel, `-1` for antiparallel after the flip.
    pub new_state_cos: f64,
}

/// Transient simulation engine.
#[derive(Debug, Clone)]
pub struct Transient {
    netlist: Netlist,
}

impl Transient {
    /// Prepares a transient analysis for a netlist (cloned internally so the
    /// caller's MTJ initial states are preserved across runs).
    ///
    /// # Errors
    ///
    /// Currently infallible; reserved for pre-flight checks.
    pub fn new(netlist: &Netlist) -> Result<Self, SpiceError> {
        Ok(Self {
            netlist: netlist.clone(),
        })
    }

    /// Runs the transient and returns recorded waveforms.
    ///
    /// # Errors
    ///
    /// Propagates Newton non-convergence and singular-matrix failures with
    /// the failing time point attached.
    pub fn run(&self, opts: &TransientOptions) -> Result<TransientResult, SpiceError> {
        let _span = mss_obs::span("spice.transient");
        let mut netlist = self.netlist.clone();
        let mna = Mna::new(&netlist);
        let steps = (opts.t_stop / opts.dt).round() as usize;
        mss_obs::counter_add("spice.transient.steps", steps as u64);

        // One workspace for the whole run: the DC init, every step and
        // every retry-ladder re-solve share it, so a transient performs
        // O(1) matrix allocations regardless of step count.
        let mut ws = Workspace::new();

        // t = 0: DC operating point (capacitors open), full retry ladder.
        let mut x = mna.solve_static(
            &netlist,
            0.0,
            &vec![0.0; mna.dim()],
            None,
            None,
            "transient dc init",
            &opts.solver,
            &mut ws,
        )?;

        let node_names: Vec<String> = (0..netlist.node_count())
            .map(|i| netlist.node_name(NodeId(i)).to_string())
            .collect();
        let vsource_names: Vec<String> = netlist
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::VSource { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        let vsource_nodes: Vec<(usize, usize)> = netlist
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::VSource { plus, minus, .. } => Some((plus.0, minus.0)),
                _ => None,
            })
            .collect();
        let mtj_indices: Vec<usize> = netlist
            .elements()
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                matches!(e, Element::Mtj { .. } | Element::MtjSot { .. }).then_some(i)
            })
            .collect();
        let mtj_names: Vec<String> = mtj_indices
            .iter()
            .map(|&i| netlist.elements()[i].name().to_string())
            .collect();

        let mut result = TransientResult {
            times: Vec::with_capacity(steps + 1),
            node_names,
            voltages: vec![Vec::with_capacity(steps + 1); netlist.node_count()],
            vsource_names,
            vsource_nodes,
            currents: vec![Vec::with_capacity(steps + 1); mna.vsource_rows.len()],
            mtj_names,
            mtj_cos: vec![Vec::with_capacity(steps + 1); mtj_indices.len()],
            events: Vec::new(),
        };
        record(&mut result, &mna, &netlist, &mtj_indices, 0.0, &x);

        for k in 1..=steps {
            let t = k as f64 * opts.dt;
            let prev = x.clone();
            let mut attempts = Vec::new();
            x = mna.advance_step(
                &netlist,
                t,
                opts.dt,
                &prev,
                0,
                &opts.solver,
                &mut attempts,
                &mut ws,
            )?;

            // Advance MTJ states with the solved currents.
            let mut events = Vec::new();
            {
                let elements = netlist.elements_mut();
                for &ei in &mtj_indices {
                    match &mut elements[ei] {
                        Element::Mtj {
                            name,
                            plus,
                            minus,
                            device,
                        } => {
                            let v = mna_voltage(&mna, &x, *plus) - mna_voltage(&mna, &x, *minus);
                            let i = v / device.resistance(v);
                            if device.advance(i, opts.dt) {
                                events.push(SwitchEvent {
                                    time: t,
                                    element: name.clone(),
                                    new_state_cos: device.state().cos_angle(),
                                });
                            }
                        }
                        Element::MtjSot {
                            name,
                            shared,
                            write,
                            channel_ohms,
                            device,
                            ..
                        } => {
                            // SOT: switching progress integrates against the
                            // heavy-metal channel current, not the junction
                            // current.
                            let v_ch =
                                mna_voltage(&mna, &x, *shared) - mna_voltage(&mna, &x, *write);
                            let i_ch = v_ch / *channel_ohms;
                            if device.advance(i_ch, opts.dt) {
                                events.push(SwitchEvent {
                                    time: t,
                                    element: name.clone(),
                                    new_state_cos: device.state().cos_angle(),
                                });
                            }
                        }
                        _ => unreachable!("mtj_indices only holds MTJ variants"),
                    }
                }
            }
            result.events.extend(events);
            record(&mut result, &mna, &netlist, &mtj_indices, t, &x);
        }
        Ok(result)
    }
}

fn mna_voltage(mna: &Mna, x: &[f64], n: NodeId) -> f64 {
    mna.voltage(x, n)
}

fn record(
    result: &mut TransientResult,
    mna: &Mna,
    netlist: &Netlist,
    mtj_indices: &[usize],
    t: f64,
    x: &[f64],
) {
    result.times.push(t);
    for i in 0..netlist.node_count() {
        let v = if i == 0 { 0.0 } else { x[i - 1] };
        result.voltages[i].push(v);
    }
    for (slot, (_, row)) in mna.vsource_rows.iter().enumerate() {
        result.currents[slot].push(x[*row]);
    }
    for (slot, &ei) in mtj_indices.iter().enumerate() {
        if let Element::Mtj { device, .. } | Element::MtjSot { device, .. } =
            &netlist.elements()[ei]
        {
            result.mtj_cos[slot].push(device.state().cos_angle());
        }
    }
}

/// Recorded transient waveforms.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    node_names: Vec<String>,
    voltages: Vec<Vec<f64>>,
    vsource_names: Vec<String>,
    vsource_nodes: Vec<(usize, usize)>,
    currents: Vec<Vec<f64>>,
    mtj_names: Vec<String>,
    mtj_cos: Vec<Vec<f64>>,
    events: Vec<SwitchEvent>,
}

impl TransientResult {
    /// Time points in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage waveform of a named node.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] when the node does not exist.
    pub fn node_voltage(&self, name: &str) -> Result<&[f64], SpiceError> {
        let key = name.to_ascii_lowercase();
        self.node_names
            .iter()
            .position(|n| *n == key)
            .map(|i| self.voltages[i].as_slice())
            .ok_or(SpiceError::UnknownNode(key))
    }

    /// Branch-current waveform of a voltage source (MNA sign convention:
    /// a source delivering power reads negative).
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] when no such source exists.
    pub fn source_current(&self, name: &str) -> Result<&[f64], SpiceError> {
        self.vsource_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.currents[i].as_slice())
            .ok_or_else(|| SpiceError::UnknownNode(name.to_string()))
    }

    /// Terminal voltage waveform (`v_plus − v_minus`) of a voltage source.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] when no such source exists.
    pub fn source_voltage(&self, name: &str) -> Result<Vec<f64>, SpiceError> {
        let idx = self
            .vsource_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| SpiceError::UnknownNode(name.to_string()))?;
        let (p, m) = self.vsource_nodes[idx];
        Ok(self.voltages[p]
            .iter()
            .zip(&self.voltages[m])
            .map(|(a, b)| a - b)
            .collect())
    }

    /// MTJ state trace (`+1` parallel / `-1` antiparallel per time point).
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] when no such MTJ exists.
    pub fn mtj_state(&self, name: &str) -> Result<&[f64], SpiceError> {
        self.mtj_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.mtj_cos[i].as_slice())
            .ok_or_else(|| SpiceError::UnknownNode(name.to_string()))
    }

    /// MTJ switching events in time order.
    pub fn events(&self) -> &[SwitchEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::{MosGeometry, MosModel};
    use crate::waveform::Waveform;
    use mss_mtj::resistance::MtjState;
    use mss_mtj::MssStack;

    #[test]
    fn resistor_divider_dc() {
        let mut nl = Netlist::new();
        nl.add_vsource("v1", "in", "0", Waveform::dc(2.0)).unwrap();
        nl.add_resistor("r1", "in", "mid", 1e3).unwrap();
        nl.add_resistor("r2", "mid", "0", 1e3).unwrap();
        let dc = dc_operating_point(&nl).unwrap();
        assert!((dc.node_voltage("mid").unwrap() - 1.0).abs() < 1e-6);
        // Source current: 2V across 2k -> 1 mA, negative by MNA convention.
        assert!((dc.source_current("v1").unwrap() + 1e-3).abs() < 1e-6);
    }

    #[test]
    fn kcl_holds_on_rc_ladder() {
        let mut nl = Netlist::new();
        nl.add_vsource("v1", "n1", "0", Waveform::dc(1.0)).unwrap();
        for i in 1..5 {
            nl.add_resistor(
                &format!("r{i}"),
                &format!("n{i}"),
                &format!("n{}", i + 1),
                1e3,
            )
            .unwrap();
        }
        nl.add_resistor("rend", "n5", "0", 1e3).unwrap();
        let dc = dc_operating_point(&nl).unwrap();
        // Voltages decrease monotonically down the ladder.
        let mut last = dc.node_voltage("n1").unwrap();
        for i in 2..=5 {
            let v = dc.node_voltage(&format!("n{i}")).unwrap();
            assert!(v < last);
            last = v;
        }
    }

    #[test]
    fn rc_transient_time_constant() {
        let mut nl = Netlist::new();
        nl.add_vsource("vin", "in", "0", Waveform::dc(1.0)).unwrap();
        nl.add_resistor("r1", "in", "out", 1e3).unwrap();
        nl.add_capacitor("c1", "out", "0", 1e-12).unwrap();
        // tau = 1 ns. (DC init starts the cap at its operating point = 1 V,
        // so drive with a pulse instead to see the charge-up.)
        let mut nl2 = Netlist::new();
        nl2.add_vsource(
            "vin",
            "in",
            "0",
            Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 0.0),
        )
        .unwrap();
        nl2.add_resistor("r1", "in", "out", 1e3).unwrap();
        nl2.add_capacitor("c1", "out", "0", 1e-12).unwrap();
        let res = Transient::new(&nl2)
            .unwrap()
            .run(&TransientOptions::new(1e-12, 5e-9))
            .unwrap();
        let v = res.node_voltage("out").unwrap();
        let t = res.times();
        // Value at t = tau should be ~63.2%.
        let idx = t.iter().position(|&tt| tt >= 1e-9).unwrap();
        assert!(
            (v[idx] - 0.632).abs() < 0.02,
            "v(tau) = {} (backward Euler tolerance)",
            v[idx]
        );
        drop(nl);
    }

    #[test]
    fn nmos_inverter_dc_transfer() {
        // NMOS with resistive pull-up: in=0 -> out high; in=Vdd -> out low.
        let build = |vin: f64| {
            let mut nl = Netlist::new();
            nl.add_vsource("vdd", "vdd", "0", Waveform::dc(1.0))
                .unwrap();
            nl.add_vsource("vin", "in", "0", Waveform::dc(vin)).unwrap();
            nl.add_resistor("rl", "vdd", "out", 10e3).unwrap();
            nl.add_mosfet(
                "m1",
                "out",
                "in",
                "0",
                MosModel::generic_nmos(),
                MosGeometry {
                    width: 1e-6,
                    length: 100e-9,
                },
            )
            .unwrap();
            nl
        };
        let low = dc_operating_point(&build(0.0)).unwrap();
        assert!(low.node_voltage("out").unwrap() > 0.95);
        let high = dc_operating_point(&build(1.0)).unwrap();
        assert!(high.node_voltage("out").unwrap() < 0.2);
    }

    #[test]
    fn isource_into_resistor() {
        let mut nl = Netlist::new();
        // 1 mA drawn from ground, pushed into node a: v(a) = i*R = 1 V.
        nl.add_isource("i1", "0", "a", Waveform::dc(1e-3)).unwrap();
        nl.add_resistor("r1", "a", "0", 1e3).unwrap();
        let dc = dc_operating_point(&nl).unwrap();
        assert!((dc.node_voltage("a").unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mtj_write_pulse_switches_state() {
        let stack = MssStack::builder().build().unwrap();
        let ic0 = stack.critical_current();
        let r_ap = stack.resistance_antiparallel();
        // Voltage needed for ~2.5x overdrive through the AP state.
        let v_write = 2.5 * ic0 * r_ap;
        let mut nl = Netlist::new();
        nl.add_vsource(
            "vw",
            "top",
            "0",
            Waveform::pulse(0.0, v_write, 1e-9, 0.05e-9, 0.05e-9, 40e-9, 0.0),
        )
        .unwrap();
        nl.add_mtj("x1", "top", "0", &stack, MtjState::Antiparallel)
            .unwrap();
        let res = Transient::new(&nl)
            .unwrap()
            .run(&TransientOptions::new(0.02e-9, 50e-9))
            .unwrap();
        assert_eq!(res.events().len(), 1, "expected exactly one switch event");
        let trace = res.mtj_state("x1").unwrap();
        assert_eq!(trace[0], -1.0);
        assert_eq!(*trace.last().unwrap(), 1.0);
        // The switch happens after the pulse starts.
        assert!(res.events()[0].time > 1e-9);
    }

    #[test]
    fn mtj_read_pulse_does_not_switch() {
        let stack = MssStack::builder().build().unwrap();
        let v_read = 0.1; // well below write voltages
        let mut nl = Netlist::new();
        nl.add_vsource("vr", "top", "0", Waveform::dc(v_read))
            .unwrap();
        nl.add_mtj("x1", "top", "0", &stack, MtjState::Antiparallel)
            .unwrap();
        let res = Transient::new(&nl)
            .unwrap()
            .run(&TransientOptions::new(0.05e-9, 20e-9))
            .unwrap();
        assert!(res.events().is_empty());
        assert_eq!(*res.mtj_state("x1").unwrap().last().unwrap(), -1.0);
    }

    #[test]
    fn sot_channel_pulse_switches_state() {
        use mss_mtj::mechanism::{SotMechanism, SotParams, SwitchingMechanism};
        let stack = MssStack::builder().build().unwrap();
        let params = SotParams::default();
        let sot = SotMechanism::new(&stack, params.clone()).unwrap();
        // ~2.5x overdrive through the heavy-metal channel.
        let v_write = 2.5 * sot.critical_current() * sot.channel_resistance();
        let mut nl = Netlist::new();
        nl.add_vsource(
            "vw",
            "sh",
            "0",
            Waveform::pulse(0.0, v_write, 1e-9, 0.05e-9, 0.05e-9, 2e-9, 0.0),
        )
        .unwrap();
        nl.add_mtj_sot(
            "x1",
            "rd",
            "sh",
            "0",
            &stack,
            &params,
            MtjState::Antiparallel,
        )
        .unwrap();
        let res = Transient::new(&nl)
            .unwrap()
            .run(&TransientOptions::new(0.005e-9, 4e-9))
            .unwrap();
        assert_eq!(res.events().len(), 1, "expected exactly one switch event");
        let trace = res.mtj_state("x1").unwrap();
        assert_eq!(trace[0], -1.0);
        assert_eq!(*trace.last().unwrap(), 1.0);
        // SOT switches fast: well inside the 2 ns pulse.
        assert!(res.events()[0].time > 1e-9 && res.events()[0].time < 2e-9);
    }

    #[test]
    fn sot_read_path_does_not_disturb_state() {
        use mss_mtj::mechanism::SotParams;
        let stack = MssStack::builder().build().unwrap();
        // Bias the junction read path; the write channel stays idle, so no
        // channel current flows and the state must hold even though the
        // junction current would exceed the (tiny) SOT critical current.
        let mut nl = Netlist::new();
        nl.add_vsource("vr", "rd", "0", Waveform::dc(0.3)).unwrap();
        nl.add_mtj_sot(
            "x1",
            "rd",
            "sh",
            "sh",
            &stack,
            &SotParams::default(),
            MtjState::Antiparallel,
        )
        .unwrap();
        nl.add_resistor("rterm", "sh", "0", 1.0e3).unwrap();
        let res = Transient::new(&nl)
            .unwrap()
            .run(&TransientOptions::new(0.05e-9, 5e-9))
            .unwrap();
        assert!(res.events().is_empty());
        assert_eq!(*res.mtj_state("x1").unwrap().last().unwrap(), -1.0);
    }

    #[test]
    fn sot_dc_read_sees_tmr_resistance() {
        use mss_mtj::mechanism::SotParams;
        let stack = MssStack::builder().build().unwrap();
        let params = SotParams::default();
        let read = |state: MtjState| {
            let mut nl = Netlist::new();
            nl.add_vsource("vr", "bl", "0", Waveform::dc(0.1)).unwrap();
            nl.add_resistor("rs", "bl", "rd", 3.0e3).unwrap();
            nl.add_mtj_sot("x1", "rd", "sh", "sh", &stack, &params, state)
                .unwrap();
            nl.add_resistor("rgnd", "sh", "0", 1.0).unwrap();
            let dc = dc_operating_point(&nl).unwrap();
            dc.node_voltage("rd").unwrap()
        };
        // AP reads a larger junction resistance -> higher divider tap.
        assert!(read(MtjState::Antiparallel) > read(MtjState::Parallel) + 1e-3);
    }

    #[test]
    fn floating_node_is_not_singular() {
        let mut nl = Netlist::new();
        nl.add_vsource("v1", "a", "0", Waveform::dc(1.0)).unwrap();
        nl.add_resistor("r1", "a", "b", 1e3).unwrap();
        // "c" floats entirely (capacitor only).
        nl.add_capacitor("c1", "b", "c", 1e-15).unwrap();
        let dc = dc_operating_point(&nl).unwrap();
        assert!(dc.node_voltage("c").unwrap().abs() < 1e-3);
    }

    #[test]
    fn unknown_probe_names_error() {
        let mut nl = Netlist::new();
        nl.add_vsource("v1", "a", "0", Waveform::dc(1.0)).unwrap();
        nl.add_resistor("r1", "a", "0", 1.0e3).unwrap();
        let res = Transient::new(&nl)
            .unwrap()
            .run(&TransientOptions::new(1e-10, 1e-9))
            .unwrap();
        assert!(res.node_voltage("zz").is_err());
        assert!(res.source_current("vxx").is_err());
        assert!(res.mtj_state("none").is_err());
    }

    #[test]
    #[should_panic(expected = "bad transient window")]
    fn bad_options_panic() {
        let _ = TransientOptions::new(0.0, 1.0);
    }

    /// An NMOS inverter chain that damped Newton cannot settle from a cold
    /// start inside a tiny iteration budget.
    fn stiff_inverter(vin: f64) -> Netlist {
        let mut nl = Netlist::new();
        nl.add_vsource("vdd", "vdd", "0", Waveform::dc(1.0))
            .unwrap();
        nl.add_vsource("vin", "in", "0", Waveform::dc(vin)).unwrap();
        nl.add_resistor("rl", "vdd", "out", 10e3).unwrap();
        nl.add_mosfet(
            "m1",
            "out",
            "in",
            "0",
            MosModel::generic_nmos(),
            MosGeometry {
                width: 1e-6,
                length: 100e-9,
            },
        )
        .unwrap();
        nl
    }

    #[test]
    fn dc_ladder_rescues_a_starved_newton() {
        let nl = stiff_inverter(0.0);
        // Plain Newton with a 1-iteration budget cannot converge...
        let strict = SolverOptions::without_ladder().with_max_newton(1);
        let err = dc_operating_point_with(&nl, &strict).expect_err("must fail");
        match err {
            SpiceError::NoConvergence {
                analysis,
                time,
                iterations,
                max_dv,
            } => {
                assert_eq!(analysis, "dc operating point");
                assert_eq!(time, None);
                assert_eq!(iterations, 1);
                assert!(max_dv > VTOL, "final max_dv {max_dv} must be reported");
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
        // ...but the gmin/source ladder converges it to the right answer.
        let robust = SolverOptions::default().with_max_newton(1);
        let dc = dc_operating_point_with(&nl, &robust).unwrap();
        assert!(dc.node_voltage("out").unwrap() > 0.95);
    }

    #[test]
    fn exhausted_dc_ladder_reports_full_history() {
        let nl = stiff_inverter(1.0);
        // Starve every stage: 1 Newton iteration everywhere.
        let opts = SolverOptions::default()
            .with_max_newton(1)
            .with_ladder_newton(1);
        let err = dc_operating_point_with(&nl, &opts).expect_err("must exhaust");
        match err {
            SpiceError::RetryLadderExhausted {
                analysis,
                time,
                attempts,
            } => {
                assert_eq!(analysis, "dc operating point");
                assert_eq!(time, None);
                // Plain Newton + first gmin level + first source level.
                assert_eq!(attempts.len(), 3);
                assert_eq!(attempts[0].strategy, "newton");
                assert!(attempts[1].strategy.starts_with("gmin="));
                assert!(attempts[2].strategy.starts_with("source-alpha="));
                for a in &attempts {
                    assert_eq!(a.iterations, 1);
                    assert!(a.max_dv > VTOL);
                }
            }
            other => panic!("expected RetryLadderExhausted, got {other:?}"),
        }
    }

    /// A transient deck whose input step overwhelms a starved Newton budget
    /// at full `dt` but settles once the step is halved.
    fn stepping_deck() -> Netlist {
        let mut nl = Netlist::new();
        nl.add_vsource("vdd", "vdd", "0", Waveform::dc(1.0))
            .unwrap();
        nl.add_vsource(
            "vin",
            "in",
            "0",
            // 0 -> 1 V edge with a 0.2 ns ramp.
            Waveform::pulse(0.0, 1.0, 1e-9, 2e-10, 2e-10, 5e-9, 0.0),
        )
        .unwrap();
        nl.add_resistor("rl", "vdd", "out", 10e3).unwrap();
        nl.add_capacitor("cl", "out", "0", 5e-15).unwrap();
        nl.add_mosfet(
            "m1",
            "out",
            "in",
            "0",
            MosModel::generic_nmos(),
            MosGeometry {
                width: 1e-6,
                length: 100e-9,
            },
        )
        .unwrap();
        nl
    }

    #[test]
    fn transient_step_rejection_rescues_coarse_steps() {
        let nl = stepping_deck();
        // A large step across the input edge with a tiny Newton budget: the
        // DC init is fine (input still 0 V), but the edge step needs help.
        let starved = SolverOptions::default()
            .with_max_newton(4)
            .with_ladder_newton(MAX_NEWTON);
        let no_reject =
            TransientOptions::new(4e-10, 3e-9).with_solver(starved.with_max_step_halvings(0));
        let err = Transient::new(&nl).unwrap().run(&no_reject);
        assert!(err.is_err(), "coarse steps must fail without rejection");
        // With step rejection enabled the same budget completes, and the
        // output settles low after the edge.
        let rejecting =
            TransientOptions::new(4e-10, 3e-9).with_solver(starved.with_max_step_halvings(8));
        let res = Transient::new(&nl).unwrap().run(&rejecting).unwrap();
        let out = res.node_voltage("out").unwrap();
        assert!(*out.last().unwrap() < 0.2, "inverter must pull low");
        assert!(out[0] > 0.95, "inverter starts high");
    }

    #[test]
    fn exhausted_transient_ladder_reports_every_halving() {
        let nl = stepping_deck();
        let opts = TransientOptions::new(4e-10, 3e-9).with_solver(
            SolverOptions::default()
                .with_max_newton(1)
                .with_max_step_halvings(2),
        );
        let err = Transient::new(&nl)
            .unwrap()
            .run(&opts)
            .expect_err("must fail");
        match err {
            SpiceError::RetryLadderExhausted {
                analysis,
                time,
                attempts,
            } => {
                assert_eq!(analysis, "transient");
                assert!(time.is_some(), "failing time point must be attached");
                // dt, dt/2, dt/4 — one failed attempt per halving level.
                assert_eq!(attempts.len(), 3);
                assert!(attempts[0].strategy.starts_with("dt=4.00e-10"));
                assert!(attempts[1].strategy.starts_with("dt=2.00e-10"));
                assert!(attempts[2].strategy.starts_with("dt=1.00e-10"));
            }
            other => panic!("expected RetryLadderExhausted, got {other:?}"),
        }
    }

    #[test]
    fn default_options_keep_previous_behaviour() {
        // The ladder is transparent for well-behaved decks: same divider
        // answer as plain Newton.
        let mut nl = Netlist::new();
        nl.add_vsource("v1", "in", "0", Waveform::dc(2.0)).unwrap();
        nl.add_resistor("r1", "in", "mid", 1e3).unwrap();
        nl.add_resistor("r2", "mid", "0", 1e3).unwrap();
        let plain = dc_operating_point_with(&nl, &SolverOptions::without_ladder()).unwrap();
        let robust = dc_operating_point(&nl).unwrap();
        assert_eq!(
            plain.node_voltage("mid").unwrap(),
            robust.node_voltage("mid").unwrap()
        );
    }
}
