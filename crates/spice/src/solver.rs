//! Dense linear algebra for MNA systems.
//!
//! Characterisation circuits in this flow are tiny (tens of unknowns), so a
//! dense LU with partial pivoting is both simpler and faster than any sparse
//! machinery would be at this size.

use crate::SpiceError;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n_rows × n_cols` zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// Row count.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Column count.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Reads element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n_cols + c]
    }

    /// Writes element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n_cols + c] = v;
    }

    /// Adds `v` to element `(r, c)` — the MNA "stamp" primitive.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n_cols + c] += v;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Largest absolute entry (the matrix scale for pivot tolerances).
    pub(crate) fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols);
        let mut y = vec![0.0; self.n_rows];
        for (y_r, row) in y.iter_mut().zip(self.data.chunks_exact(self.n_cols)) {
            *y_r = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }
}

/// Solves `A·x = b` by LU with partial pivoting.
///
/// `a` and `b` are consumed as scratch. This is the legacy one-shot entry
/// point; it adopts the inputs into a throwaway
/// [`Workspace`](crate::backend::Workspace) and delegates to the
/// [`DenseLu`](crate::backend::DenseLu) backend, so hot paths that solve
/// repeatedly should hold a workspace themselves instead of calling this
/// in a loop.
///
/// The singularity test is **relative to the matrix scale**: a pivot is
/// rejected when it falls below `scale · n · ε`, where `scale` is the
/// largest absolute entry of the input matrix. An absolute threshold
/// (the former `1e-300`) passes badly scaled near-singular MNA systems —
/// elimination leaves rounding dust in the pivot slot, back-substitution
/// divides by it, and the caller receives huge or non-finite garbage with
/// `Ok` status. A relative test catches those while still accepting
/// legitimately tiny-but-well-conditioned systems of any scale (a GMIN
/// conductance of `1e-12` against unit-scale stamps stays far above the
/// tolerance for any realistic matrix size).
///
/// # Errors
///
/// [`SpiceError::SingularMatrix`] when a pivot falls below the relative
/// tolerance, or when the solution contains non-finite entries.
///
/// # Panics
///
/// Panics if `a` is not square or `b` has the wrong length.
pub fn solve(a: Matrix, b: Vec<f64>) -> Result<Vec<f64>, SpiceError> {
    use crate::backend::{DenseLu, SolverBackend, Workspace};
    let n = a.n_rows();
    assert_eq!(a.n_cols(), n, "matrix must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut ws = Workspace::from_parts(a, b);
    DenseLu.solve_in_place(&mut ws)?;
    Ok(ws.take_solution())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let x = solve(a, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_general_system() {
        // A = [[2,1],[1,3]], b = [5, 10] -> x = [1, 3]
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 2.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 3.0);
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 0.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 0.0);
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_is_detected() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        assert_eq!(
            solve(a, vec![1.0, 2.0]).unwrap_err(),
            SpiceError::SingularMatrix
        );
    }

    #[test]
    fn scaled_near_singular_is_rejected_not_garbage() {
        // Rank-1 matrix scaled down to 1e-280: elimination leaves only
        // rounding dust in the (1,1) slot. The dust sits far above the old
        // absolute 1e-300 threshold, so the former code "solved" the system
        // and back-substitution divided by it, emitting ~1e280-magnitude
        // garbage with Ok status. The relative tolerance rejects it.
        let s = 1e-280;
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 0.1 * s);
        a.set(0, 1, 0.7 * s);
        a.set(1, 0, 0.03 * s);
        a.set(1, 1, 0.21 * s);
        assert_eq!(
            solve(a, vec![1.0 * s, 2.0 * s]).unwrap_err(),
            SpiceError::SingularMatrix
        );
    }

    #[test]
    fn solutions_are_always_finite_or_err() {
        // Sweep the scale across ~40 decades of rank-deficient systems: the
        // solver must never return Ok with a non-finite entry.
        for exp in [-290, -250, -100, 0, 100, 250] {
            let s = 10f64.powi(exp);
            let mut a = Matrix::zeros(3, 3);
            a.set(0, 0, 1.0 * s);
            a.set(0, 1, 2.0 * s);
            a.set(0, 2, 3.0 * s);
            a.set(1, 0, 2.0 * s);
            a.set(1, 1, 4.0 * s);
            a.set(1, 2, 6.0 * s);
            a.set(2, 0, 0.5 * s);
            a.set(2, 1, 1.0 * s);
            a.set(2, 2, 1.5 * s);
            match solve(a, vec![s, s, s]) {
                Ok(x) => {
                    assert!(
                        x.iter().all(|v| v.is_finite()),
                        "non-finite solution at scale 1e{exp}: {x:?}"
                    );
                }
                Err(e) => assert_eq!(e, SpiceError::SingularMatrix),
            }
        }
    }

    #[test]
    fn tiny_but_well_conditioned_systems_still_solve() {
        // A uniformly tiny diagonal system is perfectly conditioned; a
        // relative tolerance must accept it even though every pivot is far
        // below the old absolute floor's neighbourhood.
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            a.set(i, i, 1e-250);
        }
        let x = solve(a, vec![2e-250, 4e-250, 6e-250]).unwrap();
        for (i, expect) in [2.0, 4.0, 6.0].iter().enumerate() {
            assert!((x[i] - expect).abs() < 1e-9, "x = {x:?}");
        }
    }

    #[test]
    fn gmin_only_pivot_survives_relative_tolerance() {
        // A floating node held only by GMIN (1e-12) against unit-scale
        // voltage-source stamps is legitimate MNA structure, not singularity.
        let mut a = Matrix::zeros(3, 3);
        a.set(0, 0, 1e-3); // node 0: 1 kΩ to ground
        a.set(0, 2, 1.0); // vsrc current unknown
        a.set(1, 1, 1e-12); // node 1: GMIN only
        a.set(2, 0, 1.0); // vsrc row
        let x = solve(a, vec![0.0, 0.0, 1.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_zero_matrix_is_singular() {
        let a = Matrix::zeros(2, 2);
        assert_eq!(
            solve(a, vec![1.0, 1.0]).unwrap_err(),
            SpiceError::SingularMatrix
        );
    }

    #[test]
    fn residual_is_small_on_random_system() {
        use mss_units::rng::{Rng, Xoshiro256PlusPlus};
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        for n in [3usize, 8, 20] {
            let mut a = Matrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    a.set(r, c, rng.gen_range_f64(-1.0, 1.0));
                }
                // Diagonal dominance keeps it well-conditioned.
                a.add(r, r, n as f64);
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(-1.0, 1.0)).collect();
            let x = solve(a.clone(), b.clone()).unwrap();
            let ax = a.mul_vec(&x);
            for i in 0..n {
                assert!((ax[i] - b[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mul_vec_basic() {
        let mut a = Matrix::zeros(2, 3);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(0, 2, 3.0);
        a.set(1, 2, 4.0);
        let y = a.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![6.0, 4.0]);
    }

    #[test]
    fn clear_keeps_dimensions() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 5.0);
        a.clear();
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.n_rows(), 2);
    }
}
