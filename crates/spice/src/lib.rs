//! A compact SPICE-class circuit simulator for the GREAT MSS flow.
//!
//! The paper's circuit level (Sec. IV-A) runs template-generated netlists
//! through SPICE, measures delays/energies/currents with a Measurement
//! Descriptive Language (MDL) and parses the results into the VAET-STT cell
//! configuration. This crate is that engine:
//!
//! - [`netlist`] — programmatic netlist construction (R, C, V, I, level-1
//!   MOSFETs, MTJ devices from `mss-mtj`),
//! - [`parser`] — a SPICE-like text front end with engineering suffixes,
//! - [`template`] — `{param}` substitution for netlist/stimulus templates,
//! - [`analysis`] — DC operating point (Newton) and fixed-step transient
//!   (backward-Euler companion models),
//! - [`ac`] — small-signal frequency-domain analysis (Bode responses,
//!   corner frequencies) linearised at the DC operating point,
//! - [`mdl`] — measurement specs (delay, energy, avg/min/max/rms, final
//!   value) evaluated against transient results,
//! - [`solver`] — dense LU with partial pivoting (circuits here are tiny),
//! - [`backend`] — pluggable solver backends over a reusable workspace,
//! - [`batch`] — symbolic-once/numeric-many batched DC solves for
//!   same-structure Monte Carlo workloads, dispatched across `mss-exec`
//!   workers deterministically.
//!
//! # Example: RC step response
//!
//! ```
//! use mss_spice::netlist::Netlist;
//! use mss_spice::waveform::Waveform;
//! use mss_spice::analysis::{Transient, TransientOptions};
//!
//! # fn main() -> Result<(), mss_spice::SpiceError> {
//! let mut nl = Netlist::new();
//! nl.add_vsource("vin", "in", "0", Waveform::dc(1.0))?;
//! nl.add_resistor("r1", "in", "out", 1e3)?;
//! nl.add_capacitor("c1", "out", "0", 1e-12)?;
//! let result = Transient::new(&nl)?.run(&TransientOptions::new(1e-11, 10e-9))?;
//! let v_out = result.node_voltage("out")?;
//! // After 10 tau the output has settled to the input.
//! assert!((v_out.last().copied().unwrap() - 1.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod ac;
pub mod analysis;
pub mod backend;
pub mod batch;
mod error;
pub mod mdl;
pub mod mosfet;
pub mod mtjelem;
pub mod netlist;
pub mod parser;
pub mod solver;
pub mod template;
pub mod waveform;

pub use backend::{BackendKind, DenseLu, SolverBackend, Workspace};
pub use batch::{BatchDcResult, DcBatch};
pub use error::{RetryAttempt, SpiceError};
