//! Level-1 (Shichman–Hodges) MOSFET model.
//!
//! Quadratic long-channel equations with channel-length modulation — the
//! right fidelity for relative delay/energy extraction of small MRAM
//! peripheral cells. Model cards come from `mss-pdk` technology nodes.

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// A level-1 MOSFET model card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosModel {
    /// Polarity.
    pub polarity: MosPolarity,
    /// Threshold voltage magnitude in volts (positive for both polarities).
    pub vth: f64,
    /// Transconductance parameter k' = µ·C_ox in A/V².
    pub kp: f64,
    /// Channel-length modulation λ in 1/V.
    pub lambda: f64,
}

impl mss_pipe::StableHash for MosPolarity {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        h.write_u8(match self {
            MosPolarity::Nmos => 0,
            MosPolarity::Pmos => 1,
        });
    }
}

impl mss_pipe::StableHash for MosModel {
    fn stable_hash(&self, h: &mut mss_pipe::StableHasher) {
        self.polarity.stable_hash(h);
        h.write_f64(self.vth);
        h.write_f64(self.kp);
        h.write_f64(self.lambda);
    }
}

impl MosModel {
    /// A generic NMOS card (used by tests; real cards come from the PDK).
    pub fn generic_nmos() -> Self {
        Self {
            polarity: MosPolarity::Nmos,
            vth: 0.4,
            kp: 200e-6,
            lambda: 0.05,
        }
    }

    /// A generic PMOS card.
    pub fn generic_pmos() -> Self {
        Self {
            polarity: MosPolarity::Pmos,
            vth: 0.4,
            kp: 100e-6,
            lambda: 0.05,
        }
    }
}

/// Geometry of one transistor instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosGeometry {
    /// Gate width in metres.
    pub width: f64,
    /// Gate length in metres.
    pub length: f64,
}

/// Operating-point evaluation: drain current and small-signal conductances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosOperatingPoint {
    /// Drain current (positive into the drain for NMOS conduction).
    pub id: f64,
    /// Transconductance ∂I_D/∂V_GS.
    pub gm: f64,
    /// Output conductance ∂I_D/∂V_DS.
    pub gds: f64,
}

/// Evaluates the level-1 equations at terminal voltages `vgs`, `vds`
/// (already polarity-normalised to NMOS convention by the caller for PMOS).
fn eval_nmos(beta: f64, vth: f64, lambda: f64, vgs: f64, vds: f64) -> MosOperatingPoint {
    let vov = vgs - vth;
    if vov <= 0.0 {
        // Cutoff: tiny leakage conductance keeps Newton well-posed.
        return MosOperatingPoint {
            id: 0.0,
            gm: 0.0,
            gds: 1e-12,
        };
    }
    if vds < vov {
        // Triode.
        let id = beta * (vov * vds - 0.5 * vds * vds) * (1.0 + lambda * vds);
        let gm = beta * vds * (1.0 + lambda * vds);
        let gds =
            beta * ((vov - vds) * (1.0 + lambda * vds) + lambda * (vov * vds - 0.5 * vds * vds));
        MosOperatingPoint {
            id,
            gm,
            gds: gds.max(1e-12),
        }
    } else {
        // Saturation.
        let id = 0.5 * beta * vov * vov * (1.0 + lambda * vds);
        let gm = beta * vov * (1.0 + lambda * vds);
        let gds = 0.5 * beta * vov * vov * lambda;
        MosOperatingPoint {
            id,
            gm,
            gds: gds.max(1e-12),
        }
    }
}

impl MosModel {
    /// Evaluates the drain current and derivatives at gate-source and
    /// drain-source voltages given in circuit polarity (PMOS voltages are
    /// negative in normal operation).
    ///
    /// The returned `id` is the current flowing **drain → source** through
    /// the channel in circuit polarity: positive for a conducting NMOS with
    /// `vds > 0`, negative for a conducting PMOS with `vds < 0`.
    pub fn evaluate(&self, geom: &MosGeometry, vgs: f64, vds: f64) -> MosOperatingPoint {
        let beta = self.kp * geom.width / geom.length;
        match self.polarity {
            MosPolarity::Nmos => {
                if vds >= 0.0 {
                    eval_nmos(beta, self.vth, self.lambda, vgs, vds)
                } else {
                    // Source and drain swap roles.
                    let op = eval_nmos(beta, self.vth, self.lambda, vgs - vds, -vds);
                    MosOperatingPoint {
                        id: -op.id,
                        gm: op.gm,
                        gds: op.gds + op.gm,
                    }
                }
            }
            MosPolarity::Pmos => {
                // Mirror into NMOS space: vgs' = -vgs, vds' = -vds.
                let inner = MosModel {
                    polarity: MosPolarity::Nmos,
                    ..*self
                };
                let op = inner.evaluate(geom, -vgs, -vds);
                MosOperatingPoint {
                    id: -op.id,
                    gm: op.gm,
                    gds: op.gds,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> MosGeometry {
        MosGeometry {
            width: 1e-6,
            length: 100e-9,
        }
    }

    #[test]
    fn cutoff_has_no_current() {
        let m = MosModel::generic_nmos();
        let op = m.evaluate(&geom(), 0.2, 1.0);
        assert_eq!(op.id, 0.0);
        assert!(op.gds > 0.0); // leakage conductance for Newton
    }

    #[test]
    fn saturation_current_is_quadratic_in_vov() {
        let m = MosModel {
            lambda: 0.0,
            ..MosModel::generic_nmos()
        };
        let i1 = m.evaluate(&geom(), 0.9, 1.2).id; // vov = 0.5
        let i2 = m.evaluate(&geom(), 1.4, 1.2).id; // vov = 1.0
        assert!((i2 / i1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn triode_to_saturation_is_continuous() {
        let m = MosModel::generic_nmos();
        let vov = 0.5;
        let below = m.evaluate(&geom(), m.vth + vov, vov - 1e-9).id;
        let above = m.evaluate(&geom(), m.vth + vov, vov + 1e-9).id;
        assert!((below - above).abs() < 1e-6 * above.abs().max(1e-12));
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let n = MosModel::generic_nmos();
        let p = MosModel {
            polarity: MosPolarity::Pmos,
            ..n
        };
        let opn = n.evaluate(&geom(), 1.0, 0.8);
        let opp = p.evaluate(&geom(), -1.0, -0.8);
        assert!((opn.id + opp.id).abs() < 1e-15);
        assert!((opn.gm - opp.gm).abs() < 1e-15);
    }

    #[test]
    fn reverse_vds_flips_current_sign() {
        let m = MosModel::generic_nmos();
        // Symmetric device: with gate well above both, forward/reverse match.
        let fwd = m.evaluate(&geom(), 1.2, 0.3).id;
        let rev = m.evaluate(&geom(), 1.2 - 0.3, -0.3).id; // same channel, swapped
        assert!(fwd > 0.0);
        assert!(rev < 0.0);
        assert!((fwd + rev).abs() < 1e-9 * fwd);
    }

    #[test]
    fn wider_device_conducts_more() {
        let m = MosModel::generic_nmos();
        let narrow = m.evaluate(&geom(), 1.0, 1.0).id;
        let wide = m
            .evaluate(
                &MosGeometry {
                    width: 2e-6,
                    length: 100e-9,
                },
                1.0,
                1.0,
            )
            .id;
        assert!((wide / narrow - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gm_matches_finite_difference() {
        let m = MosModel::generic_nmos();
        let g = geom();
        let dv = 1e-6;
        for (vgs, vds) in [(0.8, 1.0), (1.2, 0.2), (0.9, 0.5)] {
            let op = m.evaluate(&g, vgs, vds);
            let fd =
                (m.evaluate(&g, vgs + dv, vds).id - m.evaluate(&g, vgs - dv, vds).id) / (2.0 * dv);
            assert!(
                (op.gm - fd).abs() < 1e-4 * fd.abs().max(1e-9),
                "gm {} vs fd {} at ({vgs},{vds})",
                op.gm,
                fd
            );
        }
    }

    #[test]
    fn gds_matches_finite_difference() {
        let m = MosModel::generic_nmos();
        let g = geom();
        let dv = 1e-6;
        for (vgs, vds) in [(0.8, 1.0), (1.2, 0.2)] {
            let op = m.evaluate(&g, vgs, vds);
            let fd =
                (m.evaluate(&g, vgs, vds + dv).id - m.evaluate(&g, vgs, vds - dv).id) / (2.0 * dv);
            assert!(
                (op.gds - fd).abs() < 1e-3 * fd.abs().max(1e-9),
                "gds {} vs fd {}",
                op.gds,
                fd
            );
        }
    }
}
