//! The MTJ as a circuit element: a state-dependent nonlinear resistor whose
//! state evolves with the current history.
//!
//! During transient analysis the element behaves, within a time step, as a
//! voltage-dependent resistance `R(state, v)` (the TMR bias roll-off makes
//! the AP branch nonlinear). Between accepted time steps the internal state
//! integrates switching progress using the behavioural model from
//! `mss-mtj`: at overdrive `I > I_c0` the polar angle grows exponentially,
//! so progress accumulates as `dt / t_switch(I)` and the junction flips when
//! it reaches 1. Positive terminal current (from node `plus` into `minus`)
//! writes the **parallel** state, matching the LLG sign convention.

use mss_mtj::resistance::{MtjState, ResistanceModel};
use mss_mtj::switching::SwitchingModel;
use mss_mtj::MssStack;

/// MTJ circuit element state and models.
#[derive(Debug, Clone, PartialEq)]
pub struct MtjElement {
    resistance: ResistanceModel,
    switching: SwitchingModel,
    state: MtjState,
    /// Switching progress in [0, 1): fraction of the incubation+precession
    /// completed toward the *opposite* state.
    progress: f64,
}

impl MtjElement {
    /// Creates the element from a stack description and an initial state.
    pub fn new(stack: &MssStack, initial: MtjState) -> Self {
        Self {
            resistance: ResistanceModel::new(stack),
            switching: SwitchingModel::new(stack),
            state: initial,
            progress: 0.0,
        }
    }

    /// Creates the element with an explicit switching evaluator in place of
    /// the stack's STT model — the hook the three-terminal SOT cell uses to
    /// drive the same progress integrator with `(Δ, I_c0,SOT, τ_SOT)`
    /// against the heavy-metal channel current while the junction
    /// resistance stays the stack's TMR model.
    pub fn with_switching(stack: &MssStack, initial: MtjState, switching: SwitchingModel) -> Self {
        Self {
            resistance: ResistanceModel::new(stack),
            switching,
            state: initial,
            progress: 0.0,
        }
    }

    /// Current memory state.
    pub fn state(&self) -> MtjState {
        self.state
    }

    /// Switching progress toward the opposite state, in `[0, 1)`.
    pub fn progress(&self) -> f64 {
        self.progress
    }

    /// Resistance at terminal voltage `v` (volts, plus minus minus).
    pub fn resistance(&self, v: f64) -> f64 {
        self.resistance.state_resistance(self.state, v)
    }

    /// Small-signal conductance and equivalent current for Newton stamping:
    /// returns `(g, i_eq)` such that the element is modelled as
    /// `i = g·v + i_eq` around the last iterate `v0`.
    ///
    /// Linearising `i(v) = v / R(v)` by secant through the origin is exact
    /// here because `R` varies slowly with `v`; we use the chord conductance
    /// which keeps Newton stable.
    pub fn linearize(&self, v0: f64) -> (f64, f64) {
        let g = 1.0 / self.resistance(v0);
        (g, 0.0)
    }

    /// Advances the internal state by `dt` seconds with terminal current `i`
    /// (amperes, positive writing parallel). Returns `true` when the
    /// junction flipped during this step.
    pub fn advance(&mut self, i: f64, dt: f64) -> bool {
        let target = if i > 0.0 {
            MtjState::Parallel
        } else if i < 0.0 {
            MtjState::Antiparallel
        } else {
            self.decay_progress(dt);
            return false;
        };
        if target == self.state {
            // Current reinforces the present state: progress resets quickly.
            self.decay_progress(dt);
            return false;
        }
        let overdrive = i.abs() / self.switching.critical_current();
        if overdrive <= 1.0 {
            // Subcritical: deterministic transient ignores thermal switching.
            self.decay_progress(dt);
            return false;
        }
        match self.switching.mean_switching_time(i.abs()) {
            Ok(t_sw) if t_sw > 0.0 => {
                self.progress += dt / t_sw;
                if self.progress >= 1.0 {
                    self.state = target;
                    self.progress = 0.0;
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    fn decay_progress(&mut self, dt: f64) {
        // Incubation decays on the precession time scale when unsupported.
        let tau = self.switching.tau_d();
        self.progress *= (-dt / tau).exp();
        if self.progress < 1e-12 {
            self.progress = 0.0;
        }
    }

    /// Critical current of the junction in amperes.
    pub fn critical_current(&self) -> f64 {
        self.switching.critical_current()
    }

    /// Forces the state (test setup / initial conditions).
    pub fn set_state(&mut self, state: MtjState) {
        self.state = state;
        self.progress = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn element(state: MtjState) -> MtjElement {
        MtjElement::new(&MssStack::builder().build().unwrap(), state)
    }

    #[test]
    fn resistance_matches_state() {
        let e = element(MtjState::Parallel);
        let stack = MssStack::builder().build().unwrap();
        assert!((e.resistance(0.0) - stack.resistance_parallel()).abs() < 1.0);
        let e2 = element(MtjState::Antiparallel);
        assert!(e2.resistance(0.0) > e.resistance(0.0));
    }

    #[test]
    fn overdrive_current_switches_after_mean_time() {
        let mut e = element(MtjState::Antiparallel);
        let i = 2.5 * e.critical_current(); // positive -> parallel
        let t_sw = SwitchingModel::new(&MssStack::builder().build().unwrap())
            .mean_switching_time(i)
            .unwrap();
        let dt = t_sw / 100.0;
        let mut flipped_at = None;
        for k in 0..300 {
            if e.advance(i, dt) {
                flipped_at = Some(k as f64 * dt);
                break;
            }
        }
        let t = flipped_at.expect("never switched");
        assert!(
            (t / t_sw - 1.0).abs() < 0.05,
            "switched at {t}, expected {t_sw}"
        );
        assert_eq!(e.state(), MtjState::Parallel);
    }

    #[test]
    fn subcritical_current_never_switches() {
        let mut e = element(MtjState::Antiparallel);
        let i = 0.9 * e.critical_current();
        for _ in 0..10_000 {
            assert!(!e.advance(i, 1e-10));
        }
        assert_eq!(e.state(), MtjState::Antiparallel);
    }

    #[test]
    fn reinforcing_current_does_nothing() {
        let mut e = element(MtjState::Parallel);
        let i = 3.0 * e.critical_current(); // positive writes parallel: already there
        for _ in 0..1000 {
            assert!(!e.advance(i, 1e-10));
        }
        assert_eq!(e.state(), MtjState::Parallel);
    }

    #[test]
    fn negative_current_writes_antiparallel() {
        let mut e = element(MtjState::Parallel);
        let i = -2.5 * e.critical_current();
        let mut flipped = false;
        for _ in 0..100_000 {
            if e.advance(i, 1e-11) {
                flipped = true;
                break;
            }
        }
        assert!(flipped);
        assert_eq!(e.state(), MtjState::Antiparallel);
    }

    #[test]
    fn interrupted_pulse_decays_progress() {
        let mut e = element(MtjState::Antiparallel);
        let i = 2.5 * e.critical_current();
        // Half the switching time of drive...
        let t_sw = SwitchingModel::new(&MssStack::builder().build().unwrap())
            .mean_switching_time(i)
            .unwrap();
        for _ in 0..50 {
            e.advance(i, t_sw / 100.0);
        }
        let mid = e.progress();
        assert!(mid > 0.4 && mid < 0.6);
        // ...then a long idle gap: progress must decay away.
        e.advance(0.0, 100.0 * t_sw);
        assert!(e.progress() < 1e-3);
    }

    #[test]
    fn linearize_is_chord_conductance() {
        let e = element(MtjState::Antiparallel);
        let (g, ieq) = e.linearize(0.3);
        assert_eq!(ieq, 0.0);
        assert!((g - 1.0 / e.resistance(0.3)).abs() < 1e-15);
    }

    #[test]
    fn ap_resistance_drops_with_bias() {
        let e = element(MtjState::Antiparallel);
        assert!(e.resistance(0.5) < e.resistance(0.0));
    }
}
