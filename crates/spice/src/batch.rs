//! Batched same-structure DC solves: symbolic analysis once, numeric
//! solves for many parameter vectors.
//!
//! Monte Carlo and design-space workloads solve thousands of *identically
//! structured* MNA systems that differ only in element values. The one-shot
//! path ([`crate::analysis::dc_operating_point`]) rebuilds the symbolic
//! structure, reallocates the matrix and packages a name-indexed solution
//! for every sample. [`DcBatch`] splits that work:
//!
//! * **symbolic once** — [`DcBatch::new`] computes the MNA index structure
//!   (node→row map, voltage-source rows, nonlinearity flag) a single time
//!   per netlist topology;
//! * **numeric many** — [`DcBatch::run`] applies a caller-supplied value
//!   edit per sample and re-solves against the shared structure, with one
//!   reusable [`Workspace`] per worker and
//!   solutions written to a flat, SoA sample-major buffer.
//!
//! **Determinism.** Samples are dispatched across `mss-exec` workers in
//! fixed-size chunks and merged in chunk order; each sample's arithmetic is
//! the exact code path of the single-solve route (same Newton loop, same
//! retry ladder, same dense-LU kernel), so results are bit-identical to
//! per-sample [`dc_operating_point_with`](crate::analysis::dc_operating_point_with)
//! calls at any `MSS_THREADS` value. Per-sample randomness belongs to the
//! caller: derive it from the *sample index* (RNG stream splitting), never
//! from the worker.

use mss_exec::supervise::CancelToken;
use mss_exec::{par_chunks_stats, ParallelConfig};

use crate::analysis::{Mna, SolverOptions};
use crate::backend::Workspace;
use crate::netlist::{Element, Netlist};
use crate::SpiceError;

/// A reusable batched DC solver for one netlist topology.
///
/// ```
/// use mss_spice::batch::DcBatch;
/// use mss_spice::netlist::Netlist;
/// use mss_spice::waveform::Waveform;
///
/// # fn main() -> Result<(), mss_spice::SpiceError> {
/// let mut nl = Netlist::new();
/// nl.add_vsource("v1", "in", "0", Waveform::dc(1.0))?;
/// nl.add_resistor("r1", "in", "mid", 1e3)?;
/// nl.add_resistor("r2", "mid", "0", 1e3)?;
/// let r2 = nl.element_index("r2")?;
/// let batch = DcBatch::new(&nl);
/// // 4 samples sweeping the lower divider resistor.
/// let result = batch.run(4, |i, nl| nl.set_resistance(r2, 1e3 * (i + 1) as f64));
/// assert_eq!(result.failure_count(), 0);
/// assert!((result.node_voltage(0, "mid")? - 0.5).abs() < 1e-9);
/// assert!((result.node_voltage(3, "mid")? - 0.8).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub struct DcBatch {
    base: Netlist,
    mna: Mna,
    dim: usize,
    node_names: Vec<String>,
    vsource_names: Vec<String>,
    solver: SolverOptions,
}

impl DcBatch {
    /// Performs the symbolic analysis of `netlist` once; the returned batch
    /// solves any number of value-edited copies against that structure,
    /// with the default convergence policy.
    pub fn new(netlist: &Netlist) -> Self {
        let mna = Mna::new(netlist);
        let dim = mna.dim();
        let node_names = (0..netlist.node_count())
            .map(|i| netlist.node_name(crate::netlist::NodeId(i)).to_string())
            .collect();
        let vsource_names = netlist
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::VSource { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        Self {
            base: netlist.clone(),
            mna,
            dim,
            node_names,
            vsource_names,
            solver: SolverOptions::default(),
        }
    }

    /// Returns the batch with an explicit convergence policy (applied to
    /// every sample).
    pub fn with_solver(mut self, solver: SolverOptions) -> Self {
        self.solver = solver;
        self
    }

    /// System dimension (node unknowns + voltage-source branch currents).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Solves `samples` parameter vectors with the environment thread
    /// policy (`MSS_THREADS`).
    ///
    /// `edit(i, netlist)` mutates element *values* for sample `i` (via
    /// [`Netlist::set_resistance`], [`Netlist::set_source_wave`],
    /// [`Netlist::set_mtj_state`], …). Two contracts:
    ///
    /// * the edit must not change the netlist *structure* (nodes or
    ///   elements added/removed) — violations are reported as a per-sample
    ///   [`SpiceError::InvalidElement`], never a panic;
    /// * the edit must set **every** varying value each sample — workers
    ///   reuse one netlist clone across their chunk, so an unset value
    ///   carries over from the previous sample of that chunk.
    pub fn run<F>(&self, samples: usize, edit: F) -> BatchDcResult
    where
        F: Fn(usize, &mut Netlist) -> Result<(), SpiceError> + Sync,
    {
        self.run_with(samples, &ParallelConfig::from_env(), edit)
    }

    /// [`run`](Self::run) with an explicit thread/chunk policy. Results are
    /// bit-identical for any policy.
    pub fn run_with<F>(&self, samples: usize, cfg: &ParallelConfig, edit: F) -> BatchDcResult
    where
        F: Fn(usize, &mut Netlist) -> Result<(), SpiceError> + Sync,
    {
        self.run_inner(samples, cfg, None, edit)
    }

    /// [`run_with`](Self::run_with) with a cooperative cancellation token
    /// checked at every chunk boundary. A tripped token marks the remaining
    /// samples of each chunk as failed with [`SpiceError::Cancelled`]; the
    /// samples already solved keep their (bit-exact) solutions.
    pub fn run_cancellable<F>(
        &self,
        samples: usize,
        cfg: &ParallelConfig,
        token: &CancelToken,
        edit: F,
    ) -> BatchDcResult
    where
        F: Fn(usize, &mut Netlist) -> Result<(), SpiceError> + Sync,
    {
        self.run_inner(samples, cfg, Some(token), edit)
    }

    fn run_inner<F>(
        &self,
        samples: usize,
        cfg: &ParallelConfig,
        token: Option<&CancelToken>,
        edit: F,
    ) -> BatchDcResult
    where
        F: Fn(usize, &mut Netlist) -> Result<(), SpiceError> + Sync,
    {
        let _span = mss_obs::span("spice.batch.dc");
        let x0 = vec![0.0; self.dim];
        // Chunk-boundary progress on the opt-in telemetry bus; the chunk
        // grid is deterministic so `total` is thread-count independent.
        let events_on = mss_obs::events::bus_enabled();
        let total_chunks = samples.div_ceil(cfg.chunk.max(1)) as u64;
        let chunks_done = std::sync::atomic::AtomicU64::new(0);
        let note_chunk_done = || {
            if events_on {
                let done = chunks_done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                mss_obs::events::publish(mss_obs::events::EventPayload::Progress {
                    sweep: "spice.dc_batch".to_string(),
                    done,
                    total: total_chunks,
                    retried: 0,
                    budget_seconds: token
                        .and_then(|t| t.budget_remaining())
                        .map(|d| d.as_secs_f64()),
                });
            }
        };
        let (chunks, stats) = par_chunks_stats(cfg, samples, |_chunk, range| {
            let _span = mss_obs::span("spice.batch.chunk");
            // Cancellation checkpoint: a tripped token fails the whole
            // chunk cheaply (the SoA stays rectangular, slots are dead).
            if token.is_some_and(|t| t.is_cancelled()) {
                let solutions = vec![0.0; range.len() * self.dim];
                let failures = range.map(|i| (i, SpiceError::Cancelled)).collect();
                note_chunk_done();
                return (solutions, failures);
            }
            let mut nl = self.base.clone();
            let mut ws = Workspace::new();
            let mut solutions = Vec::with_capacity(range.len() * self.dim);
            let mut failures = Vec::new();
            for i in range {
                match self.solve_one(i, &mut nl, &mut ws, &x0, &edit) {
                    Ok(x) => solutions.extend_from_slice(&x),
                    Err(e) => {
                        // Keep the SoA layout rectangular; the slot is
                        // dead (flagged in `failures`).
                        solutions.resize(solutions.len() + self.dim, 0.0);
                        failures.push((i, e));
                        // The netlist may be structurally corrupted by a
                        // bad edit; restart the chunk from a clean base.
                        nl = self.base.clone();
                    }
                }
            }
            note_chunk_done();
            (solutions, failures)
        });
        stats.record("spice.batch");

        let mut solutions = Vec::with_capacity(samples * self.dim);
        let mut failures = Vec::new();
        for (sols, fails) in chunks {
            solutions.extend_from_slice(&sols);
            failures.extend(fails);
        }
        mss_obs::counter_add("spice.batch.runs", 1);
        mss_obs::counter_add("spice.batch.solves", samples as u64);
        mss_obs::counter_add("spice.batch.failed", failures.len() as u64);
        BatchDcResult {
            samples,
            dim: self.dim,
            node_names: self.node_names.clone(),
            vsource_names: self.vsource_names.clone(),
            solutions,
            failures,
        }
    }

    fn solve_one<F>(
        &self,
        i: usize,
        nl: &mut Netlist,
        ws: &mut Workspace,
        x0: &[f64],
        edit: &F,
    ) -> Result<Vec<f64>, SpiceError>
    where
        F: Fn(usize, &mut Netlist) -> Result<(), SpiceError> + Sync,
    {
        edit(i, nl)?;
        if nl.node_count() != self.node_names.len()
            || nl.elements().len() != self.base.elements().len()
        {
            return Err(SpiceError::InvalidElement {
                name: "<batch edit>".to_string(),
                reason: format!("edit for sample {i} changed the netlist structure"),
            });
        }
        self.mna
            .solve_static(nl, 0.0, x0, None, None, "batched dc", &self.solver, ws)
    }
}

/// Solutions of a [`DcBatch::run`]: a flat sample-major SoA buffer plus a
/// sparse failure list (the common case is zero failures, so per-sample
/// `Result` packaging is avoided).
#[derive(Debug, Clone)]
pub struct BatchDcResult {
    samples: usize,
    dim: usize,
    node_names: Vec<String>,
    vsource_names: Vec<String>,
    solutions: Vec<f64>,
    failures: Vec<(usize, SpiceError)>,
}

impl BatchDcResult {
    /// Number of samples solved.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// System dimension per sample.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of failed samples.
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }

    /// Failed samples as `(sample index, error)`, ascending by index.
    pub fn failures(&self) -> &[(usize, SpiceError)] {
        &self.failures
    }

    /// The raw MNA solution row of `sample`, or the error that killed it.
    ///
    /// # Errors
    ///
    /// The sample's own solve error.
    ///
    /// # Panics
    ///
    /// Panics if `sample >= samples()`.
    pub fn outcome(&self, sample: usize) -> Result<&[f64], &SpiceError> {
        assert!(sample < self.samples, "sample {sample} out of range");
        match self.failures.binary_search_by_key(&sample, |&(i, _)| i) {
            Ok(pos) => Err(&self.failures[pos].1),
            Err(_) => Ok(&self.solutions[sample * self.dim..(sample + 1) * self.dim]),
        }
    }

    /// Voltage of a named node in one sample.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] for an unknown name; the sample's solve
    /// error when the sample failed.
    ///
    /// # Panics
    ///
    /// Panics if `sample >= samples()`.
    pub fn node_voltage(&self, sample: usize, name: &str) -> Result<f64, SpiceError> {
        let key = name.to_ascii_lowercase();
        let key = if key == "gnd" { "0".to_string() } else { key };
        let idx = self
            .node_names
            .iter()
            .position(|n| *n == key)
            .ok_or(SpiceError::UnknownNode(key))?;
        let x = self.outcome(sample).map_err(Clone::clone)?;
        Ok(if idx == 0 { 0.0 } else { x[idx - 1] })
    }

    /// Branch current of a named voltage source in one sample (MNA
    /// convention: a source delivering power reads negative).
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] for an unknown source; the sample's
    /// solve error when the sample failed.
    ///
    /// # Panics
    ///
    /// Panics if `sample >= samples()`.
    pub fn source_current(&self, sample: usize, name: &str) -> Result<f64, SpiceError> {
        let slot = self
            .vsource_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| SpiceError::UnknownNode(name.to_string()))?;
        let x = self.outcome(sample).map_err(Clone::clone)?;
        Ok(x[self.dim - self.vsource_names.len() + slot])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dc_operating_point_with;
    use crate::waveform::Waveform;

    fn divider() -> Netlist {
        let mut nl = Netlist::new();
        nl.add_vsource("v1", "in", "0", Waveform::dc(2.0)).unwrap();
        nl.add_resistor("r1", "in", "mid", 1e3).unwrap();
        nl.add_resistor("r2", "mid", "0", 1e3).unwrap();
        nl
    }

    #[test]
    fn batch_matches_single_solves_bitwise() {
        let nl = divider();
        let r2 = nl.element_index("r2").unwrap();
        let batch = DcBatch::new(&nl);
        let n = 37; // not a multiple of any chunk size
        let ohms = |i: usize| 500.0 + 250.0 * i as f64;
        let result = batch.run_with(n, &ParallelConfig::serial(), |i, nl| {
            nl.set_resistance(r2, ohms(i))
        });
        assert_eq!(result.failure_count(), 0);
        for i in 0..n {
            let mut single = divider();
            single.set_resistance(r2, ohms(i)).unwrap();
            let dc = dc_operating_point_with(&single, &SolverOptions::default()).unwrap();
            // Bitwise, not approximate: same arithmetic path.
            assert_eq!(
                result.node_voltage(i, "mid").unwrap(),
                dc.node_voltage("mid").unwrap(),
                "sample {i}"
            );
            assert_eq!(
                result.source_current(i, "v1").unwrap(),
                dc.source_current("v1").unwrap(),
                "sample {i}"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let nl = divider();
        let r2 = nl.element_index("r2").unwrap();
        let batch = DcBatch::new(&nl);
        let run = |threads: usize, chunk: usize| {
            let cfg = ParallelConfig::serial()
                .with_threads(threads)
                .with_chunk(chunk);
            batch.run_with(100, &cfg, |i, nl| nl.set_resistance(r2, 100.0 + i as f64))
        };
        let base = run(1, 256);
        for (threads, chunk) in [(2, 7), (4, 16), (8, 3)] {
            let other = run(threads, chunk);
            assert_eq!(base.solutions, other.solutions, "{threads} threads");
            assert_eq!(base.failures, other.failures);
        }
    }

    #[test]
    fn three_terminal_sot_netlist_batches_bitwise() {
        use mss_mtj::mechanism::SotParams;
        use mss_mtj::resistance::MtjState;
        use mss_mtj::MssStack;

        // Read-path divider around a three-terminal SOT cell: series
        // resistor into the junction's read terminal, channel grounded at
        // the write terminal. Batch over the MTJ state and the series
        // resistance; every sample must match the one-shot DC solve bitwise.
        let stack = MssStack::builder().build().unwrap();
        let params = SotParams::default();
        let build = || {
            let mut nl = Netlist::new();
            nl.add_vsource("vr", "bl", "0", Waveform::dc(0.1)).unwrap();
            nl.add_resistor("rs", "bl", "rd", 3.0e3).unwrap();
            nl.add_mtj_sot("x1", "rd", "sh", "0", &stack, &params, MtjState::Parallel)
                .unwrap();
            nl
        };
        let nl = build();
        let rs = nl.element_index("rs").unwrap();
        let x1 = nl.element_index("x1").unwrap();
        let state = |i: usize| {
            if i.is_multiple_of(2) {
                MtjState::Parallel
            } else {
                MtjState::Antiparallel
            }
        };
        let ohms = |i: usize| 2.0e3 + 500.0 * i as f64;
        let batch = DcBatch::new(&nl);
        let cfg = ParallelConfig::serial().with_threads(2).with_chunk(3);
        let result = batch.run_with(8, &cfg, |i, nl| {
            nl.set_mtj_state(x1, state(i))?;
            nl.set_resistance(rs, ohms(i))
        });
        assert_eq!(result.failure_count(), 0);
        for i in 0..8 {
            let mut single = build();
            single.set_mtj_state(x1, state(i)).unwrap();
            single.set_resistance(rs, ohms(i)).unwrap();
            let dc = dc_operating_point_with(&single, &SolverOptions::default()).unwrap();
            assert_eq!(
                result.node_voltage(i, "rd").unwrap(),
                dc.node_voltage("rd").unwrap(),
                "sample {i}"
            );
        }
        // AP junction divides higher than P at the read tap.
        assert!(result.node_voltage(1, "rd").unwrap() > result.node_voltage(0, "rd").unwrap());
    }

    #[test]
    fn cancelled_token_fails_remaining_chunks_not_the_batch() {
        let nl = divider();
        let r2 = nl.element_index("r2").unwrap();
        let batch = DcBatch::new(&nl);
        let token = CancelToken::new();
        token.cancel();
        let result = batch.run_cancellable(10, &ParallelConfig::serial(), &token, |i, nl| {
            nl.set_resistance(r2, 100.0 + i as f64)
        });
        assert_eq!(result.failure_count(), 10);
        for i in 0..10 {
            assert!(matches!(result.outcome(i), Err(SpiceError::Cancelled)));
        }
        // A live token is transparent: same bits as the plain path.
        let live = CancelToken::new();
        let a = batch.run_cancellable(10, &ParallelConfig::serial(), &live, |i, nl| {
            nl.set_resistance(r2, 100.0 + i as f64)
        });
        let b = batch.run_with(10, &ParallelConfig::serial(), |i, nl| {
            nl.set_resistance(r2, 100.0 + i as f64)
        });
        assert_eq!(a.solutions, b.solutions);
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn structural_edits_fail_the_sample_not_the_batch() {
        let nl = divider();
        let r2 = nl.element_index("r2").unwrap();
        let batch = DcBatch::new(&nl);
        let result = batch.run_with(5, &ParallelConfig::serial(), |i, nl| {
            if i == 2 {
                nl.add_resistor("intruder", "mid", "0", 50.0)?;
            }
            nl.set_resistance(r2, 1e3)
        });
        assert_eq!(result.failure_count(), 1);
        assert_eq!(result.failures()[0].0, 2);
        assert!(matches!(
            result.outcome(2),
            Err(SpiceError::InvalidElement { .. })
        ));
        // Neighbours are untouched by the corrupted sample.
        for i in [0, 1, 3, 4] {
            assert!((result.node_voltage(i, "mid").unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn per_sample_errors_are_classified() {
        // An r2 of NaN ohms is rejected by the setter itself.
        let nl = divider();
        let r2 = nl.element_index("r2").unwrap();
        let batch = DcBatch::new(&nl);
        let result = batch.run_with(3, &ParallelConfig::serial(), |i, nl| {
            nl.set_resistance(r2, if i == 1 { f64::NAN } else { 1e3 })
        });
        assert_eq!(result.failure_count(), 1);
        assert!(matches!(
            result.outcome(1),
            Err(SpiceError::InvalidElement { .. })
        ));
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = DcBatch::new(&divider());
        let result = batch.run_with(0, &ParallelConfig::serial(), |_, _| Ok(()));
        assert_eq!(result.samples(), 0);
        assert_eq!(result.failure_count(), 0);
    }

    #[test]
    fn unknown_probe_names_error() {
        let batch = DcBatch::new(&divider());
        let result = batch.run_with(1, &ParallelConfig::serial(), |_, _| Ok(()));
        assert!(matches!(
            result.node_voltage(0, "zz"),
            Err(SpiceError::UnknownNode(_))
        ));
        assert!(matches!(
            result.source_current(0, "vxx"),
            Err(SpiceError::UnknownNode(_))
        ));
        // Ground reads as exactly zero under both aliases.
        assert_eq!(result.node_voltage(0, "0").unwrap(), 0.0);
        assert_eq!(result.node_voltage(0, "gnd").unwrap(), 0.0);
    }
}
