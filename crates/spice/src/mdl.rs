//! Measurement Descriptive Language (MDL): extract cell-level parameters
//! from transient waveforms.
//!
//! The paper's flow creates "a template file for the netlist, stimulus and
//! Measurement Descriptive Language (MDL)", runs SPICE, and parses the
//! output measurement file. [`Measurement`] is the spec, a
//! [`MeasurementSet`] evaluates a batch against a
//! [`crate::analysis::TransientResult`], and
//! [`Report`] is the measurement file — it serialises to the `name = value`
//! text the downstream "file parser" stage consumes and parses back.

use std::collections::BTreeMap;

use crate::analysis::TransientResult;
use crate::SpiceError;

/// What signal a measurement probes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Probe {
    /// Voltage of a named node.
    NodeVoltage(String),
    /// Branch current of a named voltage source (MNA sign convention).
    SourceCurrent(String),
    /// State trace of a named MTJ (`+1` parallel, `-1` antiparallel).
    MtjState(String),
}

impl Probe {
    /// Fetches the probed waveform from a transient result.
    ///
    /// # Errors
    ///
    /// Unknown probe targets surface as [`SpiceError::UnknownNode`].
    pub fn signal<'a>(&self, result: &'a TransientResult) -> Result<&'a [f64], SpiceError> {
        match self {
            Probe::NodeVoltage(n) => result.node_voltage(n),
            Probe::SourceCurrent(n) => result.source_current(n),
            Probe::MtjState(n) => result.mtj_state(n),
        }
    }
}

/// Crossing direction for threshold-based measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Low-to-high crossing.
    Rise,
    /// High-to-low crossing.
    Fall,
    /// Either direction.
    Either,
}

/// One measurement specification.
#[derive(Debug, Clone, PartialEq)]
pub enum Measurement {
    /// Time from a trigger crossing to a target crossing (propagation delay).
    Delay {
        /// Report key.
        name: String,
        /// Trigger signal.
        trig: Probe,
        /// Trigger threshold.
        trig_value: f64,
        /// Trigger direction.
        trig_edge: Edge,
        /// Target signal.
        targ: Probe,
        /// Target threshold.
        targ_value: f64,
        /// Target direction.
        targ_edge: Edge,
    },
    /// Energy delivered by a voltage source over a window:
    /// `∫ v(t)·(−i(t)) dt` (positive when the source powers the circuit).
    Energy {
        /// Report key.
        name: String,
        /// Voltage source name.
        source: String,
        /// Window start, seconds.
        from: f64,
        /// Window end, seconds.
        to: f64,
    },
    /// Time-average of a signal over a window.
    Average {
        /// Report key.
        name: String,
        /// Probed signal.
        probe: Probe,
        /// Window start, seconds.
        from: f64,
        /// Window end, seconds.
        to: f64,
    },
    /// Minimum over a window.
    Minimum {
        /// Report key.
        name: String,
        /// Probed signal.
        probe: Probe,
        /// Window start, seconds.
        from: f64,
        /// Window end, seconds.
        to: f64,
    },
    /// Maximum over a window.
    Maximum {
        /// Report key.
        name: String,
        /// Probed signal.
        probe: Probe,
        /// Window start, seconds.
        from: f64,
        /// Window end, seconds.
        to: f64,
    },
    /// RMS over a window.
    Rms {
        /// Report key.
        name: String,
        /// Probed signal.
        probe: Probe,
        /// Window start, seconds.
        from: f64,
        /// Window end, seconds.
        to: f64,
    },
    /// The signal value at the final time point.
    FinalValue {
        /// Report key.
        name: String,
        /// Probed signal.
        probe: Probe,
    },
    /// Time of the n-th threshold crossing.
    CrossTime {
        /// Report key.
        name: String,
        /// Probed signal.
        probe: Probe,
        /// Threshold.
        value: f64,
        /// Direction.
        edge: Edge,
        /// Which crossing (1-based).
        nth: usize,
    },
}

impl Measurement {
    /// The report key of this measurement.
    pub fn name(&self) -> &str {
        match self {
            Measurement::Delay { name, .. }
            | Measurement::Energy { name, .. }
            | Measurement::Average { name, .. }
            | Measurement::Minimum { name, .. }
            | Measurement::Maximum { name, .. }
            | Measurement::Rms { name, .. }
            | Measurement::FinalValue { name, .. }
            | Measurement::CrossTime { name, .. } => name,
        }
    }

    /// Evaluates the measurement against a transient result.
    ///
    /// # Errors
    ///
    /// [`SpiceError::Measurement`] when a crossing never happens or the
    /// window is empty; unknown probes surface as
    /// [`SpiceError::UnknownNode`].
    pub fn evaluate(&self, result: &TransientResult) -> Result<f64, SpiceError> {
        let times = result.times();
        match self {
            Measurement::Delay {
                name,
                trig,
                trig_value,
                trig_edge,
                targ,
                targ_value,
                targ_edge,
            } => {
                let ts = trig.signal(result)?;
                let t_trig = nth_crossing(times, ts, *trig_value, *trig_edge, 1, 0.0)
                    .ok_or_else(|| measurement_err(name, "trigger never crossed"))?;
                let vs = targ.signal(result)?;
                let t_targ = nth_crossing(times, vs, *targ_value, *targ_edge, 1, t_trig)
                    .ok_or_else(|| measurement_err(name, "target never crossed after trigger"))?;
                Ok(t_targ - t_trig)
            }
            Measurement::Energy {
                name,
                source,
                from,
                to,
            } => {
                let i = result.source_current(source)?;
                let v = result.source_voltage(source)?;
                integrate_window(times, &v, i, *from, *to)
                    .ok_or_else(|| measurement_err(name, "empty integration window"))
            }
            Measurement::Average {
                name,
                probe,
                from,
                to,
            } => window_reduce(
                times,
                probe.signal(result)?,
                *from,
                *to,
                name,
                |acc, dtv| (acc.0 + dtv.0 * dtv.1, acc.1 + dtv.1),
            )
            .map(|(sum, dur)| sum / dur),
            Measurement::Minimum {
                name,
                probe,
                from,
                to,
            } => window_values(times, probe.signal(result)?, *from, *to, name)
                .map(|vals| vals.iter().copied().fold(f64::INFINITY, f64::min)),
            Measurement::Maximum {
                name,
                probe,
                from,
                to,
            } => window_values(times, probe.signal(result)?, *from, *to, name)
                .map(|vals| vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
            Measurement::Rms {
                name,
                probe,
                from,
                to,
            } => window_reduce(
                times,
                probe.signal(result)?,
                *from,
                *to,
                name,
                |acc, dtv| (acc.0 + dtv.0 * dtv.0 * dtv.1, acc.1 + dtv.1),
            )
            .map(|(sum, dur)| (sum / dur).sqrt()),
            Measurement::FinalValue { name, probe } => probe
                .signal(result)?
                .last()
                .copied()
                .ok_or_else(|| measurement_err(name, "empty waveform")),
            Measurement::CrossTime {
                name,
                probe,
                value,
                edge,
                nth,
            } => nth_crossing(times, probe.signal(result)?, *value, *edge, *nth, 0.0)
                .ok_or_else(|| measurement_err(name, "crossing not found")),
        }
    }
}

fn measurement_err(name: &str, reason: &str) -> SpiceError {
    SpiceError::Measurement {
        name: name.to_string(),
        reason: reason.to_string(),
    }
}

/// Finds the time of the `nth` crossing of `value` after `t_min`.
fn nth_crossing(
    times: &[f64],
    signal: &[f64],
    value: f64,
    edge: Edge,
    nth: usize,
    t_min: f64,
) -> Option<f64> {
    let mut count = 0;
    for k in 1..signal.len() {
        if times[k] < t_min {
            continue;
        }
        let (a, b) = (signal[k - 1], signal[k]);
        let rising = a < value && b >= value;
        let falling = a > value && b <= value;
        let hit = match edge {
            Edge::Rise => rising,
            Edge::Fall => falling,
            Edge::Either => rising || falling,
        };
        if hit {
            count += 1;
            if count == nth {
                let frac = if (b - a).abs() < 1e-300 {
                    0.0
                } else {
                    (value - a) / (b - a)
                };
                return Some(times[k - 1] + frac * (times[k] - times[k - 1]));
            }
        }
    }
    None
}

/// Trapezoidal ∫ v·(−i) dt over `[from, to]`.
fn integrate_window(times: &[f64], v: &[f64], i: &[f64], from: f64, to: f64) -> Option<f64> {
    let mut acc = 0.0;
    let mut any = false;
    for k in 1..times.len() {
        let (t0, t1) = (times[k - 1], times[k]);
        if t1 < from || t0 > to {
            continue;
        }
        any = true;
        let p0 = v[k - 1] * -i[k - 1];
        let p1 = v[k] * -i[k];
        acc += 0.5 * (p0 + p1) * (t1 - t0);
    }
    any.then_some(acc)
}

fn window_values(
    times: &[f64],
    signal: &[f64],
    from: f64,
    to: f64,
    name: &str,
) -> Result<Vec<f64>, SpiceError> {
    let vals: Vec<f64> = times
        .iter()
        .zip(signal)
        .filter(|(t, _)| **t >= from && **t <= to)
        .map(|(_, v)| *v)
        .collect();
    if vals.is_empty() {
        Err(measurement_err(name, "empty window"))
    } else {
        Ok(vals)
    }
}

fn window_reduce(
    times: &[f64],
    signal: &[f64],
    from: f64,
    to: f64,
    name: &str,
    f: impl Fn((f64, f64), (f64, f64)) -> (f64, f64),
) -> Result<(f64, f64), SpiceError> {
    let mut acc = (0.0, 0.0);
    for k in 1..times.len() {
        let (t0, t1) = (times[k - 1], times[k]);
        if t1 < from || t0 > to {
            continue;
        }
        let dt = t1 - t0;
        let mid = 0.5 * (signal[k - 1] + signal[k]);
        acc = f(acc, (mid, dt));
    }
    if acc.1 == 0.0 {
        Err(measurement_err(name, "empty window"))
    } else {
        Ok(acc)
    }
}

/// A batch of measurements evaluated together.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeasurementSet {
    measurements: Vec<Measurement>,
}

impl MeasurementSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a measurement.
    pub fn push(&mut self, m: Measurement) -> &mut Self {
        self.measurements.push(m);
        self
    }

    /// The contained measurements.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Evaluates every measurement, failing fast on the first error.
    ///
    /// # Errors
    ///
    /// The first evaluation failure.
    pub fn evaluate(&self, result: &TransientResult) -> Result<Report, SpiceError> {
        let mut report = Report::new();
        for m in &self.measurements {
            let v = m.evaluate(result)?;
            report.insert(m.name(), v);
        }
        Ok(report)
    }
}

impl Extend<Measurement> for MeasurementSet {
    fn extend<T: IntoIterator<Item = Measurement>>(&mut self, iter: T) {
        self.measurements.extend(iter);
    }
}

impl FromIterator<Measurement> for MeasurementSet {
    fn from_iter<T: IntoIterator<Item = Measurement>>(iter: T) -> Self {
        Self {
            measurements: iter.into_iter().collect(),
        }
    }
}

/// The measurement output "file": name → value pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    values: BTreeMap<String, f64>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a value (replacing a previous one with the same key).
    pub fn insert(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_string(), value);
    }

    /// Looks up a measured value.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no measurement is recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Serialises to the `name = value` text format the flow's file-parser
    /// stage consumes.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.values {
            out.push_str(&format!("{k} = {v:.12e}\n"));
        }
        out
    }

    /// Parses the text format back (the "file parser" of the paper's Fig. 10).
    ///
    /// # Errors
    ///
    /// [`SpiceError::Parse`] on malformed lines.
    pub fn parse(text: &str) -> Result<Self, SpiceError> {
        let mut report = Report::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('*') {
                continue;
            }
            let (name, value) = line.split_once('=').ok_or(SpiceError::Parse {
                line: lineno + 1,
                message: "expected 'name = value'".to_string(),
            })?;
            let value: f64 = value.trim().parse().map_err(|e| SpiceError::Parse {
                line: lineno + 1,
                message: format!("bad number: {e}"),
            })?;
            report.insert(name.trim(), value);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Transient, TransientOptions};
    use crate::netlist::Netlist;
    use crate::waveform::Waveform;

    fn rc_result() -> TransientResult {
        let mut nl = Netlist::new();
        nl.add_vsource(
            "vin",
            "in",
            "0",
            Waveform::pulse(0.0, 1.0, 1e-9, 1e-11, 1e-11, 1.0, 0.0),
        )
        .unwrap();
        nl.add_resistor("r1", "in", "out", 1e3).unwrap();
        nl.add_capacitor("c1", "out", "0", 1e-12).unwrap();
        Transient::new(&nl)
            .unwrap()
            .run(&TransientOptions::new(1e-12, 8e-9))
            .unwrap()
    }

    #[test]
    fn delay_measures_rc_half_crossing() {
        let res = rc_result();
        let m = Measurement::Delay {
            name: "tpd".into(),
            trig: Probe::NodeVoltage("in".into()),
            trig_value: 0.5,
            trig_edge: Edge::Rise,
            targ: Probe::NodeVoltage("out".into()),
            targ_value: 0.5,
            targ_edge: Edge::Rise,
        };
        let d = m.evaluate(&res).unwrap();
        // RC 50% delay = ln(2)*tau = 0.693 ns.
        assert!((d - 0.693e-9).abs() < 0.03e-9, "delay = {d}");
    }

    #[test]
    fn energy_of_source_is_positive_and_sane() {
        let res = rc_result();
        let m = Measurement::Energy {
            name: "e".into(),
            source: "vin".into(),
            from: 0.0,
            to: 8e-9,
        };
        // Total energy to charge C through R = C*V^2 (half stored, half
        // dissipated) = 1e-12 J.
        let e = m.evaluate(&res).unwrap();
        assert!(e > 0.8e-12 && e < 1.1e-12, "energy = {e}");
        // Unknown source names fail cleanly.
        let bad = Measurement::Energy {
            name: "e2".into(),
            source: "nope".into(),
            from: 0.0,
            to: 8e-9,
        };
        assert!(bad.evaluate(&res).is_err());
    }

    #[test]
    fn min_max_avg_rms() {
        let res = rc_result();
        let probe = Probe::NodeVoltage("in".into());
        let win = (0.0, 8e-9);
        let min = Measurement::Minimum {
            name: "mn".into(),
            probe: probe.clone(),
            from: win.0,
            to: win.1,
        }
        .evaluate(&res)
        .unwrap();
        let max = Measurement::Maximum {
            name: "mx".into(),
            probe: probe.clone(),
            from: win.0,
            to: win.1,
        }
        .evaluate(&res)
        .unwrap();
        let avg = Measurement::Average {
            name: "av".into(),
            probe: probe.clone(),
            from: win.0,
            to: win.1,
        }
        .evaluate(&res)
        .unwrap();
        let rms = Measurement::Rms {
            name: "rm".into(),
            probe,
            from: win.0,
            to: win.1,
        }
        .evaluate(&res)
        .unwrap();
        assert_eq!(min, 0.0);
        assert_eq!(max, 1.0);
        assert!(avg > 0.8 && avg < 0.95); // high ~7/8 of the window
        assert!(rms >= avg && rms <= max);
    }

    #[test]
    fn final_value_and_cross_time() {
        let res = rc_result();
        let f = Measurement::FinalValue {
            name: "vf".into(),
            probe: Probe::NodeVoltage("out".into()),
        }
        .evaluate(&res)
        .unwrap();
        assert!((f - 1.0).abs() < 1e-2);
        let t = Measurement::CrossTime {
            name: "tc".into(),
            probe: Probe::NodeVoltage("in".into()),
            value: 0.5,
            edge: Edge::Rise,
            nth: 1,
        }
        .evaluate(&res)
        .unwrap();
        assert!((t - 1e-9).abs() < 0.05e-9);
    }

    #[test]
    fn missing_crossing_is_a_measurement_error() {
        let res = rc_result();
        let m = Measurement::CrossTime {
            name: "never".into(),
            probe: Probe::NodeVoltage("out".into()),
            value: 5.0,
            edge: Edge::Rise,
            nth: 1,
        };
        assert!(matches!(
            m.evaluate(&res),
            Err(SpiceError::Measurement { .. })
        ));
    }

    #[test]
    fn report_round_trips_text() {
        let mut r = Report::new();
        r.insert("write_latency", 4.9e-9);
        r.insert("write_energy", 159e-12);
        let text = r.to_text();
        let back = Report::parse(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert!((back.get("write_latency").unwrap() - 4.9e-9).abs() < 1e-20);
        assert!((back.get("write_energy").unwrap() - 159e-12).abs() < 1e-20);
    }

    #[test]
    fn report_parse_rejects_garbage() {
        assert!(Report::parse("no equals sign here").is_err());
        assert!(Report::parse("x = not_a_number").is_err());
        // Comments and blanks are fine.
        let r = Report::parse("* comment\n\n# other\nx = 1.0\n").unwrap();
        assert_eq!(r.get("x"), Some(1.0));
    }

    #[test]
    fn measurement_set_batch() {
        let res = rc_result();
        let set: MeasurementSet = vec![
            Measurement::FinalValue {
                name: "a".into(),
                probe: Probe::NodeVoltage("out".into()),
            },
            Measurement::Maximum {
                name: "b".into(),
                probe: Probe::NodeVoltage("in".into()),
                from: 0.0,
                to: 8e-9,
            },
        ]
        .into_iter()
        .collect();
        let report = set.evaluate(&res).unwrap();
        assert_eq!(report.len(), 2);
        assert!(report.get("a").is_some());
        assert!(!report.is_empty());
    }
}
