//! Error type for the circuit simulator.

use std::fmt;

/// One failed attempt in a solver retry ladder (see
/// [`crate::analysis::SolverOptions`]): which strategy ran, how many Newton
/// iterations it spent, and how far from converged it stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryAttempt {
    /// Strategy label: `"newton"`, `"gmin=1.0e-4"`, `"source-alpha=0.30"`,
    /// `"dt=5.0e-13"`.
    pub strategy: String,
    /// Newton iterations spent before giving up.
    pub iterations: usize,
    /// Largest voltage update (volts) of the final iteration — how far the
    /// iterate still was from the convergence tolerance.
    pub max_dv: f64,
}

impl fmt::Display for RetryAttempt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} iterations, max dv = {:.3e} V)",
            self.strategy, self.iterations, self.max_dv
        )
    }
}

/// Errors produced while building, parsing or simulating a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// A referenced node name does not exist in the netlist.
    UnknownNode(String),
    /// An element name was used twice.
    DuplicateElement(String),
    /// An element parameter is unphysical (negative resistance, ...).
    InvalidElement {
        /// Element name.
        name: String,
        /// What is wrong with it.
        reason: String,
    },
    /// Netlist text could not be parsed.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A `{param}` placeholder had no binding during template expansion.
    UnboundTemplateParameter(String),
    /// The MNA matrix is singular (floating subcircuit, V-source loop, ...).
    SingularMatrix,
    /// Newton iteration did not converge (single attempt, no ladder).
    NoConvergence {
        /// Which analysis failed.
        analysis: &'static str,
        /// Time point for transient failures (seconds), `None` for DC.
        time: Option<f64>,
        /// Newton iterations spent before giving up.
        iterations: usize,
        /// Largest voltage update (volts) of the final iteration.
        max_dv: f64,
    },
    /// Every stage of the convergence retry ladder failed (plain Newton,
    /// then gmin stepping / source stepping for DC or step halving for
    /// transient). The attempts record the full retry history in order.
    RetryLadderExhausted {
        /// Which analysis failed.
        analysis: &'static str,
        /// Time point for transient failures (seconds), `None` for DC.
        time: Option<f64>,
        /// Every failed attempt, in the order it was tried.
        attempts: Vec<RetryAttempt>,
    },
    /// A measurement could not be evaluated (missing crossing, bad window).
    Measurement {
        /// Measurement name.
        name: String,
        /// What went wrong.
        reason: String,
    },
    /// The run observed its cancellation token (deadline or external
    /// cancel) and bailed out at a chunk boundary before completing.
    Cancelled,
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::UnknownNode(n) => write!(f, "unknown node '{n}'"),
            SpiceError::DuplicateElement(n) => write!(f, "duplicate element '{n}'"),
            SpiceError::InvalidElement { name, reason } => {
                write!(f, "invalid element '{name}': {reason}")
            }
            SpiceError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SpiceError::UnboundTemplateParameter(p) => {
                write!(f, "unbound template parameter '{{{p}}}'")
            }
            SpiceError::SingularMatrix => write!(f, "singular MNA matrix"),
            SpiceError::NoConvergence {
                analysis,
                time,
                iterations,
                max_dv,
            } => {
                match time {
                    Some(t) => write!(f, "{analysis} failed to converge at t = {t:.3e} s")?,
                    None => write!(f, "{analysis} failed to converge")?,
                }
                write!(
                    f,
                    " after {iterations} iterations (max dv = {max_dv:.3e} V)"
                )
            }
            SpiceError::RetryLadderExhausted {
                analysis,
                time,
                attempts,
            } => {
                match time {
                    Some(t) => write!(
                        f,
                        "{analysis} retry ladder exhausted at t = {t:.3e} s after {} attempts",
                        attempts.len()
                    )?,
                    None => write!(
                        f,
                        "{analysis} retry ladder exhausted after {} attempts",
                        attempts.len()
                    )?,
                }
                if let Some(last) = attempts.last() {
                    write!(f, "; last: {last}")?;
                }
                Ok(())
            }
            SpiceError::Measurement { name, reason } => {
                write!(f, "measurement '{name}' failed: {reason}")
            }
            SpiceError::Cancelled => write!(f, "solve cancelled"),
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SpiceError::UnknownNode("x".into())
            .to_string()
            .contains("x"));
        assert!(SpiceError::SingularMatrix.to_string().contains("singular"));
        let e = SpiceError::NoConvergence {
            analysis: "transient",
            time: Some(1e-9),
            iterations: 200,
            max_dv: 0.125,
        };
        let msg = e.to_string();
        assert!(msg.contains("transient"));
        assert!(msg.contains("200 iterations"));
        assert!(msg.contains("1.250e-1"));
    }

    #[test]
    fn ladder_display_names_last_attempt() {
        let e = SpiceError::RetryLadderExhausted {
            analysis: "dc operating point",
            time: None,
            attempts: vec![
                RetryAttempt {
                    strategy: "newton".into(),
                    iterations: 3,
                    max_dv: 0.7,
                },
                RetryAttempt {
                    strategy: "source-alpha=0.10".into(),
                    iterations: 3,
                    max_dv: 0.2,
                },
            ],
        };
        let msg = e.to_string();
        assert!(msg.contains("2 attempts"));
        assert!(msg.contains("source-alpha=0.10"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<SpiceError>();
    }
}
