//! Error type for the circuit simulator.

use std::fmt;

/// Errors produced while building, parsing or simulating a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// A referenced node name does not exist in the netlist.
    UnknownNode(String),
    /// An element name was used twice.
    DuplicateElement(String),
    /// An element parameter is unphysical (negative resistance, ...).
    InvalidElement {
        /// Element name.
        name: String,
        /// What is wrong with it.
        reason: String,
    },
    /// Netlist text could not be parsed.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A `{param}` placeholder had no binding during template expansion.
    UnboundTemplateParameter(String),
    /// The MNA matrix is singular (floating subcircuit, V-source loop, ...).
    SingularMatrix,
    /// Newton iteration did not converge.
    NoConvergence {
        /// Which analysis failed.
        analysis: &'static str,
        /// Time point for transient failures (seconds), `None` for DC.
        time: Option<f64>,
    },
    /// A measurement could not be evaluated (missing crossing, bad window).
    Measurement {
        /// Measurement name.
        name: String,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::UnknownNode(n) => write!(f, "unknown node '{n}'"),
            SpiceError::DuplicateElement(n) => write!(f, "duplicate element '{n}'"),
            SpiceError::InvalidElement { name, reason } => {
                write!(f, "invalid element '{name}': {reason}")
            }
            SpiceError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SpiceError::UnboundTemplateParameter(p) => {
                write!(f, "unbound template parameter '{{{p}}}'")
            }
            SpiceError::SingularMatrix => write!(f, "singular MNA matrix"),
            SpiceError::NoConvergence { analysis, time } => match time {
                Some(t) => write!(f, "{analysis} failed to converge at t = {t:.3e} s"),
                None => write!(f, "{analysis} failed to converge"),
            },
            SpiceError::Measurement { name, reason } => {
                write!(f, "measurement '{name}' failed: {reason}")
            }
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SpiceError::UnknownNode("x".into())
            .to_string()
            .contains("x"));
        assert!(SpiceError::SingularMatrix.to_string().contains("singular"));
        let e = SpiceError::NoConvergence {
            analysis: "transient",
            time: Some(1e-9),
        };
        assert!(e.to_string().contains("transient"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<SpiceError>();
    }
}
