//! Source waveforms: DC, pulse, piecewise-linear and sine stimuli.

/// A time-dependent source value.
///
/// # Examples
///
/// ```
/// use mss_spice::waveform::Waveform;
///
/// let w = Waveform::pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 5e-9, 10e-9);
/// assert_eq!(w.eval(0.0), 0.0);
/// assert_eq!(w.eval(2e-9), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE-style periodic pulse.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Pulse width (time at `v2`), seconds.
        width: f64,
        /// Repetition period, seconds (0 = single pulse).
        period: f64,
    },
    /// Piecewise-linear `(time, value)` points; clamps outside the range.
    Pwl(Vec<(f64, f64)>),
    /// Sinusoid `offset + ampl·sin(2πf·t + phase)`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in hertz.
        freq: f64,
        /// Phase in radians.
        phase: f64,
    },
}

impl Waveform {
    /// Constant source.
    pub fn dc(v: f64) -> Self {
        Waveform::Dc(v)
    }

    /// SPICE `PULSE(v1 v2 delay rise fall width period)`.
    pub fn pulse(
        v1: f64,
        v2: f64,
        delay: f64,
        rise: f64,
        fall: f64,
        width: f64,
        period: f64,
    ) -> Self {
        Waveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        }
    }

    /// Piecewise-linear waveform from `(t, v)` points (must be time-sorted).
    pub fn pwl(points: Vec<(f64, f64)>) -> Self {
        Waveform::Pwl(points)
    }

    /// Sine source.
    pub fn sin(offset: f64, ampl: f64, freq: f64, phase: f64) -> Self {
        Waveform::Sin {
            offset,
            ampl,
            freq,
            phase,
        }
    }

    /// Evaluates the waveform at time `t` seconds.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tau = t - delay;
                if *period > 0.0 {
                    tau %= period;
                }
                let rise = rise.max(1e-15);
                let fall = fall.max(1e-15);
                if tau < rise {
                    v1 + (v2 - v1) * tau / rise
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    v2 + (v1 - v2) * (tau - rise - width) / fall
                } else {
                    *v1
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                let last = points[points.len() - 1];
                if t >= last.0 {
                    return last.1;
                }
                let idx = points.partition_point(|p| p.0 < t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 <= t0 {
                    return v1;
                }
                v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            }
            Waveform::Sin {
                offset,
                ampl,
                freq,
                phase,
            } => offset + ampl * (2.0 * std::f64::consts::PI * freq * t + phase).sin(),
        }
    }

    /// The DC (t = 0⁻) value used for the operating point.
    pub fn dc_value(&self) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse { v1, .. } => *v1,
            Waveform::Pwl(points) => points.first().map(|p| p.1).unwrap_or(0.0),
            Waveform::Sin {
                offset,
                ampl,
                phase,
                ..
            } => offset + ampl * phase.sin(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(2.5);
        assert_eq!(w.eval(0.0), 2.5);
        assert_eq!(w.eval(1.0), 2.5);
        assert_eq!(w.dc_value(), 2.5);
    }

    #[test]
    fn pulse_edges() {
        let w = Waveform::pulse(0.0, 1.0, 1e-9, 0.2e-9, 0.2e-9, 2e-9, 0.0);
        assert_eq!(w.eval(0.5e-9), 0.0);
        assert!((w.eval(1.1e-9) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.eval(2e-9), 1.0); // flat top
        assert!((w.eval(3.3e-9) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.eval(5e-9), 0.0); // back low
    }

    #[test]
    fn pulse_repeats_with_period() {
        let w = Waveform::pulse(0.0, 1.0, 0.0, 0.1e-9, 0.1e-9, 1e-9, 4e-9);
        assert_eq!(w.eval(0.5e-9), 1.0);
        assert_eq!(w.eval(4.5e-9), 1.0);
        assert_eq!(w.eval(2.5e-9), 0.0);
        assert_eq!(w.eval(6.5e-9), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::pwl(vec![(0.0, 0.0), (1e-9, 1.0), (2e-9, -1.0)]);
        assert_eq!(w.eval(-1.0), 0.0);
        assert!((w.eval(0.5e-9) - 0.5).abs() < 1e-12);
        assert!((w.eval(1.5e-9) - 0.0).abs() < 1e-12);
        assert_eq!(w.eval(5e-9), -1.0);
    }

    #[test]
    fn sine_basics() {
        let w = Waveform::sin(1.0, 0.5, 1e9, 0.0);
        assert!((w.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((w.eval(0.25e-9) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_pwl_is_zero() {
        let w = Waveform::pwl(vec![]);
        assert_eq!(w.eval(1.0), 0.0);
        assert_eq!(w.dc_value(), 0.0);
    }
}
