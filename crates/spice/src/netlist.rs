//! Netlist representation and programmatic construction.
//!
//! Nodes are named strings (`"0"` and `"gnd"` both denote ground) created on
//! first use, SPICE style. Elements are added through the `add_*` methods,
//! which validate values and reject duplicate names.

use std::collections::HashMap;

use mss_mtj::mechanism::{SotMechanism, SotParams};
use mss_mtj::resistance::MtjState;
use mss_mtj::MssStack;

use crate::mosfet::{MosGeometry, MosModel};
use crate::mtjelem::MtjElement;
use crate::waveform::Waveform;
use crate::SpiceError;

/// Index of a circuit node; `NodeId(0)` is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground node.
    pub const GROUND: NodeId = NodeId(0);

    /// True for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// One circuit element.
#[derive(Debug, Clone)]
pub enum Element {
    /// Linear resistor.
    Resistor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Independent voltage source.
    VSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Value over time.
        wave: Waveform,
    },
    /// Independent current source; the current flows from `plus` through
    /// the source to `minus` (i.e. it is injected into the `minus` node).
    ISource {
        /// Instance name.
        name: String,
        /// Terminal the current is drawn from.
        plus: NodeId,
        /// Terminal the current is injected into.
        minus: NodeId,
        /// Value over time.
        wave: Waveform,
    },
    /// Level-1 MOSFET (bulk tied to source).
    Mosfet {
        /// Instance name.
        name: String,
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Model card.
        model: MosModel,
        /// Instance geometry.
        geom: MosGeometry,
    },
    /// Magnetic tunnel junction (state-dependent resistor).
    Mtj {
        /// Instance name.
        name: String,
        /// Positive terminal (positive current `plus→minus` writes P).
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Device model + state.
        device: MtjElement,
    },
    /// Three-terminal SOT/SHE MTJ cell: the junction (read path) sits
    /// between `read` and `shared`, the heavy-metal write channel between
    /// `shared` and `write`. Switching progress integrates against the
    /// *channel* current — positive current `shared→write` writes the
    /// parallel state — while the read path only sees the TMR resistance.
    MtjSot {
        /// Instance name.
        name: String,
        /// Read terminal (top electrode of the junction).
        read: NodeId,
        /// Shared terminal (junction bottom = channel mid-point).
        shared: NodeId,
        /// Write terminal (far end of the heavy-metal channel).
        write: NodeId,
        /// Heavy-metal channel resistance in ohms.
        channel_ohms: f64,
        /// Junction model + state; its switching evaluator carries the SOT
        /// constants and is driven by the channel current.
        device: MtjElement,
    },
}

impl Element {
    /// The instance name.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::VSource { name, .. }
            | Element::ISource { name, .. }
            | Element::Mosfet { name, .. }
            | Element::Mtj { name, .. }
            | Element::MtjSot { name, .. } => name,
        }
    }
}

/// A circuit under construction.
///
/// # Examples
///
/// ```
/// use mss_spice::netlist::Netlist;
/// use mss_spice::waveform::Waveform;
///
/// # fn main() -> Result<(), mss_spice::SpiceError> {
/// let mut nl = Netlist::new();
/// nl.add_vsource("v1", "a", "0", Waveform::dc(1.0))?;
/// nl.add_resistor("r1", "a", "b", 1e3)?;
/// nl.add_resistor("r2", "b", "0", 1e3)?;
/// assert_eq!(nl.node_count(), 3); // ground, a, b
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    node_index: HashMap<String, NodeId>,
    elements: Vec<Element>,
}

impl Netlist {
    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Self {
        let mut nl = Self {
            node_names: Vec::new(),
            node_index: HashMap::new(),
            elements: Vec::new(),
        };
        nl.node_names.push("0".to_string());
        nl.node_index.insert("0".to_string(), NodeId(0));
        nl.node_index.insert("gnd".to_string(), NodeId(0));
        nl
    }

    /// Returns (creating if needed) the node with the given name.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = name.to_ascii_lowercase();
        if let Some(&id) = self.node_index.get(&key) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(key.clone());
        self.node_index.insert(key, id);
        id
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] if the name was never used.
    pub fn find_node(&self, name: &str) -> Result<NodeId, SpiceError> {
        self.node_index
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| SpiceError::UnknownNode(name.to_string()))
    }

    /// Node name for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// The elements, in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable element access for the transient engine's MTJ state updates.
    pub(crate) fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    fn check_name(&self, name: &str) -> Result<(), SpiceError> {
        if self.elements.iter().any(|e| e.name() == name) {
            Err(SpiceError::DuplicateElement(name.to_string()))
        } else {
            Ok(())
        }
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite resistance and duplicate names.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: &str,
        b: &str,
        ohms: f64,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(SpiceError::InvalidElement {
                name: name.to_string(),
                reason: format!("resistance {ohms} must be positive"),
            });
        }
        let (a, b) = (self.node(a), self.node(b));
        self.elements.push(Element::Resistor {
            name: name.to_string(),
            a,
            b,
            ohms,
        });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive capacitance and duplicate names.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: &str,
        b: &str,
        farads: f64,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        if !(farads.is_finite() && farads > 0.0) {
            return Err(SpiceError::InvalidElement {
                name: name.to_string(),
                reason: format!("capacitance {farads} must be positive"),
            });
        }
        let (a, b) = (self.node(a), self.node(b));
        self.elements.push(Element::Capacitor {
            name: name.to_string(),
            a,
            b,
            farads,
        });
        Ok(())
    }

    /// Adds an independent voltage source.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn add_vsource(
        &mut self,
        name: &str,
        plus: &str,
        minus: &str,
        wave: Waveform,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        let (plus, minus) = (self.node(plus), self.node(minus));
        self.elements.push(Element::VSource {
            name: name.to_string(),
            plus,
            minus,
            wave,
        });
        Ok(())
    }

    /// Adds an independent current source (flows `plus → minus` through the
    /// source, i.e. injected into `minus`).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn add_isource(
        &mut self,
        name: &str,
        plus: &str,
        minus: &str,
        wave: Waveform,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        let (plus, minus) = (self.node(plus), self.node(minus));
        self.elements.push(Element::ISource {
            name: name.to_string(),
            plus,
            minus,
            wave,
        });
        Ok(())
    }

    /// Adds a MOSFET (bulk implicitly tied to source).
    ///
    /// # Errors
    ///
    /// Rejects non-positive geometry and duplicate names.
    pub fn add_mosfet(
        &mut self,
        name: &str,
        d: &str,
        g: &str,
        s: &str,
        model: MosModel,
        geom: MosGeometry,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        if !(geom.width > 0.0 && geom.length > 0.0) {
            return Err(SpiceError::InvalidElement {
                name: name.to_string(),
                reason: "W and L must be positive".to_string(),
            });
        }
        let (d, g, s) = (self.node(d), self.node(g), self.node(s));
        self.elements.push(Element::Mosfet {
            name: name.to_string(),
            d,
            g,
            s,
            model,
            geom,
        });
        Ok(())
    }

    /// Adds an MTJ device built from a stack description.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn add_mtj(
        &mut self,
        name: &str,
        plus: &str,
        minus: &str,
        stack: &MssStack,
        initial: MtjState,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        let (plus, minus) = (self.node(plus), self.node(minus));
        self.elements.push(Element::Mtj {
            name: name.to_string(),
            plus,
            minus,
            device: MtjElement::new(stack, initial),
        });
        Ok(())
    }

    /// Adds a three-terminal SOT/SHE MTJ cell.
    ///
    /// The junction (read path) connects `read`–`shared` with the stack's
    /// TMR resistance; the heavy-metal channel connects `shared`–`write`
    /// with resistance `ρ·L/(w·t_ch)` from `params`. Positive channel
    /// current (`shared → write`) writes the parallel state.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and invalid channel parameters.
    #[allow(clippy::too_many_arguments)] // three named terminals are the element
    pub fn add_mtj_sot(
        &mut self,
        name: &str,
        read: &str,
        shared: &str,
        write: &str,
        stack: &MssStack,
        params: &SotParams,
        initial: MtjState,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        let sot =
            SotMechanism::new(stack, params.clone()).map_err(|e| SpiceError::InvalidElement {
                name: name.to_string(),
                reason: format!("invalid SOT channel: {e}"),
            })?;
        let channel_ohms = sot.channel_resistance();
        let device = MtjElement::with_switching(stack, initial, sot.switching_model().clone());
        let (read, shared, write) = (self.node(read), self.node(shared), self.node(write));
        self.elements.push(Element::MtjSot {
            name: name.to_string(),
            read,
            shared,
            write,
            channel_ohms,
            device,
        });
        Ok(())
    }

    /// Index of a named element (for the value setters below).
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] when no element has that name.
    pub fn element_index(&self, name: &str) -> Result<usize, SpiceError> {
        self.elements
            .iter()
            .position(|e| e.name() == name)
            .ok_or_else(|| SpiceError::UnknownNode(name.to_string()))
    }

    /// Changes the value of the resistor at `index` without touching the
    /// netlist structure — the mutation primitive of the batched
    /// same-structure solve path ([`crate::batch::DcBatch`]).
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidElement`] when `index` is out of range, the
    /// element is not a resistor, or the value is not positive and finite.
    pub fn set_resistance(&mut self, index: usize, ohms: f64) -> Result<(), SpiceError> {
        match self.elements.get_mut(index) {
            Some(Element::Resistor {
                name, ohms: slot, ..
            }) => {
                if !(ohms > 0.0 && ohms.is_finite()) {
                    return Err(SpiceError::InvalidElement {
                        name: name.clone(),
                        reason: format!("resistance {ohms} must be positive"),
                    });
                }
                *slot = ohms;
                Ok(())
            }
            Some(other) => Err(SpiceError::InvalidElement {
                name: other.name().to_string(),
                reason: "set_resistance targets a non-resistor".to_string(),
            }),
            None => Err(SpiceError::InvalidElement {
                name: format!("#{index}"),
                reason: "element index out of range".to_string(),
            }),
        }
    }

    /// Replaces the waveform of the voltage or current source at `index`,
    /// keeping the netlist structure fixed.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidElement`] when `index` is out of range or the
    /// element is not a source.
    pub fn set_source_wave(&mut self, index: usize, wave: Waveform) -> Result<(), SpiceError> {
        match self.elements.get_mut(index) {
            Some(Element::VSource { wave: slot, .. })
            | Some(Element::ISource { wave: slot, .. }) => {
                *slot = wave;
                Ok(())
            }
            Some(other) => Err(SpiceError::InvalidElement {
                name: other.name().to_string(),
                reason: "set_source_wave targets a non-source".to_string(),
            }),
            None => Err(SpiceError::InvalidElement {
                name: format!("#{index}"),
                reason: "element index out of range".to_string(),
            }),
        }
    }

    /// Resets the stored state of the MTJ at `index` (e.g. to solve the
    /// same cell in both parallel and antiparallel configurations),
    /// keeping the netlist structure fixed.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidElement`] when `index` is out of range or the
    /// element is not an MTJ.
    pub fn set_mtj_state(&mut self, index: usize, state: MtjState) -> Result<(), SpiceError> {
        match self.elements.get_mut(index) {
            Some(Element::Mtj { device, .. }) | Some(Element::MtjSot { device, .. }) => {
                device.set_state(state);
                Ok(())
            }
            Some(other) => Err(SpiceError::InvalidElement {
                name: other.name().to_string(),
                reason: "set_mtj_state targets a non-MTJ".to_string(),
            }),
            None => Err(SpiceError::InvalidElement {
                name: format!("#{index}"),
                reason: "element index out of range".to_string(),
            }),
        }
    }

    /// Number of independent voltage sources (extra MNA unknowns).
    pub fn vsource_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut nl = Netlist::new();
        assert_eq!(nl.node("0"), NodeId::GROUND);
        assert_eq!(nl.node("gnd"), NodeId::GROUND);
        assert_eq!(nl.node("GND"), NodeId::GROUND);
        assert!(NodeId::GROUND.is_ground());
    }

    #[test]
    fn nodes_are_case_insensitive_and_stable() {
        let mut nl = Netlist::new();
        let a = nl.node("OUT");
        let b = nl.node("out");
        assert_eq!(a, b);
        assert_eq!(nl.node_name(a), "out");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut nl = Netlist::new();
        nl.add_resistor("r1", "a", "0", 1.0).unwrap();
        let err = nl.add_resistor("r1", "b", "0", 2.0).unwrap_err();
        assert!(matches!(err, SpiceError::DuplicateElement(_)));
    }

    #[test]
    fn negative_values_rejected() {
        let mut nl = Netlist::new();
        assert!(nl.add_resistor("r1", "a", "0", -5.0).is_err());
        assert!(nl.add_capacitor("c1", "a", "0", 0.0).is_err());
        assert!(nl.add_resistor("r2", "a", "0", f64::NAN).is_err());
    }

    #[test]
    fn find_node_errors_on_unknown() {
        let nl = Netlist::new();
        assert!(matches!(
            nl.find_node("nowhere"),
            Err(SpiceError::UnknownNode(_))
        ));
    }

    #[test]
    fn vsource_count_counts_only_vsources() {
        let mut nl = Netlist::new();
        nl.add_vsource("v1", "a", "0", Waveform::dc(1.0)).unwrap();
        nl.add_isource("i1", "a", "0", Waveform::dc(1e-6)).unwrap();
        nl.add_resistor("r1", "a", "0", 1e3).unwrap();
        assert_eq!(nl.vsource_count(), 1);
    }
}
